//! Compaction oracle: after [`SynthesisSession::compact`] renumbers
//! away the tombstones accrued by a delta stream, the session must be
//! **bit-identical** to a fresh session prepared on the compacted
//! corpus — value space strings and classes, projected pairs, scored
//! edge bits, and synthesized outputs under every resolver. Also
//! proves that `compact → apply_delta → compact` composes, that the
//! approximate-match memo reclaims tombstoned value rows, that the
//! compacted artifacts are worker/shard-invariant (the incremental
//! side runs at a sampled worker count, the oracle always at 1), and
//! the `compact_threshold` trigger arithmetic.

use mapsynth::compat::{MatchCounts, PairWeights};
use mapsynth::delta::CorpusDelta;
use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
use mapsynth::values::NormId;
use mapsynth_corpus::{Corpus, RowPatch, TableId};
use mapsynth_text::SynonymDict;
use proptest::prelude::*;

/// Generator shape shared with `tests/delta_oracle.rs`: functional
/// tables whose codes derive from `(relation, entity)`, with typo
/// variants so approximate matching populates the memo.
type GenTable = (u8, u8, Vec<(u8, (u8, u8))>);

fn code_of(relation: u8, entity: u8) -> u8 {
    ((entity as u16 * 7 + relation as u16 * 13) % 6) as u8
}

fn left_str(entity: u8, variant: u8) -> String {
    let base = format!("entity number {entity} of the corpus");
    match variant % 4 {
        0 => base,
        1 => base.replace("number", "numbr"),
        2 => base.replace("corpus", "korpus"),
        _ => format!("{base}x"),
    }
}

fn right_str(code: u8, variant: u8) -> String {
    let base = format!("mapping code {code}");
    match variant % 3 {
        0 => base,
        1 => base.replace("code", "cod"),
        _ => format!("{base}s"),
    }
}

fn push_gen_table(corpus: &mut Corpus, t: &GenTable) -> TableId {
    let (domain, relation, rows) = t;
    let d = corpus.domain(&format!("domain-{}.org", domain % 5));
    let ev_of = |ev: u8| if ev < 9 { 0 } else { ev - 8 };
    let cv_of = |cv: u8| if cv < 6 { 0 } else { cv - 5 };
    let lefts: Vec<String> = rows
        .iter()
        .map(|&(e, (ev, _))| left_str(e, ev_of(ev)))
        .collect();
    let rights: Vec<String> = rows
        .iter()
        .map(|&(e, (_, cv))| right_str(code_of(*relation, e), cv_of(cv)))
        .collect();
    corpus.push_table(
        d,
        vec![
            (Some("entity"), lefts.iter().map(String::as_str).collect()),
            (Some("code"), rights.iter().map(String::as_str).collect()),
        ],
    )
}

fn synonyms() -> SynonymDict {
    let mut dict = SynonymDict::new();
    dict.declare(&left_str(1, 0), &left_str(1, 1));
    dict.declare(&right_str(1, 0), &right_str(1, 1));
    dict
}

/// A deterministic 12-table corpus (6 domains × 2 relations) with typo
/// variants on every fourth entity.
fn base_corpus() -> Corpus {
    let mut corpus = Corpus::new();
    for domain in 0..6u8 {
        for relation in 0..2u8 {
            let rows: Vec<(u8, (u8, u8))> = (0..8)
                .map(|e| (e, ((e % 4) * 9, ((e + domain) % 3) * 6)))
                .collect();
            push_gen_table(&mut corpus, &(domain, relation, rows));
        }
    }
    corpus
}

/// The synthesized output under all three resolvers — the invariant
/// that must hold after **every** delta (the incremental session may
/// carry tombstoned internal rows a fresh session never builds, but
/// outputs must be bit-identical).
type ObservedOut = Vec<(Vec<(Vec<(String, String)>, usize, usize)>, usize, usize)>;

fn observe_out(session: &SynthesisSession) -> ObservedOut {
    [Resolver::Algorithm4, Resolver::MajorityVote, Resolver::None]
        .into_iter()
        .map(|resolver| {
            let run = session.synthesize(&session.config().synthesis.clone(), resolver);
            (
                run.mappings
                    .iter()
                    .map(|m| (m.materialize_pairs(), m.domains, m.source_tables))
                    .collect(),
                run.edges,
                run.partitions,
            )
        })
        .collect()
}

/// Everything externally observable about a prepared session: the
/// value space (strings + class representatives), every candidate's
/// projected pairs, the scored edge bits and raw match counts, and the
/// synthesized output under all three resolvers. Holds only when no
/// tombstones are pending — i.e. fresh vs. freshly **compacted**.
type Observed = (
    Vec<String>,
    Vec<u32>,
    Vec<(u32, Vec<(u32, u32)>)>,
    Vec<(u32, u32, PairWeights)>,
    Vec<(u32, u32, MatchCounts)>,
    ObservedOut,
);

fn observe_full(session: &SynthesisSession) -> Observed {
    let values = session.values().expect("prepared");
    let scores = session.scores().expect("prepared");
    let strings = (0..values.space.len() as u32)
        .map(|i| values.space.string(NormId(i)).to_string())
        .collect();
    let classes = (0..values.space.len() as u32)
        .map(|i| values.space.class(NormId(i)))
        .collect();
    let projected = values
        .tables
        .iter()
        .map(|t| {
            (
                t.idx,
                t.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect::<Vec<_>>(),
            )
        })
        .collect();
    (
        strings,
        classes,
        projected,
        scores.scored.clone(),
        scores.counts.clone(),
        observe_out(session),
    )
}

fn fresh_on(corpus: &Corpus) -> SynthesisSession {
    let mut fresh = SynthesisSession::new(PipelineConfig {
        workers: 1,
        ..Default::default()
    })
    .with_synonyms(synonyms());
    fresh.prepare(corpus);
    fresh
}

#[test]
fn compaction_equals_fresh_and_composes_with_deltas() {
    let mut corpus = base_corpus();
    let mut session = SynthesisSession::new(PipelineConfig {
        workers: 4,
        ..Default::default()
    })
    .with_synonyms(synonyms());
    session.prepare(&corpus);

    // Accrue garbage: drop four tables, and edit one in place with a
    // second mapping for an entity it already lists — the FD violation
    // tombstones that orientation without perturbing any other
    // column's coherence (an insertion never changes another column's
    // marginals), so the delta stays on the in-place path and the
    // tombstones survive to be compacted.
    let patch = RowPatch {
        table: TableId(5),
        deleted: vec![],
        inserted: vec![vec![left_str(0, 0), "mapping code 5x".to_string()]],
    };
    corpus.apply_row_patch(&patch);
    let report = session
        .apply_delta(
            &corpus,
            &CorpusDelta {
                added: vec![],
                removed: vec![TableId(0), TableId(3), TableId(8), TableId(11)],
                patches: vec![patch],
            },
        )
        .expect("valid delta");
    assert!(!report.reordered, "insert-only edits stay in place");
    let (_, cand_garbage) = session.garbage_fractions();
    assert!(cand_garbage > 0.0, "removals must leave tombstones");

    // Compact: the session must be byte-identical to a fresh session
    // on the compacted corpus, with zero garbage left.
    let mut corpus = session.compact(&corpus);
    assert_eq!(corpus.len(), 8, "compaction renumbers densely");
    assert_eq!(session.garbage_fractions(), (0.0, 0.0));
    assert!(!session.compaction_due());
    assert_eq!(observe_full(&session), observe_full(&fresh_on(&corpus)));

    // compact → apply_delta: the compacted session keeps taking
    // deltas — against the renumbered table ids.
    let patch = RowPatch {
        table: TableId(2),
        deleted: vec![],
        inserted: vec![vec![left_str(8, 1), right_str(code_of(0, 8), 1)]],
    };
    corpus.apply_row_patch(&patch);
    let added = vec![push_gen_table(
        &mut corpus,
        &(2, 1, (0..8).map(|e| (e, (0, 0))).collect()),
    )];
    session
        .apply_delta(
            &corpus,
            &CorpusDelta {
                added,
                removed: vec![TableId(6)],
                patches: vec![patch],
            },
        )
        .expect("valid delta");
    let live = session.live_corpus(&corpus);
    assert_eq!(observe_out(&session), observe_out(&fresh_on(&live)));

    // → compact again: composition lands on a fresh session once more.
    let corpus = session.compact(&corpus);
    assert_eq!(session.garbage_fractions(), (0.0, 0.0));
    assert_eq!(observe_full(&session), observe_full(&fresh_on(&corpus)));
}

#[test]
fn compaction_reclaims_memo_rows_and_value_space() {
    // Base corpus plus two tables over a disjoint entity range
    // (10..18): their left spellings — typo variants included — occur
    // nowhere else, so removing the pair strands distinct values.
    let mut corpus = base_corpus();
    for relation in 0..2u8 {
        let rows: Vec<(u8, (u8, u8))> = (10..18).map(|e| (e, ((e % 4) * 9, (e % 3) * 6))).collect();
        push_gen_table(&mut corpus, &(relation, relation, rows));
    }
    let mut session = SynthesisSession::new(PipelineConfig::default()).with_synonyms(synonyms());
    session.prepare(&corpus);
    let memo_before = session.scores().expect("prepared").detail.memo.values;
    assert!(
        memo_before > 0,
        "typo variants must populate the approximate-match memo"
    );
    let space_before = session.values().expect("prepared").space.len();

    // Remove the disjoint-entity pair: their spellings leave the live
    // value set, so compaction must shrink both the space and the
    // memo's value rows.
    session
        .apply_delta(
            &corpus,
            &CorpusDelta {
                added: vec![],
                removed: vec![TableId(12), TableId(13)],
                patches: vec![],
            },
        )
        .expect("valid delta");
    let (value_garbage, _) = session.garbage_fractions();
    assert!(value_garbage > 0.0, "dropped spellings must be garbage");

    let compacted = session.compact(&corpus);
    let space_after = session.values().expect("prepared").space.len();
    let memo_after = session.scores().expect("prepared").detail.memo.values;
    assert!(space_after < space_before, "value rows must be reclaimed");
    assert!(memo_after <= memo_before);
    assert_eq!(
        memo_after,
        fresh_on(&compacted)
            .scores()
            .expect("prepared")
            .detail
            .memo
            .values,
        "memo row count must match a fresh build"
    );
    assert_eq!(observe_full(&session), observe_full(&fresh_on(&compacted)));
}

#[test]
fn compaction_due_follows_the_configured_threshold() {
    let corpus = base_corpus();
    let delta = CorpusDelta {
        added: vec![],
        removed: (0..6).map(TableId).collect(),
        patches: vec![],
    };

    // A low threshold trips after the removals; a threshold of 1.0
    // never trips (garbage fractions cannot exceed 1).
    for (threshold, due) in [(0.05, true), (1.0, false)] {
        let mut session = SynthesisSession::new(PipelineConfig {
            compact_threshold: threshold,
            ..Default::default()
        })
        .with_synonyms(synonyms());
        session.prepare(&corpus);
        assert!(!session.compaction_due(), "a fresh session has no garbage");
        session.apply_delta(&corpus, &delta).expect("valid delta");
        assert_eq!(session.compaction_due(), due, "threshold {threshold}");
        if due {
            session.compact(&corpus);
            assert!(!session.compaction_due(), "compaction clears the trigger");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// For any generated corpus, any worker count, and any interleaving
    /// of deltas (removals, additions, row edits) with compaction
    /// points: the session equals a fresh session on its live corpus at
    /// every step, compaction replaces the corpus without perturbing
    /// any observable bit, and the unified counters stay balanced
    /// across renumberings.
    #[test]
    fn prop_compaction_invariance(
        base in proptest::collection::vec(
            (0u8..5, 0u8..2, proptest::collection::btree_map(0u8..10, (0u8..12, 0u8..9), 5..10)
                .prop_map(|m| m.into_iter().collect::<Vec<_>>())),
            4..9,
        ),
        steps in proptest::collection::vec(
            (
                proptest::collection::vec(0u16..1000, 0..2),  // removals
                proptest::collection::vec(
                    (0u8..5, 0u8..2, proptest::collection::btree_map(0u8..10, (0u8..12, 0u8..9), 5..10)
                        .prop_map(|m| m.into_iter().collect::<Vec<_>>())),
                    0..2,
                ),                                             // additions
                (0u8..2, 0u16..1000, 0u16..1000, 0u8..10),     // row edit (flag, table, row, entity)
                0u8..2,                                        // compact after?
            ),
            1..4,
        ),
        worker_sel in 0usize..3,
    ) {
        let workers = [1usize, 2, 8][worker_sel];
        let mut corpus = Corpus::new();
        for t in &base {
            push_gen_table(&mut corpus, t);
        }
        let mut session = SynthesisSession::new(PipelineConfig {
            workers,
            ..Default::default()
        })
        .with_synonyms(synonyms());
        session.prepare(&corpus);
        let mut alive: Vec<TableId> = (0..corpus.len() as u32).map(TableId).collect();

        for (removal_sel, additions, edit, compact_after) in &steps {
            let mut removed: Vec<TableId> = Vec::new();
            for &sel in removal_sel {
                let live: Vec<TableId> = alive
                    .iter()
                    .copied()
                    .filter(|t| !removed.contains(t))
                    .collect();
                if live.is_empty() {
                    break;
                }
                removed.push(live[sel as usize % live.len()]);
            }
            // One row edit: delete a row by position, insert a typo'd
            // replacement — the in-place or renumber patch path,
            // whichever the content demands.
            let mut patches: Vec<RowPatch> = Vec::new();
            let (edit_flag, tsel, rsel, e) = edit;
            if *edit_flag == 1 {
                let eligible: Vec<TableId> = alive
                    .iter()
                    .copied()
                    .filter(|t| !removed.contains(t))
                    .collect();
                if !eligible.is_empty() {
                    let tid = eligible[*tsel as usize % eligible.len()];
                    let deleted = {
                        let table = corpus.table(tid);
                        let nrows = table.rows();
                        if nrows == 0 {
                            vec![]
                        } else {
                            let r = *rsel as usize % nrows;
                            vec![table
                                .columns
                                .iter()
                                .map(|c| corpus.str_of(c.values[r]).to_string())
                                .collect()]
                        }
                    };
                    let patch = RowPatch {
                        table: tid,
                        deleted,
                        inserted: vec![vec![left_str(*e, 1), right_str(code_of(1, *e), 1)]],
                    };
                    corpus.apply_row_patch(&patch);
                    patches.push(patch);
                }
            }
            let added: Vec<TableId> = additions
                .iter()
                .map(|t| push_gen_table(&mut corpus, t))
                .collect();
            alive.retain(|t| !removed.contains(t));
            alive.extend(added.iter().copied());

            session.apply_delta(&corpus, &CorpusDelta { added, removed, patches }).expect("valid delta");
            let live_corpus = session.live_corpus(&corpus);
            prop_assert_eq!(
                observe_out(&session),
                observe_out(&fresh_on(&live_corpus)),
                "delta diverged (workers = {})", workers
            );

            if *compact_after == 1 {
                corpus = session.compact(&corpus);
                alive = (0..corpus.len() as u32).map(TableId).collect();
                prop_assert_eq!(session.garbage_fractions(), (0.0, 0.0));
                prop_assert_eq!(
                    observe_full(&session),
                    observe_full(&fresh_on(&corpus)),
                    "compaction diverged (workers = {})", workers
                );
            }
        }
    }
}
