//! Exploratory parameter probe (ignored by default): sweeps θ_edge on
//! a small generated corpus and reports mean best-F over popular
//! benchmark cases. Run with:
//! `cargo test -p mapsynth --release --test param_probe -- --ignored --nocapture`

use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_gen::procedural::ProceduralConfig;
use mapsynth_gen::{generate_web, WebConfig};
use std::collections::HashSet;

fn best_f(mappings: &[mapsynth::SynthesizedMapping], gt: &HashSet<(String, String)>) -> f64 {
    let mut best = 0.0f64;
    for m in mappings {
        let hits = m
            .pair_strs()
            .filter(|&(l, r)| gt.contains(&(l.to_string(), r.to_string())))
            .count();
        if hits == 0 {
            continue;
        }
        let p = hits as f64 / m.len() as f64;
        let r = hits as f64 / gt.len() as f64;
        best = best.max(2.0 * p * r / (p + r));
    }
    best
}

#[test]
#[ignore = "exploratory; run manually"]
fn theta_edge_sweep() {
    let wc = generate_web(&WebConfig {
        tables: 1500,
        domains: 120,
        procedural: ProceduralConfig {
            families: 15,
            temporal_families: 2,
            ..Default::default()
        },
        ..Default::default()
    });
    let cases = [
        "country->iso3",
        "country->capital",
        "state->abbr",
        "company->ticker",
        "element->symbol",
        "city->state",
        "airport->iata",
        "country->ioc",
    ];
    for theta in [0.4, 0.5, 0.6, 0.7, 0.85, 0.95] {
        let mut cfg = PipelineConfig::default();
        cfg.synthesis.theta_edge = theta;
        let out = Pipeline::new(cfg).run(&wc.corpus);
        let mut sum = 0.0;
        let mut per = Vec::new();
        for name in cases {
            let gt = wc.registry.get(name).unwrap().ground_truth_pairs();
            let f = best_f(&out.mappings, &gt);
            sum += f;
            per.push(format!("{name}={f:.2}"));
        }
        eprintln!(
            "theta_edge={theta}: meanF={:.3} [{}]",
            sum / cases.len() as f64,
            per.join(" ")
        );
    }
}

#[test]
#[ignore = "exploratory; run manually"]
fn synonym_feed_effect() {
    let wc = generate_web(&WebConfig {
        tables: 1500,
        domains: 120,
        procedural: ProceduralConfig {
            families: 15,
            temporal_families: 2,
            ..Default::default()
        },
        ..Default::default()
    });
    let cases = [
        "country->iso3",
        "country->capital",
        "state->abbr",
        "company->ticker",
        "element->symbol",
        "city->state",
        "airport->iata",
        "country->ioc",
    ];
    for frac in [0.0, 0.3, 0.6, 1.0] {
        let pipeline = Pipeline::new(PipelineConfig::default())
            .with_synonyms(wc.registry.partial_synonym_feed(frac, 5));
        let out = pipeline.run(&wc.corpus);
        let mut sum = 0.0;
        let mut per = Vec::new();
        for name in cases {
            let gt = wc.registry.get(name).unwrap().ground_truth_pairs();
            let f = best_f(&out.mappings, &gt);
            sum += f;
            per.push(format!("{name}={f:.2}"));
        }
        eprintln!(
            "feed={frac}: meanF={:.3} [{}]",
            sum / cases.len() as f64,
            per.join(" ")
        );
    }
}
