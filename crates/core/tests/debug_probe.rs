//! Exploratory cluster inspector (ignored by default).

use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_gen::procedural::ProceduralConfig;
use mapsynth_gen::{generate_web, WebConfig};

#[test]
#[ignore = "exploratory; run manually"]
fn inspect_capital_clusters() {
    let wc = generate_web(&WebConfig {
        tables: 1500,
        domains: 120,
        procedural: ProceduralConfig {
            families: 15,
            temporal_families: 2,
            ..Default::default()
        },
        ..Default::default()
    });
    // How many tables were generated for country->capital?
    let n_tables = wc
        .table_relation
        .iter()
        .filter(|r| r.as_deref() == Some("country->capital"))
        .count();
    eprintln!("country->capital tables in corpus: {n_tables}");

    let out = Pipeline::new(PipelineConfig::default()).run(&wc.corpus);
    let gt = wc
        .registry
        .get("country->capital")
        .unwrap()
        .ground_truth_pairs();

    let mut matches: Vec<(usize, usize, usize, usize)> = Vec::new(); // (hits, size, tables, domains)
    for m in &out.mappings {
        let hits = m
            .pair_strs()
            .filter(|&(l, r)| gt.contains(&(l.to_string(), r.to_string())))
            .count();
        if hits >= 3 {
            matches.push((hits, m.len(), m.source_tables, m.domains));
        }
    }
    matches.sort_by_key(|m| std::cmp::Reverse(m.0));
    eprintln!("clusters overlapping country->capital gt (hits,size,tables,domains):");
    for m in matches.iter().take(15) {
        eprintln!("  {m:?}");
    }
    eprintln!("gt size: {}", gt.len());
}
