//! Shard-count invariance oracle: property-test that the sharded
//! value-space interning and the sharded blocking build are
//! **bit-identical** to their single-shard / unsharded references for
//! randomly generated candidate sets — across shard counts, worker
//! counts, the incremental extension path, and blocking deltas.
//!
//! This is the safety net behind PR 6's parallel artifact builds: the
//! production `build` entry points delegate to the sharded
//! implementations with one shard per worker, so any nondeterminism in
//! partitioning or stitching would surface here (and in the delta
//! oracle) before it could perturb golden dumps.

use mapsynth::blocking::BlockingIndex;
use mapsynth::config::SynthesisConfig;
use mapsynth::values::{
    build_value_space_sharded, extend_value_space_sharded, NormBinary, NormId, ValueSpace,
};
use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
use mapsynth_mapreduce::MapReduce;
use mapsynth_text::SynonymDict;
use proptest::prelude::*;

/// A generated candidate table: a relation selector plus rows keyed by
/// entity with a spelling-variant selector. Codes derive from
/// `(relation, entity)` so tables of one relation overlap heavily
/// (shared blocking keys) while different relations conflict on shared
/// entities; variants introduce near-duplicate spellings so
/// normalization and synonym folding have real work.
type GenTable = (u8, Vec<(u8, u8)>);

fn code_of(relation: u8, entity: u8) -> u8 {
    ((entity as u16 * 7 + relation as u16 * 13) % 8) as u8
}

fn left_str(entity: u8, variant: u8) -> String {
    let base = format!("entity number {entity} of the corpus");
    match variant % 4 {
        0 => base,
        1 => base.replace("number", "numbr"),
        2 => base.to_uppercase(),   // folds back via normalization
        _ => format!("{base} [1]"), // footnote marker, also folds back
    }
}

fn right_str(code: u8, variant: u8) -> String {
    let base = format!("mapping code {code}");
    if variant % 3 == 1 {
        format!("{base}s")
    } else {
        base
    }
}

fn synonyms() -> SynonymDict {
    let mut dict = SynonymDict::new();
    dict.declare(&left_str(1, 0), &left_str(1, 1));
    dict.declare(&right_str(1, 0), &right_str(1, 1));
    dict
}

fn mk_candidates(gen: &[GenTable]) -> (Corpus, Vec<BinaryTable>) {
    let mut corpus = Corpus::new();
    let d = corpus.domain("x");
    let cands = gen
        .iter()
        .enumerate()
        .map(|(i, (relation, rows))| {
            let syms = rows
                .iter()
                .map(|&(e, v)| {
                    (
                        corpus.interner.intern(&left_str(e, v)),
                        corpus.interner.intern(&right_str(code_of(*relation, e), v)),
                    )
                })
                .collect();
            BinaryTable::new(BinaryId(i as u32), TableId(i as u32), d, 0, 1, syms)
        })
        .collect();
    (corpus, cands)
}

/// Everything externally observable about a value space + projections:
/// normalized strings in id order, class representatives, and each
/// table's projected pairs.
type SpaceObs = (Vec<String>, Vec<u32>, Vec<(u32, Vec<(u32, u32)>)>);

fn observe_space(space: &ValueSpace, tables: &[NormBinary]) -> SpaceObs {
    let strings = (0..space.len() as u32)
        .map(|i| space.string(NormId(i)).to_string())
        .collect();
    let classes = (0..space.len() as u32)
        .map(|i| space.class(NormId(i)))
        .collect();
    let projected = tables
        .iter()
        .map(|t| {
            (
                t.idx,
                t.pairs.iter().map(|&(l, r)| (l.0, r.0)).collect::<Vec<_>>(),
            )
        })
        .collect();
    (strings, classes, projected)
}

fn table_strategy() -> impl Strategy<Value = GenTable> {
    let rows = proptest::collection::btree_map(0u8..12, 0u8..5, 4..9)
        .prop_map(|m| m.into_iter().collect::<Vec<_>>());
    (0u8..3, rows)
}

fn tables_strategy() -> impl Strategy<Value = Vec<GenTable>> {
    proptest::collection::vec(table_strategy(), 4..10)
}

/// Teeth check: a representative instance must produce a non-trivial
/// value space and at least one blocked pair — otherwise the property
/// would hold vacuously.
#[test]
fn generated_candidates_exercise_blocking() {
    let gen: Vec<GenTable> = (0..6)
        .map(|i| (i % 2, (0..8u8).map(|e| (e, (e + i) % 5)).collect()))
        .collect();
    let (corpus, cands) = mk_candidates(&gen);
    let mr = MapReduce::new(2);
    let (space, tables, _) =
        build_value_space_sharded(&corpus.interner, &cands, &synonyms(), &mr, 2);
    assert!(
        space.len() > 10,
        "generator must produce a real value space"
    );
    let (_, pairs, _) =
        BlockingIndex::build_sharded(&space, &tables, &SynthesisConfig::default(), &mr, 2);
    assert!(!pairs.is_empty(), "generator must produce blocked pairs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// For any generated candidate set, any worker count, and any
    /// shard count: the sharded value space equals the single-shard
    /// one, sharded blocking equals the unsharded reference, the
    /// extension (delta) path is shard-invariant, and a sharded-built
    /// blocking index fed through `apply_delta` lands on the fresh
    /// unsharded build's pairs.
    #[test]
    fn prop_sharded_builds_are_invariant(
        gen in tables_strategy(),
        worker_sel in 0usize..3,
        split_sel in 1usize..4,
    ) {
        let workers = [1usize, 2, 8][worker_sel];
        let mr = MapReduce::new(workers);
        let (corpus, cands) = mk_candidates(&gen);
        let dict = synonyms();
        let cfg = SynthesisConfig::default();

        let (ref_space, ref_tables, _) =
            build_value_space_sharded(&corpus.interner, &cands, &dict, &mr, 1);
        let reference = observe_space(&ref_space, &ref_tables);
        let (_, ref_pairs, ref_stats) =
            BlockingIndex::build_unsharded(&ref_space, &ref_tables, &cfg, &mr);

        // The extension reference: build on a prefix, extend with the
        // rest, single shard.
        let at = (cands.len() * split_sel / 4).clamp(1, cands.len() - 1);
        let ext_reference = {
            let (space, tables, mut interning) =
                build_value_space_sharded(&corpus.interner, &cands[..at], &dict, &mr, 1);
            let n_prefix = tables.len() as u32;
            let (grown, added) = extend_value_space_sharded(
                &space, &mut interning, &corpus.interner, &cands[at..], &dict,
                n_prefix, &mr, 1,
            );
            let mut all = tables;
            all.extend(added);
            observe_space(&grown, &all)
        };

        for shards in [2usize, 3, 8] {
            let (space, tables, _) =
                build_value_space_sharded(&corpus.interner, &cands, &dict, &mr, shards);
            prop_assert_eq!(observe_space(&space, &tables), reference.clone(),
                "value space diverged at {} shards, {} workers", shards, workers);

            let (_, pairs, stats) =
                BlockingIndex::build_sharded(&space, &tables, &cfg, &mr, shards);
            prop_assert_eq!(&pairs, &ref_pairs,
                "blocking pairs diverged at {} shards, {} workers", shards, workers);
            prop_assert_eq!(stats.pairs, ref_stats.pairs);
            prop_assert_eq!(stats.pos_keys, ref_stats.pos_keys);
            prop_assert_eq!(stats.neg_keys, ref_stats.neg_keys);
            prop_assert_eq!(stats.capped_keys, ref_stats.capped_keys);

            // Extension path at this shard count.
            let (pspace, ptables, mut interning) =
                build_value_space_sharded(&corpus.interner, &cands[..at], &dict, &mr, shards);
            let n_prefix = ptables.len() as u32;
            let (grown, added) = extend_value_space_sharded(
                &pspace, &mut interning, &corpus.interner, &cands[at..], &dict,
                n_prefix, &mr, shards,
            );
            let mut all = ptables;
            all.extend(added);
            prop_assert_eq!(observe_space(&grown, &all), ext_reference.clone(),
                "extension diverged at {} shards, {} workers", shards, workers);

            // Sharded-built index through the blocking delta path: add
            // the suffix tables incrementally, compare with the fresh
            // unsharded build over everything.
            let k = at.min(tables.len().saturating_sub(1)).max(1);
            if k < tables.len() {
                let (mut index, _, _) =
                    BlockingIndex::build_sharded(&space, &tables[..k], &cfg, &mr, shards);
                let added_idx: Vec<u32> = (k as u32..tables.len() as u32).collect();
                let (delta_pairs, _) =
                    index.apply_delta(&space, &tables, &added_idx, &[], &cfg);
                prop_assert_eq!(&delta_pairs, &ref_pairs,
                    "post-delta pairs diverged at {} shards, {} workers", shards, workers);
            }
        }
    }
}
