//! End-to-end integration test: synthesize mappings from a generated
//! web corpus and check quality against the generator's ground truth.

use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_gen::procedural::ProceduralConfig;
use mapsynth_gen::{generate_web, WebConfig};
use std::collections::HashSet;

fn web_config(tables: usize) -> WebConfig {
    WebConfig {
        tables,
        domains: 120,
        procedural: ProceduralConfig {
            families: 15,
            temporal_families: 2,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Best F-score over all synthesized mappings for one ground truth set.
fn best_f(
    mappings: &[mapsynth::SynthesizedMapping],
    gt: &HashSet<(String, String)>,
) -> (f64, f64, f64) {
    let mut best = (0.0, 0.0, 0.0);
    for m in mappings {
        if m.is_empty() {
            continue;
        }
        let hits = m
            .pair_strs()
            .filter(|&(l, r)| gt.contains(&(l.to_string(), r.to_string())))
            .count();
        if hits == 0 {
            continue;
        }
        let p = hits as f64 / m.len() as f64;
        let r = hits as f64 / gt.len() as f64;
        let f = 2.0 * p * r / (p + r);
        if f > best.0 {
            best = (f, p, r);
        }
    }
    best
}

#[test]
fn synthesis_quality_on_generated_corpus() {
    let wc = generate_web(&web_config(1500));
    let pipeline = Pipeline::new(PipelineConfig::default());
    let start = std::time::Instant::now();
    let out = pipeline.run(&wc.corpus);
    let elapsed = start.elapsed();

    eprintln!(
        "tables={} candidates={} edges={} (neg {}) partitions={} mappings={} in {:?}",
        wc.corpus.len(),
        out.candidates,
        out.edges,
        out.negative_edges,
        out.partitions,
        out.mappings.len(),
        elapsed
    );
    eprintln!(
        "timings: extract={:?} values={:?} graph={:?} partition={:?} conflict={:?}",
        out.timings.extraction,
        out.timings.value_space,
        out.timings.graph,
        out.timings.partition,
        out.timings.conflict
    );

    // Quality on a few popular benchmark relations.
    let mut scored = Vec::new();
    for name in [
        "country->iso3",
        "country->capital",
        "state->abbr",
        "company->ticker",
        "element->symbol",
        "city->state",
    ] {
        let rel = wc.registry.get(name).expect(name);
        let gt = rel.ground_truth_pairs();
        let (f, p, r) = best_f(&out.mappings, &gt);
        eprintln!("{name}: F={f:.3} P={p:.3} R={r:.3} (gt={} pairs)", gt.len());
        scored.push((name, f, p, r));
    }
    let mean_f = scored.iter().map(|s| s.1).sum::<f64>() / scored.len() as f64;
    eprintln!("mean F over popular cases: {mean_f:.3}");
    assert!(
        mean_f > 0.5,
        "synthesis quality collapsed: mean F = {mean_f:.3}, details: {scored:?}"
    );

    // Negative evidence must be in play on this corpus (ISO vs IOC vs
    // FIFA all share country names).
    assert!(out.negative_edges > 0);
}
