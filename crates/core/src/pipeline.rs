//! End-to-end synthesis pipeline (paper Figure 1).
//!
//! `corpus → candidate extraction → value space → compatibility graph
//! → greedy partitioning → conflict resolution → synthesized mappings`
//! with per-stage wall-clock timings (the measurements behind the
//! paper's Figures 8 and 9).
//!
//! [`Pipeline`] is the one-shot facade; the staged, re-entrant engine
//! underneath is [`crate::session::SynthesisSession`] (re-exported
//! here), which callers running many configurations should use
//! directly to share stage artifacts.

pub use crate::session::{
    ExtractionArtifact, ScoreArtifact, SessionRun, SynthesisSession, ValueArtifact,
};

use crate::config::SynthesisConfig;
use crate::graph::build_graph;
use crate::partition::partition_by_components;
use crate::session::resolve_and_union;
use crate::synth::SynthesizedMapping;
use crate::values::ValueSpace;
use mapsynth_corpus::Corpus;
use mapsynth_extract::{ExtractionConfig, ExtractionStats};
use mapsynth_mapreduce::MapReduce;
use mapsynth_text::SynonymDict;
use std::sync::Arc;
use std::time::Duration;

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Step-1 extraction parameters.
    pub extraction: ExtractionConfig,
    /// Step-2/3 synthesis parameters.
    pub synthesis: SynthesisConfig,
    /// Worker threads (0 = auto).
    pub workers: usize,
    /// Garbage fraction (tombstoned values or candidates over totals)
    /// above which [`SynthesisSession::compaction_due`] reports that a
    /// [`SynthesisSession::compact`] pass would pay off.
    pub compact_threshold: f64,
    /// When set, the sharded value-space and blocking builds spill
    /// each shard's artifacts to files under this directory and stream
    /// them back at stitch time, bounding peak residency by the
    /// largest single shard. Output is bit-identical to the in-memory
    /// builds; spill files are deleted as they are consumed. Delta
    /// (incremental) paths never spill — their inputs are small.
    pub spill_dir: Option<std::path::PathBuf>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            extraction: ExtractionConfig::default(),
            synthesis: SynthesisConfig::default(),
            workers: 0,
            compact_threshold: 0.5,
            spill_dir: None,
        }
    }
}

/// Wall-clock duration of each stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Candidate extraction (Step 1).
    pub extraction: Duration,
    /// Value-space construction (normalization, synonym folding).
    pub value_space: Duration,
    /// Blocking + pairwise scoring + graph construction.
    pub graph: Duration,
    /// Greedy partitioning (Algorithm 3).
    pub partition: Duration,
    /// Conflict resolution + union (Step 3).
    pub conflict: Duration,
    /// Whole pipeline.
    pub total: Duration,
}

/// Everything a pipeline run produces.
pub struct PipelineOutput {
    /// Synthesized mappings, curation-ranked (most popular first).
    pub mappings: Vec<SynthesizedMapping>,
    /// Extraction counters.
    pub extraction: ExtractionStats,
    /// Candidate tables surviving extraction + normalization.
    pub candidates: usize,
    /// Edges in the compatibility graph.
    pub edges: usize,
    /// Hard negative edges.
    pub negative_edges: usize,
    /// Partitions before filtering (including singletons).
    pub partitions: usize,
    /// Stage timings.
    pub timings: StageTimings,
}

/// How synthesized partitions are cleaned before union (paper §5.6
/// comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolver {
    /// The paper's Algorithm 4: greedily drop whole conflicting tables.
    Algorithm4,
    /// Per-left majority voting over value pairs.
    MajorityVote,
    /// No conflict resolution.
    None,
}

/// Run partitioning + conflict resolution + union + curation ranking
/// on a pre-built compatibility graph.
pub fn synthesize_graph(
    space: &Arc<ValueSpace>,
    tables: &[crate::values::NormBinary],
    graph: &crate::graph::CompatGraph,
    cfg: &SynthesisConfig,
    resolver: Resolver,
    mr: &MapReduce,
) -> Vec<SynthesizedMapping> {
    let partitioning = partition_by_components(graph, cfg, mr);
    resolve_and_union(space, tables, partitioning, resolver, mr)
}

/// Run steps 2–3 (graph, partitioning, conflict resolution, union,
/// curation ranking) on an already-built value space. The pipeline
/// calls this; evaluation harnesses that share one extraction across
/// many methods call it directly.
pub fn synthesize_from(
    space: &Arc<ValueSpace>,
    tables: &[crate::values::NormBinary],
    cfg: &SynthesisConfig,
    mr: &MapReduce,
) -> Vec<SynthesizedMapping> {
    let graph = build_graph(space, tables, cfg, mr);
    let resolver = if cfg.resolve_conflicts {
        Resolver::Algorithm4
    } else {
        Resolver::None
    };
    synthesize_graph(space, tables, &graph, cfg, resolver, mr)
}

/// The synthesis pipeline.
pub struct Pipeline {
    cfg: PipelineConfig,
    synonyms: SynonymDict,
}

impl Pipeline {
    /// Build a pipeline with the given configuration and no synonym
    /// feed.
    pub fn new(cfg: PipelineConfig) -> Self {
        Self {
            cfg,
            synonyms: SynonymDict::new(),
        }
    }

    /// Attach an external synonym feed (paper §4.1 "Synonyms").
    pub fn with_synonyms(mut self, synonyms: SynonymDict) -> Self {
        self.synonyms = synonyms;
        self
    }

    /// Configuration access.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Run all three steps on a corpus.
    ///
    /// Equivalent to creating a [`SynthesisSession`] and calling
    /// [`SynthesisSession::run`]; use a session directly to reuse the
    /// stage artifacts across configurations.
    pub fn run(&self, corpus: &Corpus) -> PipelineOutput {
        SynthesisSession::new(self.cfg.clone())
            .with_synonyms(self.synonyms.clone())
            .run(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built corpus: two conflicting code standards plus noise.
    fn two_standard_corpus() -> Corpus {
        let mut corpus = Corpus::new();
        // ISO-style tables across several domains.
        let iso_rows: Vec<(&str, &str)> = vec![
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "DZA"),
            ("Germany", "DEU"),
            ("Netherlands", "NLD"),
            ("Greece", "GRC"),
        ];
        let ioc_rows: Vec<(&str, &str)> = vec![
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "ALG"),
            ("Germany", "GER"),
            ("Netherlands", "NED"),
            ("Greece", "GRE"),
        ];
        for i in 0..6 {
            let d = corpus.domain(&format!("iso-{i}.org"));
            let (l, r): (Vec<&str>, Vec<&str>) = iso_rows.iter().cloned().unzip();
            corpus.push_table(d, vec![(Some("country"), l), (Some("code"), r)]);
        }
        for i in 0..5 {
            let d = corpus.domain(&format!("ioc-{i}.org"));
            let (l, r): (Vec<&str>, Vec<&str>) = ioc_rows.iter().cloned().unzip();
            corpus.push_table(d, vec![(Some("country"), l), (Some("code"), r)]);
        }
        corpus
    }

    #[test]
    fn pipeline_separates_conflicting_standards() {
        let corpus = two_standard_corpus();
        let out = Pipeline::new(PipelineConfig::default()).run(&corpus);
        assert!(out.negative_edges > 0, "standards must conflict");
        // Find the mappings containing Germany.
        let deu: Vec<&SynthesizedMapping> = out
            .mappings
            .iter()
            .filter(|m| m.pair_strs().any(|(l, _)| l == "germany"))
            .collect();
        assert!(deu.len() >= 2, "ISO and IOC must stay separate");
        let codes: std::collections::HashSet<&str> = deu
            .iter()
            .flat_map(|m| m.pair_strs())
            .filter(|(l, _)| *l == "germany")
            .map(|(_, r)| r)
            .collect();
        assert!(codes.contains("deu") && codes.contains("ger"));
        // But no single mapping may contain both.
        for m in &deu {
            let rights: Vec<&str> = m
                .pair_strs()
                .filter(|(l, _)| *l == "germany")
                .map(|(_, r)| r)
                .collect();
            assert_eq!(
                rights.len(),
                1,
                "mixed standards in one mapping: {rights:?}"
            );
        }
    }

    #[test]
    fn without_negative_merges_standards() {
        // The SynthesisPos ablation: same corpus, negatives off — the
        // two standards collapse into one conflicted mapping. Conflict
        // resolution is also disabled to observe the raw merge.
        let corpus = two_standard_corpus();
        let mut cfg = PipelineConfig::default();
        cfg.synthesis.use_negative = false;
        cfg.synthesis.resolve_conflicts = false;
        // Lower θ_edge so the cross-standard overlap (2/6) forms an
        // edge — the point is that nothing except negatives stops the
        // merge.
        cfg.synthesis.theta_edge = 0.3;
        let out = Pipeline::new(cfg).run(&corpus);
        let germany_mappings: Vec<&SynthesizedMapping> = out
            .mappings
            .iter()
            .filter(|m| m.pair_strs().any(|(l, _)| l == "germany"))
            .collect();
        assert_eq!(
            germany_mappings.len(),
            1,
            "everything merges without negatives"
        );
        assert!(germany_mappings[0].conflicting_lefts() > 0);
    }

    #[test]
    fn timings_and_counters_populated() {
        let corpus = two_standard_corpus();
        let out = Pipeline::new(PipelineConfig::default()).run(&corpus);
        assert!(out.candidates >= 11, "both orientations per table");
        assert!(out.edges > 0);
        assert!(out.timings.total >= out.timings.partition);
        assert!(out.partitions >= 2);
    }

    #[test]
    fn spilling_pipeline_is_bit_identical() {
        let corpus = two_standard_corpus();
        let base = Pipeline::new(PipelineConfig::default()).run(&corpus);

        let dir = std::env::temp_dir().join(format!("mapsynth-spill-pipe-{}", std::process::id()));
        let cfg = PipelineConfig {
            spill_dir: Some(dir.clone()),
            ..Default::default()
        };
        let spilled = Pipeline::new(cfg).run(&corpus);

        assert_eq!(base.candidates, spilled.candidates);
        assert_eq!(base.edges, spilled.edges);
        assert_eq!(base.negative_edges, spilled.negative_edges);
        assert_eq!(base.partitions, spilled.partitions);
        assert_eq!(base.mappings.len(), spilled.mappings.len());
        for (a, b) in base.mappings.iter().zip(&spilled.mappings) {
            assert_eq!(
                a.pair_strs().collect::<Vec<_>>(),
                b.pair_strs().collect::<Vec<_>>()
            );
        }
        // Every spill file was consumed (deleted at stitch time).
        let leftover = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(leftover, 0, "spill files must be deleted after use");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mappings_ranked_by_popularity() {
        let corpus = two_standard_corpus();
        let out = Pipeline::new(PipelineConfig::default()).run(&corpus);
        for w in out.mappings.windows(2) {
            assert!(
                w[0].domains >= w[1].domains,
                "curation rank must be by domains desc"
            );
        }
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn empty_corpus_produces_nothing() {
        let corpus = Corpus::new();
        let out = Pipeline::new(PipelineConfig::default()).run(&corpus);
        assert!(out.mappings.is_empty());
        assert_eq!(out.candidates, 0);
        assert_eq!(out.edges, 0);
    }

    #[test]
    fn single_table_corpus_yields_single_table_mappings() {
        let mut corpus = Corpus::new();
        let d = corpus.domain("solo.org");
        corpus.push_table(
            d,
            vec![
                (Some("name"), vec!["a", "b", "c", "d", "e"]),
                (Some("code"), vec!["1", "2", "3", "4", "5"]),
            ],
        );
        let out = Pipeline::new(PipelineConfig::default()).run(&corpus);
        // Both orientations, no merging possible.
        assert_eq!(out.edges, 0);
        for m in &out.mappings {
            assert_eq!(m.source_tables, 1);
            assert_eq!(m.conflicting_lefts(), 0);
        }
    }

    #[test]
    fn corpus_of_identical_columns_is_harmless() {
        // Left == right column values (identity mapping): FD holds,
        // nothing crashes, output is the identity pairs.
        let mut corpus = Corpus::new();
        let d = corpus.domain("x");
        for _ in 0..3 {
            corpus.push_table(
                d,
                vec![
                    (Some("a"), vec!["p", "q", "r", "s"]),
                    (Some("b"), vec!["p", "q", "r", "s"]),
                ],
            );
        }
        let out = Pipeline::new(PipelineConfig::default()).run(&corpus);
        assert!(out
            .mappings
            .iter()
            .all(|m| m.pair_strs().all(|(l, r)| l == r)));
    }
}
