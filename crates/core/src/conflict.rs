//! Conflict resolution — the paper's Problem 17 and Algorithm 4.
//!
//! Unioning a partition's tables often leaves a small number of rows
//! that share a left value but disagree on the right (dirty inputs like
//! Figure 4's swapped chemical symbols, or near-miss relations like
//! state→capital vs state→largest-city, §5.6). The exact problem —
//! keep the largest subset of tables with no pairwise conflicts — is
//! NP-hard (reduction from Maximum Independent Set, Appendix G), so
//! Algorithm 4 greedily removes the table containing the value pair
//! with the most conflicts until none remain.
//!
//! [`resolve_majority_vote`] is the alternative the paper compares
//! against in §5.6: per left value, keep pairs carrying the most common
//! right value.

use crate::values::{NormBinary, ValueSpace};
use std::collections::{HashMap, HashSet};

/// Outcome statistics of a conflict-resolution pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConflictStats {
    /// Tables in the partition before resolution.
    pub tables_before: usize,
    /// Tables removed.
    pub tables_removed: usize,
    /// Conflicting left classes before resolution.
    pub conflicts_before: usize,
}

/// Algorithm 4: iteratively remove the table whose worst value pair
/// conflicts with the most other value pairs, until the union of the
/// remaining tables has no conflicts.
///
/// `group` holds indices into `tables`; returns the retained subset (in
/// original order) and stats. Right values in the same synonym class do
/// not conflict (classes are already folded in [`ValueSpace`]).
pub fn resolve_conflicts(
    space: &ValueSpace,
    tables: &[NormBinary],
    group: &[u32],
) -> (Vec<u32>, ConflictStats) {
    let mut retained: Vec<u32> = group.to_vec();
    let mut stats = ConflictStats {
        tables_before: group.len(),
        ..Default::default()
    };

    // Count initial conflicts for stats.
    stats.conflicts_before = conflicting_lefts(space, tables, &retained).len();

    loop {
        // Multiset of (left class, right class) pairs across retained
        // tables. Multiplicity matters: a wrong pair asserted by one
        // table conflicts with every table asserting the majority pair,
        // so the minority table accumulates the highest count and is
        // removed first (the index the paper maintains per value pair).
        let mut multiplicity: HashMap<(u32, u32), usize> = HashMap::new();
        let mut left_total: HashMap<u32, usize> = HashMap::new();
        for &ti in &retained {
            for &(l, r) in &tables[ti as usize].pairs {
                let key = (space.class(l), space.class(r));
                *multiplicity.entry(key).or_default() += 1;
                *left_total.entry(key.0).or_default() += 1;
            }
        }
        // cntV(l, r) = occurrences of pairs (l, r') with r' ≠ r.
        let conflict_count = |l: u32, r: u32| {
            left_total.get(&l).copied().unwrap_or(0)
                - multiplicity.get(&(l, r)).copied().unwrap_or(0)
        };
        let any_conflict = multiplicity.keys().any(|&(l, r)| conflict_count(l, r) > 0);
        if !any_conflict || retained.len() <= 1 {
            break;
        }
        // cntB(B) = max over B's pairs of cntV; remove argmax table.
        let mut worst: Option<(usize, usize)> = None; // (cnt, position)
        for (pos, &ti) in retained.iter().enumerate() {
            let cnt = tables[ti as usize]
                .pairs
                .iter()
                .map(|&(l, r)| conflict_count(space.class(l), space.class(r)))
                .max()
                .unwrap_or(0);
            // Strict > keeps the earliest max for determinism; prefer
            // removing smaller tables on ties (preserves coverage).
            let better = match worst {
                None => true,
                Some((best_cnt, best_pos)) => {
                    cnt > best_cnt
                        || (cnt == best_cnt
                            && tables[ti as usize].len()
                                < tables[retained[best_pos] as usize].len())
                }
            };
            if better {
                worst = Some((cnt, pos));
            }
        }
        let (cnt, pos) = worst.expect("non-empty retained set");
        if cnt == 0 {
            break; // defensive: no table carries a conflicting pair
        }
        retained.remove(pos);
        stats.tables_removed += 1;
    }
    (retained, stats)
}

/// Left classes with more than one right class in the union of `group`.
fn conflicting_lefts(space: &ValueSpace, tables: &[NormBinary], group: &[u32]) -> Vec<u32> {
    let mut rights_of: HashMap<u32, HashSet<u32>> = HashMap::new();
    for &ti in group {
        for &(l, r) in &tables[ti as usize].pairs {
            rights_of
                .entry(space.class(l))
                .or_default()
                .insert(space.class(r));
        }
    }
    rights_of
        .into_iter()
        .filter(|(_, rs)| rs.len() > 1)
        .map(|(l, _)| l)
        .collect()
}

/// Majority-voting alternative (§5.6 comparison): per left class, keep
/// only pairs whose right class has the highest multiplicity across
/// member tables. Returns the retained interned pairs (sorted by id;
/// [`crate::SynthesizedMapping::set_pairs`] re-sorts by string).
pub fn resolve_majority_vote(
    space: &ValueSpace,
    tables: &[NormBinary],
    group: &[u32],
) -> Vec<(crate::values::NormId, crate::values::NormId)> {
    // votes[left class][right class] = (number of member tables with
    // it, lexicographically smallest member string observed for the
    // class). The string is the deterministic tie-break: class *ids*
    // are value-space numbering, which incremental sessions
    // (append-only interning, [`crate::delta`]) and fresh sessions
    // assign differently for the same corpus.
    let mut votes: HashMap<u32, HashMap<u32, (usize, &str)>> = HashMap::new();
    for &ti in group {
        for &(l, r) in &tables[ti as usize].pairs {
            let entry = votes
                .entry(space.class(l))
                .or_default()
                .entry(space.class(r))
                .or_insert((0, space.string(r)));
            entry.0 += 1;
            entry.1 = entry.1.min(space.string(r));
        }
    }
    // winner per left class: max votes, tie-broken by smaller class
    // representative string.
    let winner: HashMap<u32, u32> = votes
        .into_iter()
        .map(|(l, rs)| {
            let best = rs
                .into_iter()
                .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(b.1 .1.cmp(a.1 .1)))
                .map(|(rc, _)| rc)
                .expect("non-empty votes");
            (l, best)
        })
        .collect();
    let mut out: HashSet<(crate::values::NormId, crate::values::NormId)> = HashSet::new();
    for &ti in group {
        for &(l, r) in &tables[ti as usize].pairs {
            if winner.get(&space.class(l)) == Some(&space.class(r)) {
                out.insert((l, r));
            }
        }
    }
    let mut pairs: Vec<_> = out.into_iter().collect();
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_mapreduce::MapReduce;
    use mapsynth_text::SynonymDict;

    fn setup_dict(
        tables: Vec<Vec<(&str, &str)>>,
        dict: SynonymDict,
    ) -> (std::sync::Arc<ValueSpace>, Vec<NormBinary>) {
        let mut corpus = Corpus::new();
        let d = corpus.domain("x");
        let cands: Vec<BinaryTable> = tables
            .into_iter()
            .enumerate()
            .map(|(i, rows)| {
                let syms = rows
                    .iter()
                    .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                    .collect();
                BinaryTable::new(BinaryId(i as u32), TableId(i as u32), d, 0, 1, syms)
            })
            .collect();
        build_value_space(&corpus.interner, &cands, &dict, &MapReduce::new(2))
    }

    fn setup(tables: Vec<Vec<(&str, &str)>>) -> (std::sync::Arc<ValueSpace>, Vec<NormBinary>) {
        setup_dict(tables, SynonymDict::new())
    }

    #[test]
    fn removes_minority_dirty_table() {
        // Three agreeing tables + one with a wrong symbol (paper
        // Figure 4: Tellurium should be Te).
        let good = vec![("Tellurium", "Te"), ("Iodine", "I"), ("Xenon", "Xe")];
        let (space, t) = setup(vec![
            good.clone(),
            good.clone(),
            good,
            vec![("Tellurium", "I"), ("Iodine", "Te"), ("Xenon", "Xe")],
        ]);
        let (kept, stats) = resolve_conflicts(&space, &t, &[0, 1, 2, 3]);
        assert_eq!(kept, vec![0, 1, 2]);
        assert_eq!(stats.tables_removed, 1);
        assert_eq!(stats.conflicts_before, 2);
    }

    #[test]
    fn no_conflicts_is_noop() {
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2")],
            vec![("b", "2"), ("c", "3")],
        ]);
        let (kept, stats) = resolve_conflicts(&space, &t, &[0, 1]);
        assert_eq!(kept, vec![0, 1]);
        assert_eq!(stats.tables_removed, 0);
        assert_eq!(stats.conflicts_before, 0);
    }

    #[test]
    fn capital_vs_largest_city_case() {
        // §5.6: state→capital cluster polluted by a largest-city
        // table that disagrees on Washington only.
        let capital = vec![
            ("Washington", "Olympia"),
            ("Illinois", "Springfield"),
            ("Texas", "Austin"),
            ("Oregon", "Salem"),
        ];
        let mixed = vec![
            ("Washington", "Seattle"), // largest city, not capital
            ("Illinois", "Springfield"),
            ("Texas", "Austin"),
            ("Oregon", "Salem"),
        ];
        let (space, t) = setup(vec![capital.clone(), capital, mixed]);
        let (kept, _) = resolve_conflicts(&space, &t, &[0, 1, 2]);
        assert_eq!(kept, vec![0, 1], "majority capital tables win");
    }

    #[test]
    fn synonymous_rights_do_not_conflict() {
        let mut dict = SynonymDict::new();
        dict.declare("Myanmar", "Burma");
        let (space, t) = setup_dict(
            vec![
                vec![("MMR", "Myanmar"), ("THA", "Thailand")],
                vec![("MMR", "Burma"), ("THA", "Thailand")],
            ],
            dict,
        );
        let (kept, stats) = resolve_conflicts(&space, &t, &[0, 1]);
        assert_eq!(kept.len(), 2);
        assert_eq!(stats.conflicts_before, 0);
    }

    #[test]
    fn resolution_terminates_on_pathological_input() {
        // Every table conflicts with every other.
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "1")],
            vec![("a", "2"), ("b", "2")],
            vec![("a", "3"), ("b", "3")],
        ]);
        let (kept, stats) = resolve_conflicts(&space, &t, &[0, 1, 2]);
        assert_eq!(kept.len(), 1);
        assert_eq!(stats.tables_removed, 2);
    }

    #[test]
    fn majority_vote_keeps_popular_right() {
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2")],
            vec![("a", "1"), ("b", "2")],
            vec![("a", "9"), ("b", "2")],
        ]);
        let pairs = resolve_majority_vote(&space, &t, &[0, 1, 2]);
        let strs: Vec<(&str, &str)> = pairs
            .iter()
            .map(|&(l, r)| (space.string(l), space.string(r)))
            .collect();
        assert!(strs.contains(&("a", "1")));
        assert!(!strs.iter().any(|&(l, r)| l == "a" && r == "9"));
        assert!(strs.contains(&("b", "2")));
    }

    #[test]
    fn majority_vote_vs_algorithm4_coverage() {
        // Algorithm 4 removes whole tables; majority voting removes
        // only the conflicting pairs. A dirty table with unique good
        // pairs shows the coverage difference.
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2")],
            vec![("a", "1"), ("b", "2")],
            vec![("a", "9"), ("unique", "7")], // dirty on a, unique pair
        ]);
        let (kept, _) = resolve_conflicts(&space, &t, &[0, 1, 2]);
        assert_eq!(kept, vec![0, 1], "algorithm 4 drops the whole table");
        let mv = resolve_majority_vote(&space, &t, &[0, 1, 2]);
        assert!(
            mv.iter()
                .any(|&(l, r)| space.string(l) == "unique" && space.string(r) == "7"),
            "majority voting keeps the unique pair"
        );
    }
}
