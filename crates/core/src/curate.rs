//! Curation support (paper §4.3).
//!
//! Synthesized mappings are meant for *human curation*: algorithms
//! can't reach the near-perfect precision commercial spreadsheet
//! software needs, but they can distill millions of raw tables into a
//! ranked list short enough for people to review. The ranking signal is
//! popularity — how many independent web domains contributed tables to
//! a cluster ("we only use about 60K synthesized mappings from at least
//! 8 independent web domains").

use crate::synth::SynthesizedMapping;

/// Rank mappings for curation: by contributing domains (desc), then by
/// member tables, then by size. Stable and deterministic.
pub fn curation_rank(mappings: &mut [SynthesizedMapping]) {
    mappings.sort_by(|a, b| {
        b.domains
            .cmp(&a.domains)
            .then(b.source_tables.cmp(&a.source_tables))
            .then(b.len().cmp(&a.len()))
            .then(a.cmp_pairs(b))
    });
}

/// Keep mappings contributed by at least `min_domains` independent
/// domains (the paper's curation floor of 8 for the web corpus).
pub fn filter_by_domains(
    mappings: Vec<SynthesizedMapping>,
    min_domains: usize,
) -> Vec<SynthesizedMapping> {
    mappings
        .into_iter()
        .filter(|m| m.domains >= min_domains)
        .collect()
}

/// Curation summary counters (paper §4.3 and Appendix J).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CurationSummary {
    /// Total synthesized mappings.
    pub total: usize,
    /// Mappings above the domain floor.
    pub above_floor: usize,
    /// Mean member tables among above-floor mappings.
    pub mean_tables: f64,
    /// Mean contributing domains among above-floor mappings.
    pub mean_domains: f64,
}

/// Summarize a mapping set for a curation report.
pub fn summarize(mappings: &[SynthesizedMapping], min_domains: usize) -> CurationSummary {
    let above: Vec<&SynthesizedMapping> = mappings
        .iter()
        .filter(|m| m.domains >= min_domains)
        .collect();
    let n = above.len().max(1) as f64;
    CurationSummary {
        total: mappings.len(),
        above_floor: above.len(),
        mean_tables: above.iter().map(|m| m.source_tables as f64).sum::<f64>() / n,
        mean_domains: above.iter().map(|m| m.domains as f64).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping(domains: usize, tables: usize, pairs: usize) -> SynthesizedMapping {
        use crate::values::{NormId, ValueSpace};
        let space =
            ValueSpace::from_strings((0..pairs).flat_map(|i| [format!("l{i}"), format!("r{i}")]));
        let pair_ids = (0..pairs as u32)
            .map(|i| (NormId(2 * i), NormId(2 * i + 1)))
            .collect();
        SynthesizedMapping::from_parts(
            space,
            pair_ids,
            (0..tables as u32).collect(),
            domains,
            tables,
        )
    }

    #[test]
    fn rank_by_domains_then_tables() {
        let mut ms = vec![mapping(2, 10, 5), mapping(8, 3, 5), mapping(8, 9, 5)];
        curation_rank(&mut ms);
        assert_eq!(ms[0].domains, 8);
        assert_eq!(ms[0].source_tables, 9);
        assert_eq!(ms[2].domains, 2);
    }

    #[test]
    fn domain_floor_filters() {
        let ms = vec![mapping(1, 1, 3), mapping(9, 4, 3), mapping(8, 2, 3)];
        let kept = filter_by_domains(ms, 8);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn summary_counts() {
        let ms = vec![mapping(1, 1, 3), mapping(9, 4, 3), mapping(7, 2, 3)];
        let s = summarize(&ms, 7);
        assert_eq!(s.total, 3);
        assert_eq!(s.above_floor, 2);
        assert!((s.mean_tables - 3.0).abs() < 1e-9);
        assert!((s.mean_domains - 8.0).abs() < 1e-9);
    }
}
