//! Candidate-pair blocking (paper §4.1 "Efficiency").
//!
//! Compatibility scores for all `O(N²)` table pairs are unaffordable
//! and almost all are zero. The paper re-groups tables by shared
//! content with an inverted index so that only tables sharing at least
//! `θ_overlap` value pairs (for `w⁺`) or left values (for `w⁻`) are
//! compared. This module builds those candidate pairs.
//!
//! A per-key fanout cap bounds hot keys: a value pair shared by
//! thousands of tables would alone contribute millions of candidate
//! pairs while adding no discriminative signal — tables of the same
//! relation meet anyway through their rarer values.

use crate::config::SynthesisConfig;
use crate::values::{NormBinary, ValueSpace};
use mapsynth_mapreduce::MapReduce;

/// Statistics from blocking, used by the scalability experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct BlockingStats {
    /// Distinct positive keys (value pairs).
    pub pos_keys: usize,
    /// Distinct negative keys (left values).
    pub neg_keys: usize,
    /// Keys skipped by the fanout cap.
    pub capped_keys: usize,
    /// Candidate pairs emitted.
    pub pairs: usize,
}

/// Blocking keys: positive keys are `(left class, right class)` value
/// pairs, negative keys are left classes alone.
const KIND_POS: u8 = 0;
/// Negative-key marker.
const KIND_NEG: u8 = 1;

/// Compute candidate table pairs `(i, j)` with `i < j` (indices into
/// the `tables` slice). A pair qualifies if it shares ≥ `θ_overlap`
/// value-pair keys, or (when negative evidence is enabled) ≥
/// `θ_overlap` left-value keys.
///
/// Runs as two Map-Reduce jobs mirroring the paper's cluster
/// formulation (§4.1 "Efficiency" / Appendix F):
///
/// 1. **Inverted index**: map each table to its blocking keys, reduce
///    each key to its (ascending, deduplicated) posting list;
/// 2. **Pair counting**: map each posting list to the table pairs it
///    witnesses, reduce by summing, filter at `θ_overlap`.
///
/// Both jobs return key-sorted output, so results are identical for
/// any worker count.
pub fn candidate_pairs(
    space: &ValueSpace,
    tables: &[NormBinary],
    cfg: &SynthesisConfig,
    mr: &MapReduce,
) -> (Vec<(u32, u32)>, BlockingStats) {
    let mut stats = BlockingStats::default();

    // Job 1 — inverted index: (kind, key) → posting list.
    let indexed: Vec<(u32, &NormBinary)> = tables
        .iter()
        .enumerate()
        .map(|(ti, t)| (ti as u32, t))
        .collect();
    let postings: Vec<((u8, u32, u32), Vec<u32>)> = mr.run(
        &indexed,
        |&(ti, t)| {
            let mut out: Vec<((u8, u32, u32), u32)> = Vec::with_capacity(t.pairs.len());
            // Pairs are sorted by (left class, right class), so
            // distinct keys are distinct consecutive runs.
            let mut last_pos = None;
            let mut last_neg = None;
            for &(l, r) in &t.pairs {
                let key = (space.class(l), space.class(r));
                if last_pos != Some(key) {
                    out.push(((KIND_POS, key.0, key.1), ti));
                    last_pos = Some(key);
                }
                if cfg.use_negative && last_neg != Some(key.0) {
                    out.push(((KIND_NEG, key.0, 0), ti));
                    last_neg = Some(key.0);
                }
            }
            out
        },
        // Values arrive in input order (ascending table index); a table
        // emits each key at most once, so the list is already deduped.
        |_key, tis| tis,
    );
    stats.pos_keys = postings
        .iter()
        .filter(|((k, _, _), _)| *k == KIND_POS)
        .count();
    stats.neg_keys = postings.len() - stats.pos_keys;

    // Hot keys (shared by more than `max_key_fanout` tables) cannot
    // afford all-pairs emission, but skipping them entirely would erase
    // exactly the edges that matter most: popular relations' hub tables
    // (comprehensive reference lists) appear in *every* posting list of
    // their relation, so every one of their keys is hot. Without
    // hub-to-hub edges, the partition-level negative constraints the
    // paper relies on (ISO-hub vs IOC-hub) never materialize. So for
    // hot keys we emit pairs among the `HUB_SAMPLE` *largest* tables:
    // deterministic, bounded, and it guarantees cluster representatives
    // stay connected.
    const HUB_SAMPLE: usize = 12;
    let sizes: Vec<u32> = tables.iter().map(|t| t.len() as u32).collect();
    stats.capped_keys = postings
        .iter()
        .filter(|(_, tis)| tis.len() > cfg.max_key_fanout)
        .count();

    // Job 2 — pair counting: (a, b, kind) → shared-key count. The
    // per-worker combiner pre-sums counts during the map phase, so
    // shuffle size is bounded by distinct pairs (× workers), not by
    // total key co-occurrences.
    let sizes_ref = &sizes;
    let counted: Vec<((u32, u32, u8), u32)> = mr.run_combining(
        &postings,
        |((kind, _, _), tis)| {
            let mut hubs: Vec<u32>;
            let tis = if tis.len() > cfg.max_key_fanout {
                hubs = tis.clone();
                hubs.sort_by(|&a, &b| {
                    sizes_ref[b as usize]
                        .cmp(&sizes_ref[a as usize])
                        .then(a.cmp(&b))
                });
                hubs.truncate(HUB_SAMPLE);
                hubs.sort_unstable();
                &hubs[..]
            } else {
                &tis[..]
            };
            let mut out = Vec::with_capacity(tis.len() * (tis.len().saturating_sub(1)) / 2);
            for (i, &a) in tis.iter().enumerate() {
                for &b in &tis[i + 1..] {
                    out.push(((a, b, *kind), 1u32));
                }
            }
            out
        },
        |acc, v| *acc += v,
        |_pair, counts| counts.iter().sum::<u32>(),
    );

    let mut pairs: Vec<(u32, u32)> = counted
        .into_iter()
        .filter(|&(_, c)| c as usize >= cfg.theta_overlap)
        .map(|((a, b, _), _)| (a, b))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    stats.pairs = pairs.len();
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_mapreduce::MapReduce;
    use mapsynth_text::SynonymDict;

    fn setup(tables: Vec<Vec<(&str, &str)>>) -> (std::sync::Arc<ValueSpace>, Vec<NormBinary>) {
        let mut corpus = Corpus::new();
        let d = corpus.domain("x");
        let cands: Vec<BinaryTable> = tables
            .into_iter()
            .enumerate()
            .map(|(i, rows)| {
                let syms = rows
                    .iter()
                    .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                    .collect();
                BinaryTable::new(BinaryId(i as u32), TableId(i as u32), d, 0, 1, syms)
            })
            .collect();
        build_value_space(&corpus, &cands, &SynonymDict::new(), &MapReduce::new(2))
    }

    #[test]
    fn overlapping_tables_paired_disjoint_not() {
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2"), ("c", "3")],
            vec![("a", "1"), ("b", "2"), ("d", "4")],
            vec![("x", "9"), ("y", "8"), ("z", "7")],
        ]);
        let (pairs, stats) =
            candidate_pairs(&space, &t, &SynthesisConfig::default(), &MapReduce::new(2));
        assert_eq!(pairs, vec![(0, 1)]);
        assert!(stats.pos_keys >= 7);
    }

    #[test]
    fn negative_blocking_catches_conflicting_standards() {
        // Same lefts, totally different rights: zero shared pairs but
        // must still be compared (for w−).
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2"), ("c", "3")],
            vec![("a", "9"), ("b", "8"), ("c", "7")],
        ]);
        let cfg = SynthesisConfig::default();
        let (pairs, _) = candidate_pairs(&space, &t, &cfg, &MapReduce::new(2));
        assert_eq!(pairs, vec![(0, 1)]);
        // Without negative evidence the pair is not needed.
        let (pairs, _) = candidate_pairs(&space, &t, &cfg.without_negative(), &MapReduce::new(2));
        assert!(pairs.is_empty());
    }

    #[test]
    fn theta_overlap_excludes_single_shared_value() {
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2"), ("c", "3")],
            vec![("a", "1"), ("y", "8"), ("z", "7")],
        ]);
        // shares exactly one pair and one left < θ_overlap = 2
        let (pairs, _) =
            candidate_pairs(&space, &t, &SynthesisConfig::default(), &MapReduce::new(2));
        assert!(pairs.is_empty());
        let cfg = SynthesisConfig {
            theta_overlap: 1,
            ..Default::default()
        };
        let (pairs, _) = candidate_pairs(&space, &t, &cfg, &MapReduce::new(2));
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn fanout_cap_samples_hubs() {
        // 20 identical small tables plus 2 big "hub" tables sharing
        // the same hot keys; cap at 4 → only pairs among the sampled
        // hubs (largest tables) are emitted for the hot keys.
        let small = vec![("hot", "1"), ("hot2", "2")];
        let mut tables: Vec<Vec<(&str, &str)>> = (0..20).map(|_| small.clone()).collect();
        let big = vec![
            ("hot", "1"),
            ("hot2", "2"),
            ("x", "3"),
            ("y", "4"),
            ("z", "5"),
        ];
        tables.push(big.clone());
        tables.push(big);
        let (space, t) = setup(tables);
        let cfg = SynthesisConfig {
            max_key_fanout: 4,
            ..Default::default()
        };
        let (pairs, stats) = candidate_pairs(&space, &t, &cfg, &MapReduce::new(2));
        assert!(stats.capped_keys >= 2);
        // The two hubs (indices 20, 21) must be paired.
        assert!(pairs.contains(&(20, 21)), "hub pair missing: {pairs:?}");
        // Far fewer than the C(22,2)=231 all-pairs.
        assert!(pairs.len() < 100, "{} pairs", pairs.len());
    }

    #[test]
    fn pairs_sorted_and_unique() {
        let rows = vec![("a", "1"), ("b", "2"), ("c", "3")];
        let (space, t) = setup((0..5).map(|_| rows.clone()).collect());
        let (pairs, _) =
            candidate_pairs(&space, &t, &SynthesisConfig::default(), &MapReduce::new(2));
        assert_eq!(pairs.len(), 10); // C(5,2)
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pairs, sorted);
        assert!(pairs.iter().all(|&(a, b)| a < b));
    }
}
