//! Candidate-pair blocking (paper §4.1 "Efficiency").
//!
//! Compatibility scores for all `O(N²)` table pairs are unaffordable
//! and almost all are zero. The paper re-groups tables by shared
//! content with an inverted index so that only tables sharing at least
//! `θ_overlap` value pairs (for `w⁺`) or left values (for `w⁻`) are
//! compared. This module builds those candidate pairs.
//!
//! A per-key fanout cap bounds hot keys: a value pair shared by
//! thousands of tables would alone contribute millions of candidate
//! pairs while adding no discriminative signal — tables of the same
//! relation meet anyway through their rarer values.

use crate::config::SynthesisConfig;
use crate::values::{NormBinary, ValueSpace};
use mapsynth_corpus::{SpillReader, SpillWriter};
use mapsynth_mapreduce::{partition_of, MapReduce};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Statistics from blocking, used by the scalability experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct BlockingStats {
    /// Distinct positive keys (value pairs).
    pub pos_keys: usize,
    /// Distinct negative keys (left values).
    pub neg_keys: usize,
    /// Keys skipped by the fanout cap.
    pub capped_keys: usize,
    /// Candidate pairs emitted.
    pub pairs: usize,
}

/// Blocking keys: positive keys are `(left class, right class)` value
/// pairs, negative keys are left classes alone.
const KIND_POS: u8 = 0;
/// Negative-key marker.
const KIND_NEG: u8 = 1;

/// Hot keys (shared by more than `max_key_fanout` tables) cannot
/// afford all-pairs emission, but skipping them entirely would erase
/// exactly the edges that matter most: popular relations' hub tables
/// (comprehensive reference lists) appear in *every* posting list of
/// their relation, so every one of their keys is hot. For hot keys we
/// emit pairs among the `HUB_SAMPLE` *largest* tables: deterministic,
/// bounded, and it guarantees cluster representatives stay connected.
const HUB_SAMPLE: usize = 12;

/// Compute candidate table pairs `(i, j)` with `i < j` (indices into
/// the `tables` slice). A pair qualifies if it shares ≥ `θ_overlap`
/// value-pair keys, or (when negative evidence is enabled) ≥
/// `θ_overlap` left-value keys.
///
/// Thin wrapper over [`BlockingIndex::build`] that discards the
/// reusable index state.
pub fn candidate_pairs(
    space: &ValueSpace,
    tables: &[NormBinary],
    cfg: &SynthesisConfig,
    mr: &MapReduce,
) -> (Vec<(u32, u32)>, BlockingStats) {
    let (_, pairs, stats) = BlockingIndex::build(space, tables, cfg, mr);
    (pairs, stats)
}

/// The blocking keys one table contributes, deduplicated (pairs are
/// sorted by class, so distinct keys are consecutive runs). The single
/// source of key truth for the batch build *and* the delta path.
fn table_keys(space: &ValueSpace, t: &NormBinary, cfg: &SynthesisConfig) -> Vec<(u8, u32, u32)> {
    let mut out = Vec::with_capacity(t.pairs.len());
    let mut last_pos = None;
    let mut last_neg = None;
    for &(l, r) in &t.pairs {
        let key = (space.class(l), space.class(r));
        if last_pos != Some(key) {
            out.push((KIND_POS, key.0, key.1));
            last_pos = Some(key);
        }
        if cfg.use_negative && last_neg != Some(key.0) {
            out.push((KIND_NEG, key.0, 0));
            last_neg = Some(key.0);
        }
    }
    out
}

/// The table pairs one posting list witnesses, after hub sampling.
fn contribution(
    tis: &[u32],
    kind: u8,
    sizes: &[u32],
    max_key_fanout: usize,
    out: &mut Vec<(u32, u32, u8)>,
) {
    let mut hubs: Vec<u32>;
    let tis = if tis.len() > max_key_fanout {
        hubs = tis.to_vec();
        hubs.sort_by(|&a, &b| sizes[b as usize].cmp(&sizes[a as usize]).then(a.cmp(&b)));
        hubs.truncate(HUB_SAMPLE);
        hubs.sort_unstable();
        &hubs[..]
    } else {
        tis
    };
    out.reserve(tis.len() * (tis.len().saturating_sub(1)) / 2);
    for (i, &a) in tis.iter().enumerate() {
        for &b in &tis[i + 1..] {
            out.push((a, b, kind));
        }
    }
}

/// One shard's build output: its posting lists and pair counts.
type ShardOut = (
    HashMap<(u8, u32, u32), Vec<u32>>,
    HashMap<(u32, u32, u8), u32>,
);

/// Spill encoding of a shard's output as two word streams. Postings:
/// `[kind, key1, key2, len, tis…]` per entry; pair counts:
/// `[a, b, kind, count]` per entry. Entry order is irrelevant — the
/// stitch inserts into hash maps, and every consumer of the maps
/// orders its own output — so the nondeterministic map iteration here
/// cannot leak into results.
fn encode_shard(out: &ShardOut) -> (Vec<u32>, Vec<u32>) {
    let (postings, pair_counts) = out;
    let mut p = Vec::new();
    for ((kind, a, b), tis) in postings {
        p.extend([*kind as u32, *a, *b, tis.len() as u32]);
        p.extend_from_slice(tis);
    }
    let mut c = Vec::with_capacity(pair_counts.len() * 4);
    for ((a, b, kind), n) in pair_counts {
        c.extend([*a, *b, *kind as u32, *n]);
    }
    (p, c)
}

fn decode_shard(p: &[u32], c: &[u32]) -> ShardOut {
    let mut postings = HashMap::new();
    let mut i = 0;
    while i < p.len() {
        assert!(i + 4 <= p.len(), "corrupt blocking spill: truncated entry");
        let (kind, a, b) = (p[i] as u8, p[i + 1], p[i + 2]);
        let len = p[i + 3] as usize;
        i += 4;
        assert!(i + len <= p.len(), "corrupt blocking spill: short list");
        postings.insert((kind, a, b), p[i..i + len].to_vec());
        i += len;
    }
    assert_eq!(c.len() % 4, 0, "corrupt blocking spill: odd count frame");
    let pair_counts = c
        .chunks_exact(4)
        .map(|e| ((e[0], e[1], e[2] as u8), e[3]))
        .collect();
    (postings, pair_counts)
}

/// The maintained blocking state: the inverted index (key → posting
/// list over live table indices) plus per-pair shared-key counts —
/// everything needed to re-derive the qualifying candidate-pair set
/// after a corpus delta *without* re-scanning unchanged tables.
///
/// A delta touches only the keys of the added/removed tables: their
/// posting lists are patched in place and the pair counts adjusted by
/// the difference between each touched list's old and new
/// contributions (hub sampling included — a hot key's sampled hub set
/// can shift, which may create or destroy pairs between two *old*
/// tables; contribution diffing handles that case for free).
#[derive(Clone)]
pub struct BlockingIndex {
    /// `(kind, key) → ascending live table indices`; empty lists are
    /// removed.
    postings: HashMap<(u8, u32, u32), Vec<u32>>,
    /// `(a, b, kind) → shared-key count`; zero entries are removed.
    pair_counts: HashMap<(u32, u32, u8), u32>,
    /// Table sizes (`|B|`), index-aligned with the tables slice, for
    /// hub sampling.
    sizes: Vec<u32>,
}

impl BlockingIndex {
    /// Build the blocking index, qualifying pairs, and stats. Since
    /// PR 6 this delegates to [`build_sharded`](Self::build_sharded)
    /// with one shard per worker; the original two-job Map-Reduce
    /// formulation survives as
    /// [`build_unsharded`](Self::build_unsharded), the oracle both
    /// paths are tested against. Results are identical for any worker
    /// or shard count.
    pub fn build(
        space: &ValueSpace,
        tables: &[NormBinary],
        cfg: &SynthesisConfig,
        mr: &MapReduce,
    ) -> (Self, Vec<(u32, u32)>, BlockingStats) {
        Self::build_sharded(space, tables, cfg, mr, mr.workers())
    }

    /// Sharded build: partition blocking keys by hash (the same FNV-1a
    /// partitioner the shuffle uses) into `shards` independent groups,
    /// build each shard's posting lists and pair contributions in
    /// parallel, then stitch.
    ///
    /// Stitching is trivial because the decomposition is exact: every
    /// key lives in exactly one shard, so per-shard posting maps are
    /// disjoint (concatenate), while a table *pair* can be witnessed by
    /// keys in different shards, so pair counts sum. Bucketing scans
    /// tables in ascending index order, which keeps every posting list
    /// ti-ascending by plain push. The stored maps therefore hold
    /// exactly the content the unsharded reference produces, for any
    /// shard or worker count.
    pub fn build_sharded(
        space: &ValueSpace,
        tables: &[NormBinary],
        cfg: &SynthesisConfig,
        mr: &MapReduce,
        shards: usize,
    ) -> (Self, Vec<(u32, u32)>, BlockingStats) {
        Self::build_spillable(space, tables, cfg, mr, shards, None)
    }

    /// [`build_sharded`](Self::build_sharded) with optional shard
    /// spilling: when `spill` names a directory, each shard streams its
    /// posting lists and pair counts through the binary spill format
    /// and drops them before the stitch re-reads shards one at a time,
    /// bounding residency by the largest shard. Spill files are deleted
    /// as they are consumed; output is bit-identical to the in-memory
    /// build.
    pub fn build_spillable(
        space: &ValueSpace,
        tables: &[NormBinary],
        cfg: &SynthesisConfig,
        mr: &MapReduce,
        shards: usize,
        spill: Option<&Path>,
    ) -> (Self, Vec<(u32, u32)>, BlockingStats) {
        let shards = shards.max(1);
        // Stage 1 — per-table blocking keys, in parallel
        // (order-preserving, so stage 2 sees tables in index order).
        let keys_per_table: Vec<Vec<(u8, u32, u32)>> =
            mr.par_map(tables, |t| table_keys(space, t, cfg));
        // Stage 2 — bucket (key, table) records by key shard.
        type ShardBucket = Vec<((u8, u32, u32), u32)>;
        let mut buckets: Vec<ShardBucket> = vec![Vec::new(); shards];
        for (ti, keys) in keys_per_table.iter().enumerate() {
            for &k in keys {
                buckets[partition_of(&k, shards)].push((k, ti as u32));
            }
        }
        drop(keys_per_table);
        let sizes: Vec<u32> = tables.iter().map(|t| t.len() as u32).collect();
        // Stage 3 — per-shard posting lists and pair contributions.
        // The shard body is shared verbatim by the in-memory and
        // spilling paths — that sharing is what keeps them
        // bit-identical.
        let sizes_ref = &sizes;
        let shard_out = |bucket: &ShardBucket| -> ShardOut {
            let mut postings: HashMap<(u8, u32, u32), Vec<u32>> = HashMap::new();
            for &(k, ti) in bucket {
                // ti arrives ascending per key; a table emits each key
                // at most once, so the list is deduped by construction.
                postings.entry(k).or_default().push(ti);
            }
            let mut contrib: Vec<(u32, u32, u8)> = Vec::new();
            for ((kind, _, _), tis) in &postings {
                contribution(tis, *kind, sizes_ref, cfg.max_key_fanout, &mut contrib);
            }
            let mut pair_counts: HashMap<(u32, u32, u8), u32> = HashMap::new();
            for p in contrib {
                *pair_counts.entry(p).or_insert(0) += 1;
            }
            (postings, pair_counts)
        };
        // Stage 4 — stitch: disjoint postings concatenate, pair counts
        // sum across shards.
        let mut postings: HashMap<(u8, u32, u32), Vec<u32>> = HashMap::new();
        let mut pair_counts: HashMap<(u32, u32, u8), u32> = HashMap::new();
        let mut stitch = |(p, c): ShardOut| {
            postings.extend(p);
            for (pair, n) in c {
                *pair_counts.entry(pair).or_insert(0) += n;
            }
        };
        match spill {
            None => {
                for out in mr.par_map(&buckets, |bucket| shard_out(bucket)) {
                    stitch(out);
                }
            }
            Some(dir) => {
                std::fs::create_dir_all(dir).expect("spill directory must be creatable");
                let paths: Vec<PathBuf> = (0..shards)
                    .map(|s| dir.join(format!("blocking-shard-{s}.spill")))
                    .collect();
                let paths_ref = &paths;
                let buckets_ref = &buckets;
                let shard_ids: Vec<usize> = (0..shards).collect();
                // Each worker writes its shard's two frames (postings,
                // pair counts) and drops them before returning.
                let written: Vec<std::io::Result<()>> = mr.par_map(&shard_ids, |&s| {
                    let out = shard_out(&buckets_ref[s]);
                    let (p, c) = encode_shard(&out);
                    drop(out);
                    let mut w = SpillWriter::create(&paths_ref[s])?;
                    w.write_frame(&p)?;
                    w.write_frame(&c)?;
                    w.finish()
                });
                for r in written {
                    r.expect("blocking shard spill failed");
                }
                drop(buckets);
                // Stream shards back one at a time, deleting each file
                // once consumed.
                for path in &paths {
                    let mut r = SpillReader::open(path).expect("blocking spill file must reopen");
                    let p = r
                        .next_frame()
                        .expect("blocking spill read failed")
                        .expect("blocking spill file missing its postings frame");
                    let c = r
                        .next_frame()
                        .expect("blocking spill read failed")
                        .expect("blocking spill file missing its pair-count frame");
                    stitch(decode_shard(&p, &c));
                    std::fs::remove_file(path).ok();
                }
            }
        }
        let index = Self {
            postings,
            pair_counts,
            sizes,
        };
        let (pairs, stats) = index.qualifying_pairs(cfg);
        (index, pairs, stats)
    }

    /// The unsharded two-job Map-Reduce build — the reference
    /// implementation [`build_sharded`](Self::build_sharded) must match
    /// bit-for-bit (kept as the oracle for the shard-invariance tests).
    pub fn build_unsharded(
        space: &ValueSpace,
        tables: &[NormBinary],
        cfg: &SynthesisConfig,
        mr: &MapReduce,
    ) -> (Self, Vec<(u32, u32)>, BlockingStats) {
        // Job 1 — inverted index: (kind, key) → posting list.
        let indexed: Vec<(u32, &NormBinary)> = tables
            .iter()
            .enumerate()
            .map(|(ti, t)| (ti as u32, t))
            .collect();
        let postings: Vec<((u8, u32, u32), Vec<u32>)> = mr.run(
            &indexed,
            |&(ti, t)| {
                table_keys(space, t, cfg)
                    .into_iter()
                    .map(|k| (k, ti))
                    .collect()
            },
            // Values arrive in input order (ascending table index); a
            // table emits each key at most once, so the list is
            // already deduped.
            |_key, tis| tis,
        );

        let sizes: Vec<u32> = tables.iter().map(|t| t.len() as u32).collect();

        // Job 2 — pair counting: (a, b, kind) → shared-key count. The
        // per-worker combiner pre-sums counts during the map phase, so
        // shuffle size is bounded by distinct pairs (× workers), not
        // by total key co-occurrences.
        let sizes_ref = &sizes;
        let counted: Vec<((u32, u32, u8), u32)> = mr.run_combining(
            &postings,
            |((kind, _, _), tis)| {
                let mut out = Vec::new();
                contribution(tis, *kind, sizes_ref, cfg.max_key_fanout, &mut out);
                out.into_iter().map(|p| (p, 1u32)).collect()
            },
            |acc, v| *acc += v,
            |_pair, counts| counts.iter().sum::<u32>(),
        );

        let index = Self {
            postings: postings.into_iter().collect(),
            pair_counts: counted.into_iter().collect(),
            sizes,
        };
        let (pairs, stats) = index.qualifying_pairs(cfg);
        (index, pairs, stats)
    }

    /// Patch the index for a delta: `removed` and `added` are indices
    /// into `tables` (removed tables' `NormBinary` content must still
    /// be present — their keys are needed to unregister them; added
    /// indices must be larger than any live index). Returns the
    /// post-delta qualifying pairs and stats, identical to a fresh
    /// [`build`](Self::build) over the live tables.
    pub fn apply_delta(
        &mut self,
        space: &ValueSpace,
        tables: &[NormBinary],
        added: &[u32],
        removed: &[u32],
        cfg: &SynthesisConfig,
    ) -> (Vec<(u32, u32)>, BlockingStats) {
        self.remove_tables(space, tables, removed, cfg);
        self.add_tables(space, tables, added, cfg);
        self.qualifying_pairs(cfg)
    }

    /// Adjust pair counts for a set of touched keys around `mutate`:
    /// capture the touched keys' contributions, run the mutation,
    /// capture again, apply the difference.
    fn diff_contributions(
        &mut self,
        changed: &[(u8, u32, u32)],
        cfg: &SynthesisConfig,
        mutate: impl FnOnce(&mut Self),
    ) {
        let mut old_contrib: Vec<(u32, u32, u8)> = Vec::new();
        for key in changed {
            if let Some(tis) = self.postings.get(key) {
                contribution(
                    tis,
                    key.0,
                    &self.sizes,
                    cfg.max_key_fanout,
                    &mut old_contrib,
                );
            }
        }
        mutate(self);
        let mut new_contrib: Vec<(u32, u32, u8)> = Vec::new();
        for key in changed {
            if let Some(tis) = self.postings.get(key) {
                contribution(
                    tis,
                    key.0,
                    &self.sizes,
                    cfg.max_key_fanout,
                    &mut new_contrib,
                );
            }
        }
        for p in old_contrib {
            match self.pair_counts.get_mut(&p) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    self.pair_counts.remove(&p);
                }
                None => unreachable!("old contribution had no count"),
            }
        }
        for p in new_contrib {
            *self.pair_counts.entry(p).or_insert(0) += 1;
        }
    }

    /// Unregister tables (indices into `tables`, whose content must
    /// still be present) from the index, adjusting pair counts.
    pub fn remove_tables(
        &mut self,
        space: &ValueSpace,
        tables: &[NormBinary],
        removed: &[u32],
        cfg: &SynthesisConfig,
    ) {
        if removed.is_empty() {
            return;
        }
        let mut changed: Vec<(u8, u32, u32)> = Vec::new();
        for &ti in removed {
            changed.extend(table_keys(space, &tables[ti as usize], cfg));
        }
        changed.sort_unstable();
        changed.dedup();
        self.diff_contributions(&changed, cfg, |index| {
            for &ti in removed {
                for key in table_keys(space, &tables[ti as usize], cfg) {
                    let tis = index
                        .postings
                        .get_mut(&key)
                        .expect("removed table's key has a posting list");
                    let at = tis
                        .binary_search(&ti)
                        .expect("removed table is in its posting lists");
                    tis.remove(at);
                    if tis.is_empty() {
                        index.postings.remove(&key);
                    }
                }
            }
        });
    }

    /// Register tables into the index (sorted insertion — positions
    /// need not be larger than existing ones), adjusting pair counts.
    pub fn add_tables(
        &mut self,
        space: &ValueSpace,
        tables: &[NormBinary],
        added: &[u32],
        cfg: &SynthesisConfig,
    ) {
        if added.is_empty() {
            return;
        }
        self.sizes.resize(self.sizes.len().max(tables.len()), 0);
        for &ti in added {
            self.sizes[ti as usize] = tables[ti as usize].len() as u32;
        }
        let mut changed: Vec<(u8, u32, u32)> = Vec::new();
        for &ti in added {
            changed.extend(table_keys(space, &tables[ti as usize], cfg));
        }
        changed.sort_unstable();
        changed.dedup();
        self.diff_contributions(&changed, cfg, |index| {
            for &ti in added {
                for key in table_keys(space, &tables[ti as usize], cfg) {
                    let tis = index.postings.entry(key).or_default();
                    match tis.binary_search(&ti) {
                        Ok(_) => unreachable!("table added twice to a posting list"),
                        Err(at) => tis.insert(at, ti),
                    }
                }
            }
        });
    }

    /// Renumber the index's table coordinates through a **monotone**
    /// survivor map (`old_to_new[old] = Some(new)`, ascending over the
    /// survivors; tables mapped to `None` must already be
    /// unregistered). Because the map is monotone, hub-sampling
    /// tie-breaks — the only place blocking looks at index *values* —
    /// pick the same tables before and after, so every maintained
    /// count stays exactly what a fresh build in the new coordinates
    /// would produce.
    pub fn remap(&mut self, old_to_new: &[Option<u32>], new_sizes: Vec<u32>) {
        for tis in self.postings.values_mut() {
            for ti in tis.iter_mut() {
                *ti = old_to_new[*ti as usize].expect("remapped table is live");
            }
            debug_assert!(tis.windows(2).all(|w| w[0] < w[1]), "monotone remap");
        }
        self.pair_counts = self
            .pair_counts
            .drain()
            .map(|((a, b, k), c)| {
                let a2 = old_to_new[a as usize].expect("remapped table is live");
                let b2 = old_to_new[b as usize].expect("remapped table is live");
                debug_assert!(a2 < b2, "monotone remap");
                ((a2, b2, k), c)
            })
            .collect();
        self.sizes = new_sizes;
    }

    /// The θ-filtered pair set + stats from the maintained state —
    /// what [`apply_delta`](Self::apply_delta) returns; public so the
    /// renumber path can re-derive after composing
    /// `remove_tables`/`remap`/`add_tables` manually.
    pub fn pairs(&self, cfg: &SynthesisConfig) -> (Vec<(u32, u32)>, BlockingStats) {
        self.qualifying_pairs(cfg)
    }

    /// The θ-filtered pair set + stats from the maintained state.
    fn qualifying_pairs(&self, cfg: &SynthesisConfig) -> (Vec<(u32, u32)>, BlockingStats) {
        let mut stats = BlockingStats::default();
        stats.pos_keys = self
            .postings
            .keys()
            .filter(|(k, _, _)| *k == KIND_POS)
            .count();
        stats.neg_keys = self.postings.len() - stats.pos_keys;
        stats.capped_keys = self
            .postings
            .values()
            .filter(|tis| tis.len() > cfg.max_key_fanout)
            .count();
        let mut pairs: Vec<(u32, u32)> = self
            .pair_counts
            .iter()
            .filter(|&(_, &c)| c as usize >= cfg.theta_overlap)
            .map(|(&(a, b, _), _)| (a, b))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        stats.pairs = pairs.len();
        (pairs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_mapreduce::MapReduce;
    use mapsynth_text::SynonymDict;

    fn setup(tables: Vec<Vec<(&str, &str)>>) -> (std::sync::Arc<ValueSpace>, Vec<NormBinary>) {
        let mut corpus = Corpus::new();
        let d = corpus.domain("x");
        let cands: Vec<BinaryTable> = tables
            .into_iter()
            .enumerate()
            .map(|(i, rows)| {
                let syms = rows
                    .iter()
                    .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                    .collect();
                BinaryTable::new(BinaryId(i as u32), TableId(i as u32), d, 0, 1, syms)
            })
            .collect();
        build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &MapReduce::new(2),
        )
    }

    #[test]
    fn overlapping_tables_paired_disjoint_not() {
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2"), ("c", "3")],
            vec![("a", "1"), ("b", "2"), ("d", "4")],
            vec![("x", "9"), ("y", "8"), ("z", "7")],
        ]);
        let (pairs, stats) =
            candidate_pairs(&space, &t, &SynthesisConfig::default(), &MapReduce::new(2));
        assert_eq!(pairs, vec![(0, 1)]);
        assert!(stats.pos_keys >= 7);
    }

    #[test]
    fn negative_blocking_catches_conflicting_standards() {
        // Same lefts, totally different rights: zero shared pairs but
        // must still be compared (for w−).
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2"), ("c", "3")],
            vec![("a", "9"), ("b", "8"), ("c", "7")],
        ]);
        let cfg = SynthesisConfig::default();
        let (pairs, _) = candidate_pairs(&space, &t, &cfg, &MapReduce::new(2));
        assert_eq!(pairs, vec![(0, 1)]);
        // Without negative evidence the pair is not needed.
        let (pairs, _) = candidate_pairs(&space, &t, &cfg.without_negative(), &MapReduce::new(2));
        assert!(pairs.is_empty());
    }

    #[test]
    fn theta_overlap_excludes_single_shared_value() {
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2"), ("c", "3")],
            vec![("a", "1"), ("y", "8"), ("z", "7")],
        ]);
        // shares exactly one pair and one left < θ_overlap = 2
        let (pairs, _) =
            candidate_pairs(&space, &t, &SynthesisConfig::default(), &MapReduce::new(2));
        assert!(pairs.is_empty());
        let cfg = SynthesisConfig {
            theta_overlap: 1,
            ..Default::default()
        };
        let (pairs, _) = candidate_pairs(&space, &t, &cfg, &MapReduce::new(2));
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn fanout_cap_samples_hubs() {
        // 20 identical small tables plus 2 big "hub" tables sharing
        // the same hot keys; cap at 4 → only pairs among the sampled
        // hubs (largest tables) are emitted for the hot keys.
        let small = vec![("hot", "1"), ("hot2", "2")];
        let mut tables: Vec<Vec<(&str, &str)>> = (0..20).map(|_| small.clone()).collect();
        let big = vec![
            ("hot", "1"),
            ("hot2", "2"),
            ("x", "3"),
            ("y", "4"),
            ("z", "5"),
        ];
        tables.push(big.clone());
        tables.push(big);
        let (space, t) = setup(tables);
        let cfg = SynthesisConfig {
            max_key_fanout: 4,
            ..Default::default()
        };
        let (pairs, stats) = candidate_pairs(&space, &t, &cfg, &MapReduce::new(2));
        assert!(stats.capped_keys >= 2);
        // The two hubs (indices 20, 21) must be paired.
        assert!(pairs.contains(&(20, 21)), "hub pair missing: {pairs:?}");
        // Far fewer than the C(22,2)=231 all-pairs.
        assert!(pairs.len() < 100, "{} pairs", pairs.len());
    }

    /// The sharded build must reproduce the unsharded reference
    /// bit-for-bit — not just the qualifying pairs but the full stored
    /// state (postings, pair counts, sizes) — for every shard and
    /// worker count, hot keys included.
    #[test]
    fn sharded_build_matches_unsharded_reference() {
        let small = vec![("hot", "1"), ("hot2", "2")];
        let mut rows: Vec<Vec<(&str, &str)>> = (0..12).map(|_| small.clone()).collect();
        rows.push(vec![("hot", "1"), ("hot2", "2"), ("x", "3"), ("y", "4")]);
        rows.push(vec![("hot", "1"), ("x", "3"), ("y", "4"), ("z", "5")]);
        rows.push(vec![("p", "7"), ("q", "8")]);
        rows.push(vec![("p", "7"), ("q", "8"), ("r", "9")]);
        let (space, t) = setup(rows);
        let cfg = SynthesisConfig {
            max_key_fanout: 4,
            ..Default::default()
        };
        for workers in [1usize, 2, 8] {
            let mr = MapReduce::new(workers);
            let (ref_index, ref_pairs, ref_stats) =
                BlockingIndex::build_unsharded(&space, &t, &cfg, &mr);
            for shards in [1usize, 2, 8] {
                let (index, pairs, stats) =
                    BlockingIndex::build_sharded(&space, &t, &cfg, &mr, shards);
                assert_eq!(pairs, ref_pairs, "workers {workers} shards {shards}");
                assert_eq!(stats.pairs, ref_stats.pairs);
                assert_eq!(stats.pos_keys, ref_stats.pos_keys);
                assert_eq!(stats.neg_keys, ref_stats.neg_keys);
                assert_eq!(stats.capped_keys, ref_stats.capped_keys);
                assert_eq!(index.postings, ref_index.postings);
                assert_eq!(index.pair_counts, ref_index.pair_counts);
                assert_eq!(index.sizes, ref_index.sizes);
            }
        }
    }

    /// The spilling build (shards written to disk and streamed back at
    /// stitch) must reproduce the in-memory build's full stored state
    /// for every shard count, hot keys included.
    #[test]
    fn spilled_build_matches_in_memory() {
        let small = vec![("hot", "1"), ("hot2", "2")];
        let mut rows: Vec<Vec<(&str, &str)>> = (0..12).map(|_| small.clone()).collect();
        rows.push(vec![("hot", "1"), ("hot2", "2"), ("x", "3"), ("y", "4")]);
        rows.push(vec![("hot", "1"), ("x", "3"), ("y", "4"), ("z", "5")]);
        rows.push(vec![("p", "7"), ("q", "8")]);
        rows.push(vec![("p", "7"), ("q", "8"), ("r", "9")]);
        let (space, t) = setup(rows);
        let cfg = SynthesisConfig {
            max_key_fanout: 4,
            ..Default::default()
        };
        let mr = MapReduce::new(2);
        let dir = std::env::temp_dir().join(format!(
            "mapsynth-blocking-spill-test-{}",
            std::process::id()
        ));
        for shards in [1usize, 2, 8] {
            let (ref_index, ref_pairs, ref_stats) =
                BlockingIndex::build_sharded(&space, &t, &cfg, &mr, shards);
            let (index, pairs, stats) =
                BlockingIndex::build_spillable(&space, &t, &cfg, &mr, shards, Some(&dir));
            assert_eq!(pairs, ref_pairs, "shards {shards}");
            assert_eq!(stats.pairs, ref_stats.pairs);
            assert_eq!(stats.capped_keys, ref_stats.capped_keys);
            assert_eq!(index.postings, ref_index.postings);
            assert_eq!(index.pair_counts, ref_index.pair_counts);
            assert_eq!(index.sizes, ref_index.sizes);
            let leftover = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
            assert_eq!(leftover, 0, "spill files must be deleted after the stitch");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A sharded-built index feeds the delta path exactly like the
    /// reference: registering more tables lands on the same state as a
    /// fresh build over everything.
    #[test]
    fn sharded_build_composes_with_delta() {
        let rows: Vec<Vec<(&str, &str)>> = vec![
            vec![("a", "1"), ("b", "2"), ("c", "3")],
            vec![("a", "1"), ("b", "2"), ("d", "4")],
            vec![("a", "9"), ("b", "8"), ("c", "7")],
            vec![("x", "9"), ("y", "8"), ("z", "7")],
            vec![("a", "1"), ("c", "3"), ("z", "7")],
        ];
        let (space, t) = setup(rows);
        let cfg = SynthesisConfig::default();
        let mr = MapReduce::new(2);
        let (fresh, fresh_pairs, _) = BlockingIndex::build_unsharded(&space, &t, &cfg, &mr);
        for shards in [1usize, 2, 8] {
            let (mut index, _, _) =
                BlockingIndex::build_sharded(&space, &t[..3], &cfg, &mr, shards);
            index.sizes.resize(t.len(), 0);
            let (pairs, _) = index.apply_delta(&space, &t, &[3, 4], &[], &cfg);
            assert_eq!(pairs, fresh_pairs, "shards {shards}");
            assert_eq!(index.postings, fresh.postings);
            assert_eq!(index.pair_counts, fresh.pair_counts);
        }
    }

    #[test]
    fn pairs_sorted_and_unique() {
        let rows = vec![("a", "1"), ("b", "2"), ("c", "3")];
        let (space, t) = setup((0..5).map(|_| rows.clone()).collect());
        let (pairs, _) =
            candidate_pairs(&space, &t, &SynthesisConfig::default(), &MapReduce::new(2));
        assert_eq!(pairs.len(), 10); // C(5,2)
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pairs, sorted);
        assert!(pairs.iter().all(|&(a, b)| a < b));
    }
}
