//! Table expansion (paper Appendix I).
//!
//! Web tables are written for human consumption and tend to be short;
//! large relations like airport→IATA (10k+ instances) never appear in
//! full. Synthesized mappings provide a robust "core" which can be
//! expanded from comprehensive trusted sources (data.gov dumps,
//! spreadsheet files): if a trusted table agrees with the core and
//! conflicts with almost none of it, their union is adopted.
//!
//! Trusted sources carry arbitrary external strings, so expansion is
//! an **application-boundary** operation: it works on materialized
//! `(String, String)` pairs (see
//! [`crate::SynthesizedMapping::materialize_pairs`]), not on interned
//! ids — the value space of a synthesis run is closed and cannot
//! absorb out-of-corpus values.

use mapsynth_text::normalize;
use std::collections::{HashMap, HashSet};

/// Expansion thresholds.
#[derive(Clone, Copy, Debug)]
pub struct ExpansionConfig {
    /// The trusted source must contain at least this fraction of the
    /// core's pairs (similarity requirement).
    pub min_core_containment: f64,
    /// At most this fraction of the core's left values may conflict
    /// with the trusted source (dissimilarity bound).
    pub max_conflict_ratio: f64,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        Self {
            min_core_containment: 0.5,
            max_conflict_ratio: 0.02,
        }
    }
}

/// Result of one expansion attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExpansionOutcome {
    /// The trusted source matched; pairs were merged in.
    Expanded {
        /// Pairs added to the mapping.
        added: usize,
    },
    /// Containment too low: the source is unrelated to the core.
    NotContained,
    /// Too many conflicts: the source disagrees with the core.
    Conflicting,
}

/// Attempt to expand a materialized mapping core with a trusted source
/// (raw string pairs; they are normalized here). On success the core's
/// pairs grow in place and stay sorted.
pub fn expand_mapping(
    core_pairs: &mut Vec<(String, String)>,
    trusted: &[(String, String)],
    cfg: &ExpansionConfig,
) -> ExpansionOutcome {
    if core_pairs.is_empty() {
        return ExpansionOutcome::NotContained;
    }
    let trusted_norm: Vec<(String, String)> = trusted
        .iter()
        .map(|(l, r)| (normalize(l), normalize(r)))
        .filter(|(l, r)| !l.is_empty() && !r.is_empty())
        .collect();
    let trusted_pairs: HashSet<(&str, &str)> = trusted_norm
        .iter()
        .map(|(l, r)| (l.as_str(), r.as_str()))
        .collect();
    let trusted_rights: HashMap<&str, HashSet<&str>> = {
        let mut m: HashMap<&str, HashSet<&str>> = HashMap::new();
        for (l, r) in &trusted_norm {
            m.entry(l.as_str()).or_default().insert(r.as_str());
        }
        m
    };

    let mut contained = 0usize;
    let mut conflicting_lefts: HashSet<&str> = HashSet::new();
    for (l, r) in core_pairs.iter() {
        if trusted_pairs.contains(&(l.as_str(), r.as_str())) {
            contained += 1;
        } else if let Some(rs) = trusted_rights.get(l.as_str()) {
            if !rs.contains(r.as_str()) {
                conflicting_lefts.insert(l.as_str());
            }
        }
    }
    let core = core_pairs.len() as f64;
    if (contained as f64) < cfg.min_core_containment * core {
        return ExpansionOutcome::NotContained;
    }
    if conflicting_lefts.len() as f64 > cfg.max_conflict_ratio * core {
        return ExpansionOutcome::Conflicting;
    }

    let before = core_pairs.len();
    let existing: HashSet<(String, String)> = core_pairs.drain(..).collect();
    let mut merged = existing;
    for p in trusted_norm {
        merged.insert(p);
    }
    let mut pairs: Vec<(String, String)> = merged.into_iter().collect();
    pairs.sort();
    *core_pairs = pairs;
    ExpansionOutcome::Expanded {
        added: core_pairs.len() - before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(raw: &[(&str, &str)]) -> Vec<(String, String)> {
        raw.iter()
            .map(|(l, r)| (l.to_string(), r.to_string()))
            .collect()
    }

    #[test]
    fn expands_agreeing_superset() {
        let mut m = pairs(&[("lax airport", "lax"), ("sfo airport", "sfo")]);
        let trusted = pairs(&[
            ("LAX Airport", "LAX"),
            ("SFO Airport", "SFO"),
            ("JFK Airport", "JFK"),
            ("ORD Airport", "ORD"),
        ]);
        let out = expand_mapping(&mut m, &trusted, &ExpansionConfig::default());
        assert_eq!(out, ExpansionOutcome::Expanded { added: 2 });
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn rejects_unrelated_source() {
        let mut m = pairs(&[("a", "1"), ("b", "2")]);
        let trusted = pairs(&[("x", "9"), ("y", "8")]);
        assert_eq!(
            expand_mapping(&mut m, &trusted, &ExpansionConfig::default()),
            ExpansionOutcome::NotContained
        );
        assert_eq!(m.len(), 2, "mapping unchanged");
    }

    #[test]
    fn rejects_conflicting_source() {
        // Source covers the core but flips many rights (a different
        // code standard).
        let mut m = pairs(&[("a", "1"), ("b", "2"), ("c", "3"), ("d", "4")]);
        let trusted = pairs(&[("a", "1"), ("b", "2"), ("c", "9"), ("d", "8")]);
        assert_eq!(
            expand_mapping(&mut m, &trusted, &ExpansionConfig::default()),
            ExpansionOutcome::Conflicting
        );
    }

    #[test]
    fn small_conflict_tolerated_with_loose_config() {
        let mut m = pairs(&[("a", "1"), ("b", "2"), ("c", "3"), ("d", "4")]);
        let trusted = pairs(&[("a", "1"), ("b", "2"), ("c", "3"), ("d", "9"), ("e", "5")]);
        let cfg = ExpansionConfig {
            min_core_containment: 0.5,
            max_conflict_ratio: 0.3,
        };
        match expand_mapping(&mut m, &trusted, &cfg) {
            ExpansionOutcome::Expanded { .. } => {}
            other => panic!("expected expansion, got {other:?}"),
        }
        assert!(m.iter().any(|(l, _)| l == "e"));
    }
}
