//! The staged synthesis engine — one [`SynthesisSession`] per corpus.
//!
//! [`crate::pipeline::Pipeline::run`] is a convenience facade over
//! this module. The session splits the monolithic run into explicit,
//! reusable **stage artifacts**:
//!
//! | Stage | Artifact | Reusable across |
//! |---|---|---|
//! | 1. Extraction | [`ExtractionArtifact`] (candidates + stats) | everything |
//! | 2. Value space | [`ValueArtifact`] (`Arc<ValueSpace>` + `Vec<NormBinary>`) | everything |
//! | 3. Blocking + scoring | [`ScoreArtifact`] (match counts + scored pairs + [`ScoringContext`]) | `θ_edge` / `τ` / resolver / matching-parameter variants |
//! | 4. Graph + partition + resolve | [`SessionRun`] | — (cheap, per variant) |
//!
//! Evaluation harnesses and baselines run **many** configurations —
//! sweeping `θ_edge`, comparing `Algorithm4` vs `MajorityVote` vs no
//! resolution — and stages 1–3 dominate the wall-clock. A session runs
//! them once ([`SynthesisSession::prepare`]) and then derives each
//! variant with [`SynthesisSession::synthesize`], which reuses the
//! scored pairs and re-runs only the cheap filter → partition →
//! resolve tail. Per-stage wall-clock timings (the paper's Figure 8/9
//! measurements) are kept on every artifact and on every run.
//!
//! **Scope of reuse:** scored pairs are blocked with the session's
//! base config, so variants may differ in `theta_edge`, `tau`,
//! `use_negative` (graph-filter parameters) and in the resolver.
//! Because [`ScoreArtifact`] stores raw [`MatchCounts`] (exact and
//! approximate-inclusive) plus the [`ScoringContext`] with its
//! edit-distance memo, variants may **also** differ in matching
//! parameters: toggling `approx_matching` off derives weights
//! arithmetically from the stored counts, and tightening
//! `match_params` (`f_ed' ≤ f_ed`, `k_ed' ≤ k_ed`) or changing the
//! `max_approx_cross` guard re-runs only the merge-join against
//! memoized distances — zero edit-distance DP either way. Variants
//! that change blocking (`theta_overlap`, `max_key_fanout`) or *widen*
//! `match_params` need their own session.

use crate::approx::ApproxMemoStats;
use crate::blocking::BlockingIndex;
use crate::compat::{MatchCounts, PairWeights, ScoringContext};
use crate::config::SynthesisConfig;
use crate::conflict::{resolve_conflicts, resolve_majority_vote};
use crate::curate;
use crate::delta::IncrementalState;
use crate::graph::{graph_from_scores, CompatGraph};
use crate::partition::{partition_by_components, Partitioning};
use crate::pipeline::{PipelineConfig, PipelineOutput, Resolver, StageTimings};
use crate::synth::SynthesizedMapping;
use crate::values::{build_value_space_spillable, NormBinary, NormId, ValueSpace};
use mapsynth_corpus::{BinaryId, CoherenceFunnel, Corpus, Interner, TableId, TableSource};
use mapsynth_extract::{
    extract_candidates_masked, extract_candidates_streaming, ExtractionCache, ExtractionStats,
};
use mapsynth_mapreduce::MapReduce;
use mapsynth_text::SynonymDict;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tables pulled per batch by the streaming prepare — small enough to
/// bound resident raw-table memory, large enough to keep the per-batch
/// parallel dispatch amortized. Batch size never affects results (the
/// streaming extractor is bit-identical for any batch size).
const STREAM_BATCH_TABLES: usize = 256;

/// Stage-1 artifact: extracted candidate tables.
#[derive(Clone)]
pub struct ExtractionArtifact {
    /// Ordered binary column pairs surviving extraction.
    pub candidates: Vec<mapsynth_corpus::BinaryTable>,
    /// Extraction counters.
    pub stats: ExtractionStats,
    /// Cumulative coherence sketch-filter funnel (sketch rejects and
    /// posting-list probes) over the build and every delta since.
    /// Diagnostics only — never part of the bit-identity contract.
    pub funnel: CoherenceFunnel,
    /// Stage wall-clock.
    pub elapsed: Duration,
}

/// Stage-2 artifact: the normalized value space.
#[derive(Clone)]
pub struct ValueArtifact {
    /// Shared value space handle.
    pub space: Arc<ValueSpace>,
    /// Candidates projected into the space.
    pub tables: Vec<NormBinary>,
    /// Stage wall-clock.
    pub elapsed: Duration,
}

/// Sub-stage cost breakdown of the scoring stage (the
/// `graph_detail` block of `BENCH_pipeline.json`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScoringDetail {
    /// Candidate-pair blocking (two Map-Reduce jobs).
    pub blocking: Duration,
    /// Per-table sorted-view construction.
    pub index_build: Duration,
    /// One-shot approximate-match memo pass (all edit distances).
    pub approx_memo: Duration,
    /// Merge-join match counting over all blocked pairs.
    pub merge_join: Duration,
    /// Approximate-memo counters (values, DP calls, cached pairs).
    pub memo: ApproxMemoStats,
}

/// Stage-3 artifact: blocked and scored candidate pairs.
///
/// Stores **raw match counts**, not just derived weights: weights for
/// matching-parameter variants (approximate matching off, tighter
/// `f_ed`/`k_ed`) derive from these without re-running edit distance —
/// see [`SynthesisSession::weights_for`].
#[derive(Clone)]
pub struct ScoreArtifact {
    /// `(a, b, weights)` for every blocked pair under the base config,
    /// sorted by `(a, b)`.
    pub scored: Vec<(u32, u32, PairWeights)>,
    /// `(a, b, raw match counts)` for every blocked pair, same order.
    pub counts: Vec<(u32, u32, MatchCounts)>,
    /// The shared scoring state (table views + edit-distance memo) the
    /// counts were computed from; kept for matching-parameter variants.
    pub context: ScoringContext,
    /// Blocking statistics.
    pub blocking: crate::blocking::BlockingStats,
    /// Stage wall-clock (blocking + context build + pairwise counting).
    pub elapsed: Duration,
    /// Sub-stage cost breakdown.
    pub detail: ScoringDetail,
}

/// One synthesis variant derived from a prepared session.
pub struct SessionRun {
    /// Synthesized mappings, curation-ranked.
    pub mappings: Vec<SynthesizedMapping>,
    /// Edges kept in this variant's graph.
    pub edges: usize,
    /// Hard negative edges kept.
    pub negative_edges: usize,
    /// Partitions (including singletons).
    pub partitions: usize,
    /// Per-stage timings. Shared prepare-stage costs (extraction,
    /// value space, scoring) are reported as incurred **once**; graph
    /// covers shared scoring plus this variant's filter.
    pub timings: StageTimings,
}

/// A staged, re-entrant synthesis engine over one corpus.
///
/// ```
/// use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
/// use mapsynth_corpus::Corpus;
///
/// let mut corpus = Corpus::new();
/// let d = corpus.domain("example.com");
/// for _ in 0..4 {
///     corpus.push_table(d, vec![
///         (Some("name"), vec!["United States", "Canada", "Japan", "Germany", "France"]),
///         (Some("code"), vec!["USA", "CAN", "JPN", "DEU", "FRA"]),
///     ]);
/// }
/// let mut session = SynthesisSession::new(PipelineConfig::default());
/// session.prepare(&corpus);
/// // Two resolver variants off one extraction + value space + scoring:
/// let a = session.synthesize(&session.config().synthesis.clone(), Resolver::Algorithm4);
/// let b = session.synthesize(&session.config().synthesis.clone(), Resolver::None);
/// assert_eq!(a.mappings.len(), b.mappings.len());
/// ```
pub struct SynthesisSession {
    pub(crate) cfg: PipelineConfig,
    pub(crate) synonyms: SynonymDict,
    pub(crate) mr: MapReduce,
    /// Identity of the corpus the cached artifacts came from:
    /// `(tables, total columns)`. Guards against silently serving one
    /// corpus's artifacts for another. Advanced by
    /// [`apply_delta`](Self::apply_delta).
    pub(crate) corpus_fingerprint: Option<(usize, u64)>,
    pub(crate) extraction: Option<ExtractionArtifact>,
    pub(crate) values: Option<ValueArtifact>,
    pub(crate) scores: Option<ScoreArtifact>,
    /// The incremental-update state behind
    /// [`apply_delta`](Self::apply_delta): extraction cache, interning
    /// state, blocking index, tombstone masks.
    pub(crate) incr: Option<IncrementalState>,
}

impl SynthesisSession {
    /// Create a session; `cfg.synthesis` is the **base config** used
    /// for blocking and pairwise matching.
    pub fn new(cfg: PipelineConfig) -> Self {
        let mr = if cfg.workers == 0 {
            MapReduce::default()
        } else {
            MapReduce::new(cfg.workers)
        };
        Self {
            cfg,
            synonyms: SynonymDict::new(),
            mr,
            corpus_fingerprint: None,
            extraction: None,
            values: None,
            scores: None,
            incr: None,
        }
    }

    /// Attach an external synonym feed (paper §4.1 "Synonyms"). Must
    /// be called before [`prepare`](Self::prepare).
    pub fn with_synonyms(mut self, synonyms: SynonymDict) -> Self {
        assert!(
            self.values.is_none(),
            "synonym feed must be attached before prepare()"
        );
        self.synonyms = synonyms;
        self
    }

    /// Configuration access.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Worker threads in use.
    pub fn workers(&self) -> usize {
        self.mr.workers()
    }

    /// The session's Map-Reduce engine.
    pub fn engine(&self) -> &MapReduce {
        &self.mr
    }

    /// Run stages 1–3 (extraction, value space, blocking + scoring) on
    /// `corpus`, caching each artifact. Idempotent: repeated calls
    /// return the cached artifacts without touching the corpus again.
    pub fn prepare(
        &mut self,
        corpus: &Corpus,
    ) -> (&ExtractionArtifact, &ValueArtifact, &ScoreArtifact) {
        self.prepare_with(corpus, |_| {})
    }

    /// [`prepare`](Self::prepare) with a stage probe: `stage_done` is
    /// called with `"extraction"`, `"value_space"` and `"scoring"` as
    /// each stage's artifact lands — the hook the benchmark harness
    /// uses to sample per-stage peak RSS. Not called when artifacts
    /// are already cached.
    pub fn prepare_with(
        &mut self,
        corpus: &Corpus,
        stage_done: impl FnMut(&'static str),
    ) -> (&ExtractionArtifact, &ValueArtifact, &ScoreArtifact) {
        let fingerprint = (corpus.len(), corpus.total_columns() as u64);
        self.check_fingerprint(fingerprint);
        if self.extraction.is_none() {
            let alive = vec![true; corpus.len()];
            self.prepare_stages_with(corpus, alive, stage_done);
        }
        (
            // Invariant: the branch above either found cached
            // artifacts or just built all three.
            self.extraction.as_ref().expect("artifacts built above"),
            self.values.as_ref().expect("artifacts built above"),
            self.scores.as_ref().expect("artifacts built above"),
        )
    }

    /// Streaming counterpart of [`prepare`](Self::prepare): stages 1–3
    /// driven table-by-table off a [`TableSource`], so the raw corpus
    /// is never resident — peak memory holds one batch of tables plus
    /// the (saturating) interner and the extracted artifacts. The
    /// resulting artifacts are bit-identical to an in-memory `prepare`
    /// over the materialized corpus.
    pub fn prepare_streaming<S: TableSource>(
        &mut self,
        source: &mut S,
    ) -> (&ExtractionArtifact, &ValueArtifact, &ScoreArtifact) {
        self.prepare_streaming_with(source, |_| {})
    }

    /// [`prepare_streaming`](Self::prepare_streaming) with the same
    /// stage probe as [`prepare_with`](Self::prepare_with).
    pub fn prepare_streaming_with<S: TableSource>(
        &mut self,
        source: &mut S,
        mut stage_done: impl FnMut(&'static str),
    ) -> (&ExtractionArtifact, &ValueArtifact, &ScoreArtifact) {
        if self.extraction.is_none() {
            let t = Instant::now();
            let (candidates, stats, extraction_cache) = extract_candidates_streaming(
                source,
                &self.cfg.extraction,
                &self.mr,
                STREAM_BATCH_TABLES,
            );
            // Streamed sources expose total columns only after the
            // extraction pass has walked them (`next_gid` counts every
            // column), so the fingerprint is checked post-extraction.
            let n_tables = source.table_count();
            self.check_fingerprint((n_tables, extraction_cache.total_columns() as u64));
            self.extraction = Some(ExtractionArtifact {
                candidates,
                stats,
                funnel: extraction_cache.coherence_funnel(),
                elapsed: t.elapsed(),
            });
            stage_done("extraction");
            let alive = vec![true; n_tables];
            self.finish_prepare(source.interner(), alive, extraction_cache, stage_done);
        } else {
            self.check_fingerprint_tables(source.table_count());
        }
        (
            // Invariant: the branch above either found cached
            // artifacts or just built all three.
            self.extraction.as_ref().expect("artifacts built above"),
            self.values.as_ref().expect("artifacts built above"),
            self.scores.as_ref().expect("artifacts built above"),
        )
    }

    fn check_fingerprint(&mut self, fingerprint: (usize, u64)) {
        match self.corpus_fingerprint {
            None => self.corpus_fingerprint = Some(fingerprint),
            Some(prior) => assert_eq!(
                prior, fingerprint,
                "SynthesisSession artifacts were prepared from a different corpus; \
                 use one session per corpus (corpus deltas go through apply_delta)"
            ),
        }
    }

    fn check_fingerprint_tables(&self, n_tables: usize) {
        let prior = self
            .corpus_fingerprint
            .expect("cached artifacts imply a fingerprint");
        assert_eq!(
            prior.0, n_tables,
            "SynthesisSession artifacts were prepared from a different corpus; \
             use one session per corpus (corpus deltas go through apply_delta)"
        );
    }

    /// Build all three stage artifacts (plus the incremental-update
    /// state) over the tables `alive` marks. `alive` is all-true for a
    /// plain [`prepare`](Self::prepare); the tombstone-aware mask is
    /// used by [`apply_delta`](Self::apply_delta)'s full-rebuild
    /// fallback, which must keep the caller's table numbering.
    pub(crate) fn prepare_stages_with(
        &mut self,
        corpus: &Corpus,
        alive: Vec<bool>,
        mut stage_done: impl FnMut(&'static str),
    ) {
        let t = Instant::now();
        let (candidates, stats, extraction_cache) =
            extract_candidates_masked(corpus, &alive, &self.cfg.extraction, &self.mr);
        self.extraction = Some(ExtractionArtifact {
            candidates,
            stats,
            funnel: extraction_cache.coherence_funnel(),
            elapsed: t.elapsed(),
        });
        stage_done("extraction");
        self.finish_prepare(&corpus.interner, alive, extraction_cache, stage_done);
    }

    /// Stages 2–3 (value space, blocking + scoring) plus the
    /// incremental state, shared by the in-memory and streaming
    /// prepares. Only the interner is needed from the corpus side —
    /// raw tables are already behind us.
    fn finish_prepare(
        &mut self,
        strs: &Interner,
        alive: Vec<bool>,
        extraction_cache: ExtractionCache,
        mut stage_done: impl FnMut(&'static str),
    ) {
        let t = Instant::now();
        // Invariant: both callers store the extraction artifact
        // immediately before calling finish_prepare.
        let candidates = &self
            .extraction
            .as_ref()
            .expect("extraction stored by caller")
            .candidates;
        let (space, tables, interning) = build_value_space_spillable(
            strs,
            candidates,
            &self.synonyms,
            &self.mr,
            self.mr.workers(),
            self.cfg.spill_dir.as_deref(),
        );
        let mut pos_of_candidate: Vec<Option<u32>> = vec![None; candidates.len()];
        for (pos, t) in tables.iter().enumerate() {
            pos_of_candidate[t.idx as usize] = Some(pos as u32);
        }
        let dead = vec![false; tables.len()];
        self.values = Some(ValueArtifact {
            space,
            tables,
            elapsed: t.elapsed(),
        });
        stage_done("value_space");

        let t = Instant::now();
        let values = self.values.as_ref().expect("value artifact set above");
        let space = &values.space;
        let tables = &values.tables;
        let cfg = &self.cfg.synthesis;
        let (blocking_index, pairs, blocking) = BlockingIndex::build_spillable(
            space,
            tables,
            cfg,
            &self.mr,
            self.mr.workers(),
            self.cfg.spill_dir.as_deref(),
        );
        let blocking_time = t.elapsed();

        // Shared scoring state: per-table sorted views + the
        // one-shot approximate-match memo.
        let context = ScoringContext::build(space, tables, cfg, &self.mr);

        // Allocation-light merge-join per blocked pair; raw counts
        // are the stored artifact, weights derive arithmetically.
        let t_join = Instant::now();
        let counts: Vec<(u32, u32, MatchCounts)> = self
            .mr
            .par_map(&pairs, |&(a, b)| (a, b, context.counts(space, a, b)));
        let merge_join = t_join.elapsed();
        let scored: Vec<(u32, u32, PairWeights)> = counts
            .iter()
            .map(|&(a, b, c)| {
                let w = c.weights(
                    tables[a as usize].len(),
                    tables[b as usize].len(),
                    cfg.approx_matching,
                );
                (a, b, w)
            })
            .collect();

        let detail = ScoringDetail {
            blocking: blocking_time,
            index_build: context.build_stats.index_build,
            approx_memo: context.build_stats.approx_memo,
            merge_join,
            memo: context.build_stats.memo,
        };
        self.scores = Some(ScoreArtifact {
            scored,
            counts,
            context,
            blocking,
            elapsed: t.elapsed(),
            detail,
        });
        self.incr = Some(IncrementalState {
            extraction_cache,
            interning,
            blocking: blocking_index,
            pos_of_candidate,
            dead,
            alive_tables: alive,
        });
        stage_done("scoring");
    }

    /// The stage-1 artifact, if [`prepare`](Self::prepare) has run.
    pub fn extraction(&self) -> Option<&ExtractionArtifact> {
        self.extraction.as_ref()
    }

    /// The stage-2 artifact, if [`prepare`](Self::prepare) has run.
    pub fn values(&self) -> Option<&ValueArtifact> {
        self.values.as_ref()
    }

    /// The stage-3 artifact, if [`prepare`](Self::prepare) has run.
    pub fn scores(&self) -> Option<&ScoreArtifact> {
        self.scores.as_ref()
    }

    /// Whether `cfg`'s matching settings equal the base config's (in
    /// which case the precomputed weights apply verbatim). With
    /// approximate matching on, the cross-product guard
    /// `max_approx_cross` changes counts too, so it is part of the
    /// identity check.
    fn base_matching(&self, cfg: &SynthesisConfig) -> bool {
        let base = &self.cfg.synthesis;
        cfg.approx_matching == base.approx_matching
            && (!cfg.approx_matching
                || (cfg.match_params == base.match_params
                    && cfg.max_approx_cross == base.max_approx_cross))
    }

    /// Per-pair weights for a config variant, derived from the stored
    /// match counts with **zero** edit-distance work:
    ///
    /// * same matching settings as the base config → the precomputed
    ///   weights;
    /// * `approx_matching` off → arithmetic derivation from the exact
    ///   counts;
    /// * tighter `match_params` and/or a different `max_approx_cross`
    ///   guard → the merge-join re-runs against the context's memoized
    ///   distances (no DP).
    ///
    /// Panics if [`prepare`](Self::prepare) has not run, or if the
    /// variant *widens* `match_params` beyond the memo (those need
    /// their own session).
    pub fn weights_for(&self, cfg: &SynthesisConfig) -> Vec<(u32, u32, PairWeights)> {
        let values = self
            .values
            .as_ref()
            .expect("prepare() before weights_for()");
        let scores = self
            .scores
            .as_ref()
            .expect("prepare() before weights_for()");
        if self.base_matching(cfg) {
            return scores.scored.clone();
        }
        assert!(
            scores.context.covers(cfg),
            "variant match params {:?} are wider than the session's memo; \
             use a separate session",
            cfg.match_params
        );
        let tables = &values.tables;
        if !cfg.approx_matching {
            scores
                .counts
                .iter()
                .map(|&(a, b, c)| {
                    let w = c.weights(tables[a as usize].len(), tables[b as usize].len(), false);
                    (a, b, w)
                })
                .collect()
        } else {
            let space = &values.space;
            let ctx = &scores.context;
            self.mr.par_map(&scores.counts, |&(a, b, _)| {
                let c = ctx.counts_with(space, a, b, cfg.match_params, true, cfg.max_approx_cross);
                let w = c.weights(tables[a as usize].len(), tables[b as usize].len(), true);
                (a, b, w)
            })
        }
    }

    /// Derive a compatibility graph for a config variant from the
    /// cached scores (cheap: a filter pass — plus, for matching
    /// variants, an arithmetic or memo-backed re-derivation of the
    /// weights; never any edit distance).
    ///
    /// Panics if [`prepare`](Self::prepare) has not run.
    pub fn graph(&self, cfg: &SynthesisConfig) -> CompatGraph {
        let values = self.values.as_ref().expect("prepare() before graph()");
        let scores = self.scores.as_ref().expect("prepare() before graph()");
        let mut g = if self.base_matching(cfg) {
            graph_from_scores(values.tables.len(), &scores.scored, cfg)
        } else {
            graph_from_scores(values.tables.len(), &self.weights_for(cfg), cfg)
        };
        g.blocking = scores.blocking;
        g
    }

    /// Partition a variant graph (Algorithm 3 over positive
    /// components).
    pub fn partition(&self, graph: &CompatGraph, cfg: &SynthesisConfig) -> Partitioning {
        partition_by_components(graph, cfg, &self.mr)
    }

    /// Whether the table at `idx` (into the stage-2 slice) is live.
    /// Tables only die by tombstoning through
    /// [`apply_delta`](Self::apply_delta).
    pub fn is_live(&self, idx: u32) -> bool {
        self.incr.as_ref().is_none_or(|s| !s.dead[idx as usize])
    }

    /// Number of live candidate tables.
    pub fn live_tables(&self) -> usize {
        let n = self.values.as_ref().map_or(0, |v| v.tables.len());
        match &self.incr {
            Some(s) => n - s.dead.iter().filter(|&&d| d).count(),
            None => n,
        }
    }

    /// How much of the session's artifacts tombstones have turned into
    /// garbage: `(value_garbage, candidate_garbage)`, both in
    /// `[0, 1]`. Value garbage is the fraction of the interned value
    /// space no live candidate references any more (deltas intern
    /// append-only, so departed values linger); candidate garbage is
    /// the tombstoned fraction of the stage-2 table slice. Computed on
    /// demand by walking the live candidates — no counters to
    /// maintain, so the probe costs one pass over live candidate
    /// cells. Returns `(0, 0)` before [`prepare`](Self::prepare).
    pub fn garbage_fractions(&self) -> (f64, f64) {
        let (Some(incr), Some(values), Some(extraction)) =
            (&self.incr, &self.values, &self.extraction)
        else {
            return (0.0, 0.0);
        };
        let dead = incr.dead.iter().filter(|&&d| d).count();
        let candidate_garbage = if incr.dead.is_empty() {
            0.0
        } else {
            dead as f64 / incr.dead.len() as f64
        };
        let value_garbage = if values.space.is_empty() {
            0.0
        } else {
            let mut live: std::collections::HashSet<NormId> = std::collections::HashSet::new();
            for id in incr.extraction_cache.live_candidate_ids() {
                for &(l, r) in &extraction.candidates[id as usize].pairs {
                    if let Some(n) = incr.interning.norm_of(l) {
                        live.insert(n);
                    }
                    if let Some(n) = incr.interning.norm_of(r) {
                        live.insert(n);
                    }
                }
            }
            1.0 - live.len() as f64 / values.space.len() as f64
        };
        (value_garbage, candidate_garbage)
    }

    /// Whether either garbage fraction has crossed the configured
    /// [`PipelineConfig::compact_threshold`] — the signal that a
    /// [`compact`](Self::compact) pass would reclaim enough space to
    /// pay for itself.
    pub fn compaction_due(&self) -> bool {
        let (values, candidates) = self.garbage_fractions();
        values > self.cfg.compact_threshold || candidates > self.cfg.compact_threshold
    }

    /// Reclaim every tombstone in one pass: rebuild the corpus densely
    /// (dropping dead tables but **cloning** the interner, so the
    /// extraction cache's `Sym`s stay valid), renumber the surviving
    /// candidates, re-project the value space from scratch (departed
    /// values and their postings vanish), rebuild blocking, compact
    /// the approximate-match memo row-by-row through the old → new
    /// value map, and carry every surviving pair's match counts over
    /// the monotone live-position renumbering.
    ///
    /// Afterwards the session is **byte-identical** to a fresh session
    /// prepared on the returned corpus — same candidate ids, same
    /// `NormId`s, same stage-2 positions, zero tombstones — while
    /// skipping all extraction, normalization, edit-distance DP and
    /// merge-join work. Callers must adopt the returned corpus: the
    /// old one (and any `TableId`s into it) no longer matches the
    /// session, and subsequent [`apply_delta`](Self::apply_delta)
    /// calls push tables into the new corpus.
    ///
    /// # Panics
    /// If [`prepare`](Self::prepare) has not run, or if `corpus` is
    /// not the corpus the session has been tracking.
    pub fn compact(&mut self, corpus: &Corpus) -> Corpus {
        assert!(
            self.scores.is_some() && self.incr.is_some(),
            "prepare() before compact()"
        );
        assert_eq!(
            self.corpus_fingerprint,
            Some((corpus.len(), corpus.total_columns() as u64)),
            "compact() must receive the session's tracked corpus"
        );

        // Dense post-compaction corpus + old → new table id map.
        let alive = self
            .incr
            .as_ref()
            .expect("prepared (asserted above)")
            .alive_tables
            .clone();
        let new_corpus = corpus.retain_interned(|tid| alive[tid.0 as usize]);
        let mut table_map: Vec<Option<TableId>> = vec![None; alive.len()];
        {
            let mut next = 0u32;
            for (i, &a) in alive.iter().enumerate() {
                if a {
                    table_map[i] = Some(TableId(next));
                    next += 1;
                }
            }
        }

        // Candidate renumber inside the extraction cache (monotone,
        // so surviving candidates keep their relative order), then
        // remap the stage-1 artifact through it.
        let id_map = self
            .incr
            .as_mut()
            .expect("prepared (asserted above)")
            .extraction_cache
            .compact();
        let old_extraction = self.extraction.take().expect("prepared");
        let mut candidates = Vec::with_capacity(id_map.len());
        for &(old_id, new_id) in &id_map {
            let mut c = old_extraction.candidates[old_id as usize].clone();
            debug_assert_eq!(c.id.0, old_id);
            c.id = BinaryId(new_id);
            c.source = table_map[c.source.0 as usize].expect("live candidate in a live table");
            candidates.push(c);
        }

        // Stage 2 rebuilt outright — this *is* the reclamation: only
        // strings live candidates reference get re-interned, exactly
        // as a fresh prepare would.
        let (space, tables, interning) = build_value_space_spillable(
            &new_corpus.interner,
            &candidates,
            &self.synonyms,
            &self.mr,
            self.mr.workers(),
            self.cfg.spill_dir.as_deref(),
        );

        // Stage 3a rebuilt outright (postings of dead tables vanish).
        let cfg = &self.cfg.synthesis;
        let (blocking_index, pairs, blocking_stats) = BlockingIndex::build_spillable(
            &space,
            &tables,
            cfg,
            &self.mr,
            self.mr.workers(),
            self.cfg.spill_dir.as_deref(),
        );

        // Stage 3b: fresh views, memo compacted through the old → new
        // value map — a string-keyed lookup, so values surviving via
        // other live tables land on their new ids and dead values map
        // to nothing.
        let old_scores = self.scores.take().expect("prepared");
        let old_values = self.values.take().expect("prepared");
        let old_space = &old_values.space;
        let context = ScoringContext::compacted(
            &old_scores.context,
            &space,
            &tables,
            cfg,
            |old| interning.id_of(old_space.string(old)),
            &self.mr,
        );

        // Stage 3c: carry surviving counts over the monotone live
        // stage-2 position renumbering. Projection usability depends
        // only on content, so live old positions biject with the new
        // slice.
        let mut old_pos_to_new: Vec<Option<u32>> = vec![None; old_values.tables.len()];
        {
            let dead = &self.incr.as_ref().expect("prepared (asserted above)").dead;
            let mut next = 0u32;
            for (p, slot) in old_pos_to_new.iter_mut().enumerate() {
                if !dead[p] {
                    *slot = Some(next);
                    next += 1;
                }
            }
            assert_eq!(
                next as usize,
                tables.len(),
                "live stage-2 tables must survive compaction 1:1"
            );
        }
        let remapped: Vec<(u32, u32, MatchCounts)> = old_scores
            .counts
            .iter()
            .filter_map(|&(a, b, c)| {
                let (a2, b2) = (old_pos_to_new[a as usize]?, old_pos_to_new[b as usize]?);
                debug_assert!(a2 < b2, "monotone renumbering preserves pair order");
                Some((a2, b2, c))
            })
            .collect();
        let mut counts: Vec<(u32, u32, MatchCounts)> = Vec::with_capacity(pairs.len());
        let mut fresh_pairs: Vec<(u32, u32)> = Vec::new();
        {
            let mut oi = 0usize;
            for &(a, b) in &pairs {
                while oi < remapped.len() && (remapped[oi].0, remapped[oi].1) < (a, b) {
                    oi += 1;
                }
                if oi < remapped.len() && (remapped[oi].0, remapped[oi].1) == (a, b) {
                    counts.push(remapped[oi]);
                    oi += 1;
                } else {
                    fresh_pairs.push((a, b));
                }
            }
        }
        // The maintained blocking state and the fresh build derive the
        // same pair set, so nothing should surface here — but if it
        // does, score it rather than corrupt the artifact.
        debug_assert!(
            fresh_pairs.is_empty(),
            "compaction surfaced pairs the maintained blocking state lacked"
        );
        if !fresh_pairs.is_empty() {
            let ctx = &context;
            let space_ref = &space;
            let computed: Vec<(u32, u32, MatchCounts)> = self
                .mr
                .par_map(&fresh_pairs, |&(a, b)| (a, b, ctx.counts(space_ref, a, b)));
            let kept = std::mem::take(&mut counts);
            let (mut ki, mut ci) = (0usize, 0usize);
            while ki < kept.len() || ci < computed.len() {
                let take_kept = match (kept.get(ki), computed.get(ci)) {
                    (Some(k), Some(c)) => (k.0, k.1) < (c.0, c.1),
                    (Some(_), None) => true,
                    _ => false,
                };
                if take_kept {
                    counts.push(kept[ki]);
                    ki += 1;
                } else {
                    counts.push(computed[ci]);
                    ci += 1;
                }
            }
        }
        let scored: Vec<(u32, u32, PairWeights)> = counts
            .iter()
            .map(|&(a, b, c)| {
                let w = c.weights(
                    tables[a as usize].len(),
                    tables[b as usize].len(),
                    cfg.approx_matching,
                );
                (a, b, w)
            })
            .collect();

        // Install the compacted artifacts; all tombstone state resets.
        let tables_len = tables.len();
        let mut pos_of_candidate: Vec<Option<u32>> = vec![None; candidates.len()];
        for (pos, t) in tables.iter().enumerate() {
            pos_of_candidate[t.idx as usize] = Some(pos as u32);
        }
        self.extraction = Some(ExtractionArtifact {
            candidates,
            stats: old_extraction.stats,
            funnel: old_extraction.funnel,
            elapsed: old_extraction.elapsed,
        });
        self.values = Some(ValueArtifact {
            space,
            tables,
            elapsed: old_values.elapsed,
        });
        let mut detail = old_scores.detail;
        detail.memo = context.build_stats.memo;
        self.scores = Some(ScoreArtifact {
            scored,
            counts,
            context,
            blocking: blocking_stats,
            elapsed: old_scores.elapsed,
            detail,
        });
        let incr = self.incr.as_mut().expect("prepared (asserted above)");
        incr.interning = interning;
        incr.blocking = blocking_index;
        let n_tables = tables_len;
        incr.pos_of_candidate = pos_of_candidate;
        incr.dead = vec![false; n_tables];
        incr.alive_tables = vec![true; new_corpus.len()];
        self.corpus_fingerprint = Some((new_corpus.len(), new_corpus.total_columns() as u64));
        new_corpus
    }

    /// Run the full variant tail — graph filter, partitioning,
    /// conflict resolution, union, curation ranking — off the cached
    /// stage artifacts.
    ///
    /// Panics if [`prepare`](Self::prepare) has not run.
    pub fn synthesize(&self, cfg: &SynthesisConfig, resolver: Resolver) -> SessionRun {
        let values = self.values.as_ref().expect("prepare() before synthesize()");
        let scores = self.scores.as_ref().expect("prepare() before synthesize()");

        let t = Instant::now();
        let graph = self.graph(cfg);
        let graph_time = scores.elapsed + t.elapsed();
        let edges = graph.edges.len();
        let negative_edges = graph.negative_edges();

        let t = Instant::now();
        let mut partitioning = self.partition(&graph, cfg);
        // Tombstoned tables have no blocked pairs, so they can only
        // surface as singleton components — drop them before the
        // resolve/union tail (a fresh post-delta session never sees
        // them at all).
        if let Some(incr) = &self.incr {
            partitioning
                .groups
                .retain(|g| g.iter().any(|&v| !incr.dead[v as usize]));
        }
        let partitioning = partitioning;
        let partition_time = t.elapsed();
        let partitions = partitioning.groups.len();

        let t = Instant::now();
        let mappings = resolve_and_union(
            &values.space,
            &values.tables,
            partitioning,
            resolver,
            &self.mr,
        );
        let conflict_time = t.elapsed();

        let extraction_time = self
            .extraction
            .as_ref()
            .map_or(Duration::ZERO, |e| e.elapsed);
        let value_space_time = values.elapsed;
        SessionRun {
            mappings,
            edges,
            negative_edges,
            partitions,
            timings: StageTimings {
                extraction: extraction_time,
                value_space: value_space_time,
                graph: graph_time,
                partition: partition_time,
                conflict: conflict_time,
                total: extraction_time
                    + value_space_time
                    + graph_time
                    + partition_time
                    + conflict_time,
            },
        }
    }

    /// Full pipeline semantics: prepare (or reuse) stages 1–3, then
    /// synthesize with the base config and its implied resolver.
    pub fn run(&mut self, corpus: &Corpus) -> PipelineOutput {
        let t_total = Instant::now();
        let fresh = self.extraction.is_none();
        self.prepare(corpus);
        self.run_tail(fresh, t_total)
    }

    /// Full pipeline semantics off a [`TableSource`] — the
    /// bounded-memory counterpart of [`run`](Self::run), bit-identical
    /// to it over the materialized equivalent corpus.
    pub fn run_streaming<S: TableSource>(&mut self, source: &mut S) -> PipelineOutput {
        let t_total = Instant::now();
        let fresh = self.extraction.is_none();
        self.prepare_streaming(source);
        self.run_tail(fresh, t_total)
    }

    /// Shared synthesize-and-report tail of
    /// [`run`](Self::run)/[`run_streaming`](Self::run_streaming).
    fn run_tail(&mut self, fresh: bool, t_total: Instant) -> PipelineOutput {
        let resolver = if self.cfg.synthesis.resolve_conflicts {
            Resolver::Algorithm4
        } else {
            Resolver::None
        };
        let run = self.synthesize(&self.cfg.synthesis, resolver);
        // Invariant: run/run_streaming prepared the session just above.
        let extraction = self.extraction.as_ref().expect("prepared above");
        let mut timings = run.timings;
        // On a fresh run the end-to-end wall-clock is observable;
        // reuse runs report the sum of stage costs actually incurred.
        if fresh {
            timings.total = t_total.elapsed();
        }
        let candidates = self.live_tables();
        PipelineOutput {
            mappings: run.mappings,
            extraction: extraction.stats,
            candidates,
            edges: run.edges,
            negative_edges: run.negative_edges,
            partitions: run.partitions,
            timings,
        }
    }
}

/// Shared variant tail: conflict-resolve each partition group, union,
/// curation-rank. Used by the session and by
/// [`crate::pipeline::synthesize_graph`].
pub(crate) fn resolve_and_union(
    space: &Arc<ValueSpace>,
    tables: &[NormBinary],
    partitioning: Partitioning,
    resolver: Resolver,
    mr: &MapReduce,
) -> Vec<SynthesizedMapping> {
    let mut mappings: Vec<SynthesizedMapping> =
        mr.par_map(&partitioning.groups, |group| match resolver {
            Resolver::Algorithm4 if group.len() > 1 => {
                let (kept, stats) = resolve_conflicts(space, tables, group);
                let mut m = SynthesizedMapping::union_of(space, tables, &kept);
                m.tables_removed = stats.tables_removed;
                m
            }
            Resolver::MajorityVote => {
                let pairs = resolve_majority_vote(space, tables, group);
                let mut m = SynthesizedMapping::union_of(space, tables, group);
                m.set_pairs(pairs);
                m
            }
            _ => SynthesizedMapping::union_of(space, tables, group),
        });
    curate::curation_rank(&mut mappings);
    mappings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut corpus = Corpus::new();
        let iso: Vec<(&str, &str)> = vec![
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "DZA"),
            ("Germany", "DEU"),
            ("Netherlands", "NLD"),
            ("Greece", "GRC"),
        ];
        let ioc: Vec<(&str, &str)> = vec![
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "ALG"),
            ("Germany", "GER"),
            ("Netherlands", "NED"),
            ("Greece", "GRE"),
        ];
        for (prefix, rows) in [("iso", &iso), ("ioc", &ioc)] {
            for i in 0..6 {
                let d = corpus.domain(&format!("{prefix}-{i}.org"));
                let (l, r): (Vec<&str>, Vec<&str>) = rows.iter().cloned().unzip();
                corpus.push_table(d, vec![(Some("country"), l), (Some("code"), r)]);
            }
        }
        corpus
    }

    #[test]
    #[should_panic(expected = "different corpus")]
    fn rejects_a_second_corpus() {
        let mut s = SynthesisSession::new(PipelineConfig::default());
        s.prepare(&corpus());
        let mut other = Corpus::new();
        let d = other.domain("x");
        other.push_table(
            d,
            vec![(Some("a"), vec!["1", "2"]), (Some("b"), vec!["3", "4"])],
        );
        s.prepare(&other);
    }

    #[test]
    fn prepare_is_idempotent() {
        let corpus = corpus();
        let mut s = SynthesisSession::new(PipelineConfig::default());
        s.prepare(&corpus);
        let n1 = s.values().unwrap().tables.len();
        let p1: *const _ = s.values().unwrap().tables.as_ptr();
        s.prepare(&corpus);
        assert_eq!(s.values().unwrap().tables.len(), n1);
        assert_eq!(s.values().unwrap().tables.as_ptr(), p1, "no recompute");
    }

    #[test]
    fn variants_share_artifacts_and_match_fresh_runs() {
        let corpus = corpus();
        let mut shared = SynthesisSession::new(PipelineConfig::default());
        shared.prepare(&corpus);

        for resolver in [Resolver::Algorithm4, Resolver::MajorityVote, Resolver::None] {
            let from_shared = shared.synthesize(&shared.cfg.synthesis.clone(), resolver);
            // Fresh session for the same variant.
            let mut fresh = SynthesisSession::new(PipelineConfig::default());
            fresh.prepare(&corpus);
            let from_fresh = fresh.synthesize(&fresh.cfg.synthesis.clone(), resolver);
            assert_eq!(from_shared.mappings.len(), from_fresh.mappings.len());
            for (a, b) in from_shared.mappings.iter().zip(&from_fresh.mappings) {
                assert_eq!(
                    a.materialize_pairs(),
                    b.materialize_pairs(),
                    "{resolver:?} differs"
                );
            }
        }
    }

    #[test]
    fn theta_edge_sweep_reuses_scoring() {
        let corpus = corpus();
        let mut s = SynthesisSession::new(PipelineConfig::default());
        s.prepare(&corpus);
        let scored_ptr = s.scores().unwrap().scored.as_ptr();
        for theta_edge in [0.3, 0.6, 0.85] {
            let cfg = SynthesisConfig {
                theta_edge,
                ..s.cfg.synthesis
            };
            let run = s.synthesize(&cfg, Resolver::Algorithm4);
            assert!(run.timings.partition >= Duration::ZERO);
            assert_eq!(s.scores().unwrap().scored.as_ptr(), scored_ptr);
        }
        // Lower θ_edge keeps at least as many edges.
        let loose = s.graph(&SynthesisConfig {
            theta_edge: 0.3,
            ..s.cfg.synthesis
        });
        let tight = s.graph(&SynthesisConfig {
            theta_edge: 0.85,
            ..s.cfg.synthesis
        });
        assert!(loose.edges.len() >= tight.edges.len());
    }

    #[test]
    fn matching_variants_reuse_counts_without_rescoring() {
        // Corpus with typo'd spellings so approximate matching has
        // real work to memoize.
        let mut corpus = corpus();
        for i in 0..4 {
            let d = corpus.domain(&format!("typo-{i}.org"));
            let rows: Vec<(&str, &str)> = vec![
                ("Afghanistan", "AFG"),
                ("Albania xy", "ALB"),
                ("Algeria", "DZA"),
                ("Germany z", "DEU"),
                ("Netherland", "NLD"),
                ("Greece", "GRC"),
            ];
            let (l, r): (Vec<&str>, Vec<&str>) = rows.iter().cloned().unzip();
            corpus.push_table(d, vec![(Some("country"), l), (Some("code"), r)]);
        }

        let mut shared = SynthesisSession::new(PipelineConfig::default());
        shared.prepare(&corpus);
        let base = shared.cfg.synthesis;

        // Variant 1: approximate matching off — derived arithmetically
        // from stored exact counts; must equal a fresh session.
        // Variant 2: tighter match params — merge-join over the memo;
        // must equal a fresh session scored at those params.
        // Variant 3: a tiny cross-product guard — disables the
        // residual pass for most pairs; the guard is part of matching
        // identity, so this must re-derive, not reuse base weights.
        let variants = [
            SynthesisConfig {
                approx_matching: false,
                ..base
            },
            SynthesisConfig {
                match_params: mapsynth_text::MatchParams { f_ed: 0.1, k_ed: 5 },
                ..base
            },
            SynthesisConfig {
                max_approx_cross: 4,
                ..base
            },
        ];
        for cfg in variants {
            let derived = shared.graph(&cfg);
            let mut fresh = SynthesisSession::new(PipelineConfig {
                synthesis: cfg,
                ..Default::default()
            });
            fresh.prepare(&corpus);
            let scratch = fresh.graph(&cfg);
            assert_eq!(
                derived.edges, scratch.edges,
                "derived variant graph must be byte-identical (approx={}, f_ed={})",
                cfg.approx_matching, cfg.match_params.f_ed
            );
        }
    }

    #[test]
    #[should_panic(expected = "wider than the session's memo")]
    fn widening_match_params_is_rejected() {
        let corpus = corpus();
        let mut s = SynthesisSession::new(PipelineConfig::default());
        s.prepare(&corpus);
        let wide = SynthesisConfig {
            match_params: mapsynth_text::MatchParams {
                f_ed: 0.5,
                k_ed: 10,
            },
            ..s.cfg.synthesis
        };
        let _ = s.weights_for(&wide);
    }

    /// The streaming prepare must land on the same artifacts as the
    /// in-memory prepare — candidates, value space, scored pairs and
    /// the synthesized mappings alike.
    #[test]
    fn streaming_prepare_matches_in_memory() {
        let corpus = corpus();
        let mut batch = SynthesisSession::new(PipelineConfig::default());
        batch.prepare(&corpus);
        let mut streamed = SynthesisSession::new(PipelineConfig::default());
        let mut stages: Vec<&'static str> = Vec::new();
        streamed.prepare_streaming_with(&mut corpus.stream(), |s| stages.push(s));
        assert_eq!(stages, ["extraction", "value_space", "scoring"]);
        assert_eq!(batch.corpus_fingerprint, streamed.corpus_fingerprint);

        let (be, bv, bs) = (
            batch.extraction().unwrap(),
            batch.values().unwrap(),
            batch.scores().unwrap(),
        );
        let (se, sv, ss) = (
            streamed.extraction().unwrap(),
            streamed.values().unwrap(),
            streamed.scores().unwrap(),
        );
        assert_eq!(be.candidates.len(), se.candidates.len());
        for (a, b) in be.candidates.iter().zip(&se.candidates) {
            assert_eq!(a.pairs, b.pairs);
            assert_eq!(a.id, b.id);
        }
        assert_eq!(bv.space.len(), sv.space.len());
        for i in 0..bv.space.len() as u32 {
            let id = crate::values::NormId(i);
            assert_eq!(bv.space.string(id), sv.space.string(id));
            assert_eq!(bv.space.class(id), sv.space.class(id));
        }
        assert_eq!(bv.tables.len(), sv.tables.len());
        assert_eq!(bs.scored.len(), ss.scored.len());
        for (a, b) in bs.scored.iter().zip(&ss.scored) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
            assert_eq!(a.2.pos.to_bits(), b.2.pos.to_bits());
            assert_eq!(a.2.neg.to_bits(), b.2.neg.to_bits());
        }

        let from_batch = batch.synthesize(&batch.cfg.synthesis.clone(), Resolver::Algorithm4);
        let from_stream =
            streamed.synthesize(&streamed.cfg.synthesis.clone(), Resolver::Algorithm4);
        assert_eq!(from_batch.mappings.len(), from_stream.mappings.len());
        for (a, b) in from_batch.mappings.iter().zip(&from_stream.mappings) {
            assert_eq!(a.materialize_pairs(), b.materialize_pairs());
        }
    }

    /// `run_streaming` reports the same pipeline output as `run`, and
    /// repeated streaming prepares are idempotent.
    #[test]
    fn run_streaming_matches_run() {
        let corpus = corpus();
        let mut batch = SynthesisSession::new(PipelineConfig::default());
        let out = batch.run(&corpus);
        let mut streamed = SynthesisSession::new(PipelineConfig::default());
        let out2 = streamed.run_streaming(&mut corpus.stream());
        assert_eq!(out.mappings.len(), out2.mappings.len());
        assert_eq!(out.candidates, out2.candidates);
        assert_eq!(out.edges, out2.edges);
        assert_eq!(out.negative_edges, out2.negative_edges);
        assert_eq!(out.partitions, out2.partitions);
        // Idempotent reuse, as with prepare().
        let p: *const _ = streamed.values().unwrap().tables.as_ptr();
        streamed.prepare_streaming(&mut corpus.stream());
        assert_eq!(streamed.values().unwrap().tables.as_ptr(), p);
    }

    #[test]
    #[should_panic(expected = "different corpus")]
    fn streaming_rejects_a_second_corpus() {
        let mut s = SynthesisSession::new(PipelineConfig::default());
        s.prepare(&corpus());
        let mut other = Corpus::new();
        let d = other.domain("x");
        other.push_table(
            d,
            vec![(Some("a"), vec!["1", "2"]), (Some("b"), vec!["3", "4"])],
        );
        s.prepare_streaming(&mut other.stream());
    }

    #[test]
    fn session_run_matches_monolithic_pipeline() {
        let corpus = corpus();
        let mut s = SynthesisSession::new(PipelineConfig::default());
        let out = s.run(&corpus);
        let out2 = crate::pipeline::Pipeline::new(PipelineConfig::default()).run(&corpus);
        assert_eq!(out.mappings.len(), out2.mappings.len());
        for (a, b) in out.mappings.iter().zip(&out2.mappings) {
            assert_eq!(a.materialize_pairs(), b.materialize_pairs());
        }
        assert_eq!(out.edges, out2.edges);
        assert_eq!(out.negative_edges, out2.negative_edges);
        assert_eq!(out.partitions, out2.partitions);
    }
}
