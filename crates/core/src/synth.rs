//! Synthesized mapping relationships: the union of a partition.

use crate::values::{NormBinary, NormId, ValueSpace};
use std::collections::HashSet;
use std::sync::Arc;

/// A synthesized mapping relationship: the deduplicated union of all
/// value pairs of the tables in one partition, with provenance
/// statistics for curation (paper §4.3).
///
/// Pairs are stored **interned** — `(NormId, NormId)` into the run's
/// shared [`ValueSpace`], which the mapping holds a handle to. Strings
/// are materialized only at application boundaries (display, CSV
/// export, index keys) via [`pair_strs`](Self::pair_strs) or
/// [`materialize_pairs`](Self::materialize_pairs); everything upstream
/// moves 8-byte id pairs instead of cloning `Vec<(String, String)>`
/// per mapping.
#[derive(Clone, Debug)]
pub struct SynthesizedMapping {
    /// Handle to the value space the ids resolve in.
    space: Arc<ValueSpace>,
    /// Interned `(left, right)` pairs, sorted by their normalized
    /// strings and deduplicated.
    pub pair_ids: Vec<(NormId, NormId)>,
    /// Indices (into the run's `NormBinary` slice) of member tables.
    pub member_tables: Vec<u32>,
    /// Number of distinct provenance domains contributing tables —
    /// the paper's primary popularity/curation signal.
    pub domains: usize,
    /// Number of distinct source tables.
    pub source_tables: usize,
    /// Number of tables removed by conflict resolution.
    pub tables_removed: usize,
}

impl SynthesizedMapping {
    /// Union the pairs of `group` (indices into `tables`) into a
    /// mapping. No conflict resolution — see [`crate::conflict`].
    pub fn union_of(space: &Arc<ValueSpace>, tables: &[NormBinary], group: &[u32]) -> Self {
        let mut pair_set: HashSet<(NormId, NormId)> = HashSet::new();
        let mut domains = HashSet::new();
        let mut sources = HashSet::new();
        for &ti in group {
            let t = &tables[ti as usize];
            domains.insert(t.domain);
            sources.insert(t.source);
            pair_set.extend(t.pairs.iter().copied());
        }
        let pair_ids = sort_by_strings(space, pair_set.into_iter().collect());
        Self {
            space: Arc::clone(space),
            pair_ids,
            member_tables: group.to_vec(),
            domains: domains.len(),
            source_tables: sources.len(),
            tables_removed: 0,
        }
    }

    /// Assemble a mapping from parts (tests, external loaders). Pairs
    /// are re-sorted by their strings.
    pub fn from_parts(
        space: Arc<ValueSpace>,
        pair_ids: Vec<(NormId, NormId)>,
        member_tables: Vec<u32>,
        domains: usize,
        source_tables: usize,
    ) -> Self {
        let pair_ids = sort_by_strings(&space, pair_ids);
        Self {
            space,
            pair_ids,
            member_tables,
            domains,
            source_tables,
            tables_removed: 0,
        }
    }

    /// Replace the pair set (conflict-resolution variants). Pairs are
    /// re-sorted by their strings.
    pub fn set_pairs(&mut self, pair_ids: Vec<(NormId, NormId)>) {
        self.pair_ids = sort_by_strings(&self.space, pair_ids);
    }

    /// The value space the pair ids resolve in.
    pub fn space(&self) -> &ValueSpace {
        &self.space
    }

    /// Handle to the value space (shared, cheap to clone).
    pub fn space_handle(&self) -> &Arc<ValueSpace> {
        &self.space
    }

    /// Number of value pairs.
    pub fn len(&self) -> usize {
        self.pair_ids.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.pair_ids.is_empty()
    }

    /// The normalized string pairs, in sorted order, without
    /// allocating. This is the read path for application boundaries.
    pub fn pair_strs(&self) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.pair_ids
            .iter()
            .map(|&(l, r)| (self.space.string(l), self.space.string(r)))
    }

    /// Materialize owned string pairs (export boundary only).
    pub fn materialize_pairs(&self) -> Vec<(String, String)> {
        self.pair_strs()
            .map(|(l, r)| (l.to_string(), r.to_string()))
            .collect()
    }

    /// Whether the mapping asserts the given normalized pair.
    pub fn contains_pair(&self, left: &str, right: &str) -> bool {
        self.pair_strs().any(|(l, r)| l == left && r == right)
    }

    /// Distinct left values.
    pub fn distinct_lefts(&self) -> usize {
        let lefts: HashSet<&str> = self.pair_strs().map(|(l, _)| l).collect();
        lefts.len()
    }

    /// Left values mapping to more than one right value (residual
    /// conflicts; zero after conflict resolution unless synonyms remain
    /// unresolved).
    pub fn conflicting_lefts(&self) -> usize {
        let mut count = 0;
        let mut i = 0;
        while i < self.pair_ids.len() {
            let left = self.space.string(self.pair_ids[i].0);
            let mut j = i + 1;
            while j < self.pair_ids.len() && self.space.string(self.pair_ids[j].0) == left {
                j += 1;
            }
            if j - i > 1 {
                count += 1;
            }
            i = j;
        }
        count
    }

    /// Lexicographic comparison of the materialized pair lists
    /// (deterministic curation tie-break).
    pub fn cmp_pairs(&self, other: &Self) -> std::cmp::Ordering {
        self.pair_strs().cmp(other.pair_strs())
    }
}

/// Sort interned pairs by their normalized strings and dedup.
fn sort_by_strings(
    space: &ValueSpace,
    mut pair_ids: Vec<(NormId, NormId)>,
) -> Vec<(NormId, NormId)> {
    pair_ids.sort_by(|&(al, ar), &(bl, br)| {
        (space.string(al), space.string(ar)).cmp(&(space.string(bl), space.string(br)))
    });
    pair_ids.dedup();
    pair_ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_mapreduce::MapReduce;
    use mapsynth_text::SynonymDict;

    fn setup(tables: Vec<(usize, Vec<(&str, &str)>)>) -> (Arc<ValueSpace>, Vec<NormBinary>) {
        let mut corpus = Corpus::new();
        let domains: Vec<_> = (0..4).map(|i| corpus.domain(&format!("d{i}"))).collect();
        let cands: Vec<BinaryTable> = tables
            .into_iter()
            .enumerate()
            .map(|(i, (dom, rows))| {
                let syms = rows
                    .iter()
                    .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                    .collect();
                BinaryTable::new(
                    BinaryId(i as u32),
                    TableId(i as u32),
                    domains[dom],
                    0,
                    1,
                    syms,
                )
            })
            .collect();
        build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &MapReduce::new(2),
        )
    }

    #[test]
    fn union_dedups_and_counts_domains() {
        let (space, t) = setup(vec![
            (0, vec![("a", "1"), ("b", "2")]),
            (1, vec![("b", "2"), ("c", "3")]),
            (0, vec![("a", "1"), ("c", "3")]),
        ]);
        let m = SynthesizedMapping::union_of(&space, &t, &[0, 1, 2]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.domains, 2);
        assert_eq!(m.source_tables, 3);
        assert_eq!(m.distinct_lefts(), 3);
        assert_eq!(m.conflicting_lefts(), 0);
    }

    #[test]
    fn conflicting_lefts_detected() {
        let (space, t) = setup(vec![
            (0, vec![("a", "1"), ("b", "2")]),
            (1, vec![("a", "9"), ("b", "2")]),
        ]);
        let m = SynthesizedMapping::union_of(&space, &t, &[0, 1]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.conflicting_lefts(), 1);
    }

    #[test]
    fn pairs_sorted_by_strings() {
        let (space, t) = setup(vec![(0, vec![("z", "9"), ("a", "1"), ("m", "5")])]);
        let m = SynthesizedMapping::union_of(&space, &t, &[0]);
        let pairs = m.materialize_pairs();
        let mut sorted = pairs.clone();
        sorted.sort();
        assert_eq!(pairs, sorted);
    }

    #[test]
    fn materialization_is_boundary_only() {
        let (space, t) = setup(vec![(0, vec![("a", "1"), ("b", "2")])]);
        let m = SynthesizedMapping::union_of(&space, &t, &[0]);
        // Borrowed reads resolve through the shared handle.
        assert!(m.contains_pair("a", "1"));
        assert_eq!(m.pair_strs().count(), 2);
        assert!(std::sync::Arc::ptr_eq(m.space_handle(), &space));
    }
}
