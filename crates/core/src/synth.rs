//! Synthesized mapping relationships: the union of a partition.

use crate::values::{NormBinary, ValueSpace};
use std::collections::HashSet;

/// A synthesized mapping relationship: the deduplicated union of all
/// value pairs of the tables in one partition, with provenance
/// statistics for curation (paper §4.3).
#[derive(Clone, Debug)]
pub struct SynthesizedMapping {
    /// Normalized `(left, right)` pairs, sorted and deduplicated.
    pub pairs: Vec<(String, String)>,
    /// Indices (into the run's `NormBinary` slice) of member tables.
    pub member_tables: Vec<u32>,
    /// Number of distinct provenance domains contributing tables —
    /// the paper's primary popularity/curation signal.
    pub domains: usize,
    /// Number of distinct source tables.
    pub source_tables: usize,
    /// Number of tables removed by conflict resolution.
    pub tables_removed: usize,
}

impl SynthesizedMapping {
    /// Union the pairs of `group` (indices into `tables`) into a
    /// mapping. No conflict resolution — see [`crate::conflict`].
    pub fn union_of(space: &ValueSpace, tables: &[NormBinary], group: &[u32]) -> Self {
        let mut pair_set: HashSet<(&str, &str)> = HashSet::new();
        let mut domains = HashSet::new();
        let mut sources = HashSet::new();
        for &ti in group {
            let t = &tables[ti as usize];
            domains.insert(t.domain);
            sources.insert(t.source);
            for &(l, r) in &t.pairs {
                pair_set.insert((space.string(l), space.string(r)));
            }
        }
        let mut pairs: Vec<(String, String)> = pair_set
            .into_iter()
            .map(|(l, r)| (l.to_string(), r.to_string()))
            .collect();
        pairs.sort();
        Self {
            pairs,
            member_tables: group.to_vec(),
            domains: domains.len(),
            source_tables: sources.len(),
            tables_removed: 0,
        }
    }

    /// Number of value pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Distinct left values.
    pub fn distinct_lefts(&self) -> usize {
        let lefts: HashSet<&str> = self.pairs.iter().map(|(l, _)| l.as_str()).collect();
        lefts.len()
    }

    /// Left values mapping to more than one right value (residual
    /// conflicts; zero after conflict resolution unless synonyms remain
    /// unresolved).
    pub fn conflicting_lefts(&self) -> usize {
        let mut count = 0;
        let mut i = 0;
        while i < self.pairs.len() {
            let mut j = i + 1;
            while j < self.pairs.len() && self.pairs[j].0 == self.pairs[i].0 {
                j += 1;
            }
            if j - i > 1 {
                count += 1;
            }
            i = j;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_text::SynonymDict;

    fn setup(tables: Vec<(usize, Vec<(&str, &str)>)>) -> (ValueSpace, Vec<NormBinary>) {
        let mut corpus = Corpus::new();
        let domains: Vec<_> = (0..4).map(|i| corpus.domain(&format!("d{i}"))).collect();
        let cands: Vec<BinaryTable> = tables
            .into_iter()
            .enumerate()
            .map(|(i, (dom, rows))| {
                let syms = rows
                    .iter()
                    .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                    .collect();
                BinaryTable::new(
                    BinaryId(i as u32),
                    TableId(i as u32),
                    domains[dom],
                    0,
                    1,
                    syms,
                )
            })
            .collect();
        build_value_space(&corpus, &cands, &SynonymDict::new())
    }

    #[test]
    fn union_dedups_and_counts_domains() {
        let (space, t) = setup(vec![
            (0, vec![("a", "1"), ("b", "2")]),
            (1, vec![("b", "2"), ("c", "3")]),
            (0, vec![("a", "1"), ("c", "3")]),
        ]);
        let m = SynthesizedMapping::union_of(&space, &t, &[0, 1, 2]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.domains, 2);
        assert_eq!(m.source_tables, 3);
        assert_eq!(m.distinct_lefts(), 3);
        assert_eq!(m.conflicting_lefts(), 0);
    }

    #[test]
    fn conflicting_lefts_detected() {
        let (space, t) = setup(vec![
            (0, vec![("a", "1"), ("b", "2")]),
            (1, vec![("a", "9"), ("b", "2")]),
        ]);
        let m = SynthesizedMapping::union_of(&space, &t, &[0, 1]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.conflicting_lefts(), 1);
    }

    #[test]
    fn pairs_sorted() {
        let (space, t) = setup(vec![(0, vec![("z", "9"), ("a", "1"), ("m", "5")])]);
        let m = SynthesizedMapping::union_of(&space, &t, &[0]);
        let mut sorted = m.pairs.clone();
        sorted.sort();
        assert_eq!(m.pairs, sorted);
    }
}
