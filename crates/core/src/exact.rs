//! Exact solvers for the complexity trichotomy (paper §4.2).
//!
//! Table synthesis is NP-hard in general (Theorem 13), but the paper
//! notes a trichotomy by negative-edge count \[17\]:
//!
//! * **0 negative edges** — merge every positively connected component;
//! * **1 negative edge** — equivalent to s-t min-cut / max-flow with
//!   the negative edge's endpoints as source and sink;
//! * **2 negative edges** — polynomial via Yannakakis et al. \[39\]
//!   (not implemented; the greedy handles it heuristically);
//! * **≥ 3 negative edges** — NP-hard.
//!
//! This module implements the 0- and 1-negative-edge exact cases (the
//! latter via Dinic's max-flow) and a brute-force optimal search over
//! set partitions for small graphs, used by property tests to measure
//! the greedy heuristic against the true optimum.

use crate::config::SynthesisConfig;
use crate::graph::CompatGraph;
use crate::partition::Partitioning;
use mapsynth_mapreduce::connected_components_union_find;
use std::collections::HashMap;

/// Exact solution for graphs with zero hard negative edges: every
/// positively connected component merges (optimum: no positive weight
/// lost).
pub fn solve_no_negative(graph: &CompatGraph) -> Partitioning {
    let pos_edges: Vec<(u32, u32)> = graph
        .edges
        .iter()
        .filter(|(_, _, w)| w.pos > 0.0)
        .map(|&(a, b, _)| (a, b))
        .collect();
    let groups = connected_components_union_find(graph.n, &pos_edges)
        .into_iter()
        .map(|g| g.into_iter().map(|v| v as u32).collect())
        .collect();
    Partitioning { groups }
}

/// Exact solution for graphs with exactly one hard negative edge
/// `(s, t)`: a minimum s-t cut over positive weights (the paper's
/// min-cut/max-flow equivalence). Returns `None` if the graph does not
/// have exactly one hard negative edge under `cfg.tau`.
pub fn solve_single_negative(graph: &CompatGraph, cfg: &SynthesisConfig) -> Option<Partitioning> {
    let neg: Vec<(u32, u32)> = graph
        .edges
        .iter()
        .filter(|(_, _, w)| w.neg < cfg.tau)
        .map(|&(a, b, _)| (a, b))
        .collect();
    let [(s, t)] = neg.as_slice() else {
        return None;
    };
    let (s, t) = (*s as usize, *t as usize);

    // Min s-t cut on positive weights via Dinic.
    let mut dinic = Dinic::new(graph.n);
    for &(a, b, w) in &graph.edges {
        if w.pos > 0.0 {
            dinic.add_undirected(a as usize, b as usize, w.pos);
        }
    }
    dinic.max_flow(s, t);
    let s_side = dinic.min_cut_side(s);

    // Partition: s-side and t-side, then split each side into its
    // positively connected components (disconnected vertices need not
    // share a partition).
    let mut side_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(), Vec::new()];
    for &(a, b, w) in &graph.edges {
        if w.pos > 0.0 && s_side[a as usize] == s_side[b as usize] {
            side_edges[usize::from(s_side[a as usize])].push((a, b));
        }
    }
    // Reuse CC machinery over the full vertex set; constrain by side.
    let mut groups: Vec<Vec<u32>> = Vec::new();
    for side in [true, false] {
        let verts: Vec<u32> = (0..graph.n as u32)
            .filter(|&v| s_side[v as usize] == side)
            .collect();
        if verts.is_empty() {
            continue;
        }
        let local: HashMap<u32, u32> = verts
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let edges: Vec<(u32, u32)> = side_edges[usize::from(side)]
            .iter()
            .map(|&(a, b)| (local[&a], local[&b]))
            .collect();
        for comp in connected_components_union_find(verts.len(), &edges) {
            groups.push(comp.into_iter().map(|i| verts[i]).collect());
        }
    }
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort_by_key(|g| g[0]);
    Some(Partitioning { groups })
}

/// Brute-force optimal partitioning by exhaustive set-partition search
/// (restricted-growth strings). Only for `n ≤ 11` (Bell(11) ≈ 678k).
///
/// Maximizes intra-partition positive weight subject to no intra-
/// partition hard negative edge.
pub fn brute_force_optimal(graph: &CompatGraph, cfg: &SynthesisConfig) -> Partitioning {
    let n = graph.n;
    assert!(n <= 11, "brute force limited to 11 vertices, got {n}");
    if n == 0 {
        return Partitioning { groups: vec![] };
    }
    let mut best_assign: Vec<u8> = (0..n as u8).collect();
    let mut best_score = f64::NEG_INFINITY;

    // Iterate restricted growth strings a[0]=0, a[i] ≤ max(a[..i])+1.
    let mut a = vec![0u8; n];
    loop {
        // Score this assignment.
        let mut score = 0.0;
        let mut feasible = true;
        for &(x, y, w) in &graph.edges {
            if a[x as usize] == a[y as usize] {
                if w.neg < cfg.tau {
                    feasible = false;
                    break;
                }
                score += w.pos;
            }
        }
        if feasible && score > best_score {
            best_score = score;
            best_assign.copy_from_slice(&a);
        }
        // Next restricted growth string.
        let mut i = n - 1;
        loop {
            if i == 0 {
                return assignment_to_partitioning(&best_assign);
            }
            let prefix_max = a[..i].iter().copied().max().unwrap_or(0);
            if a[i] <= prefix_max {
                a[i] += 1;
                for x in a.iter_mut().skip(i + 1) {
                    *x = 0;
                }
                break;
            }
            i -= 1;
        }
    }
}

fn assignment_to_partitioning(assign: &[u8]) -> Partitioning {
    let mut by_label: HashMap<u8, Vec<u32>> = HashMap::new();
    for (v, &l) in assign.iter().enumerate() {
        by_label.entry(l).or_default().push(v as u32);
    }
    let mut groups: Vec<Vec<u32>> = by_label.into_values().collect();
    groups.sort_by_key(|g| g[0]);
    Partitioning { groups }
}

/// Dinic's max-flow on an undirected capacity graph.
struct Dinic {
    n: usize,
    // edges stored as pairs (to, cap); reverse edge at idx ^ 1.
    to: Vec<u32>,
    cap: Vec<f64>,
    head: Vec<Vec<u32>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Self {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    fn add_undirected(&mut self, a: usize, b: usize, c: f64) {
        let i = self.to.len() as u32;
        self.to.push(b as u32);
        self.cap.push(c);
        self.head[a].push(i);
        self.to.push(a as u32);
        self.cap.push(c);
        self.head[b].push(i + 1);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        let mut q = std::collections::VecDeque::new();
        self.level[s] = 0;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &ei in &self.head[v] {
                let u = self.to[ei as usize] as usize;
                if self.cap[ei as usize] > 1e-12 && self.level[u] < 0 {
                    self.level[u] = self.level[v] + 1;
                    q.push_back(u);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: f64) -> f64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.head[v].len() {
            let ei = self.head[v][self.iter[v]] as usize;
            let u = self.to[ei] as usize;
            if self.cap[ei] > 1e-12 && self.level[u] == self.level[v] + 1 {
                let d = self.dfs(u, t, f.min(self.cap[ei]));
                if d > 1e-12 {
                    self.cap[ei] -= d;
                    self.cap[ei ^ 1] += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0.0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= 1e-12 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// After max_flow: vertices reachable from `s` in the residual
    /// graph form the s-side of a minimum cut.
    fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut side = vec![false; self.n];
        let mut q = std::collections::VecDeque::new();
        side[s] = true;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &ei in &self.head[v] {
                let u = self.to[ei as usize] as usize;
                if self.cap[ei as usize] > 1e-12 && !side[u] {
                    side[u] = true;
                    q.push_back(u);
                }
            }
        }
        side
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeWeights;
    use crate::partition::greedy_partition;
    use proptest::prelude::*;

    fn graph(n: usize, edges: Vec<(u32, u32, f64, f64)>) -> CompatGraph {
        CompatGraph::new(
            n,
            edges
                .into_iter()
                .map(|(a, b, p, ng)| (a, b, EdgeWeights { pos: p, neg: ng }))
                .collect(),
            Default::default(),
        )
    }

    fn cfg() -> SynthesisConfig {
        SynthesisConfig {
            theta_edge: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn no_negative_merges_components() {
        let g = graph(4, vec![(0, 1, 0.5, 0.0), (1, 2, 0.5, 0.0)]);
        let p = solve_no_negative(&g);
        assert_eq!(p.groups, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn single_negative_cuts_minimum_weight() {
        // Chain 0 -1.0- 1 -0.2- 2 -1.0- 3 with hard negative (0, 3):
        // the cheapest cut severs the 0.2 edge.
        let g = graph(
            4,
            vec![
                (0, 1, 1.0, 0.0),
                (1, 2, 0.2, 0.0),
                (2, 3, 1.0, 0.0),
                (0, 3, 0.0, -1.0),
            ],
        );
        let p = solve_single_negative(&g, &cfg()).expect("one negative edge");
        assert_eq!(p.groups, vec![vec![0, 1], vec![2, 3]]);
        assert!(!p.violates_constraints(&g, cfg().tau));
        assert!((p.objective(&g) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_negative_matches_brute_force() {
        let g = graph(
            5,
            vec![
                (0, 1, 0.9, 0.0),
                (1, 2, 0.3, 0.0),
                (2, 3, 0.8, 0.0),
                (3, 4, 0.7, 0.0),
                (1, 3, 0.1, 0.0),
                (0, 4, 0.0, -1.0),
            ],
        );
        let exact = solve_single_negative(&g, &cfg()).unwrap();
        let brute = brute_force_optimal(&g, &cfg());
        assert!((exact.objective(&g) - brute.objective(&g)).abs() < 1e-9);
    }

    #[test]
    fn returns_none_for_other_negative_counts() {
        let g0 = graph(2, vec![(0, 1, 0.5, 0.0)]);
        assert!(solve_single_negative(&g0, &cfg()).is_none());
        let g2 = graph(4, vec![(0, 1, 0.0, -1.0), (2, 3, 0.0, -1.0)]);
        assert!(solve_single_negative(&g2, &cfg()).is_none());
    }

    #[test]
    fn brute_force_respects_constraints() {
        let g = graph(
            3,
            vec![(0, 1, 0.9, 0.0), (1, 2, 0.8, 0.0), (0, 2, 0.0, -0.9)],
        );
        let p = brute_force_optimal(&g, &cfg());
        assert!(!p.violates_constraints(&g, cfg().tau));
        // Optimal keeps the heavier edge.
        assert!((p.objective(&g) - 0.9).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The greedy heuristic is feasible and close to optimal on
        /// small random graphs; the exact 1-negative solver is optimal.
        #[test]
        fn prop_greedy_feasible_and_bounded(
            n in 2usize..8,
            edges in proptest::collection::vec((0u32..8, 0u32..8, 0.0f64..1.0, 0u8..4), 1..16),
        ) {
            let mut seen = std::collections::HashSet::new();
            let edges: Vec<(u32, u32, f64, f64)> = edges
                .into_iter()
                .filter_map(|(a, b, p, negish)| {
                    let (a, b) = (a.min(b), a.max(b));
                    if a == b || a as usize >= n || b as usize >= n || !seen.insert((a, b)) {
                        return None;
                    }
                    let neg = if negish == 0 { -0.9 } else { 0.0 };
                    Some((a, b, p, neg))
                })
                .collect();
            let g = graph(n, edges);
            let cfg = cfg();
            let greedy = greedy_partition(&g, &cfg);
            prop_assert!(!greedy.violates_constraints(&g, cfg.tau));
            let optimal = brute_force_optimal(&g, &cfg);
            prop_assert!(!optimal.violates_constraints(&g, cfg.tau));
            let (gs, os) = (greedy.objective(&g), optimal.objective(&g));
            prop_assert!(gs <= os + 1e-9, "greedy {gs} beat optimal {os}?");
        }

        #[test]
        fn prop_single_negative_exact_is_optimal(
            n in 2usize..8,
            edges in proptest::collection::vec((0u32..8, 0u32..8, 0.05f64..1.0), 1..14),
            neg_pair in (0u32..8, 0u32..8),
        ) {
            let mut seen = std::collections::HashSet::new();
            let mut es: Vec<(u32, u32, f64, f64)> = edges
                .into_iter()
                .filter_map(|(a, b, p)| {
                    let (a, b) = (a.min(b), a.max(b));
                    if a == b || b as usize >= n || !seen.insert((a, b)) {
                        return None;
                    }
                    Some((a, b, p, 0.0))
                })
                .collect();
            let (s, t) = (neg_pair.0.min(neg_pair.1), neg_pair.0.max(neg_pair.1));
            prop_assume!(s != t && (t as usize) < n);
            if seen.contains(&(s, t)) {
                for e in &mut es {
                    if (e.0, e.1) == (s, t) {
                        e.3 = -0.9;
                    }
                }
            } else {
                es.push((s, t, 0.0, -0.9));
            }
            let g = graph(n, es);
            let cfg = cfg();
            let exact = solve_single_negative(&g, &cfg).expect("one neg edge");
            prop_assert!(!exact.violates_constraints(&g, cfg.tau));
            let brute = brute_force_optimal(&g, &cfg);
            prop_assert!((exact.objective(&g) - brute.objective(&g)).abs() < 1e-6,
                "mincut {} vs optimal {}", exact.objective(&g), brute.objective(&g));
        }
    }
}
