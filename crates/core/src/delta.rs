//! Incremental corpus deltas — re-enter the staged pipeline at
//! blocking instead of re-running the world.
//!
//! A [`SynthesisSession`] caches three expensive stage artifacts;
//! [`SynthesisSession::apply_delta`] advances all of them under a
//! [`CorpusDelta`] (tables appended to the corpus + live tables
//! removed + row-granular [`RowPatch`]es to surviving tables) so that
//! every variant derived afterwards —
//! [`SynthesisSession::synthesize`], `graph`, `weights_for` — is
//! **bit-identical** to what a fresh session on the post-delta corpus
//! would produce, at a fraction of the cost:
//!
//! | Stage | Delta work |
//! |---|---|
//! | 1. Extraction | old columns re-scored *arithmetically* from cached co-occurrence counts ([`mapsynth_extract::ExtractionCache`]); FD/structural filters never re-run for unchanged tables; row-patched tables patch the value index per changed column and re-extract only themselves |
//! | 2. Value space | interning extended **append-only** ([`crate::values::extend_value_space`]); removed tables tombstoned, never renumbered; row-patched candidates re-project in place, keeping their stage-2 position |
//! | 3a. Blocking | posting lists + pair counts patched for touched keys only ([`crate::blocking::BlockingIndex`]) |
//! | 3b. Approx memo | the fresh build's filtered enumeration (length window → signature prefilters → edit-distance kernel), restricted to newly queryable pairs ([`crate::approx::ApproxMemo::extend`]); `ValueSpace` signatures extend append-only with the interning |
//! | 3c. Match counts | merge-join recomputed only for pairs whose support changed (including every pair touching a row-patched table); surviving pairs keep their cached [`MatchCounts`] verbatim |
//! | 4. Variant tail | unchanged — runs over the patched artifacts |
//!
//! # Why bit-identity holds
//!
//! The incremental path keeps old [`crate::values::NormId`]s and table
//! positions (tombstones, not renumbering) while a fresh session
//! renumbers everything, so equality is only possible because nothing
//! in scoring depends on the *numbering*: canonical pair orientation
//! ties break on a content hash, residual conflicts record class
//! *sets*, majority-vote ties break on strings, and every downstream
//! tie-break (hub sampling, partition heap) depends only on the
//! *relative* order of live tables — which tombstoning preserves.
//! The one operation that genuinely reorders tables relative to a
//! fresh run — an *old* table gaining a candidate because a borderline
//! column crossed the coherence threshold (routine for additive
//! deltas: growing the corpus shifts every NPMI via `N`) — is detected
//! by the extraction cache and answered with the **renumber path**
//! (`reordered` in the report): candidate ids and table positions are
//! rebuilt in fresh order, but the value space, the approximate-match
//! memo and every surviving pair's match counts are still carried
//! over, so even that path skips all edit-distance DP and most of the
//! merge-join.
//!
//! ```
//! use mapsynth::delta::CorpusDelta;
//! use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
//! use mapsynth_corpus::{Corpus, RowPatch};
//!
//! let mut corpus = Corpus::new();
//! let d = corpus.domain("example.com");
//! for _ in 0..4 {
//!     corpus.push_table(d, vec![
//!         (Some("name"), vec!["United States", "Canada", "Japan", "Germany", "France"]),
//!         (Some("code"), vec!["USA", "CAN", "JPN", "DEU", "FRA"]),
//!     ]);
//! }
//! let mut session = SynthesisSession::new(PipelineConfig::default());
//! session.prepare(&corpus);
//!
//! // Corpus evolves: one table retired, one appended, one edited in
//! // place (rows change, the table id does not). Row patches are
//! // applied to the corpus *first*, then named in the delta.
//! let removed = vec![corpus.tables[1].id];
//! let added = vec![corpus.push_table(d, vec![
//!     (Some("name"), vec!["United States", "Canada", "Japan", "Germany", "France"]),
//!     (Some("code"), vec!["USA", "CAN", "JPN", "DEU", "FRA"]),
//! ])];
//! let patch = RowPatch {
//!     table: corpus.tables[0].id,
//!     deleted: vec![],
//!     inserted: vec![vec!["Italy".to_string(), "ITA".to_string()]],
//! };
//! corpus.apply_row_patch(&patch);
//! let delta = CorpusDelta { added, removed, patches: vec![patch] };
//! let report = session.apply_delta(&corpus, &delta).expect("valid delta");
//! assert_eq!(report.tables_added, 1);
//! assert_eq!(report.tables_patched, 1);
//!
//! // Derived variants now reflect the post-delta corpus.
//! let run = session.synthesize(&session.config().synthesis.clone(), Resolver::Algorithm4);
//! assert!(!run.mappings.is_empty());
//! ```

use crate::blocking::BlockingIndex;
use crate::compat::{MatchCounts, PairWeights};
use crate::session::SynthesisSession;
use crate::values::{
    extend_value_space, grow_value_space_sharded, project_candidate_at, NormBinary, ValueInterning,
};
use mapsynth_corpus::{BinaryTable, Corpus, RowPatch, TableId};
use mapsynth_extract::ExtractionCache;
use std::collections::HashSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// One batch of corpus evolution: tables appended to the corpus since
/// the session last saw it, live tables to retire, and row-granular
/// edits to tables that survive.
///
/// The corpus itself is append-only at table granularity — callers push
/// the new tables into the *same* [`Corpus`] the session was prepared
/// on and name them here; removal is logical (the session tombstones
/// every trace of the table). Row patches mutate the corpus in place:
/// callers apply each patch via [`Corpus::apply_row_patch`] **before**
/// handing the delta to [`SynthesisSession::apply_delta`], which uses
/// the patch lists to reconstruct the pre-patch state arithmetically.
/// [`CorpusDelta::post_corpus`] materializes the reference semantics
/// for oracles and benchmarks.
#[derive(Clone, Debug, Default)]
pub struct CorpusDelta {
    /// Ids of tables appended to the corpus, in push order. Must be
    /// exactly the tables past the session's last-seen corpus length.
    pub added: Vec<TableId>,
    /// Ids of live tables to remove.
    pub removed: Vec<TableId>,
    /// Row-granular edits, already applied to the corpus via
    /// [`Corpus::apply_row_patch`]. At most one patch per table per
    /// delta; a patched table must be live and may not also appear in
    /// `added` or `removed`.
    pub patches: Vec<RowPatch>,
}

impl CorpusDelta {
    /// A fresh corpus equal to `corpus` with this delta's removed
    /// tables gone (added tables are assumed already pushed): the
    /// corpus a batch run would see. Tables are re-interned and
    /// renumbered densely — see [`Corpus::subset`].
    pub fn post_corpus(&self, corpus: &Corpus) -> Corpus {
        let removed: HashSet<TableId> = self.removed.iter().copied().collect();
        corpus.subset(|tid| !removed.contains(&tid))
    }
}

/// Wall-clock breakdown of one [`SynthesisSession::apply_delta`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaTimings {
    /// Incremental extraction: index patch + coherence re-scores +
    /// added-table extraction (plus candidate renumbering when
    /// `reordered`).
    pub extraction: Duration,
    /// Value-space extension + tombstoning.
    pub values: Duration,
    /// Blocking index patch + pair re-derivation.
    pub blocking: Duration,
    /// Context/memo growth + merge-join over changed pairs.
    pub scoring: Duration,
    /// End-to-end.
    pub total: Duration,
}

/// What one delta did to the session's artifacts.
#[derive(Clone, Debug, Default)]
pub struct DeltaReport {
    /// The delta hit a coherence-gain or projection-gain case (an old
    /// table gained a candidate, or a row-patched candidate that had
    /// been dropped below two usable pairs resurfaced) and was
    /// answered with the renumber path: candidate ids and table
    /// positions were rebuilt in fresh order, reusing the value space,
    /// the approximate-match memo and surviving match counts. Output
    /// is exactly the post-delta result either way, and the candidate
    /// counters below keep the same unified semantics on both paths.
    pub reordered: bool,
    /// Tables added / removed by the delta.
    pub tables_added: usize,
    /// Tables removed by the delta.
    pub tables_removed: usize,
    /// Tables edited in place by row patches.
    pub tables_patched: usize,
    /// Live candidate binary tables that exist after the delta but not
    /// before it — the same definition on the in-place and renumber
    /// paths, so `live_after = live_before + candidates_added -
    /// candidates_tombstoned` always holds.
    pub candidates_added: usize,
    /// Live candidates before the delta that are gone after it.
    pub candidates_tombstoned: usize,
    /// Live candidates surviving the delta with changed content (row
    /// patches): same extraction slot, new rows. Counted in neither
    /// `candidates_added` nor `candidates_tombstoned`.
    pub candidates_replaced: usize,
    /// Values newly interned into the space.
    pub new_values: usize,
    /// Old columns whose coherence verdict flipped.
    pub coherence_flips: usize,
    /// Blocked pairs surviving with their cached counts.
    pub pairs_kept: usize,
    /// Blocked pairs scored fresh (new tables, or old pairs surfaced
    /// by a hub-sample shift).
    pub pairs_added: usize,
    /// Blocked pairs dropped.
    pub pairs_removed: usize,
    /// Edit-distance kernel calls spent growing the approximate-match
    /// memo (candidates the signature prefilters could not reject).
    pub memo_dp_calls: usize,
    /// Cost breakdown.
    pub timings: DeltaTimings,
}

/// Why [`SynthesisSession::apply_delta`] rejected a [`CorpusDelta`].
///
/// Every rejection is **transactional**: the session is byte-identical
/// to its pre-apply state afterwards and keeps accepting deltas.
/// Malformed deltas (everything but [`ApplyPanicked`]) are caught by
/// upfront validation before any artifact is touched;
/// [`ApplyPanicked`] additionally contains a panic that escaped
/// mid-mutation — the session is restored from a pre-apply backup.
///
/// [`ApplyPanicked`]: DeltaError::ApplyPanicked
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// `apply_delta` was called on an unprepared session.
    NotPrepared,
    /// The corpus handed in does not hold exactly the delta's added
    /// tables appended to the corpus the session last saw — the
    /// session's fingerprint of the prepared corpus does not extend to
    /// this one.
    FingerprintMismatch {
        /// Tables the session expected (`last seen + added`).
        expected: usize,
        /// Tables the corpus actually holds.
        got: usize,
    },
    /// `delta.added` ids do not name the appended tables in push order.
    AddedIdOutOfOrder {
        /// The offending id.
        id: TableId,
        /// The id that position must carry.
        expected: u32,
    },
    /// A removed or patched table id past everything this session has
    /// ever seen.
    UnknownTable {
        /// The offending id.
        id: TableId,
    },
    /// `delta.removed` names a table a previous delta already removed.
    RemovedTableNotLive {
        /// The offending id.
        id: TableId,
    },
    /// The same table appears twice in `delta.removed`.
    DuplicateRemoval {
        /// The offending id.
        id: TableId,
    },
    /// A row patch targets a table that is not live (removed by a
    /// previous delta).
    PatchToRemovedTable {
        /// The offending id.
        id: TableId,
    },
    /// The same table is both patched and removed within one delta.
    PatchAndRemoveSameDelta {
        /// The offending id.
        id: TableId,
    },
    /// The same table is patched twice within one delta.
    DuplicatePatch {
        /// The offending id.
        id: TableId,
    },
    /// A row patch with neither deleted nor inserted rows: it cannot
    /// describe an edit, so it is rejected rather than silently
    /// re-scoring an unchanged table.
    EmptyPatch {
        /// The targeted table.
        id: TableId,
    },
    /// A row patch whose tuples contradict the shape of the table they
    /// claim to edit (wrong tuple width).
    ContradictoryPatch {
        /// The targeted table.
        id: TableId,
        /// The tuple width found in the patch.
        width: usize,
        /// The table's actual width.
        expected: usize,
    },
    /// The apply panicked mid-mutation (an internal invariant broke,
    /// or an induced fault fired). The panic was contained and the
    /// session restored byte-identical from its pre-apply backup.
    ApplyPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::NotPrepared => write!(f, "prepare() before apply_delta()"),
            DeltaError::FingerprintMismatch { expected, got } => write!(
                f,
                "corpus must hold exactly the delta's added tables appended to \
                 the prepared corpus (expected {expected} tables, got {got})"
            ),
            DeltaError::AddedIdOutOfOrder { id, expected } => write!(
                f,
                "added ids must name the appended tables in push order \
                 ({id:?} where TableId({expected}) was expected)"
            ),
            DeltaError::UnknownTable { id } => {
                write!(f, "table {id:?} unknown to this session")
            }
            DeltaError::RemovedTableNotLive { id } => {
                write!(f, "removed table {id:?} is not live")
            }
            DeltaError::DuplicateRemoval { id } => {
                write!(f, "table {id:?} removed twice in one delta")
            }
            DeltaError::PatchToRemovedTable { id } => {
                write!(f, "patched table {id:?} is not live")
            }
            DeltaError::PatchAndRemoveSameDelta { id } => {
                write!(f, "table {id:?} both patched and removed in one delta")
            }
            DeltaError::DuplicatePatch { id } => {
                write!(f, "table {id:?} patched twice in one delta")
            }
            DeltaError::EmptyPatch { id } => {
                write!(
                    f,
                    "patch to table {id:?} has neither deleted nor inserted rows"
                )
            }
            DeltaError::ContradictoryPatch {
                id,
                width,
                expected,
            } => write!(
                f,
                "patch to table {id:?} carries width-{width} tuples, table is width {expected}"
            ),
            DeltaError::ApplyPanicked { message } => {
                write!(
                    f,
                    "apply panicked mid-mutation (session restored): {message}"
                )
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Deterministic fault injection for crash-containment testing.
///
/// [`arm_induced_panic`](fault::arm_induced_panic) primes the
/// **current thread** so the next
/// [`SynthesisSession::apply_delta`] on it panics *after* the stage-1
/// extraction-cache mutation — past validation, in the middle of the
/// mutating section — exercising the backup/restore guard exactly
/// where a real invariant break would strike. The flag is one-shot:
/// it is consumed when it fires (and cleared defensively whenever an
/// apply is contained), so a harness arms it per sabotaged delta.
pub mod fault {
    use std::cell::Cell;

    thread_local! {
        static ARMED: Cell<bool> = const { Cell::new(false) };
    }

    /// Message carried by an induced panic, matched by harnesses.
    pub const INDUCED_PANIC_MESSAGE: &str = "induced apply fault (fault-injection harness)";

    /// Arm the current thread: the next `apply_delta` on it panics
    /// mid-mutation and must be contained + rolled back.
    pub fn arm_induced_panic() {
        ARMED.with(|a| a.set(true));
    }

    /// Clear the flag, returning whether it was armed.
    pub fn disarm() -> bool {
        ARMED.with(|a| a.replace(false))
    }

    /// Internal fire point, placed after the first artifact mutation.
    pub(crate) fn fire_if_armed() {
        if ARMED.with(|a| a.replace(false)) {
            panic!("{}", INDUCED_PANIC_MESSAGE);
        }
    }
}

/// A table in portable (content, not id) form: everything needed to
/// re-push it into any corpus. Shape-identical to the serving layer's
/// key-addressed table spec; lives here so the durable formats (delta
/// WAL records, snapshot archives) can be decoded without the serving
/// crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableTable {
    /// Caller-chosen stable identity (survives compaction renumbering).
    pub key: u64,
    /// Provenance domain name.
    pub domain: String,
    /// Columns as `(header, values)`.
    pub columns: Vec<(Option<String>, Vec<String>)>,
}

/// A row patch in portable form, addressed by stable table key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortablePatch {
    /// Key of the table to edit.
    pub key: u64,
    /// Full-width tuples to delete.
    pub deleted: Vec<Vec<String>>,
    /// Full-width tuples to append.
    pub inserted: Vec<Vec<String>>,
}

/// A self-contained, replayable corpus delta. [`CorpusDelta`] names
/// added tables by [`TableId`] — meaningful only against the corpus
/// instance it was built for — so it cannot be written to a log and
/// replayed after a crash. `PortableDelta` carries the added tables'
/// *content* and addresses removals/patches by stable key, making a
/// WAL record sufficient on its own: recovery re-pushes the tables
/// into the rebuilt corpus and resolves keys there.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PortableDelta {
    /// Tables to append, in order.
    pub add: Vec<PortableTable>,
    /// Keys of live tables to remove.
    pub remove: Vec<u64>,
    /// Row patches to live tables.
    pub patches: Vec<PortablePatch>,
}

mod portable_wire {
    //! Byte encoding of [`PortableDelta`](super::PortableDelta) for
    //! WAL records and archive frames, over the corpus crate's wire
    //! helpers. Integrity is the framing layer's job (CRC32 per
    //! frame); this layer still decodes defensively with typed
    //! [`WireError`]s — a decoder must never panic on bytes it did
    //! not write.

    use super::{PortableDelta, PortablePatch, PortableTable};
    use mapsynth_corpus::wire::{put_str, put_u32, put_u64, put_u8, WireError, WireReader};

    fn put_rows(buf: &mut Vec<u8>, rows: &[Vec<String>]) {
        put_u32(buf, rows.len() as u32);
        for row in rows {
            put_u32(buf, row.len() as u32);
            for cell in row {
                put_str(buf, cell);
            }
        }
    }

    fn read_rows(r: &mut WireReader<'_>) -> Result<Vec<Vec<String>>, WireError> {
        let n = r.u32()? as usize;
        let mut rows = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let w = r.u32()? as usize;
            let mut row = Vec::with_capacity(w.min(1 << 16));
            for _ in 0..w {
                row.push(r.str()?);
            }
            rows.push(row);
        }
        Ok(rows)
    }

    pub(super) fn encode(delta: &PortableDelta) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u32(&mut buf, delta.add.len() as u32);
        for t in &delta.add {
            t.encode_into(&mut buf);
        }
        put_u32(&mut buf, delta.remove.len() as u32);
        for k in &delta.remove {
            put_u64(&mut buf, *k);
        }
        put_u32(&mut buf, delta.patches.len() as u32);
        for p in &delta.patches {
            put_u64(&mut buf, p.key);
            put_rows(&mut buf, &p.deleted);
            put_rows(&mut buf, &p.inserted);
        }
        // Tag byte reserved for future extension of the record shape;
        // 0 = nothing follows.
        put_u8(&mut buf, 0);
        buf
    }

    pub(super) fn decode(bytes: &[u8]) -> Result<PortableDelta, WireError> {
        let mut r = WireReader::new(bytes);
        let n_add = r.u32()? as usize;
        let mut add = Vec::with_capacity(n_add.min(1 << 16));
        for _ in 0..n_add {
            add.push(PortableTable::decode_from(&mut r)?);
        }
        let n_rm = r.u32()? as usize;
        let mut remove = Vec::with_capacity(n_rm.min(1 << 16));
        for _ in 0..n_rm {
            remove.push(r.u64()?);
        }
        let n_patch = r.u32()? as usize;
        let mut patches = Vec::with_capacity(n_patch.min(1 << 16));
        for _ in 0..n_patch {
            let key = r.u64()?;
            let deleted = read_rows(&mut r)?;
            let inserted = read_rows(&mut r)?;
            patches.push(PortablePatch {
                key,
                deleted,
                inserted,
            });
        }
        match r.u8()? {
            0 => {}
            found => {
                return Err(WireError::BadTag {
                    at: r.position() - 1,
                    found,
                })
            }
        }
        r.finish()?;
        Ok(PortableDelta {
            add,
            remove,
            patches,
        })
    }
}

impl PortableDelta {
    /// Serialize to the durable wire format (a WAL record's payload).
    pub fn encode(&self) -> Vec<u8> {
        portable_wire::encode(self)
    }

    /// Decode a record produced by [`encode`](Self::encode), with
    /// typed errors on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, mapsynth_corpus::wire::WireError> {
        portable_wire::decode(bytes)
    }
}

impl PortableTable {
    /// Serialize one table onto `buf` (an archive's corpus frame is a
    /// length-prefixed sequence of these).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        use mapsynth_corpus::wire::{put_opt_str, put_str, put_u32, put_u64};
        put_u64(buf, self.key);
        put_str(buf, &self.domain);
        put_u32(buf, self.columns.len() as u32);
        for (header, values) in &self.columns {
            put_opt_str(buf, header.as_deref());
            put_u32(buf, values.len() as u32);
            for v in values {
                put_str(buf, v);
            }
        }
    }

    /// Decode one table from the cursor position.
    pub fn decode_from(
        r: &mut mapsynth_corpus::wire::WireReader<'_>,
    ) -> Result<Self, mapsynth_corpus::wire::WireError> {
        let key = r.u64()?;
        let domain = r.str()?;
        let n_cols = r.u32()? as usize;
        let mut columns = Vec::with_capacity(n_cols.min(1 << 16));
        for _ in 0..n_cols {
            let header = r.opt_str()?;
            let n_vals = r.u32()? as usize;
            let mut values = Vec::with_capacity(n_vals.min(1 << 16));
            for _ in 0..n_vals {
                values.push(r.str()?);
            }
            columns.push((header, values));
        }
        Ok(Self {
            key,
            domain,
            columns,
        })
    }
}

/// Everything [`SynthesisSession::apply_delta`] needs beyond the stage
/// artifacts themselves. Built during `prepare`, advanced per delta.
#[derive(Clone)]
pub(crate) struct IncrementalState {
    pub(crate) extraction_cache: ExtractionCache,
    pub(crate) interning: ValueInterning,
    pub(crate) blocking: BlockingIndex,
    /// Candidate index → position in the stage-2 tables slice (`None`:
    /// dropped below two usable pairs, or tombstoned).
    pub(crate) pos_of_candidate: Vec<Option<u32>>,
    /// Tombstone mask over the stage-2 tables slice.
    pub(crate) dead: Vec<bool>,
    /// Live mask over corpus table ids.
    pub(crate) alive_tables: Vec<bool>,
}

impl SynthesisSession {
    /// The post-delta reference corpus for this session: `corpus`
    /// restricted to the tables still live after every delta applied
    /// so far. A fresh session prepared on this corpus is the oracle
    /// the incremental path is tested against.
    pub fn live_corpus(&self, corpus: &Corpus) -> Corpus {
        match &self.incr {
            Some(incr) => corpus.subset(|tid| incr.alive_tables[tid.0 as usize]),
            None => corpus.subset(|_| true),
        }
    }

    /// Advance the prepared session by one [`CorpusDelta`], re-entering
    /// the staged pipeline at blocking. Afterwards every derived
    /// variant is bit-identical to a fresh session on
    /// [`live_corpus`](Self::live_corpus) (see the module docs for the
    /// invariance argument). Deterministic for any worker count.
    ///
    /// The apply is **all-or-nothing**: a malformed delta is rejected
    /// by upfront validation before any artifact is touched, and a
    /// panic escaping the mutating section is contained
    /// (`catch_unwind`) with the session restored from a pre-apply
    /// backup — either way [`Err`] leaves the session byte-identical
    /// to its pre-apply state and ready for the next delta. The corpus
    /// is the caller's to roll back (appended tables and applied row
    /// patches; see `mapsynth-serve`'s `DeltaIngestor` for the
    /// transactional driver).
    pub fn apply_delta(
        &mut self,
        corpus: &Corpus,
        delta: &CorpusDelta,
    ) -> Result<DeltaReport, DeltaError> {
        self.validate_delta(corpus, delta)?;
        let backup = SessionBackup {
            extraction: self.extraction.clone(),
            values: self.values.clone(),
            scores: self.scores.clone(),
            incr: self.incr.clone(),
            fingerprint: self.corpus_fingerprint,
        };
        match catch_unwind(AssertUnwindSafe(|| {
            self.apply_delta_unchecked(corpus, delta)
        })) {
            Ok(report) => Ok(report),
            Err(payload) => {
                // A panic before the fire point leaves the arm set for
                // the next (innocent) apply — always clear it.
                fault::disarm();
                self.extraction = backup.extraction;
                self.values = backup.values;
                self.scores = backup.scores;
                self.incr = backup.incr;
                self.corpus_fingerprint = backup.fingerprint;
                Err(DeltaError::ApplyPanicked {
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }

    /// Full upfront validation of `delta` against the session's
    /// last-seen corpus shape — no artifact is touched. `Ok` means the
    /// mutating path cannot reject the delta (only an internal
    /// invariant break — contained separately — could still fail it).
    fn validate_delta(&self, corpus: &Corpus, delta: &CorpusDelta) -> Result<(), DeltaError> {
        if self.scores.is_none() || self.incr.is_none() {
            return Err(DeltaError::NotPrepared);
        }
        let incr = self.incr.as_ref().expect("checked above");
        let old_len = incr.alive_tables.len();
        let mut seen = HashSet::new();
        for &tid in &delta.removed {
            if (tid.0 as usize) >= old_len {
                return Err(DeltaError::UnknownTable { id: tid });
            }
            if !incr.alive_tables[tid.0 as usize] {
                return Err(DeltaError::RemovedTableNotLive { id: tid });
            }
            if !seen.insert(tid) {
                return Err(DeltaError::DuplicateRemoval { id: tid });
            }
        }
        if corpus.len() != old_len + delta.added.len() {
            return Err(DeltaError::FingerprintMismatch {
                expected: old_len + delta.added.len(),
                got: corpus.len(),
            });
        }
        for (k, &tid) in delta.added.iter().enumerate() {
            if tid.0 as usize != old_len + k {
                return Err(DeltaError::AddedIdOutOfOrder {
                    id: tid,
                    expected: (old_len + k) as u32,
                });
            }
        }
        let mut patched = HashSet::new();
        for p in &delta.patches {
            let tid = p.table;
            if (tid.0 as usize) >= old_len {
                return Err(DeltaError::UnknownTable { id: tid });
            }
            if !incr.alive_tables[tid.0 as usize] {
                return Err(DeltaError::PatchToRemovedTable { id: tid });
            }
            if seen.contains(&tid) {
                return Err(DeltaError::PatchAndRemoveSameDelta { id: tid });
            }
            if !patched.insert(tid) {
                return Err(DeltaError::DuplicatePatch { id: tid });
            }
            if p.deleted.is_empty() && p.inserted.is_empty() {
                return Err(DeltaError::EmptyPatch { id: tid });
            }
            let expected = corpus.tables[tid.0 as usize].width();
            for row in p.deleted.iter().chain(&p.inserted) {
                if row.len() != expected {
                    return Err(DeltaError::ContradictoryPatch {
                        id: tid,
                        width: row.len(),
                        expected,
                    });
                }
            }
        }
        Ok(())
    }

    /// The mutating section: everything past validation. Runs under
    /// `catch_unwind` with a full artifact backup held by the caller,
    /// so internal invariant breaks surface as
    /// [`DeltaError::ApplyPanicked`] instead of corrupting the
    /// session.
    fn apply_delta_unchecked(&mut self, corpus: &Corpus, delta: &CorpusDelta) -> DeltaReport {
        let t_total = Instant::now();
        let mut report = DeltaReport {
            tables_added: delta.added.len(),
            tables_removed: delta.removed.len(),
            tables_patched: delta.patches.len(),
            ..Default::default()
        };
        {
            let incr = self.incr.as_mut().unwrap();
            incr.alive_tables.resize(corpus.len(), true);
            for &tid in &delta.removed {
                incr.alive_tables[tid.0 as usize] = false;
            }
        }

        // Stage 1 — incremental extraction.
        let live_before = self
            .incr
            .as_ref()
            .unwrap()
            .extraction_cache
            .live_candidates();
        let t = Instant::now();
        let ex = {
            let incr = self.incr.as_mut().unwrap();
            incr.extraction_cache.apply_delta(
                corpus,
                &delta.added,
                &delta.removed,
                &delta.patches,
                &self.cfg.extraction,
                &self.mr,
            )
        };
        report.timings.extraction = t.elapsed();
        report.coherence_flips = ex.coherence_flips;
        // Past the first artifact mutation: an induced fault striking
        // here proves the extraction cache rolls back with the rest.
        fault::fire_if_armed();

        if ex.reordered {
            // The extraction cache has already sentineled any
            // row-patched survivors, so the rebuilt candidate list
            // assigns them fresh ids.
            self.apply_delta_reordered(corpus, &mut report, live_before, ex.replaced.len());
            self.corpus_fingerprint = Some((corpus.len(), corpus.total_columns() as u64));
            report.timings.total = t_total.elapsed();
            return report;
        }
        report.candidates_added = ex.added.len();
        report.candidates_tombstoned = ex.tombstoned.len();
        report.candidates_replaced = ex.replaced.len();

        // Stage 2 — append-only value-space growth, in-place
        // re-projection of row-patched candidates, tombstoning.
        let t = Instant::now();
        let idx_base = self.extraction.as_ref().unwrap().candidates.len() as u32;
        debug_assert!(ex
            .added
            .iter()
            .enumerate()
            .all(|(k, c)| c.id.0 as usize == idx_base as usize + k));
        let (grown_space, replaced_proj, added_proj) = {
            let incr = self.incr.as_mut().unwrap();
            let values = self.values.as_ref().unwrap();
            let mut to_intern: Vec<BinaryTable> =
                Vec::with_capacity(ex.replaced.len() + ex.added.len());
            to_intern.extend(ex.replaced.iter().cloned());
            to_intern.extend(ex.added.iter().cloned());
            let grown = grow_value_space_sharded(
                &values.space,
                &mut incr.interning,
                &corpus.interner,
                &to_intern,
                &self.synonyms,
                &self.mr,
                self.mr.workers(),
            );
            let replaced_proj: Vec<(u32, Option<NormBinary>)> = ex
                .replaced
                .iter()
                .map(|rb| {
                    (
                        rb.id.0,
                        project_candidate_at(&grown, &incr.interning, rb, rb.id.0),
                    )
                })
                .collect();
            let added_proj: Vec<NormBinary> = ex
                .added
                .iter()
                .filter_map(|cand| project_candidate_at(&grown, &incr.interning, cand, cand.id.0))
                .collect();
            (grown, replaced_proj, added_proj)
        };

        // A row-patched candidate that had been projected out (below
        // two usable pairs) resurfacing breaks the stage-2 table order
        // a fresh run would produce — fall back to the renumber path.
        // The interning has already advanced past the grown space, so
        // that space must be installed first: the renumber extends it
        // rather than the pre-delta one.
        let projection_gain = {
            let incr = self.incr.as_ref().unwrap();
            replaced_proj
                .iter()
                .any(|(id, proj)| incr.pos_of_candidate[*id as usize].is_none() && proj.is_some())
        };
        if projection_gain {
            {
                let values = self.values.as_mut().unwrap();
                report.new_values = grown_space.len() - values.space.len();
                values.space = grown_space;
            }
            report.timings.values = t.elapsed();
            let replaced_ids: Vec<u32> = ex.replaced.iter().map(|c| c.id.0).collect();
            self.incr
                .as_mut()
                .unwrap()
                .extraction_cache
                .sentinel_candidates(&replaced_ids);
            self.apply_delta_reordered(corpus, &mut report, live_before, ex.replaced.len());
            self.corpus_fingerprint = Some((corpus.len(), corpus.total_columns() as u64));
            report.timings.total = t_total.elapsed();
            return report;
        }

        let (removed_positions, added_positions, replaced_positions, swaps) = {
            let incr = self.incr.as_mut().unwrap();
            let values = self.values.as_mut().unwrap();
            report.new_values = grown_space.len() - values.space.len();
            values.space = grown_space;
            let mut removed_positions = Vec::new();
            for &cand in &ex.tombstoned {
                if let Some(pos) = incr.pos_of_candidate[cand as usize].take() {
                    incr.dead[pos as usize] = true;
                    removed_positions.push(pos);
                }
            }
            // Row-patched candidates: survivors swap their stage-2
            // entry in place (deferred until blocking unregisters the
            // old content); ones dropping below two usable pairs leave
            // the slice like tombstones.
            let mut replaced_positions = Vec::new();
            let mut swaps: Vec<(u32, NormBinary)> = Vec::new();
            for (id, proj) in replaced_proj {
                match (incr.pos_of_candidate[id as usize], proj) {
                    (Some(pos), Some(nb)) => {
                        replaced_positions.push(pos);
                        swaps.push((pos, nb));
                    }
                    (Some(pos), None) => {
                        incr.pos_of_candidate[id as usize] = None;
                        incr.dead[pos as usize] = true;
                        removed_positions.push(pos);
                    }
                    // Projected out before and after: the raw content
                    // update below is all there is.
                    (None, _) => {}
                }
            }
            incr.pos_of_candidate
                .resize(idx_base as usize + ex.added.len(), None);
            let mut added_positions = Vec::new();
            for nb in added_proj {
                let pos = values.tables.len() as u32;
                incr.pos_of_candidate[nb.idx as usize] = Some(pos);
                values.tables.push(nb);
                incr.dead.push(false);
                added_positions.push(pos);
            }
            (
                removed_positions,
                added_positions,
                replaced_positions,
                swaps,
            )
        };
        report.timings.values = t.elapsed();
        self.values.as_mut().unwrap().elapsed += report.timings.values;

        // Stage 3a — blocking index patch. Replaced positions
        // unregister under their old content, swap, then re-register
        // under the new content alongside the appended tables.
        let t = Instant::now();
        let (pairs, blocking_stats) = {
            let incr = self.incr.as_mut().unwrap();
            let values = self.values.as_mut().unwrap();
            let cfg = &self.cfg.synthesis;
            let mut drop_list = removed_positions.clone();
            drop_list.extend_from_slice(&replaced_positions);
            incr.blocking
                .remove_tables(&values.space, &values.tables, &drop_list, cfg);
            for (pos, nb) in swaps {
                values.tables[pos as usize] = nb;
            }
            let mut add_list = replaced_positions.clone();
            add_list.extend_from_slice(&added_positions);
            incr.blocking
                .add_tables(&values.space, &values.tables, &add_list, cfg);
            incr.blocking.pairs(cfg)
        };
        report.timings.blocking = t.elapsed();

        // Stage 3b + 3c — grow the scoring context (patching the views
        // of row-patched tables in place), then recompute match counts
        // only for pairs whose support changed. Surviving pairs keep
        // their cached counts verbatim: two live tables' counts depend
        // only on their contents, the class partition restricted to
        // their values, and memoized distances — all of which the
        // delta leaves untouched. Every pair touching a row-patched
        // table re-joins, cached or not.
        let t = Instant::now();
        let values = self.values.as_ref().unwrap();
        let scores = self.scores.as_mut().unwrap();
        let dp_before = scores.context.build_stats.memo.dp_calls;
        scores.context.patch(
            &values.space,
            &values.tables,
            &replaced_positions,
            &added_positions,
            &self.mr,
        );
        report.memo_dp_calls = scores.context.build_stats.memo.dp_calls - dp_before;

        let replaced_set: HashSet<u32> = replaced_positions.iter().copied().collect();
        let old_counts = std::mem::take(&mut scores.counts);
        let mut kept: Vec<(u32, u32, MatchCounts)> = Vec::with_capacity(pairs.len());
        let mut fresh_pairs: Vec<(u32, u32)> = Vec::new();
        {
            let mut oi = 0usize;
            for &(a, b) in &pairs {
                while oi < old_counts.len() && (old_counts[oi].0, old_counts[oi].1) < (a, b) {
                    oi += 1;
                }
                let cached =
                    oi < old_counts.len() && (old_counts[oi].0, old_counts[oi].1) == (a, b);
                if cached && !replaced_set.contains(&a) && !replaced_set.contains(&b) {
                    kept.push(old_counts[oi]);
                    oi += 1;
                } else {
                    if cached {
                        oi += 1;
                    }
                    fresh_pairs.push((a, b));
                }
            }
        }
        report.pairs_kept = kept.len();
        report.pairs_added = fresh_pairs.len();
        report.pairs_removed = old_counts.len() - kept.len();

        let ctx = &scores.context;
        let space = &values.space;
        let computed: Vec<(u32, u32, MatchCounts)> = self
            .mr
            .par_map(&fresh_pairs, |&(a, b)| (a, b, ctx.counts(space, a, b)));

        // Sorted merge back into (a, b) order.
        let mut counts: Vec<(u32, u32, MatchCounts)> = Vec::with_capacity(pairs.len());
        {
            let (mut ki, mut ci) = (0usize, 0usize);
            while ki < kept.len() || ci < computed.len() {
                let take_kept = match (kept.get(ki), computed.get(ci)) {
                    (Some(k), Some(c)) => (k.0, k.1) < (c.0, c.1),
                    (Some(_), None) => true,
                    _ => false,
                };
                if take_kept {
                    counts.push(kept[ki]);
                    ki += 1;
                } else {
                    counts.push(computed[ci]);
                    ci += 1;
                }
            }
        }
        let cfg = &self.cfg.synthesis;
        let scored: Vec<(u32, u32, PairWeights)> = counts
            .iter()
            .map(|&(a, b, c)| {
                let w = c.weights(
                    values.tables[a as usize].len(),
                    values.tables[b as usize].len(),
                    cfg.approx_matching,
                );
                (a, b, w)
            })
            .collect();
        scores.counts = counts;
        scores.scored = scored;
        scores.blocking = blocking_stats;
        report.timings.scoring = t.elapsed();
        scores.elapsed += report.timings.blocking + report.timings.scoring;

        // Stage 1 artifact bookkeeping (after the value stage borrowed
        // the old candidate list length). Replaced candidates keep
        // their slot — `candidates[i].id.0 == i` stays invariant.
        let extraction = self.extraction.as_mut().unwrap();
        for rb in ex.replaced {
            let idx = rb.id.0 as usize;
            debug_assert_eq!(extraction.candidates[idx].id, rb.id);
            extraction.candidates[idx] = rb;
        }
        extraction.candidates.extend(ex.added);
        extraction.stats = ex.stats;
        extraction.elapsed += report.timings.extraction;
        extraction.funnel = self
            .incr
            .as_ref()
            .unwrap()
            .extraction_cache
            .coherence_funnel();

        debug_assert_eq!(
            live_before + report.candidates_added - report.candidates_tombstoned,
            self.incr
                .as_ref()
                .unwrap()
                .extraction_cache
                .live_candidates(),
            "unified candidate counters must balance"
        );

        self.corpus_fingerprint = Some((corpus.len(), corpus.total_columns() as u64));
        report.timings.total = t_total.elapsed();
        report
    }

    /// The renumber path: an old table gained a candidate (a
    /// borderline column crossed the coherence threshold — routine for
    /// additive deltas, since growing the corpus shifts every NPMI via
    /// `N`), so the candidate list must be rebuilt in fresh order. The
    /// expensive artifacts still carry over: the value space extends
    /// append-only, the approximate-match memo is reused (DP only for
    /// newly queryable value pairs), and surviving pairs' match counts
    /// are *remapped* to the new numbering instead of re-joined —
    /// only blocking and the per-table views rebuild outright.
    ///
    /// `live_before` is the live-candidate count before the delta's
    /// extraction pass and `replaced` the number of row-patched
    /// survivors (already sentineled out of the surviving-id map);
    /// together with the rebuilt list they pin down the unified
    /// candidate counters.
    fn apply_delta_reordered(
        &mut self,
        corpus: &Corpus,
        report: &mut DeltaReport,
        live_before: usize,
        replaced: usize,
    ) {
        report.reordered = true;
        let t = Instant::now();
        let incr = self.incr.as_mut().expect("incremental state");
        let (candidates, ex_stats, id_map) = incr.extraction_cache.rebuild_candidates(corpus);
        report.timings.extraction += t.elapsed();

        // Value space: extend append-only with the full (renumbered)
        // candidate list — already-interned values resolve through the
        // retained state, so only genuinely new strings normalize.
        let t = Instant::now();
        let old_values = self.values.take().expect("prepared");
        let (space, tables) = extend_value_space(
            &old_values.space,
            &mut incr.interning,
            &corpus.interner,
            &candidates,
            &self.synonyms,
            0,
            &self.mr,
        );
        report.new_values += space.len() - old_values.space.len();
        let mut pos_of_candidate: Vec<Option<u32>> = vec![None; candidates.len()];
        for (pos, t) in tables.iter().enumerate() {
            pos_of_candidate[t.idx as usize] = Some(pos as u32);
        }
        report.timings.values += t.elapsed();

        // Old stage-2 position → new stage-2 position, for surviving
        // candidates (monotone: survivors keep their relative order).
        let old_scores = self.scores.take().expect("prepared");
        let old_pos_to_new: Vec<Option<u32>> = {
            let mut idx_to_new: Vec<Option<u32>> = vec![None; incr.pos_of_candidate.len().max(1)];
            for &(old_idx, new_idx) in &id_map {
                if (old_idx as usize) < idx_to_new.len() {
                    idx_to_new[old_idx as usize] = Some(new_idx);
                }
            }
            old_values
                .tables
                .iter()
                .map(|t| idx_to_new[t.idx as usize].and_then(|ni| pos_of_candidate[ni as usize]))
                .collect()
        };

        // Blocking: unregister vanished tables (old coordinates),
        // renumber the index through the monotone survivor map, then
        // register gained/added tables at their new positions — pair
        // counts carry over for every untouched key.
        let t = Instant::now();
        let cfg = &self.cfg.synthesis;
        let removed_old: Vec<u32> = (0..old_values.tables.len() as u32)
            .filter(|&p| !incr.dead[p as usize] && old_pos_to_new[p as usize].is_none())
            .collect();
        incr.blocking
            .remove_tables(&space, &old_values.tables, &removed_old, cfg);
        let new_sizes: Vec<u32> = tables.iter().map(|t| t.len() as u32).collect();
        incr.blocking.remap(&old_pos_to_new, new_sizes);
        let is_survivor: std::collections::HashSet<u32> =
            old_pos_to_new.iter().flatten().copied().collect();
        let added_new: Vec<u32> = (0..tables.len() as u32)
            .filter(|p| !is_survivor.contains(p))
            .collect();
        incr.blocking.add_tables(&space, &tables, &added_new, cfg);
        let (pairs, blocking_stats) = incr.blocking.pairs(cfg);
        report.timings.blocking = t.elapsed();

        // Scoring: views rebuilt, memo reused, surviving counts
        // remapped, only genuinely new pairs merge-joined.
        let t = Instant::now();
        let dp_before = old_scores.context.build_stats.memo.dp_calls;
        let context = crate::compat::ScoringContext::rebuild_reusing(
            &old_scores.context,
            &space,
            &tables,
            cfg,
            &self.mr,
        );
        report.memo_dp_calls = context.build_stats.memo.dp_calls - dp_before;

        let remapped: Vec<(u32, u32, MatchCounts)> = old_scores
            .counts
            .iter()
            .filter_map(|&(a, b, c)| {
                let (a2, b2) = (old_pos_to_new[a as usize]?, old_pos_to_new[b as usize]?);
                debug_assert!(a2 < b2, "monotone renumbering preserves pair order");
                Some((a2, b2, c))
            })
            .collect();
        let mut kept: Vec<(u32, u32, MatchCounts)> = Vec::with_capacity(pairs.len());
        let mut fresh_pairs: Vec<(u32, u32)> = Vec::new();
        {
            let mut oi = 0usize;
            for &(a, b) in &pairs {
                while oi < remapped.len() && (remapped[oi].0, remapped[oi].1) < (a, b) {
                    oi += 1;
                }
                if oi < remapped.len() && (remapped[oi].0, remapped[oi].1) == (a, b) {
                    kept.push(remapped[oi]);
                    oi += 1;
                } else {
                    fresh_pairs.push((a, b));
                }
            }
        }
        report.pairs_kept = kept.len();
        report.pairs_added = fresh_pairs.len();
        report.pairs_removed = old_scores.counts.len() - kept.len();
        let ctx_ref = &context;
        let space_ref = &space;
        let computed: Vec<(u32, u32, MatchCounts)> = self.mr.par_map(&fresh_pairs, |&(a, b)| {
            (a, b, ctx_ref.counts(space_ref, a, b))
        });
        let mut counts: Vec<(u32, u32, MatchCounts)> = Vec::with_capacity(pairs.len());
        {
            let (mut ki, mut ci) = (0usize, 0usize);
            while ki < kept.len() || ci < computed.len() {
                let take_kept = match (kept.get(ki), computed.get(ci)) {
                    (Some(k), Some(c)) => (k.0, k.1) < (c.0, c.1),
                    (Some(_), None) => true,
                    _ => false,
                };
                if take_kept {
                    counts.push(kept[ki]);
                    ki += 1;
                } else {
                    counts.push(computed[ci]);
                    ci += 1;
                }
            }
        }
        let scored: Vec<(u32, u32, PairWeights)> = counts
            .iter()
            .map(|&(a, b, c)| {
                let w = c.weights(
                    tables[a as usize].len(),
                    tables[b as usize].len(),
                    cfg.approx_matching,
                );
                (a, b, w)
            })
            .collect();
        report.timings.scoring = t.elapsed();
        // Unified counter semantics, identical to the in-place path.
        // `id_map` also carries ids handed to this delta's added-table
        // candidates before the renumber was detected, so pre-delta
        // survivors are the entries whose old id predates the
        // session's candidate list: those are live on both sides with
        // unchanged content, `replaced` are live on both sides with
        // changed content, everything else in the rebuilt list was
        // gained, and whatever was live before and is neither is gone.
        let idx_base = self.extraction.as_ref().expect("prepared").candidates.len() as u32;
        let survivors = id_map.iter().filter(|&&(old, _)| old < idx_base).count();
        report.candidates_replaced = replaced;
        report.candidates_added = candidates.len() - survivors - replaced;
        report.candidates_tombstoned = live_before - survivors - replaced;

        // Install the renumbered artifacts.
        let extraction = self.extraction.as_mut().expect("prepared");
        extraction.candidates = candidates;
        extraction.stats = ex_stats;
        extraction.elapsed += report.timings.extraction;
        extraction.funnel = incr.extraction_cache.coherence_funnel();
        incr.dead = vec![false; tables.len()];
        incr.pos_of_candidate = pos_of_candidate;
        self.values = Some(crate::session::ValueArtifact {
            space,
            tables,
            elapsed: old_values.elapsed + report.timings.values,
        });
        self.scores = Some(crate::session::ScoreArtifact {
            scored,
            counts,
            context,
            blocking: blocking_stats,
            elapsed: old_scores.elapsed + report.timings.blocking + report.timings.scoring,
            detail: old_scores.detail,
        });
    }
}

/// Pre-apply snapshot of every session artifact a delta mutates.
/// Restored wholesale when the guarded apply panics; dropped (one
/// deallocation pass, no copies back) when it succeeds.
struct SessionBackup {
    extraction: Option<crate::session::ExtractionArtifact>,
    values: Option<crate::session::ValueArtifact>,
    scores: Option<crate::session::ScoreArtifact>,
    incr: Option<IncrementalState>,
    fingerprint: Option<(usize, u64)>,
}

/// Best-effort extraction of a contained panic's payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{PipelineConfig, Resolver};

    #[test]
    fn portable_delta_round_trips() {
        let delta = PortableDelta {
            add: vec![
                PortableTable {
                    key: 42,
                    domain: "example.org".into(),
                    columns: vec![
                        (Some("name".into()), vec!["Japan".into(), "Perú".into()]),
                        (None, vec!["JPN".into(), "PER".into()]),
                    ],
                },
                PortableTable {
                    key: u64::MAX,
                    domain: String::new(),
                    columns: vec![],
                },
            ],
            remove: vec![7, 0],
            patches: vec![PortablePatch {
                key: 42,
                deleted: vec![vec!["Japan".into(), "JPN".into()]],
                inserted: vec![vec![], vec!["Chile".into(), "CHL".into()]],
            }],
        };
        let bytes = delta.encode();
        assert_eq!(PortableDelta::decode(&bytes).unwrap(), delta);
        let empty = PortableDelta::default();
        assert_eq!(PortableDelta::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn portable_delta_decode_is_total() {
        use mapsynth_corpus::wire::WireError;
        let bytes = PortableDelta {
            add: vec![PortableTable {
                key: 1,
                domain: "d".into(),
                columns: vec![(None, vec!["x".into()])],
            }],
            remove: vec![9],
            patches: vec![],
        }
        .encode();
        // Every strict prefix fails with a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                PortableDelta::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Trailing garbage is flagged.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            PortableDelta::decode(&long),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
        // A bad extension tag is flagged.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] = 3;
        assert!(matches!(
            PortableDelta::decode(&bad),
            Err(WireError::BadTag { found: 3, .. })
        ));
    }

    /// A corpus of two conflicting standards (ISO vs IOC codes) spread
    /// over several domains, with typo'd spellings so approximate
    /// matching has real work.
    fn base_corpus() -> Corpus {
        let mut corpus = Corpus::new();
        let iso: Vec<(&str, &str)> = vec![
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "DZA"),
            ("Germany", "DEU"),
            ("Netherlands", "NLD"),
            ("Greece", "GRC"),
        ];
        let ioc: Vec<(&str, &str)> = vec![
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "ALG"),
            ("Germany", "GER"),
            ("Netherlands", "NED"),
            ("Greece", "GRE"),
        ];
        let typo: Vec<(&str, &str)> = vec![
            ("Afghanistan", "AFG"),
            ("Albania xy", "ALB"),
            ("Algeria", "DZA"),
            ("Germany z", "DEU"),
            ("Netherland", "NLD"),
            ("Greece", "GRC"),
        ];
        for (prefix, rows) in [("iso", &iso), ("ioc", &ioc), ("typo", &typo)] {
            for i in 0..5 {
                let d = corpus.domain(&format!("{prefix}-{i}.org"));
                let (l, r): (Vec<&str>, Vec<&str>) = rows.iter().cloned().unzip();
                corpus.push_table(d, vec![(Some("country"), l), (Some("code"), r)]);
            }
        }
        corpus
    }

    fn push_rows(corpus: &mut Corpus, domain: &str, rows: &[(&str, &str)]) -> TableId {
        let d = corpus.domain(domain);
        let (l, r): (Vec<&str>, Vec<&str>) = rows.iter().cloned().unzip();
        corpus.push_table(d, vec![(Some("country"), l), (Some("code"), r)])
    }

    /// Assert the delta session's derived output is bit-identical to a
    /// fresh session prepared on the live corpus, for every resolver.
    fn assert_matches_fresh(session: &SynthesisSession, corpus: &Corpus) {
        let fresh_corpus = session.live_corpus(corpus);
        let mut fresh = SynthesisSession::new(session.config().clone());
        fresh.prepare(&fresh_corpus);
        let base = session.config().synthesis;
        for resolver in [Resolver::Algorithm4, Resolver::MajorityVote, Resolver::None] {
            let a = session.synthesize(&base, resolver);
            let b = fresh.synthesize(&base, resolver);
            assert_eq!(a.edges, b.edges, "{resolver:?}: edge count");
            assert_eq!(a.partitions, b.partitions, "{resolver:?}: partitions");
            assert_eq!(a.mappings.len(), b.mappings.len(), "{resolver:?}: mappings");
            for (x, y) in a.mappings.iter().zip(&b.mappings) {
                assert_eq!(
                    x.materialize_pairs(),
                    y.materialize_pairs(),
                    "{resolver:?}: pair content"
                );
                assert_eq!(x.domains, y.domains, "{resolver:?}: domains");
                assert_eq!(x.source_tables, y.source_tables, "{resolver:?}: sources");
            }
        }
    }

    #[test]
    fn delta_equals_fresh_session() {
        let mut corpus = base_corpus();
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);

        let removed = vec![TableId(1), TableId(7)];
        let added = vec![
            push_rows(
                &mut corpus,
                "new-0.org",
                &[
                    ("Afghanistan", "AFG"),
                    ("Albania", "ALB"),
                    ("Algeria", "DZA"),
                    ("Germany", "DEU"),
                    ("Netherlands", "NLD"),
                    ("Greece", "GRC"),
                ],
            ),
            push_rows(
                &mut corpus,
                "new-1.org",
                &[
                    ("Afghanistan", "AFG"),
                    ("Albania q", "ALB"),
                    ("Algeria", "ALG"),
                    ("Germany", "GER"),
                    ("Netherlandsx", "NED"),
                    ("Greece", "GRE"),
                ],
            ),
        ];
        let report = session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    added,
                    removed,
                    patches: vec![],
                },
            )
            .unwrap();
        assert_eq!(report.tables_added, 2);
        assert_eq!(report.tables_removed, 2);
        assert_matches_fresh(&session, &corpus);
    }

    #[test]
    fn delta_sequence_with_reinsert_equals_fresh() {
        let mut corpus = base_corpus();
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);

        // Delta 1: remove two ISO tables.
        let r1 = CorpusDelta {
            added: vec![],
            removed: vec![TableId(0), TableId(2)],
            patches: vec![],
        };
        session.apply_delta(&corpus, &r1).unwrap();
        assert_matches_fresh(&session, &corpus);

        // Delta 2: re-insert the same content under a new id, remove an
        // IOC table.
        let rows: Vec<(&str, &str)> = vec![
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "DZA"),
            ("Germany", "DEU"),
            ("Netherlands", "NLD"),
            ("Greece", "GRC"),
        ];
        let added = vec![push_rows(&mut corpus, "iso-0.org", &rows)];
        let r2 = CorpusDelta {
            added,
            removed: vec![TableId(6)],
            patches: vec![],
        };
        let report = session.apply_delta(&corpus, &r2).unwrap();
        // Re-inserted values resurrect their old NormIds.
        assert_eq!(report.new_values, 0, "re-inserted content interns nothing");
        assert_matches_fresh(&session, &corpus);

        // Delta 3: remove the re-inserted table again.
        let last = TableId(corpus.len() as u32 - 1);
        session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    added: vec![],
                    removed: vec![last],
                    patches: vec![],
                },
            )
            .unwrap();
        assert_matches_fresh(&session, &corpus);
    }

    #[test]
    fn removing_every_table_of_a_relation_drops_its_mappings() {
        let corpus = base_corpus();
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);
        let base = session.config().synthesis;
        let before = session.synthesize(&base, Resolver::Algorithm4);
        assert!(before
            .mappings
            .iter()
            .any(|m| m.contains_pair("germany", "ger")));

        // Remove all five IOC tables (ids 5..10): every mapping
        // supported only by them must vanish.
        let delta = CorpusDelta {
            added: vec![],
            removed: (5..10).map(TableId).collect(),
            patches: vec![],
        };
        session.apply_delta(&corpus, &delta).unwrap();
        let after = session.synthesize(&base, Resolver::Algorithm4);
        assert!(
            !after
                .mappings
                .iter()
                .any(|m| m.contains_pair("germany", "ger")),
            "IOC-only mapping must be gone once its last supporting tables are removed"
        );
        assert!(after
            .mappings
            .iter()
            .any(|m| m.contains_pair("germany", "deu")));
        assert_matches_fresh(&session, &corpus);
    }

    #[test]
    fn reorder_path_is_transparent() {
        // Force the coherence-gain renumber with a tiny corpus where
        // one column sits just under the threshold until a near-clone
        // arrives. Even if a particular generator change stops
        // triggering it, the assertion chain stays valid: output must
        // match fresh either way.
        let mut corpus = base_corpus();
        // A weakly coherent table: values shared with nothing.
        let weak: Vec<(&str, &str)> = vec![
            ("zulu one", "q1"),
            ("zulu two", "q2"),
            ("zulu three", "q3"),
            ("zulu four", "q4"),
        ];
        push_rows(&mut corpus, "weak.org", &weak);
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);

        // Adding a clone of the weak table gives its values
        // co-occurrence evidence — its columns flip coherent.
        let added = vec![push_rows(&mut corpus, "weak-2.org", &weak)];
        let report = session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    added,
                    removed: vec![],
                    patches: vec![],
                },
            )
            .unwrap();
        assert!(report.reordered, "weak-table clone must flip coherence");
        assert_matches_fresh(&session, &corpus);

        // The renumbered session keeps taking deltas.
        let added = vec![push_rows(
            &mut corpus,
            "new-after-fallback.org",
            &[
                ("Afghanistan", "AFG"),
                ("Albania", "ALB"),
                ("Algeria", "DZA"),
                ("Germany", "DEU"),
                ("Netherlands", "NLD"),
                ("Greece", "GRC"),
            ],
        )];
        session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    added,
                    removed: vec![TableId(3)],
                    patches: vec![],
                },
            )
            .unwrap();
        assert_matches_fresh(&session, &corpus);
    }

    #[test]
    fn delta_path_deterministic_across_worker_counts() {
        let outputs: Vec<Vec<Vec<(String, String)>>> = [1usize, 2, 8]
            .iter()
            .map(|&workers| {
                let mut corpus = base_corpus();
                let mut session = SynthesisSession::new(PipelineConfig {
                    workers,
                    ..Default::default()
                });
                session.prepare(&corpus);
                let added = vec![push_rows(
                    &mut corpus,
                    "w.org",
                    &[
                        ("Afghanistan", "AFG"),
                        ("Albania w", "ALB"),
                        ("Algeria", "ALG"),
                        ("Germany", "GER"),
                        ("Netherlands", "NED"),
                        ("Greece", "GRE"),
                    ],
                )];
                session
                    .apply_delta(
                        &corpus,
                        &CorpusDelta {
                            added,
                            removed: vec![TableId(4), TableId(9)],
                            patches: vec![],
                        },
                    )
                    .unwrap();
                let run =
                    session.synthesize(&session.config().synthesis.clone(), Resolver::Algorithm4);
                run.mappings.iter().map(|m| m.materialize_pairs()).collect()
            })
            .collect();
        assert_eq!(outputs[0], outputs[1], "1 vs 2 workers");
        assert_eq!(outputs[0], outputs[2], "1 vs 8 workers");
    }

    fn string_rows(rows: &[(&str, &str)]) -> Vec<Vec<String>> {
        rows.iter()
            .map(|&(l, r)| vec![l.to_string(), r.to_string()])
            .collect()
    }

    #[test]
    fn row_patch_delta_equals_fresh() {
        let mut corpus = base_corpus();
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);

        // One ISO table's Algeria row switches code standards in place.
        let patch = RowPatch {
            table: TableId(2),
            deleted: string_rows(&[("Algeria", "DZA")]),
            inserted: string_rows(&[("Algeria", "ALG")]),
        };
        corpus.apply_row_patch(&patch);
        let report = session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    patches: vec![patch],
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(report.tables_patched, 1);
        assert!(
            report.candidates_replaced >= 1,
            "the surviving candidates of the patched table must be replaced"
        );
        assert_matches_fresh(&session, &corpus);

        // Patches compose with table-granular evolution in one delta.
        let patch = RowPatch {
            table: TableId(6),
            deleted: string_rows(&[("Netherlands", "NED")]),
            inserted: string_rows(&[("Netherlands", "NLD"), ("Italy", "ITA")]),
        };
        corpus.apply_row_patch(&patch);
        let added = vec![push_rows(
            &mut corpus,
            "mixed.org",
            &[
                ("Afghanistan", "AFG"),
                ("Albania", "ALB"),
                ("Algeria", "DZA"),
                ("Germany", "DEU"),
                ("Netherlands", "NLD"),
                ("Greece", "GRC"),
            ],
        )];
        let report = session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    added,
                    removed: vec![TableId(12)],
                    patches: vec![patch],
                },
            )
            .unwrap();
        assert_eq!(report.tables_patched, 1);
        assert_eq!(report.tables_added, 1);
        assert_eq!(report.tables_removed, 1);
        assert_matches_fresh(&session, &corpus);
    }

    #[test]
    fn emptying_patch_equals_fresh_and_session_keeps_going() {
        let mut corpus = base_corpus();
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);

        // Delete every row of one ISO table; the table itself stays.
        let all_rows: Vec<(&str, &str)> = vec![
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "DZA"),
            ("Germany", "DEU"),
            ("Netherlands", "NLD"),
            ("Greece", "GRC"),
        ];
        let patch = RowPatch {
            table: TableId(1),
            deleted: string_rows(&all_rows),
            inserted: vec![],
        };
        corpus.apply_row_patch(&patch);
        let report = session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    patches: vec![patch],
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(
            report.candidates_tombstoned >= 1,
            "an emptied table cannot keep candidates"
        );
        assert_matches_fresh(&session, &corpus);

        // The session keeps taking deltas afterwards — including a
        // patch refilling the emptied (still live) table.
        let patch = RowPatch {
            table: TableId(1),
            deleted: vec![],
            inserted: string_rows(&all_rows),
        };
        corpus.apply_row_patch(&patch);
        session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    patches: vec![patch],
                    ..Default::default()
                },
            )
            .unwrap();
        assert_matches_fresh(&session, &corpus);
    }

    #[test]
    fn patch_below_two_usable_pairs_equals_fresh() {
        let mut corpus = base_corpus();
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);

        // Shrink a typo table to a single row: whatever survives
        // extraction cannot project (two usable pairs minimum).
        let patch = RowPatch {
            table: TableId(10),
            deleted: string_rows(&[
                ("Albania xy", "ALB"),
                ("Algeria", "DZA"),
                ("Germany z", "DEU"),
                ("Netherland", "NLD"),
                ("Greece", "GRC"),
            ]),
            inserted: vec![],
        };
        corpus.apply_row_patch(&patch);
        let report = session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    patches: vec![patch],
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(
            report.candidates_tombstoned + report.candidates_replaced >= 1,
            "a one-row table must lose its stage-2 presence one way or the other"
        );
        assert_matches_fresh(&session, &corpus);
    }

    #[test]
    fn patch_resurfacing_a_projection_renumbers_transparently() {
        // Two clone tables whose rows are mostly punctuation: the
        // punctuation values normalize to nothing, so each candidate
        // holds a single usable pair and is projected out of stage 2
        // even though extraction keeps it (the clones give its raw
        // values co-occurrence evidence). A patch that inserts one
        // usable row flips the projection back on — the old-table
        // gain that must renumber.
        let mut corpus = base_corpus();
        let junk: Vec<(&str, &str)> =
            vec![("Germany", "DEU"), ("**", "%%"), ("((", "@@"), ("[[", "]]")];
        push_rows(&mut corpus, "pg-1.org", &junk);
        push_rows(&mut corpus, "pg-2.org", &junk);
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);

        let patch = RowPatch {
            table: TableId(15),
            deleted: vec![],
            inserted: string_rows(&[("Greece", "GRC")]),
        };
        corpus.apply_row_patch(&patch);
        let report = session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    patches: vec![patch],
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(
            report.reordered,
            "a resurfacing projection must take the renumber path"
        );
        assert_matches_fresh(&session, &corpus);

        // And the renumbered session keeps taking row patches.
        let patch = RowPatch {
            table: TableId(16),
            deleted: string_rows(&[("[[", "]]")]),
            inserted: string_rows(&[("Albania", "ALB")]),
        };
        corpus.apply_row_patch(&patch);
        session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    patches: vec![patch],
                    ..Default::default()
                },
            )
            .unwrap();
        assert_matches_fresh(&session, &corpus);
    }

    #[test]
    fn patch_to_removed_table_rejected() {
        let mut corpus = base_corpus();
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);
        session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    removed: vec![TableId(0)],
                    ..Default::default()
                },
            )
            .unwrap();
        // The physical table still exists, so the corpus-level patch
        // applies — the session must reject it, not corrupt state.
        let patch = RowPatch {
            table: TableId(0),
            deleted: vec![],
            inserted: string_rows(&[("Italy", "ITA")]),
        };
        corpus.apply_row_patch(&patch);
        let err = session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    patches: vec![patch.clone()],
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert_eq!(err, DeltaError::PatchToRemovedTable { id: TableId(0) });
        // The rejection is transparent: the session still matches a
        // fresh oracle on its live corpus — which, because the patch
        // hit a tombstoned table, is unchanged by the corpus edit.
        assert_matches_fresh(&session, &corpus);
    }

    #[test]
    fn patch_and_remove_same_delta_rejected() {
        let mut corpus = base_corpus();
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);
        let patch = RowPatch {
            table: TableId(3),
            deleted: vec![],
            inserted: string_rows(&[("Italy", "ITA")]),
        };
        corpus.apply_row_patch(&patch);
        let err = session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    removed: vec![TableId(3)],
                    patches: vec![patch.clone()],
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert_eq!(err, DeltaError::PatchAndRemoveSameDelta { id: TableId(3) });
        // The session accepted nothing — a retried, well-formed delta
        // (patch only) still goes through.
        session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    patches: vec![patch],
                    ..Default::default()
                },
            )
            .unwrap();
        assert_matches_fresh(&session, &corpus);
    }

    #[test]
    fn double_removal_rejected() {
        let corpus = base_corpus();
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);
        let d = CorpusDelta {
            added: vec![],
            removed: vec![TableId(0)],
            patches: vec![],
        };
        session.apply_delta(&corpus, &d).unwrap();
        let err = session.apply_delta(&corpus, &d).unwrap_err();
        assert_eq!(err, DeltaError::RemovedTableNotLive { id: TableId(0) });
        assert_matches_fresh(&session, &corpus);
    }

    #[test]
    fn malformed_deltas_rejected_upfront() {
        let mut corpus = base_corpus();
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);

        // Unprepared session.
        let mut unprepared = SynthesisSession::new(PipelineConfig::default());
        assert_eq!(
            unprepared
                .apply_delta(&corpus, &CorpusDelta::default())
                .unwrap_err(),
            DeltaError::NotPrepared
        );

        // Empty patch.
        let err = session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    patches: vec![RowPatch {
                        table: TableId(2),
                        deleted: vec![],
                        inserted: vec![],
                    }],
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert_eq!(err, DeltaError::EmptyPatch { id: TableId(2) });

        // Contradictory patch: tuple width disagrees with the table.
        let err = session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    patches: vec![RowPatch {
                        table: TableId(2),
                        deleted: vec![],
                        inserted: vec![vec!["one-column-only".to_string()]],
                    }],
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            DeltaError::ContradictoryPatch {
                id: TableId(2),
                width: 1,
                expected: 2
            }
        );

        // Unknown table, duplicate removal, duplicate patch.
        let far = TableId(10_000);
        assert_eq!(
            session
                .apply_delta(
                    &corpus,
                    &CorpusDelta {
                        removed: vec![far],
                        ..Default::default()
                    }
                )
                .unwrap_err(),
            DeltaError::UnknownTable { id: far }
        );
        assert_eq!(
            session
                .apply_delta(
                    &corpus,
                    &CorpusDelta {
                        removed: vec![TableId(4), TableId(4)],
                        ..Default::default()
                    }
                )
                .unwrap_err(),
            DeltaError::DuplicateRemoval { id: TableId(4) }
        );
        let p = RowPatch {
            table: TableId(4),
            deleted: vec![],
            inserted: string_rows(&[("Italy", "ITA")]),
        };
        assert_eq!(
            session
                .apply_delta(
                    &corpus,
                    &CorpusDelta {
                        patches: vec![p.clone(), p],
                        ..Default::default()
                    }
                )
                .unwrap_err(),
            DeltaError::DuplicatePatch { id: TableId(4) }
        );

        // Fingerprint mismatch: the corpus grew but the delta does not
        // name the appended table.
        push_rows(&mut corpus, "sneaky.org", &[("Italy", "ITA")]);
        assert_eq!(
            session
                .apply_delta(&corpus, &CorpusDelta::default())
                .unwrap_err(),
            DeltaError::FingerprintMismatch {
                expected: 15,
                got: 16
            }
        );
        // Naming it, but with the wrong id, is out of order.
        assert_eq!(
            session
                .apply_delta(
                    &corpus,
                    &CorpusDelta {
                        added: vec![TableId(3)],
                        ..Default::default()
                    }
                )
                .unwrap_err(),
            DeltaError::AddedIdOutOfOrder {
                id: TableId(3),
                expected: 15
            }
        );

        // None of the rejections touched the session: the appended
        // table, once properly named, still applies cleanly.
        session
            .apply_delta(
                &corpus,
                &CorpusDelta {
                    added: vec![TableId(15)],
                    ..Default::default()
                },
            )
            .unwrap();
        assert_matches_fresh(&session, &corpus);
    }

    #[test]
    fn induced_panic_is_contained_and_rolled_back() {
        let mut corpus = base_corpus();
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);

        // Sabotage a perfectly valid delta: the fault fires after the
        // extraction cache has mutated, so containment must restore
        // every artifact from the backup.
        let added = vec![push_rows(
            &mut corpus,
            "sabotaged.org",
            &[
                ("Afghanistan", "AFG"),
                ("Albania", "ALB"),
                ("Algeria", "DZA"),
                ("Germany", "DEU"),
                ("Netherlands", "NLD"),
                ("Greece", "GRC"),
            ],
        )];
        let delta = CorpusDelta {
            added,
            removed: vec![TableId(1)],
            patches: vec![],
        };
        fault::arm_induced_panic();
        let err = session.apply_delta(&corpus, &delta).unwrap_err();
        match &err {
            DeltaError::ApplyPanicked { message } => {
                assert_eq!(message, fault::INDUCED_PANIC_MESSAGE)
            }
            other => panic!("expected ApplyPanicked, got {other:?}"),
        }
        assert!(!fault::disarm(), "the fault flag must be consumed");

        // The session was restored byte-identical: retrying the same
        // delta un-sabotaged succeeds and matches a fresh oracle.
        let report = session.apply_delta(&corpus, &delta).unwrap();
        assert_eq!(report.tables_added, 1);
        assert_eq!(report.tables_removed, 1);
        assert_matches_fresh(&session, &corpus);
    }
}
