//! Pairwise table compatibility (paper §4.1).
//!
//! * Positive compatibility `w⁺(B,B′) = max{|B∩B′|/|B|, |B∩B′|/|B′|}`
//!   (Equation 3) — the symmetric Maximum-of-Containment, chosen over
//!   Jaccard because a small table fully contained in a large one is
//!   perfectly compatible.
//! * Negative incompatibility `w⁻(B,B′) = −max{|F|/|B|, |F|/|B′|}`
//!   (Equation 4) where `F(B,B′) = {l | (l,r)∈B, (l,r′)∈B′, r≠r′}` is
//!   the FD-conflict set.
//!
//! Value matching layers (fast → slow): class equality (normalized
//! string equality ∪ synonym feed), then bounded edit-distance
//! matching (paper Algorithm 2) for residual values.
//!
//! # The scoring hot path
//!
//! Scoring used to rebuild a per-pair hash index of table `b` and
//! re-run edit distance from scratch for every scored pair. The fast
//! path instead shares a [`ScoringContext`] across all pairs of a run:
//!
//! * per table, a sorted interned `(left_class, right_class, right_id,
//!   left_id)` view with precomputed left-class runs, so
//!   [`ScoringContext::counts`] is a merge-join over two sorted slices
//!   (class-equality matches resolve by binary search inside a run);
//! * a global [`ApproxMemo`]: every cross-class approximate value match
//!   is resolved once per *value pair* instead of once per *table
//!   pair* — via a similarity-join pass (length window → signature
//!   prefilters → bit-parallel Myers kernel, see [`crate::approx`]) —
//!   and queried as an `O(log)` adjacency lookup behind an `O(1)`
//!   union-find component filter;
//! * [`MatchCounts`] carries both exact and approximate-inclusive
//!   counts, so weights for matching-parameter variants derive
//!   arithmetically — no re-scoring.
//!
//! The fast path is bit-identical to the naive per-pair loop (kept
//! under `#[cfg(test)]` as the property-test oracle).

use crate::approx::{ApproxMemo, ApproxMemoStats, ROLE_LEFT, ROLE_RIGHT};
use crate::config::SynthesisConfig;
use crate::values::{NormBinary, NormId, ValueSpace};
use mapsynth_mapreduce::MapReduce;
use mapsynth_text::MatchParams;
use std::time::{Duration, Instant};

/// Raw match counts between two candidate tables, in two variants:
/// `exact_*` uses class equality only (normalized equality ∪ synonyms),
/// the unprefixed fields additionally count approximate (edit-distance)
/// matches when the scoring run had them enabled. Keeping both lets
/// parameter sweeps toggle approximate matching arithmetically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchCounts {
    /// `|B ∩ B′|`: matching value pairs (approximate-inclusive).
    pub overlap: u32,
    /// `|F(B,B′)|`: left classes matched with conflicting rights
    /// (approximate-inclusive).
    pub conflicts: u32,
    /// Overlap under class equality alone.
    pub exact_overlap: u32,
    /// Conflicts under class equality alone.
    pub exact_conflicts: u32,
}

impl MatchCounts {
    /// Derive edge weights (Equations 3 and 4) from the stored counts —
    /// `approx` picks the approximate-inclusive or exact variant.
    pub fn weights(&self, len_a: usize, len_b: usize, approx: bool) -> PairWeights {
        let (o, f) = if approx {
            (self.overlap, self.conflicts)
        } else {
            (self.exact_overlap, self.exact_conflicts)
        };
        weights_from(o, f, len_a, len_b)
    }
}

/// Compatibility weights for a table pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairWeights {
    /// `w⁺` in `[0, 1]`.
    pub pos: f64,
    /// `w⁻` in `[-1, 0]`.
    pub neg: f64,
}

fn weights_from(overlap: u32, conflicts: u32, len_a: usize, len_b: usize) -> PairWeights {
    let la = len_a.max(1) as f64;
    let lb = len_b.max(1) as f64;
    let o = overlap as f64;
    let f = conflicts as f64;
    PairWeights {
        pos: (o / la).max(o / lb).min(1.0),
        neg: -((f / la).max(f / lb)).min(1.0),
    }
}

/// Turn match counts into edge weights (Equations 3 and 4), using the
/// approximate-inclusive counts.
pub fn pair_weights(counts: MatchCounts, len_a: usize, len_b: usize) -> PairWeights {
    weights_from(counts.overlap, counts.conflicts, len_a, len_b)
}

/// One table's scoring view: its pairs projected to interned classes,
/// sorted, with the structures the merge-join needs precomputed.
#[derive(Clone, Debug)]
struct TableView {
    /// `(left class, right class, right id, left id)` in the table's
    /// (class-sorted) pair order.
    trips: Vec<(u32, u32, NormId, NormId)>,
    /// Consecutive left-class runs: `(left class, start, end)`.
    runs: Vec<(u32, u32, u32)>,
    /// Distinct left values sorted by id: `(left id, left class)`.
    lefts: Vec<(NormId, u32)>,
    /// Renumbering-invariant content key (see [`content_key`]), the
    /// canonical-orientation sort key.
    key: (usize, u64),
}

fn view_of(space: &ValueSpace, t: &NormBinary) -> TableView {
    let trips: Vec<(u32, u32, NormId, NormId)> = t
        .pairs
        .iter()
        .map(|&(l, r)| (space.class(l), space.class(r), r, l))
        .collect();
    let mut runs = Vec::new();
    let mut start = 0usize;
    for i in 1..=trips.len() {
        if i == trips.len() || trips[i].0 != trips[start].0 {
            runs.push((trips[start].0, start as u32, i as u32));
            start = i;
        }
    }
    let mut lefts: Vec<(NormId, u32)> = trips.iter().map(|&(lc, _, _, l)| (l, lc)).collect();
    lefts.sort_unstable();
    lefts.dedup();
    let key = content_key(space, t);
    TableView {
        trips,
        runs,
        lefts,
        key,
    }
}

/// Renumbering-invariant content key of a table: `(pair count,
/// order-independent hash of the normalized pair strings)`.
///
/// Canonical orientation used to tie-break on interned ids, which made
/// scoring depend on the *numbering* of the value space. Incremental
/// sessions ([`crate::delta`]) intern append-only while a fresh session
/// on the same corpus renumbers from scratch, so every scoring
/// tie-break must be a function of table *content* alone — otherwise
/// delta-derived and fresh outputs could diverge on equal-length
/// tables.
pub(crate) fn content_key(space: &ValueSpace, t: &NormBinary) -> (usize, u64) {
    let hash = t
        .pairs
        .iter()
        .map(|&(l, r)| pair_content_hash(space.string(l), space.string(r)))
        .fold(0u64, u64::wrapping_add);
    (t.pairs.len(), hash)
}

/// FNV-1a over `left NUL right` (NUL cannot appear inside a normalized
/// string, so the pair encoding is unambiguous).
fn pair_content_hash(left: &str, right: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(left.as_bytes());
    eat(&[0]);
    eat(right.as_bytes());
    h
}

/// Canonical orientation over raw tables: content key, with a full
/// pair-content comparison as the (collision-only) tie-break. Shared by
/// [`score_pair`], the naive reference oracle, and the
/// [`ScoringContext`] view path so all three orient identically.
pub(crate) fn canonical_le(space: &ValueSpace, a: &NormBinary, b: &NormBinary) -> bool {
    let (ka, kb) = (content_key(space, a), content_key(space, b));
    match ka.cmp(&kb) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => {
            let strs = |t: &NormBinary| {
                let mut v: Vec<(&str, &str)> = t
                    .pairs
                    .iter()
                    .map(|&(l, r)| (space.string(l), space.string(r)))
                    .collect();
                v.sort_unstable();
                v
            };
            strs(a) <= strs(b)
        }
    }
}

/// Build-time cost breakdown of a [`ScoringContext`] (surfaced as
/// `graph_detail` by the pipeline baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScoringBuildStats {
    /// Wall-clock to build the per-table sorted views.
    pub index_build: Duration,
    /// Wall-clock of the one-shot approximate-match memo pass.
    pub approx_memo: Duration,
    /// Memo counters (values, DP calls, cached pairs, components).
    pub memo: ApproxMemoStats,
}

/// Shared scoring state for one candidate set: per-table sorted views
/// plus the global approximate-match memo. Built once per session;
/// every scored pair reuses it. Corpus deltas grow it in place with
/// [`extend`](Self::extend).
#[derive(Clone, Debug)]
pub struct ScoringContext {
    views: Vec<TableView>,
    memo: Option<ApproxMemo>,
    /// Role bits per value (kept so a delta can tell which old values
    /// *gained* a role and need fresh memo pairs).
    roles: Vec<u8>,
    params: MatchParams,
    approx_matching: bool,
    max_approx_cross: usize,
    /// Build cost breakdown.
    pub build_stats: ScoringBuildStats,
}

impl ScoringContext {
    /// Build the context: per-table views (parallel) and, when the
    /// config enables approximate matching, the one-shot [`ApproxMemo`]
    /// over every value that appears in a table.
    pub fn build(
        space: &ValueSpace,
        tables: &[NormBinary],
        cfg: &SynthesisConfig,
        mr: &MapReduce,
    ) -> Self {
        let t = Instant::now();
        let views: Vec<TableView> = mr.par_map(tables, |tb| view_of(space, tb));
        let index_build = t.elapsed();

        let mut roles = vec![0u8; space.len()];
        for tb in tables {
            for &(l, r) in &tb.pairs {
                roles[l.0 as usize] |= ROLE_LEFT;
                roles[r.0 as usize] |= ROLE_RIGHT;
            }
        }

        let mut build_stats = ScoringBuildStats {
            index_build,
            ..Default::default()
        };
        let memo = if cfg.approx_matching {
            let t = Instant::now();
            let memo = ApproxMemo::build(space, &roles, cfg.match_params, mr);
            build_stats.approx_memo = t.elapsed();
            build_stats.memo = memo.stats;
            Some(memo)
        } else {
            None
        };

        Self {
            views,
            memo,
            roles,
            params: cfg.match_params,
            approx_matching: cfg.approx_matching,
            max_approx_cross: cfg.max_approx_cross,
            build_stats,
        }
    }

    /// Rebuild the context over a *renumbered* table list while
    /// reusing `prev`'s approximate-match memo. Value ids are
    /// append-only stable across deltas even when candidate tables are
    /// renumbered, so the memoized distances — the expensive part —
    /// survive; only value pairs that became queryable (one side new
    /// or newly role-carrying) run the edit-distance kernel. Views are
    /// rebuilt (they
    /// are position-indexed and cheap).
    ///
    /// `space` must be append-only over the space `prev` was built
    /// with, and `cfg`'s matching settings must equal `prev`'s.
    pub fn rebuild_reusing(
        prev: &ScoringContext,
        space: &ValueSpace,
        tables: &[NormBinary],
        cfg: &SynthesisConfig,
        mr: &MapReduce,
    ) -> Self {
        assert_eq!(cfg.match_params, prev.params, "matching identity");
        assert_eq!(
            cfg.approx_matching, prev.approx_matching,
            "matching identity"
        );
        let t = Instant::now();
        let views: Vec<TableView> = mr.par_map(tables, |tb| view_of(space, tb));
        let index_build = t.elapsed();

        let mut roles = vec![0u8; space.len()];
        for tb in tables {
            for &(l, r) in &tb.pairs {
                roles[l.0 as usize] |= ROLE_LEFT;
                roles[r.0 as usize] |= ROLE_RIGHT;
            }
        }

        let mut build_stats = ScoringBuildStats {
            index_build,
            ..prev.build_stats
        };
        let memo = match &prev.memo {
            Some(m) => {
                let t = Instant::now();
                let grown = m.extend(space, &prev.roles, &roles, mr);
                build_stats.approx_memo = prev.build_stats.approx_memo + t.elapsed();
                build_stats.memo = grown.stats;
                Some(grown)
            }
            None => None,
        };

        Self {
            views,
            memo,
            roles,
            params: cfg.match_params,
            approx_matching: cfg.approx_matching,
            max_approx_cross: cfg.max_approx_cross,
            build_stats,
        }
    }

    /// Grow the context for a corpus delta: append views for the
    /// tables at positions `new_positions` (the tables slice must
    /// cover them; tombstoned tables' stale views are simply never
    /// queried again) and extend the memo with the pairs that became
    /// queryable — new values, or old values that gained a role.
    ///
    /// `space` is the *grown* value space (append-only over the one
    /// the context was built with).
    pub fn extend(
        &mut self,
        space: &ValueSpace,
        tables: &[NormBinary],
        new_positions: &[u32],
        mr: &MapReduce,
    ) {
        let t = Instant::now();
        let new_views: Vec<TableView> =
            mr.par_map(new_positions, |&ti| view_of(space, &tables[ti as usize]));
        debug_assert_eq!(
            new_positions.first().map(|&p| p as usize),
            (!new_positions.is_empty()).then_some(self.views.len()),
            "new views must append contiguously"
        );
        self.views.extend(new_views);
        self.build_stats.index_build += t.elapsed();

        let old_roles = std::mem::take(&mut self.roles);
        let mut roles = old_roles.clone();
        roles.resize(space.len(), 0);
        for &ti in new_positions {
            for &(l, r) in &tables[ti as usize].pairs {
                roles[l.0 as usize] |= ROLE_LEFT;
                roles[r.0 as usize] |= ROLE_RIGHT;
            }
        }
        if let Some(memo) = &self.memo {
            let t = Instant::now();
            let grown = memo.extend(space, &old_roles, &roles, mr);
            self.build_stats.approx_memo += t.elapsed();
            self.build_stats.memo = grown.stats;
            self.memo = Some(grown);
        }
        self.roles = roles;
    }

    /// Advance the context for a row-patch delta: rebuild the views of
    /// the tables at `replaced_positions` (whose `tables` entries now
    /// hold post-patch content), append views for `new_positions`, and
    /// extend the memo exactly as [`extend`](Self::extend) does.
    ///
    /// Replaced values' old role bits are kept — stale bits only ever
    /// cache extra memo pairs no live query can reach (the same
    /// argument that lets removed tables keep theirs) — so the memo
    /// grows monotonically and only genuinely new value pairs run the
    /// edit-distance kernel.
    pub fn patch(
        &mut self,
        space: &ValueSpace,
        tables: &[NormBinary],
        replaced_positions: &[u32],
        new_positions: &[u32],
        mr: &MapReduce,
    ) {
        let t = Instant::now();
        let replaced_views: Vec<TableView> = mr.par_map(replaced_positions, |&ti| {
            view_of(space, &tables[ti as usize])
        });
        for (&p, v) in replaced_positions.iter().zip(replaced_views) {
            self.views[p as usize] = v;
        }
        let new_views: Vec<TableView> =
            mr.par_map(new_positions, |&ti| view_of(space, &tables[ti as usize]));
        debug_assert_eq!(
            new_positions.first().map(|&p| p as usize),
            (!new_positions.is_empty()).then_some(self.views.len()),
            "new views must append contiguously"
        );
        self.views.extend(new_views);
        self.build_stats.index_build += t.elapsed();

        let old_roles = std::mem::take(&mut self.roles);
        let mut roles = old_roles.clone();
        roles.resize(space.len(), 0);
        for &ti in replaced_positions.iter().chain(new_positions) {
            for &(l, r) in &tables[ti as usize].pairs {
                roles[l.0 as usize] |= ROLE_LEFT;
                roles[r.0 as usize] |= ROLE_RIGHT;
            }
        }
        if let Some(memo) = &self.memo {
            let t = Instant::now();
            let grown = memo.extend(space, &old_roles, &roles, mr);
            self.build_stats.approx_memo += t.elapsed();
            self.build_stats.memo = grown.stats;
            self.memo = Some(grown);
        }
        self.roles = roles;
    }

    /// Build the context for a *compacted* session: views and roles
    /// are computed fresh over the compacted table list (exactly as
    /// [`build`](Self::build) would), but the approximate-match memo is
    /// carried over through [`ApproxMemo::compact`] — `map` translates
    /// pre-compaction value ids into the freshly rebuilt space — so no
    /// edit-distance work re-runs. The fresh roles also serve as the
    /// compaction filter that sheds every stale-role-only pair, leaving
    /// the memo bit-identical in behavior to a fresh build's.
    pub fn compacted(
        prev: &ScoringContext,
        space: &ValueSpace,
        tables: &[NormBinary],
        cfg: &SynthesisConfig,
        map: impl Fn(NormId) -> Option<NormId>,
        mr: &MapReduce,
    ) -> Self {
        assert_eq!(cfg.match_params, prev.params, "matching identity");
        assert_eq!(
            cfg.approx_matching, prev.approx_matching,
            "matching identity"
        );
        let t = Instant::now();
        let views: Vec<TableView> = mr.par_map(tables, |tb| view_of(space, tb));
        let index_build = t.elapsed();

        let mut roles = vec![0u8; space.len()];
        for tb in tables {
            for &(l, r) in &tb.pairs {
                roles[l.0 as usize] |= ROLE_LEFT;
                roles[r.0 as usize] |= ROLE_RIGHT;
            }
        }

        let mut build_stats = ScoringBuildStats {
            index_build,
            ..prev.build_stats
        };
        let memo = prev.memo.as_ref().map(|m| {
            let t = Instant::now();
            let compacted = m.compact(map, space.len(), &roles);
            build_stats.approx_memo = prev.build_stats.approx_memo + t.elapsed();
            build_stats.memo = compacted.stats;
            compacted
        });

        Self {
            views,
            memo,
            roles,
            params: cfg.match_params,
            approx_matching: cfg.approx_matching,
            max_approx_cross: cfg.max_approx_cross,
            build_stats,
        }
    }

    /// Number of tables in the context.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the context holds no tables.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The approximate-match memo, when the base config enabled
    /// approximate matching.
    pub fn memo(&self) -> Option<&ApproxMemo> {
        self.memo.as_ref()
    }

    /// The matching parameters the context was built with.
    pub fn params(&self) -> MatchParams {
        self.params
    }

    /// Whether match counts for `cfg`'s matching settings are derivable
    /// from this context without re-running edit distance: always, if
    /// `cfg` disables approximate matching; otherwise the memo must
    /// exist and cover (be at least as wide as) `cfg.match_params`.
    pub fn covers(&self, cfg: &SynthesisConfig) -> bool {
        !cfg.approx_matching
            || self
                .memo
                .as_ref()
                .is_some_and(|m| m.covers(cfg.match_params))
    }

    /// Match counts for the table pair `(a, b)` under the context's
    /// base matching settings, in canonical orientation (results are
    /// symmetric: `counts(a, b) == counts(b, a)`).
    pub fn counts(&self, space: &ValueSpace, a: u32, b: u32) -> MatchCounts {
        self.counts_with(
            space,
            a,
            b,
            self.params,
            self.approx_matching,
            self.max_approx_cross,
        )
    }

    /// Match counts under alternative matching settings — a merge-join
    /// over the cached views and memo, with **zero** edit-distance
    /// work. The memo is guard-independent, so any `max_approx_cross`
    /// is answerable. Panics if `approx` is requested but unanswerable
    /// (no memo or wider-than-build `params`); check with
    /// [`covers`](Self::covers).
    pub fn counts_with(
        &self,
        space: &ValueSpace,
        a: u32,
        b: u32,
        params: MatchParams,
        approx: bool,
        max_approx_cross: usize,
    ) -> MatchCounts {
        let memo = if approx {
            let m = self
                .memo
                .as_ref()
                .expect("approximate counts need a context built with approx_matching");
            assert!(
                m.covers(params),
                "match params {:?} wider than memoized {:?}; build a new context",
                params,
                m.params()
            );
            Some(m)
        } else {
            None
        };
        let (x, y) = if view_le(space, &self.views[a as usize], &self.views[b as usize]) {
            (&self.views[a as usize], &self.views[b as usize])
        } else {
            (&self.views[b as usize], &self.views[a as usize])
        };
        merge_join_counts(space, memo, x, y, params, max_approx_cross)
    }

    /// Score a table pair end to end from the cached state (canonical
    /// orientation, Equations 3–4).
    pub fn score_pair(&self, space: &ValueSpace, a: u32, b: u32) -> PairWeights {
        let counts = self.counts(space, a, b);
        counts.weights(
            self.views[a as usize].trips.len(),
            self.views[b as usize].trips.len(),
            self.approx_matching,
        )
    }
}

/// Canonical orientation on views: the precomputed content key, with a
/// string comparison for (hash-collision-only) ties — identical to
/// [`canonical_le`] by construction.
fn view_le(space: &ValueSpace, a: &TableView, b: &TableView) -> bool {
    match a.key.cmp(&b.key) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => {
            let strs = |v: &TableView| {
                let mut out: Vec<(&str, &str)> = v
                    .trips
                    .iter()
                    .map(|&(_, _, r, l)| (space.string(l), space.string(r)))
                    .collect();
                out.sort_unstable();
                out
            };
            strs(a) <= strs(b)
        }
    }
}

/// The allocation-light merge-join core: walk `a`'s and `b`'s
/// left-class runs in lockstep; resolve class-equal rights by binary
/// search within the matched run; resolve residual (class-unmatched)
/// lefts by intersecting the memo's neighbor lists with `b`'s key set.
/// Exactly reproduces the naive per-pair loop's counts.
fn merge_join_counts(
    space: &ValueSpace,
    memo: Option<&ApproxMemo>,
    a: &TableView,
    b: &TableView,
    params: MatchParams,
    max_approx_cross: usize,
) -> MatchCounts {
    let mut overlap = 0u32;
    let mut exact_overlap = 0u32;
    let mut exact_conflicts = 0u32;
    let mut last_exact_conflict: Option<u32> = None;
    // Conflict classes can repeat (and the residual pass can emit
    // classes the class-matched pass also saw), so distinct-count at
    // the end. Typically a handful of entries.
    let mut conflicts: Vec<u32> = Vec::new();
    let mut residual_pairs = 0usize;

    let (mut ai, mut bi) = (0usize, 0usize);
    while ai < a.runs.len() && bi < b.runs.len() {
        let (alc, astart, aend) = a.runs[ai];
        let (blc, bstart, bend) = b.runs[bi];
        if alc < blc {
            residual_pairs += (aend - astart) as usize;
            ai += 1;
            continue;
        }
        if alc > blc {
            bi += 1;
            continue;
        }
        let brun = &b.trips[bstart as usize..bend as usize];
        for &(_, rc, ar, _) in &a.trips[astart as usize..aend as usize] {
            // Equal range of `rc` among the run's (sorted) right classes.
            let lo = brun.partition_point(|t| t.1 < rc);
            let hi = brun.partition_point(|t| t.1 <= rc);
            let exact_m = lo < hi;
            let exact_mm = brun.len() > hi - lo;
            if exact_m {
                exact_overlap += 1;
            }
            if exact_mm && last_exact_conflict != Some(alc) {
                exact_conflicts += 1;
                last_exact_conflict = Some(alc);
            }
            match memo {
                Some(m) if exact_mm => {
                    let mut matched = exact_m;
                    let mut mismatched = false;
                    for &(_, _, br, _) in brun[..lo].iter().chain(&brun[hi..]) {
                        if matched && mismatched {
                            break;
                        }
                        if m.matches(space, ar, br, params) {
                            matched = true;
                        } else {
                            mismatched = true;
                        }
                    }
                    if matched {
                        overlap += 1;
                    }
                    if mismatched {
                        conflicts.push(alc);
                    }
                }
                _ => {
                    if exact_m {
                        overlap += 1;
                    }
                    if exact_mm {
                        conflicts.push(alc);
                    }
                }
            }
        }
        ai += 1;
        bi += 1;
    }
    while ai < a.runs.len() {
        residual_pairs += (a.runs[ai].2 - a.runs[ai].1) as usize;
        ai += 1;
    }

    // Approximate matching for lefts with no class match, bounded by
    // the cross-product guard exactly like the naive loop (the guard is
    // part of the scoring semantics, even though the memo makes the
    // work far cheaper than a cross product).
    if let Some(m) = memo {
        if residual_pairs > 0 && residual_pairs * b.trips.len() <= max_approx_cross {
            let (mut ai, mut bi) = (0usize, 0usize);
            while ai < a.runs.len() {
                let (alc, astart, aend) = a.runs[ai];
                while bi < b.runs.len() && b.runs[bi].0 < alc {
                    bi += 1;
                }
                if bi < b.runs.len() && b.runs[bi].0 == alc {
                    ai += 1;
                    continue; // class-matched run, handled above
                }
                for &(_, rc, ar, al) in &a.trips[astart as usize..aend as usize] {
                    let mut matched = false;
                    // Every mismatching b-left class counts (distinct
                    // classes are deduplicated at the end). Recording a
                    // single "winning" class would have to pick it by
                    // class id — a value-space *numbering* choice that
                    // incremental (append-only interned) and fresh
                    // sessions make differently.
                    let mut mismatched_classes: Vec<u32> = Vec::new();
                    for &(bl_raw, d) in m.neighbors(al) {
                        let bl = NormId(bl_raw);
                        let Ok(pos) = b.lefts.binary_search_by_key(&bl, |&(l, _)| l) else {
                            continue;
                        };
                        if !crate::approx::residual_match(space, al, bl, d, params) {
                            continue; // residual keys need a non-zero threshold
                        }
                        // Left values match approximately; compare the
                        // rights of this exact b-left.
                        let blc = b.lefts[pos].1;
                        let ri = b.runs.partition_point(|&(lc, _, _)| lc < blc);
                        let (_, bstart, bend) = b.runs[ri];
                        for &(_, rc2, br, l2) in &b.trips[bstart as usize..bend as usize] {
                            if l2 != bl {
                                continue;
                            }
                            if rc2 == rc || m.matches(space, ar, br, params) {
                                matched = true;
                            } else {
                                mismatched_classes.push(blc);
                            }
                        }
                    }
                    if matched {
                        overlap += 1;
                    } else {
                        conflicts.extend(mismatched_classes);
                    }
                }
                ai += 1;
            }
        }
    }

    conflicts.sort_unstable();
    conflicts.dedup();
    MatchCounts {
        overlap,
        conflicts: conflicts.len() as u32,
        exact_overlap,
        exact_conflicts,
    }
}

/// Count pair matches and left conflicts between two tables
/// (direction-sensitive, like the historical implementation — callers
/// wanting symmetric results use [`score_pair`] or a
/// [`ScoringContext`]). Builds a throwaway two-table context; scoring
/// loops should build one shared [`ScoringContext`] instead.
pub fn match_counts(
    space: &ValueSpace,
    a: &NormBinary,
    b: &NormBinary,
    cfg: &SynthesisConfig,
) -> MatchCounts {
    let (va, vb) = (view_of(space, a), view_of(space, b));
    let memo = cfg.approx_matching.then(|| {
        let mut roles = vec![0u8; space.len()];
        for t in [a, b] {
            for &(l, r) in &t.pairs {
                roles[l.0 as usize] |= ROLE_LEFT;
                roles[r.0 as usize] |= ROLE_RIGHT;
            }
        }
        ApproxMemo::build(space, &roles, cfg.match_params, &MapReduce::new(1))
    });
    merge_join_counts(
        space,
        memo.as_ref(),
        &va,
        &vb,
        cfg.match_params,
        cfg.max_approx_cross,
    )
}

/// Convenience: score a table pair end to end.
///
/// `w⁺` and `w⁻` are symmetric by definition (Eq. 3–4), but the
/// approximate-matching pass walks one table's residual lefts against
/// the other's, which makes raw counts direction-dependent in corner
/// cases (an a-left can approximately hit a b-left that was already
/// exactly matched from b's perspective). A canonical orientation —
/// smaller table first, ties broken by a content hash (`content_key`:
/// it must not depend on value-space numbering) —
/// restores `score_pair(a, b) == score_pair(b, a)` exactly.
pub fn score_pair(
    space: &ValueSpace,
    a: &NormBinary,
    b: &NormBinary,
    cfg: &SynthesisConfig,
) -> PairWeights {
    let (x, y) = if canonical_le(space, a, b) {
        (a, b)
    } else {
        (b, a)
    };
    let counts = match_counts(space, x, y, cfg);
    counts.weights(x.len(), y.len(), cfg.approx_matching)
}

/// The naive per-pair scoring loop, kept verbatim as the oracle for
/// property tests: rebuilds a hash index of `b` and re-runs banded
/// edit distance for every comparison. The production merge-join +
/// memo path must be bit-identical to this.
#[cfg(test)]
pub(crate) mod reference {
    use super::*;
    use mapsynth_text::{approx_match, fractional_threshold};
    use std::collections::{HashMap, HashSet};

    pub fn match_counts_naive(
        space: &ValueSpace,
        a: &NormBinary,
        b: &NormBinary,
        cfg: &SynthesisConfig,
    ) -> (u32, u32) {
        // Index b by left class.
        let mut b_index: HashMap<u32, Vec<(u32, NormId)>> = HashMap::with_capacity(b.len());
        for &(l, r) in &b.pairs {
            b_index
                .entry(space.class(l))
                .or_default()
                .push((space.class(r), r));
        }

        let mut overlap = 0u32;
        let mut conflict_lefts: HashSet<u32> = HashSet::new();
        let mut unmatched_a: Vec<(NormId, NormId)> = Vec::new();

        for &(l, r) in &a.pairs {
            let lc = space.class(l);
            match b_index.get(&lc) {
                Some(rights) => {
                    let rc = space.class(r);
                    let mut matched = false;
                    let mut mismatched = false;
                    for &(brc, br) in rights {
                        if brc == rc || right_approx(space, r, br, cfg) {
                            matched = true;
                        } else {
                            mismatched = true;
                        }
                    }
                    if matched {
                        overlap += 1;
                    }
                    if mismatched {
                        conflict_lefts.insert(lc);
                    }
                }
                None => unmatched_a.push((l, r)),
            }
        }

        if cfg.approx_matching
            && !unmatched_a.is_empty()
            && unmatched_a.len() * b.len() <= cfg.max_approx_cross
        {
            let mut b_lefts: Vec<(NormId, u32)> = Vec::new();
            let mut seen = HashSet::new();
            for &(l, _) in &b.pairs {
                if seen.insert(l) {
                    b_lefts.push((l, space.class(l)));
                }
            }
            for &(al, ar) in &unmatched_a {
                let a_str = space.compact(al);
                let a_len = a_str.chars().count();
                let mut matched = false;
                // All mismatching b-left classes count (mirrors the
                // production merge-join's renumbering-invariant
                // semantics).
                let mut mismatched_lefts: Vec<u32> = Vec::new();
                for &(bl, blc) in &b_lefts {
                    let b_str = space.compact(bl);
                    // The historical prefilter mixed bytes into the
                    // band; reproduced here (it is conservative — wider
                    // than needed — so it never changes results).
                    let max_band =
                        (a_len.max(b_str.len()) as f64 * cfg.match_params.f_ed) as usize + 1;
                    if a_len.abs_diff(b_str.chars().count()) > max_band {
                        continue;
                    }
                    if fractional_threshold(a_str, b_str, cfg.match_params) == 0 {
                        continue;
                    }
                    if !approx_match(a_str, b_str, cfg.match_params) {
                        continue;
                    }
                    let rc = space.class(ar);
                    for &(l2, r2) in &b.pairs {
                        if l2 != bl {
                            continue;
                        }
                        if space.class(r2) == rc || right_approx(space, ar, r2, cfg) {
                            matched = true;
                        } else {
                            mismatched_lefts.push(blc);
                        }
                    }
                }
                if matched {
                    overlap += 1;
                } else {
                    conflict_lefts.extend(mismatched_lefts);
                }
            }
        }

        (overlap, conflict_lefts.len() as u32)
    }

    fn right_approx(space: &ValueSpace, a: NormId, b: NormId, cfg: &SynthesisConfig) -> bool {
        cfg.approx_matching && approx_match(space.compact(a), space.compact(b), cfg.match_params)
    }

    /// Oracle `score_pair`: naive counts + canonical orientation.
    pub fn score_pair_naive(
        space: &ValueSpace,
        a: &NormBinary,
        b: &NormBinary,
        cfg: &SynthesisConfig,
    ) -> PairWeights {
        let (x, y) = if canonical_le(space, a, b) {
            (a, b)
        } else {
            (b, a)
        };
        let (overlap, conflicts) = match_counts_naive(space, x, y, cfg);
        weights_from(overlap, conflicts, x.len(), y.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_mapreduce::MapReduce;
    use mapsynth_text::SynonymDict;

    fn setup(tables: Vec<Vec<(&str, &str)>>) -> (std::sync::Arc<ValueSpace>, Vec<NormBinary>) {
        let mut corpus = Corpus::new();
        let d = corpus.domain("x");
        let cands: Vec<BinaryTable> = tables
            .into_iter()
            .enumerate()
            .map(|(i, rows)| {
                let syms = rows
                    .iter()
                    .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                    .collect();
                BinaryTable::new(BinaryId(i as u32), TableId(i as u32), d, 0, 1, syms)
            })
            .collect();
        build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &MapReduce::new(2),
        )
    }

    /// Paper Table 8 / Examples 7–9: B1 (IOC), B2 (IOC with synonyms),
    /// B3 (ISO).
    fn paper_tables() -> (std::sync::Arc<ValueSpace>, Vec<NormBinary>) {
        setup(vec![
            vec![
                ("Afghanistan", "AFG"),
                ("Albania", "ALB"),
                ("Algeria", "ALG"),
                ("American Samoa", "ASA"),
                ("South Korea", "KOR"),
                ("US Virgin Islands", "ISV"),
            ],
            vec![
                ("Afghanistan", "AFG"),
                ("Albania", "ALB"),
                ("Algeria", "ALG"),
                ("American Samoa (US)", "ASA"),
                ("Korea, Republic of (South)", "KOR"),
                ("United States Virgin Islands", "ISV"),
            ],
            vec![
                ("Afghanistan", "AFG"),
                ("Albania", "ALB"),
                ("Algeria", "DZA"),
                ("American Samoa", "ASM"),
                ("South Korea", "KOR"),
                ("US Virgin Islands", "VIR"),
            ],
        ])
    }

    #[test]
    fn paper_example_7_exact_positive() {
        // Without approximate matching: w+(B1,B2) = 3/6 = 0.5.
        let (space, t) = paper_tables();
        let cfg = SynthesisConfig {
            approx_matching: false,
            ..Default::default()
        };
        let w = score_pair(&space, &t[0], &t[1], &cfg);
        assert!((w.pos - 0.5).abs() < 1e-9, "w+ = {}", w.pos);
        assert_eq!(w.neg, 0.0);
    }

    #[test]
    fn paper_example_8_approximate_positive() {
        // With approximate matching, "American Samoa" ≈ "American
        // Samoa (US)" is also a match → w+ = 4/6 ≈ 0.67.
        let (space, t) = paper_tables();
        let cfg = SynthesisConfig::default();
        let w = score_pair(&space, &t[0], &t[1], &cfg);
        assert!((w.pos - 4.0 / 6.0).abs() < 1e-9, "w+ = {}", w.pos);
        assert_eq!(w.neg, 0.0, "same standard must not conflict");
    }

    #[test]
    fn paper_example_9_negative() {
        // B1 (IOC) vs B3 (ISO): 3 matching rows, 3 conflicting rows →
        // w+ = 0.5, w− = −0.5.
        let (space, t) = paper_tables();
        let cfg = SynthesisConfig {
            approx_matching: false,
            ..Default::default()
        };
        let w = score_pair(&space, &t[0], &t[2], &cfg);
        assert!((w.pos - 0.5).abs() < 1e-9, "w+ = {}", w.pos);
        assert!((w.neg - -0.5).abs() < 1e-9, "w− = {}", w.neg);
    }

    #[test]
    fn symmetry() {
        let (space, t) = paper_tables();
        let cfg = SynthesisConfig::default();
        let ctx = ScoringContext::build(&space, &t, &cfg, &MapReduce::new(2));
        for i in 0..t.len() {
            for j in 0..t.len() {
                let wij = score_pair(&space, &t[i], &t[j], &cfg);
                let wji = score_pair(&space, &t[j], &t[i], &cfg);
                assert!((wij.pos - wji.pos).abs() < 1e-9, "pos asym {i},{j}");
                assert!((wij.neg - wji.neg).abs() < 1e-9, "neg asym {i},{j}");
                // Context path must agree and be symmetric too.
                let cij = ctx.score_pair(&space, i as u32, j as u32);
                assert_eq!(cij, ctx.score_pair(&space, j as u32, i as u32));
                assert_eq!(cij, wij);
            }
        }
    }

    #[test]
    fn containment_beats_jaccard() {
        // Small table fully contained in a big one: w+ must be 1.0
        // even though Jaccard would be small.
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2")],
            vec![
                ("a", "1"),
                ("b", "2"),
                ("c", "3"),
                ("d", "4"),
                ("e", "5"),
                ("f", "6"),
                ("g", "7"),
                ("h", "8"),
            ],
        ]);
        let w = score_pair(&space, &t[0], &t[1], &SynthesisConfig::default());
        assert_eq!(w.pos, 1.0);
    }

    #[test]
    fn self_similarity_is_one() {
        let (space, t) = paper_tables();
        let w = score_pair(&space, &t[0], &t[0], &SynthesisConfig::default());
        assert_eq!(w.pos, 1.0);
        assert_eq!(w.neg, 0.0);
    }

    #[test]
    fn disjoint_tables_score_zero() {
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2")],
            vec![("x", "9"), ("y", "8")],
        ]);
        let w = score_pair(&space, &t[0], &t[1], &SynthesisConfig::default());
        assert_eq!(w.pos, 0.0);
        assert_eq!(w.neg, 0.0);
    }

    #[test]
    fn short_codes_never_match_approximately() {
        // "USA" vs "RSA": fractional threshold 0 → distinct.
        let (space, t) = setup(vec![
            vec![("United States", "USA"), ("Canada", "CAN")],
            vec![("United States", "RSA"), ("Canada", "CAN")],
        ]);
        let w = score_pair(&space, &t[0], &t[1], &SynthesisConfig::default());
        assert!((w.pos - 0.5).abs() < 1e-9);
        assert!((w.neg - -0.5).abs() < 1e-9, "USA vs RSA must conflict");
    }

    #[test]
    fn weights_bounded() {
        let counts = MatchCounts {
            overlap: 100,
            conflicts: 100,
            ..Default::default()
        };
        let w = pair_weights(counts, 10, 10);
        assert!(w.pos <= 1.0 && w.neg >= -1.0);
    }

    #[test]
    fn exact_counts_match_approx_disabled_run() {
        // One merge-join carries both variants: the exact side must
        // equal a full scoring run with approximate matching off.
        let (space, t) = paper_tables();
        let cfg = SynthesisConfig::default();
        let no_approx = SynthesisConfig {
            approx_matching: false,
            ..cfg
        };
        let ctx = ScoringContext::build(&space, &t, &cfg, &MapReduce::new(2));
        for i in 0..t.len() as u32 {
            for j in 0..t.len() as u32 {
                let both = ctx.counts(&space, i, j);
                let exact_only =
                    ctx.counts_with(&space, i, j, cfg.match_params, false, cfg.max_approx_cross);
                assert_eq!(both.exact_overlap, exact_only.overlap);
                assert_eq!(both.exact_conflicts, exact_only.conflicts);
                let w = score_pair(&space, &t[i as usize], &t[j as usize], &no_approx);
                assert_eq!(
                    both.weights(t[i as usize].len(), t[j as usize].len(), false),
                    w
                );
            }
        }
    }

    #[test]
    fn covers_reflects_memo_width() {
        let (space, t) = paper_tables();
        let cfg = SynthesisConfig::default();
        let ctx = ScoringContext::build(&space, &t, &cfg, &MapReduce::new(1));
        assert!(ctx.covers(&cfg));
        let tighter = SynthesisConfig {
            match_params: MatchParams { f_ed: 0.1, k_ed: 5 },
            ..cfg
        };
        assert!(ctx.covers(&tighter));
        let wider = SynthesisConfig {
            match_params: MatchParams {
                f_ed: 0.5,
                k_ed: 10,
            },
            ..cfg
        };
        assert!(!ctx.covers(&wider));
        // Approx off is always derivable, even from a no-memo context.
        let no_approx_ctx = ScoringContext::build(
            &space,
            &t,
            &SynthesisConfig {
                approx_matching: false,
                ..cfg
            },
            &MapReduce::new(1),
        );
        assert!(no_approx_ctx.covers(&SynthesisConfig {
            approx_matching: false,
            ..cfg
        }));
        assert!(!no_approx_ctx.covers(&cfg));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_mapreduce::MapReduce;
    use mapsynth_text::SynonymDict;
    use proptest::prelude::*;

    /// Two strict-mapping tables as (left, right) entity-id rows.
    type TablePair = (Vec<(u8, u8)>, Vec<(u8, u8)>);

    /// Build two strict-mapping tables (unique lefts) over a small
    /// entity universe so they overlap and conflict randomly.
    fn strategy() -> impl Strategy<Value = TablePair> {
        let table = proptest::collection::btree_map(0u8..12, 0u8..6, 2..10)
            .prop_map(|m| m.into_iter().collect::<Vec<_>>());
        (table.clone(), table)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// For strict mappings, a table pair cannot be both strongly
        /// positive and strongly negative: overlap + conflicts ≤
        /// min(|B|, |B'|) bounds w⁺ + |w⁻| by 1 (the structural fact
        /// behind the paper's partition-level use of negatives).
        #[test]
        fn prop_pos_plus_neg_bounded((a, b) in strategy()) {
            let mut corpus = Corpus::new();
            let d = corpus.domain("x");
            let mk = |corpus: &mut Corpus, i: u32, rows: &[(u8, u8)]| {
                let syms = rows
                    .iter()
                    .map(|(l, r)| {
                        (
                            corpus.interner.intern(&format!("entity-{l}")),
                            corpus.interner.intern(&format!("code-{r}")),
                        )
                    })
                    .collect();
                BinaryTable::new(BinaryId(i), TableId(i), d, 0, 1, syms)
            };
            let cands = vec![mk(&mut corpus, 0, &a), mk(&mut corpus, 1, &b)];
            let (space, tables) = build_value_space(&corpus.interner, &cands, &SynonymDict::new(), &MapReduce::new(2));
            prop_assume!(tables.len() == 2);
            let cfg = SynthesisConfig::default();
            let w = score_pair(&space, &tables[0], &tables[1], &cfg);
            prop_assert!(w.pos >= 0.0 && w.pos <= 1.0);
            prop_assert!(w.neg <= 0.0 && w.neg >= -1.0);
            prop_assert!(w.pos - w.neg <= 1.0 + 1e-9,
                "w+ {} + |w-| {} exceeds 1 for strict mappings", w.pos, -w.neg);
            // Symmetry.
            let w2 = score_pair(&space, &tables[1], &tables[0], &cfg);
            prop_assert!((w.pos - w2.pos).abs() < 1e-9);
            prop_assert!((w.neg - w2.neg).abs() < 1e-9);
        }
    }
}

#[cfg(test)]
mod oracle_tests {
    //! The merge-join + memo fast path property-checked against the
    //! naive reference implementation on generated corpora that
    //! exercise every matching layer: class equality, synonym folding,
    //! approximate left/right matches, residual keys, and conflicts.

    use super::reference::{match_counts_naive, score_pair_naive};
    use super::*;
    use crate::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_mapreduce::MapReduce;
    use mapsynth_text::SynonymDict;
    use proptest::prelude::*;

    /// A generated table: rows of (entity id, variant, code id, code
    /// variant). Variants introduce typo'd spellings so approximate
    /// matching fires for both lefts and rights.
    type GenTable = Vec<(u8, u8, u8, u8)>;

    fn left_str(entity: u8, variant: u8) -> String {
        // ≥ 5 chars after compaction so the fractional threshold is
        // non-zero and typos land inside it.
        let base = format!("entity number {entity} of the corpus");
        match variant % 4 {
            0 => base,
            1 => base.replace("number", "numbr"),  // deletion
            2 => base.replace("corpus", "korpus"), // substitution
            _ => format!("{base}x"),               // insertion
        }
    }

    fn right_str(code: u8, variant: u8) -> String {
        let base = format!("mapping code {code}");
        match variant % 3 {
            0 => base,
            1 => base.replace("code", "cod"),
            _ => format!("{base}s"),
        }
    }

    fn tables_strategy() -> impl Strategy<Value = (Vec<GenTable>, bool, bool)> {
        let row = (0u8..10, 0u8..4, 0u8..5, 0u8..3);
        let table = proptest::collection::vec(row, 2..9);
        (
            proptest::collection::vec(table, 2..6),
            0u8..2, // attach a synonym feed
            0u8..2, // approximate matching on/off
        )
            .prop_map(|(t, s, a)| (t, s == 1, a == 1))
    }

    fn build(gen: &[GenTable], synonyms: bool) -> (std::sync::Arc<ValueSpace>, Vec<NormBinary>) {
        let mut corpus = Corpus::new();
        let d = corpus.domain("x");
        let cands: Vec<BinaryTable> = gen
            .iter()
            .enumerate()
            .map(|(i, rows)| {
                let syms = rows
                    .iter()
                    .map(|&(e, ev, c, cv)| {
                        (
                            corpus.interner.intern(&left_str(e, ev)),
                            corpus.interner.intern(&right_str(c, cv)),
                        )
                    })
                    .collect();
                BinaryTable::new(BinaryId(i as u32), TableId(i as u32), d, 0, 1, syms)
            })
            .collect();
        let mut dict = SynonymDict::new();
        if synonyms {
            // Fold a typo variant into its base spelling for one entity
            // and one code (distinct values collapse into one class, so
            // class equality fires across different strings).
            dict.declare(&left_str(1, 0), &left_str(1, 1));
            dict.declare(&right_str(1, 0), &right_str(1, 1));
        }
        build_value_space(&corpus.interner, &cands, &dict, &MapReduce::new(2))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The tentpole invariant: merge-join + memo counts are
        /// bit-identical to the naive loop for every table pair, every
        /// orientation, with and without approximate matching.
        #[test]
        fn prop_fast_path_matches_naive((gen, synonyms, approx) in tables_strategy()) {
            let (space, tables) = build(&gen, synonyms);
            prop_assume!(tables.len() >= 2);
            let cfg = SynthesisConfig {
                approx_matching: approx,
                ..Default::default()
            };
            let ctx = ScoringContext::build(&space, &tables, &cfg, &MapReduce::new(2));
            for i in 0..tables.len() {
                for j in 0..tables.len() {
                    let naive = match_counts_naive(&space, &tables[i], &tables[j], &cfg);
                    let fast = match_counts(&space, &tables[i], &tables[j], &cfg);
                    prop_assert_eq!(
                        (fast.overlap, fast.conflicts),
                        naive,
                        "direction-sensitive counts differ for ({}, {})", i, j
                    );
                    // Context path (canonical orientation) vs oracle
                    // score_pair.
                    let w_ctx = ctx.score_pair(&space, i as u32, j as u32);
                    let w_naive = score_pair_naive(&space, &tables[i], &tables[j], &cfg);
                    prop_assert_eq!(w_ctx, w_naive, "weights differ for ({}, {})", i, j);
                }
            }
        }

        /// Tiny cross-product guard: forcing the guard low must disable
        /// residual matching identically on both paths.
        #[test]
        fn prop_guard_respected((gen, synonyms, _) in tables_strategy(), guard in 0usize..64) {
            let (space, tables) = build(&gen, synonyms);
            prop_assume!(tables.len() >= 2);
            let cfg = SynthesisConfig {
                max_approx_cross: guard,
                ..Default::default()
            };
            for i in 0..tables.len() {
                for j in 0..tables.len() {
                    let naive = match_counts_naive(&space, &tables[i], &tables[j], &cfg);
                    let fast = match_counts(&space, &tables[i], &tables[j], &cfg);
                    prop_assert_eq!((fast.overlap, fast.conflicts), naive);
                }
            }
        }
    }
}
