//! Pairwise table compatibility (paper §4.1).
//!
//! * Positive compatibility `w⁺(B,B′) = max{|B∩B′|/|B|, |B∩B′|/|B′|}`
//!   (Equation 3) — the symmetric Maximum-of-Containment, chosen over
//!   Jaccard because a small table fully contained in a large one is
//!   perfectly compatible.
//! * Negative incompatibility `w⁻(B,B′) = −max{|F|/|B|, |F|/|B′|}`
//!   (Equation 4) where `F(B,B′) = {l | (l,r)∈B, (l,r′)∈B′, r≠r′}` is
//!   the FD-conflict set.
//!
//! Value matching layers (fast → slow): class equality (normalized
//! string equality ∪ synonym feed) via hash join, then banded
//! edit-distance matching (paper Algorithm 2) for residual values.

use crate::config::SynthesisConfig;
use crate::values::{NormBinary, NormId, ValueSpace};
use mapsynth_text::{approx_match, fractional_threshold};
use std::collections::{HashMap, HashSet};

/// Raw match counts between two candidate tables.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MatchCounts {
    /// `|B ∩ B′|`: matching value pairs.
    pub overlap: usize,
    /// `|F(B,B′)|`: left values matched with conflicting rights.
    pub conflicts: usize,
}

/// Compatibility weights for a table pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairWeights {
    /// `w⁺` in `[0, 1]`.
    pub pos: f64,
    /// `w⁻` in `[-1, 0]`.
    pub neg: f64,
}

/// Count pair matches and left conflicts between two tables.
pub fn match_counts(
    space: &ValueSpace,
    a: &NormBinary,
    b: &NormBinary,
    cfg: &SynthesisConfig,
) -> MatchCounts {
    // Index b by left class.
    let mut b_index: HashMap<u32, Vec<(u32, NormId)>> = HashMap::with_capacity(b.len());
    for &(l, r) in &b.pairs {
        b_index
            .entry(space.class(l))
            .or_default()
            .push((space.class(r), r));
    }

    let mut overlap = 0usize;
    let mut conflict_lefts: HashSet<u32> = HashSet::new();
    let mut unmatched_a: Vec<(NormId, NormId)> = Vec::new();

    for &(l, r) in &a.pairs {
        let lc = space.class(l);
        match b_index.get(&lc) {
            Some(rights) => {
                let rc = space.class(r);
                let mut matched = false;
                let mut mismatched = false;
                for &(brc, br) in rights {
                    if brc == rc || right_approx(space, r, br, cfg) {
                        matched = true;
                    } else {
                        mismatched = true;
                    }
                }
                if matched {
                    overlap += 1;
                }
                if mismatched {
                    conflict_lefts.insert(lc);
                }
            }
            None => unmatched_a.push((l, r)),
        }
    }

    // Approximate matching for lefts with no class match, bounded by
    // the cross-product guard (cost control; paper banded DP makes each
    // comparison cheap but pair count still matters).
    if cfg.approx_matching
        && !unmatched_a.is_empty()
        && unmatched_a.len() * b.len() <= cfg.max_approx_cross
    {
        // Distinct b lefts (class-representative) with strings.
        let mut b_lefts: Vec<(NormId, u32)> = Vec::new();
        let mut seen = HashSet::new();
        for &(l, _) in &b.pairs {
            if seen.insert(l) {
                b_lefts.push((l, space.class(l)));
            }
        }
        for &(al, ar) in &unmatched_a {
            let a_str = space.compact(al);
            let a_len = a_str.chars().count();
            let mut matched = false;
            let mut mismatched_left: Option<u32> = None;
            for &(bl, blc) in &b_lefts {
                let b_str = space.compact(bl);
                // Cheap length prefilter before the banded DP.
                let max_band = (a_len.max(b_str.len()) as f64 * cfg.match_params.f_ed) as usize + 1;
                if a_len.abs_diff(b_str.chars().count()) > max_band {
                    continue;
                }
                if fractional_threshold(a_str, b_str, cfg.match_params) == 0 {
                    continue; // short values require exact match; classes already differ
                }
                if !approx_match(a_str, b_str, cfg.match_params) {
                    continue;
                }
                // Left values match approximately; compare rights.
                let rc = space.class(ar);
                for &(l2, r2) in &b.pairs {
                    if l2 != bl {
                        continue;
                    }
                    if space.class(r2) == rc || right_approx(space, ar, r2, cfg) {
                        matched = true;
                    } else {
                        mismatched_left = Some(blc);
                    }
                }
            }
            if matched {
                overlap += 1;
            } else if let Some(blc) = mismatched_left {
                conflict_lefts.insert(blc);
            }
        }
    }

    MatchCounts {
        overlap,
        conflicts: conflict_lefts.len(),
    }
}

#[inline]
fn right_approx(space: &ValueSpace, a: NormId, b: NormId, cfg: &SynthesisConfig) -> bool {
    cfg.approx_matching && approx_match(space.compact(a), space.compact(b), cfg.match_params)
}

/// Turn match counts into edge weights (Equations 3 and 4).
pub fn pair_weights(counts: MatchCounts, len_a: usize, len_b: usize) -> PairWeights {
    let la = len_a.max(1) as f64;
    let lb = len_b.max(1) as f64;
    let o = counts.overlap as f64;
    let f = counts.conflicts as f64;
    PairWeights {
        pos: (o / la).max(o / lb).min(1.0),
        neg: -((f / la).max(f / lb)).min(1.0),
    }
}

/// Convenience: score a table pair end to end.
///
/// `w⁺` and `w⁻` are symmetric by definition (Eq. 3–4), but the
/// approximate-matching pass walks one table's residual lefts against
/// the other's, which makes raw counts direction-dependent in corner
/// cases (an a-left can approximately hit a b-left that was already
/// exactly matched from b's perspective). A canonical orientation —
/// smaller table first, ties broken by pair content — restores
/// `score_pair(a, b) == score_pair(b, a)` exactly.
pub fn score_pair(
    space: &ValueSpace,
    a: &NormBinary,
    b: &NormBinary,
    cfg: &SynthesisConfig,
) -> PairWeights {
    let (x, y) = if (a.len(), &a.pairs) <= (b.len(), &b.pairs) {
        (a, b)
    } else {
        (b, a)
    };
    let counts = match_counts(space, x, y, cfg);
    pair_weights(counts, x.len(), y.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_mapreduce::MapReduce;
    use mapsynth_text::SynonymDict;

    fn setup(tables: Vec<Vec<(&str, &str)>>) -> (std::sync::Arc<ValueSpace>, Vec<NormBinary>) {
        let mut corpus = Corpus::new();
        let d = corpus.domain("x");
        let cands: Vec<BinaryTable> = tables
            .into_iter()
            .enumerate()
            .map(|(i, rows)| {
                let syms = rows
                    .iter()
                    .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                    .collect();
                BinaryTable::new(BinaryId(i as u32), TableId(i as u32), d, 0, 1, syms)
            })
            .collect();
        build_value_space(&corpus, &cands, &SynonymDict::new(), &MapReduce::new(2))
    }

    /// Paper Table 8 / Examples 7–9: B1 (IOC), B2 (IOC with synonyms),
    /// B3 (ISO).
    fn paper_tables() -> (std::sync::Arc<ValueSpace>, Vec<NormBinary>) {
        setup(vec![
            vec![
                ("Afghanistan", "AFG"),
                ("Albania", "ALB"),
                ("Algeria", "ALG"),
                ("American Samoa", "ASA"),
                ("South Korea", "KOR"),
                ("US Virgin Islands", "ISV"),
            ],
            vec![
                ("Afghanistan", "AFG"),
                ("Albania", "ALB"),
                ("Algeria", "ALG"),
                ("American Samoa (US)", "ASA"),
                ("Korea, Republic of (South)", "KOR"),
                ("United States Virgin Islands", "ISV"),
            ],
            vec![
                ("Afghanistan", "AFG"),
                ("Albania", "ALB"),
                ("Algeria", "DZA"),
                ("American Samoa", "ASM"),
                ("South Korea", "KOR"),
                ("US Virgin Islands", "VIR"),
            ],
        ])
    }

    #[test]
    fn paper_example_7_exact_positive() {
        // Without approximate matching: w+(B1,B2) = 3/6 = 0.5.
        let (space, t) = paper_tables();
        let cfg = SynthesisConfig {
            approx_matching: false,
            ..Default::default()
        };
        let w = score_pair(&space, &t[0], &t[1], &cfg);
        assert!((w.pos - 0.5).abs() < 1e-9, "w+ = {}", w.pos);
        assert_eq!(w.neg, 0.0);
    }

    #[test]
    fn paper_example_8_approximate_positive() {
        // With approximate matching, "American Samoa" ≈ "American
        // Samoa (US)" is also a match → w+ = 4/6 ≈ 0.67.
        let (space, t) = paper_tables();
        let cfg = SynthesisConfig::default();
        let w = score_pair(&space, &t[0], &t[1], &cfg);
        assert!((w.pos - 4.0 / 6.0).abs() < 1e-9, "w+ = {}", w.pos);
        assert_eq!(w.neg, 0.0, "same standard must not conflict");
    }

    #[test]
    fn paper_example_9_negative() {
        // B1 (IOC) vs B3 (ISO): 3 matching rows, 3 conflicting rows →
        // w+ = 0.5, w− = −0.5.
        let (space, t) = paper_tables();
        let cfg = SynthesisConfig {
            approx_matching: false,
            ..Default::default()
        };
        let w = score_pair(&space, &t[0], &t[2], &cfg);
        assert!((w.pos - 0.5).abs() < 1e-9, "w+ = {}", w.pos);
        assert!((w.neg - -0.5).abs() < 1e-9, "w− = {}", w.neg);
    }

    #[test]
    fn symmetry() {
        let (space, t) = paper_tables();
        let cfg = SynthesisConfig::default();
        for i in 0..t.len() {
            for j in 0..t.len() {
                let wij = score_pair(&space, &t[i], &t[j], &cfg);
                let wji = score_pair(&space, &t[j], &t[i], &cfg);
                assert!((wij.pos - wji.pos).abs() < 1e-9, "pos asym {i},{j}");
                assert!((wij.neg - wji.neg).abs() < 1e-9, "neg asym {i},{j}");
            }
        }
    }

    #[test]
    fn containment_beats_jaccard() {
        // Small table fully contained in a big one: w+ must be 1.0
        // even though Jaccard would be small.
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2")],
            vec![
                ("a", "1"),
                ("b", "2"),
                ("c", "3"),
                ("d", "4"),
                ("e", "5"),
                ("f", "6"),
                ("g", "7"),
                ("h", "8"),
            ],
        ]);
        let w = score_pair(&space, &t[0], &t[1], &SynthesisConfig::default());
        assert_eq!(w.pos, 1.0);
    }

    #[test]
    fn self_similarity_is_one() {
        let (space, t) = paper_tables();
        let w = score_pair(&space, &t[0], &t[0], &SynthesisConfig::default());
        assert_eq!(w.pos, 1.0);
        assert_eq!(w.neg, 0.0);
    }

    #[test]
    fn disjoint_tables_score_zero() {
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2")],
            vec![("x", "9"), ("y", "8")],
        ]);
        let w = score_pair(&space, &t[0], &t[1], &SynthesisConfig::default());
        assert_eq!(w.pos, 0.0);
        assert_eq!(w.neg, 0.0);
    }

    #[test]
    fn short_codes_never_match_approximately() {
        // "USA" vs "RSA": fractional threshold 0 → distinct.
        let (space, t) = setup(vec![
            vec![("United States", "USA"), ("Canada", "CAN")],
            vec![("United States", "RSA"), ("Canada", "CAN")],
        ]);
        let w = score_pair(&space, &t[0], &t[1], &SynthesisConfig::default());
        assert!((w.pos - 0.5).abs() < 1e-9);
        assert!((w.neg - -0.5).abs() < 1e-9, "USA vs RSA must conflict");
    }

    #[test]
    fn weights_bounded() {
        let counts = MatchCounts {
            overlap: 100,
            conflicts: 100,
        };
        let w = pair_weights(counts, 10, 10);
        assert!(w.pos <= 1.0 && w.neg >= -1.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_mapreduce::MapReduce;
    use mapsynth_text::SynonymDict;
    use proptest::prelude::*;

    /// Two strict-mapping tables as (left, right) entity-id rows.
    type TablePair = (Vec<(u8, u8)>, Vec<(u8, u8)>);

    /// Build two strict-mapping tables (unique lefts) over a small
    /// entity universe so they overlap and conflict randomly.
    fn strategy() -> impl Strategy<Value = TablePair> {
        let table = proptest::collection::btree_map(0u8..12, 0u8..6, 2..10)
            .prop_map(|m| m.into_iter().collect::<Vec<_>>());
        (table.clone(), table)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// For strict mappings, a table pair cannot be both strongly
        /// positive and strongly negative: overlap + conflicts ≤
        /// min(|B|, |B'|) bounds w⁺ + |w⁻| by 1 (the structural fact
        /// behind the paper's partition-level use of negatives).
        #[test]
        fn prop_pos_plus_neg_bounded((a, b) in strategy()) {
            let mut corpus = Corpus::new();
            let d = corpus.domain("x");
            let mk = |corpus: &mut Corpus, i: u32, rows: &[(u8, u8)]| {
                let syms = rows
                    .iter()
                    .map(|(l, r)| {
                        (
                            corpus.interner.intern(&format!("entity-{l}")),
                            corpus.interner.intern(&format!("code-{r}")),
                        )
                    })
                    .collect();
                BinaryTable::new(BinaryId(i), TableId(i), d, 0, 1, syms)
            };
            let cands = vec![mk(&mut corpus, 0, &a), mk(&mut corpus, 1, &b)];
            let (space, tables) = build_value_space(&corpus, &cands, &SynonymDict::new(), &MapReduce::new(2));
            prop_assume!(tables.len() == 2);
            let cfg = SynthesisConfig::default();
            let w = score_pair(&space, &tables[0], &tables[1], &cfg);
            prop_assert!(w.pos >= 0.0 && w.pos <= 1.0);
            prop_assert!(w.neg <= 0.0 && w.neg >= -1.0);
            prop_assert!(w.pos - w.neg <= 1.0 + 1e-9,
                "w+ {} + |w-| {} exceeds 1 for strict mappings", w.pos, -w.neg);
            // Symmetry.
            let w2 = score_pair(&space, &tables[1], &tables[0], &cfg);
            prop_assert!((w.pos - w2.pos).abs() < 1e-9);
            prop_assert!((w.neg - w2.neg).abs() < 1e-9);
        }
    }
}
