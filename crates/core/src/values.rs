//! Normalized value space.
//!
//! Candidate tables arrive with corpus-interned raw cell symbols. The
//! synthesis step reasons about *values*: normalized strings
//! ([`mapsynth_text::normalize()`]) folded by the optional synonym feed.
//! This module builds:
//!
//! * a [`ValueSpace`]: dense [`NormId`]s for every distinct normalized
//!   string appearing in any candidate, plus a class id per value
//!   (synonym classes collapse to one class);
//! * a [`NormBinary`] per candidate: its deduplicated `(left, right)`
//!   class pairs plus the original strings for approximate matching.

use mapsynth_corpus::{BinaryTable, Interner, SpillReader, SpillWriter, Sym};
use mapsynth_mapreduce::{partition_of, MapReduce};
use mapsynth_text::{normalize, CharSignature, SynonymDict};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Dense id of a distinct normalized string.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NormId(pub u32);

/// The normalized value universe of one synthesis run.
#[derive(Debug)]
pub struct ValueSpace {
    /// NormId → normalized string.
    strings: Vec<String>,
    /// NormId → whitespace-stripped normalized string, precomputed for
    /// the hot approximate-matching loop (paper Example 8 compares with
    /// separators ignored).
    compact: Vec<String>,
    /// NormId → class id. Values in the same synonym class share a
    /// class id; values outside any class have a unique one.
    class: Vec<u32>,
    /// NormId → `char` count of the compact string, precomputed so the
    /// approximate-matching hot path never re-walks UTF-8 (and never
    /// confuses byte lengths with character lengths — edit-distance
    /// thresholds are measured in characters).
    char_len: Vec<u32>,
    /// NormId → character-occurrence signature of the compact string
    /// (the form the edit-distance kernels compare), computed once at
    /// intern time. The similarity-join prefilters of
    /// [`crate::approx::ApproxMemo`] reject candidate pairs from these
    /// exact lower bounds before any DP runs; deltas extend the vector
    /// append-only alongside the strings.
    sigs: Vec<CharSignature>,
}

impl ValueSpace {
    /// The normalized string for a value.
    pub fn string(&self, id: NormId) -> &str {
        &self.strings[id.0 as usize]
    }

    /// The whitespace-stripped normalized string (for edit-distance
    /// comparison).
    pub fn compact(&self, id: NormId) -> &str {
        &self.compact[id.0 as usize]
    }

    /// The match class for a value (normalized-equality ∪ synonymy).
    #[inline]
    pub fn class(&self, id: NormId) -> u32 {
        self.class[id.0 as usize]
    }

    /// Cached `char` count of the compact string (the length used by
    /// fractional edit-distance thresholds).
    #[inline]
    pub fn compact_chars(&self, id: NormId) -> u32 {
        self.char_len[id.0 as usize]
    }

    /// Cached character-occurrence signature of the compact string
    /// (the approximate-matching prefilter input).
    #[inline]
    pub fn signature(&self, id: NormId) -> &CharSignature {
        &self.sigs[id.0 as usize]
    }

    /// Number of distinct normalized values.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Build a space directly from already-normalized strings, each in
    /// its own class. Mainly for tests and for materializing externally
    /// produced mappings; the synthesis path uses
    /// [`build_value_space`].
    pub fn from_strings<I: IntoIterator<Item = String>>(strings: I) -> Arc<Self> {
        let strings: Vec<String> = strings.into_iter().collect();
        let compact: Vec<String> = strings
            .iter()
            .map(|s| s.chars().filter(|c| !c.is_whitespace()).collect())
            .collect();
        let class = (0..strings.len() as u32).collect();
        let char_len = compact.iter().map(|s| s.chars().count() as u32).collect();
        let sigs = compact.iter().map(|s| CharSignature::of(s)).collect();
        Arc::new(Self {
            strings,
            compact,
            class,
            char_len,
            sigs,
        })
    }
}

/// A candidate table projected into the normalized value space.
#[derive(Clone, Debug)]
pub struct NormBinary {
    /// Index of the originating [`BinaryTable`] in the candidate list.
    pub idx: u32,
    /// Provenance domain (for curation statistics).
    pub domain: mapsynth_corpus::DomainId,
    /// Source table id.
    pub source: mapsynth_corpus::TableId,
    /// Deduplicated `(left, right)` value pairs sorted by `(left class,
    /// right class)`.
    pub pairs: Vec<(NormId, NormId)>,
}

impl NormBinary {
    /// Number of distinct pairs `|B|`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// The sequential interning state behind a [`ValueSpace`], retained by
/// incremental sessions so a corpus delta can extend the space
/// **append-only**: values of removed tables keep their [`NormId`]s
/// (they are simply never referenced again), new values get fresh ids
/// after the existing ones. Nothing downstream may depend on the
/// numbering itself — only on identity and on the class *partition* —
/// which is exactly what lets an extended space serve artifacts that
/// must stay bit-identical to a fresh renumbered run.
#[derive(Clone, Debug, Default)]
pub struct ValueInterning {
    /// Corpus symbol → interned value (None: normalizes to empty).
    norm_of_sym: HashMap<Sym, Option<NormId>>,
    /// Normalized string → value id.
    id_of_string: HashMap<String, NormId>,
    /// External synonym class → representative value id (first member
    /// interned).
    rep_of_class: HashMap<usize, u32>,
}

impl ValueInterning {
    /// Resolve a corpus symbol to its interned value, if the symbol has
    /// been seen and does not normalize to the empty string. Used by
    /// the row-patch path to maintain per-value live reference counts
    /// without re-normalizing.
    pub fn norm_of(&self, sym: Sym) -> Option<NormId> {
        self.norm_of_sym.get(&sym).copied().flatten()
    }

    /// Resolve an already-normalized string to its value id, if
    /// interned. Compaction uses this to translate surviving values
    /// from a pre-compaction space into the freshly rebuilt one.
    pub fn id_of(&self, normalized: &str) -> Option<NormId> {
        self.id_of_string.get(normalized).copied()
    }
}

/// Build the value space and normalized candidates.
///
/// Pairs whose left or right normalizes to the empty string are
/// dropped; candidates left with fewer than two pairs are dropped
/// entirely (their `NormBinary` is omitted — callers use `idx` to map
/// back to the original candidate list).
///
/// The hot work — normalizing every distinct cell symbol, deduplicating
/// the normalized strings (sharded by value hash), and projecting each
/// candidate into the space — runs through the Map-Reduce engine; the
/// shard outputs are stitched back in global first-occurrence order, so
/// the result is byte-identical regardless of worker or shard count.
///
/// The space is returned behind an [`Arc`] so downstream artifacts
/// ([`crate::SynthesizedMapping`] in particular) can hold a handle to
/// it instead of cloning strings out of it.
///
/// `strs` is the interner resolving the candidate tables' symbols
/// (for a materialized corpus, its `interner` field; for a streaming
/// source, [`TableSource::interner`](mapsynth_corpus::TableSource)).
pub fn build_value_space(
    strs: &Interner,
    candidates: &[BinaryTable],
    synonyms: &SynonymDict,
    mr: &MapReduce,
) -> (Arc<ValueSpace>, Vec<NormBinary>) {
    let (space, tables, _) = build_value_space_stateful(strs, candidates, synonyms, mr);
    (space, tables)
}

/// [`build_value_space`] plus the [`ValueInterning`] state that
/// [`extend_value_space`] needs to grow the space under corpus deltas.
/// Shard count defaults to the engine's worker count.
pub fn build_value_space_stateful(
    strs: &Interner,
    candidates: &[BinaryTable],
    synonyms: &SynonymDict,
    mr: &MapReduce,
) -> (Arc<ValueSpace>, Vec<NormBinary>, ValueInterning) {
    build_value_space_sharded(strs, candidates, synonyms, mr, mr.workers())
}

/// [`build_value_space_stateful`] with an explicit shard count for the
/// normalized-value deduplication. The output is bit-identical for
/// every `shards ≥ 1` (shard-count invariance is a tested contract);
/// the parameter only controls how the dedup work is partitioned.
pub fn build_value_space_sharded(
    strs: &Interner,
    candidates: &[BinaryTable],
    synonyms: &SynonymDict,
    mr: &MapReduce,
    shards: usize,
) -> (Arc<ValueSpace>, Vec<NormBinary>, ValueInterning) {
    build_value_space_spillable(strs, candidates, synonyms, mr, shards, None)
}

/// [`build_value_space_sharded`] with optional shard spilling: when
/// `spill` names a directory, each dedup shard streams its output
/// through the binary spill format ([`SpillWriter`]) and drops it
/// before the stitch re-reads shards one at a time — bounding the
/// build's residency by the largest single shard instead of the sum of
/// all of them. The spill files are deleted as they are consumed.
/// Output is bit-identical to the in-memory build for every shard and
/// worker count.
pub fn build_value_space_spillable(
    strs: &Interner,
    candidates: &[BinaryTable],
    synonyms: &SynonymDict,
    mr: &MapReduce,
    shards: usize,
    spill: Option<&Path>,
) -> (Arc<ValueSpace>, Vec<NormBinary>, ValueInterning) {
    let mut interning = ValueInterning::default();
    let mut strings: Vec<String> = Vec::new();
    let mut class: Vec<u32> = Vec::new();
    intern_candidates(
        strs,
        candidates,
        synonyms,
        mr,
        shards,
        spill,
        &mut interning,
        &mut strings,
        &mut class,
    );

    let compact: Vec<String> = mr.par_map(&strings, |s| {
        s.chars().filter(|c| !c.is_whitespace()).collect()
    });
    let char_len = compact.iter().map(|s| s.chars().count() as u32).collect();
    let sigs: Vec<CharSignature> = mr.par_map(&compact, |s| CharSignature::of(s));
    let space = Arc::new(ValueSpace {
        strings,
        compact,
        class,
        char_len,
        sigs,
    });

    let tables = project_candidates(&space, &interning, candidates, 0, mr);
    (space, tables, interning)
}

/// Extend an existing space with the values of freshly extracted
/// candidates, append-only: existing ids are untouched, new distinct
/// normalized strings get ids after [`ValueSpace::len`]. Returns the
/// grown space (a **new** `Arc` — prior mappings keep their old
/// handle, whose ids remain valid in both) and the projections of the
/// new candidates, with `idx` starting at `idx_base`.
pub fn extend_value_space(
    space: &ValueSpace,
    interning: &mut ValueInterning,
    strs: &Interner,
    new_candidates: &[BinaryTable],
    synonyms: &SynonymDict,
    idx_base: u32,
    mr: &MapReduce,
) -> (Arc<ValueSpace>, Vec<NormBinary>) {
    extend_value_space_sharded(
        space,
        interning,
        strs,
        new_candidates,
        synonyms,
        idx_base,
        mr,
        mr.workers(),
    )
}

/// [`extend_value_space`] with an explicit shard count; bit-identical
/// output for every `shards ≥ 1`, exactly as for
/// [`build_value_space_sharded`].
#[allow(clippy::too_many_arguments)]
pub fn extend_value_space_sharded(
    space: &ValueSpace,
    interning: &mut ValueInterning,
    strs: &Interner,
    new_candidates: &[BinaryTable],
    synonyms: &SynonymDict,
    idx_base: u32,
    mr: &MapReduce,
    shards: usize,
) -> (Arc<ValueSpace>, Vec<NormBinary>) {
    let grown =
        grow_value_space_sharded(space, interning, strs, new_candidates, synonyms, mr, shards);
    let tables = project_candidates(&grown, interning, new_candidates, idx_base, mr);
    (grown, tables)
}

/// The space-growing half of [`extend_value_space_sharded`]: intern the
/// unseen values of `new_candidates` append-only and return the grown
/// space, **without** projecting anything. The row-patch path uses this
/// to intern the values of patched *and* added candidates in one
/// deterministic pass, then projects patched survivors at their
/// original positions ([`project_candidate_at`]) and added candidates
/// at appended ones.
#[allow(clippy::too_many_arguments)]
pub fn grow_value_space_sharded(
    space: &ValueSpace,
    interning: &mut ValueInterning,
    strs: &Interner,
    new_candidates: &[BinaryTable],
    synonyms: &SynonymDict,
    mr: &MapReduce,
    shards: usize,
) -> Arc<ValueSpace> {
    let mut strings = space.strings.clone();
    let mut class = space.class.clone();
    let old_len = strings.len();
    // Delta-sized inputs never spill: the shard outputs are tiny
    // relative to the space being cloned above.
    intern_candidates(
        strs,
        new_candidates,
        synonyms,
        mr,
        shards,
        None,
        interning,
        &mut strings,
        &mut class,
    );

    let new_strings = &strings[old_len..];
    let new_compact: Vec<String> = mr.par_map(
        &new_strings.iter().collect::<Vec<_>>(),
        |s: &&String| -> String { s.chars().filter(|c| !c.is_whitespace()).collect() },
    );
    let mut compact = space.compact.clone();
    let mut char_len = space.char_len.clone();
    char_len.extend(new_compact.iter().map(|s| s.chars().count() as u32));
    let mut sigs = space.sigs.clone();
    sigs.extend(new_compact.iter().map(|s| CharSignature::of(s)));
    compact.extend(new_compact);

    Arc::new(ValueSpace {
        strings,
        compact,
        class,
        char_len,
        sigs,
    })
}

/// Per-position outcome of a shard's deduplication pass.
enum SymRes {
    /// The normalized string already had a [`NormId`] before this call.
    Known(NormId),
    /// First seen in this call: index into the shard's new-string list.
    New(u32),
}

/// Spill encoding of a resolution list: `(tag, value)` word pairs.
fn encode_res(res: &[SymRes]) -> Vec<u32> {
    let mut out = Vec::with_capacity(res.len() * 2);
    for r in res {
        match r {
            SymRes::Known(id) => out.extend([0, id.0]),
            SymRes::New(li) => out.extend([1, *li]),
        }
    }
    out
}

fn decode_res(words: &[u32]) -> Vec<SymRes> {
    assert_eq!(words.len() % 2, 0, "corrupt spill frame: odd word count");
    words
        .chunks_exact(2)
        .map(|c| match c[0] {
            0 => SymRes::Known(NormId(c[1])),
            1 => SymRes::New(c[1]),
            t => panic!("corrupt spill frame: unknown resolution tag {t}"),
        })
        .collect()
}

/// Where the shards' resolution lists live between the dedup pass and
/// the final symbol-resolution walk: in memory, or spilled to disk.
enum ResSource {
    Mem(Vec<Vec<SymRes>>),
    Disk(Vec<PathBuf>),
}

impl ResSource {
    /// The resolutions of shard `s`, consumed — the disk variant
    /// re-reads and then deletes the shard's spill file, so at most one
    /// shard's resolutions are resident at a time.
    fn take(&mut self, s: usize) -> Vec<SymRes> {
        match self {
            ResSource::Mem(lists) => std::mem::take(&mut lists[s]),
            ResSource::Disk(paths) => {
                let mut r = SpillReader::open(&paths[s]).expect("value spill file must reopen");
                r.next_frame()
                    .expect("value spill read failed")
                    .expect("value spill file missing its news frame");
                let words = r
                    .next_frame()
                    .expect("value spill read failed")
                    .expect("value spill file missing its resolution frame");
                std::fs::remove_file(&paths[s]).ok();
                decode_res(&words)
            }
        }
    }
}

/// Shared interning pass: normalize (parallel) the distinct unseen
/// symbols of `candidates` in first-occurrence order, deduplicate the
/// normalized strings in `shards` independent hash shards (parallel),
/// then stitch the shard outputs back in ascending first-occurrence
/// order — a deterministic monotone renumber that reproduces, exactly,
/// the id assignment a single sequential pass would make. Synonym
/// classes are folded in id order (class id = representative NormId:
/// the class's first-interned member). Appends to `strings`/`class`.
///
/// Shard and worker count affect only the partitioning of work; the
/// appended ids, strings, classes and the updated `interning` state
/// are bit-identical for every combination.
#[allow(clippy::too_many_arguments)]
fn intern_candidates(
    strs: &Interner,
    candidates: &[BinaryTable],
    synonyms: &SynonymDict,
    mr: &MapReduce,
    shards: usize,
    spill: Option<&Path>,
    interning: &mut ValueInterning,
    strings: &mut Vec<String>,
    class: &mut Vec<u32>,
) {
    // Distinct unseen cell symbols in first-occurrence order (the
    // order NormIds are assigned in).
    let mut seen: HashSet<Sym> = HashSet::new();
    let mut distinct: Vec<Sym> = Vec::new();
    for cand in candidates {
        for &(l, r) in &cand.pairs {
            if !interning.norm_of_sym.contains_key(&l) && seen.insert(l) {
                distinct.push(l);
            }
            if !interning.norm_of_sym.contains_key(&r) && seen.insert(r) {
                distinct.push(r);
            }
        }
    }

    // Parallel normalization of the distinct symbols (the dominant
    // cost: unicode folding and footnote stripping per string).
    let normalized: Vec<String> = mr.par_map(&distinct, |&sym| normalize(strs.resolve(sym)));

    // Route each position to its shard by the hash of the normalized
    // string — the same stable partitioner the shuffle uses. Positions
    // stay ascending within a shard, so each shard sees its strings in
    // global first-occurrence order.
    let shards = shards.max(1);
    let mut shard_pos: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for (pos, n) in normalized.iter().enumerate() {
        if n.is_empty() {
            continue; // resolves to None below, no id to assign
        }
        shard_pos[partition_of(&n, shards)].push(pos as u32);
    }

    // Per-shard dedup (parallel): resolve every position against the
    // pre-call id table and a shard-local first-occurrence map. Shards
    // are disjoint by construction (same string → same shard), so no
    // cross-shard coordination is needed. The dedup body is shared
    // verbatim by the in-memory and spilling paths — that sharing is
    // what keeps them bit-identical.
    let id_of_string = &interning.id_of_string;
    let norm_ref = &normalized;
    let shard_pos_ref = &shard_pos;
    let shard_ids: Vec<usize> = (0..shards).collect();
    let dedup_shard = |s: usize| -> (Vec<u32>, Vec<SymRes>) {
        let mut local: HashMap<&str, u32> = HashMap::new();
        let mut news: Vec<u32> = Vec::new();
        let mut res: Vec<SymRes> = Vec::with_capacity(shard_pos_ref[s].len());
        for &pos in &shard_pos_ref[s] {
            let n = norm_ref[pos as usize].as_str();
            if let Some(&id) = id_of_string.get(n) {
                res.push(SymRes::Known(id));
            } else {
                match local.entry(n) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        res.push(SymRes::New(*e.get()));
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let li = news.len() as u32;
                        e.insert(li);
                        news.push(pos);
                        res.push(SymRes::New(li));
                    }
                }
            }
        }
        (news, res)
    };
    // (per-shard first positions of new strings, resolution source)
    let (news_lists, mut res_source): (Vec<Vec<u32>>, ResSource) = match spill {
        None => {
            let outs: Vec<(Vec<u32>, Vec<SymRes>)> = mr.par_map(&shard_ids, |&s| dedup_shard(s));
            let (news, res) = outs.into_iter().unzip();
            (news, ResSource::Mem(res))
        }
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("spill directory must be creatable");
            let paths: Vec<PathBuf> = shard_ids
                .iter()
                .map(|s| dir.join(format!("values-shard-{s}.spill")))
                .collect();
            let paths_ref = &paths;
            // Each worker writes its shard's two frames (news, encoded
            // resolutions) and drops them before returning — the
            // shard's output leaves memory until the stitch streams it
            // back.
            let written: Vec<std::io::Result<()>> = mr.par_map(&shard_ids, |&s| {
                let (news, res) = dedup_shard(s);
                let mut w = SpillWriter::create(&paths_ref[s])?;
                w.write_frame(&news)?;
                w.write_frame(&encode_res(&res))?;
                w.finish()
            });
            for r in written {
                r.expect("value-space shard spill failed");
            }
            let news = paths
                .iter()
                .map(|p| {
                    let mut r = SpillReader::open(p).expect("value spill file must reopen");
                    r.next_frame()
                        .expect("value spill read failed")
                        .expect("value spill file missing its news frame")
                })
                .collect();
            (news, ResSource::Disk(paths))
        }
    };

    // Stitch: merge the shards' new strings by first-occurrence
    // position and assign NormIds in that order — the monotone
    // renumber that makes the shard partitioning invisible. Within a
    // shard `news` is ascending, so the k-way merge reduces to a sort
    // of (position, shard) heads and a per-shard cursor.
    let mut merged: Vec<(u32, u32)> = news_lists
        .iter()
        .enumerate()
        .flat_map(|(s, news)| news.iter().map(move |&p| (p, s as u32)))
        .collect();
    merged.sort_unstable();
    let mut local_to_global: Vec<Vec<NormId>> = news_lists
        .iter()
        .map(|news| Vec::with_capacity(news.len()))
        .collect();
    for &(pos, s) in &merged {
        let id = NormId(strings.len() as u32);
        local_to_global[s as usize].push(id);
        let n = &normalized[pos as usize];
        let c = match synonyms.class_of(n) {
            Some(sc) => *interning.rep_of_class.entry(sc).or_insert(id.0),
            None => id.0,
        };
        interning.id_of_string.insert(n.clone(), id);
        strings.push(n.clone());
        class.push(c);
    }

    // Resolve every distinct symbol to its final id (None: normalizes
    // to empty) and record the mapping, one shard's resolutions
    // resident at a time.
    let mut resolved: Vec<Option<NormId>> = vec![None; distinct.len()];
    for s in 0..shards {
        let res = res_source.take(s);
        for (&pos, r) in shard_pos[s].iter().zip(&res) {
            resolved[pos as usize] = Some(match r {
                SymRes::Known(id) => *id,
                SymRes::New(li) => local_to_global[s][*li as usize],
            });
        }
    }
    for (&sym, r) in distinct.iter().zip(&resolved) {
        interning.norm_of_sym.insert(sym, *r);
    }
}

/// Shared projection pass: each candidate's pairs mapped into the
/// space, deduplicated, class-sorted; candidates below two usable
/// pairs dropped.
fn project_candidates(
    space: &Arc<ValueSpace>,
    interning: &ValueInterning,
    candidates: &[BinaryTable],
    idx_base: u32,
    mr: &MapReduce,
) -> Vec<NormBinary> {
    let indexed: Vec<(u32, &BinaryTable)> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (idx_base + i as u32, c))
        .collect();
    let space_ref: &ValueSpace = space;
    mr.par_map(&indexed, |&(idx, cand)| {
        project_one(space_ref, interning, cand, idx)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Project a single candidate into the space at an explicit `idx`. The
/// row-patch path uses this to re-project a patched survivor **at its
/// original position** in the candidate list (the position encodes the
/// live-table order that bit-identity depends on); the bulk paths go
/// through [`build_value_space`]/[`extend_value_space`]. Returns `None`
/// when fewer than two usable pairs remain — exactly the drop rule of
/// the bulk projection.
///
/// Every symbol in `cand` must already be interned (the caller runs
/// the interning pass over patched candidates first).
pub fn project_candidate_at(
    space: &ValueSpace,
    interning: &ValueInterning,
    cand: &BinaryTable,
    idx: u32,
) -> Option<NormBinary> {
    project_one(space, interning, cand, idx)
}

/// Shared single-candidate projection: pairs mapped into the space,
/// deduplicated, class-sorted; below two usable pairs → `None`.
fn project_one(
    space: &ValueSpace,
    interning: &ValueInterning,
    cand: &BinaryTable,
    idx: u32,
) -> Option<NormBinary> {
    let norm_ref = &interning.norm_of_sym;
    let mut pairs: Vec<(NormId, NormId)> = cand
        .pairs
        .iter()
        .filter_map(|&(l, r)| Some(((*norm_ref.get(&l)?)?, (*norm_ref.get(&r)?)?)))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    // Sort by class pair for the hash-join in compat scoring.
    pairs.sort_by_key(|&(l, r)| (space.class(l), space.class(r)));
    (pairs.len() >= 2).then_some(NormBinary {
        idx,
        domain: cand.domain,
        source: cand.source,
        pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapsynth_corpus::{BinaryId, Corpus, DomainId, TableId};
    use mapsynth_mapreduce::MapReduce;

    fn mk_candidates(rows: Vec<Vec<(&str, &str)>>) -> (Corpus, Vec<BinaryTable>) {
        let mut corpus = Corpus::new();
        let d = corpus.domain("x");
        let mut out = Vec::new();
        for (i, pairs) in rows.into_iter().enumerate() {
            let syms: Vec<(Sym, Sym)> = pairs
                .iter()
                .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                .collect();
            out.push(BinaryTable::new(
                BinaryId(i as u32),
                TableId(i as u32),
                d,
                0,
                1,
                syms,
            ));
        }
        let _ = DomainId(0);
        (corpus, out)
    }

    /// Reference implementation of the interning loop: the plain
    /// sequential first-occurrence pass the sharded build must
    /// reproduce bit-for-bit.
    fn sequential_intern(
        strs: &Interner,
        candidates: &[BinaryTable],
        synonyms: &SynonymDict,
    ) -> (Vec<String>, Vec<u32>, HashMap<Sym, Option<NormId>>) {
        let mut norm_of_sym: HashMap<Sym, Option<NormId>> = HashMap::new();
        let mut id_of_string: HashMap<String, NormId> = HashMap::new();
        let mut rep_of_class: HashMap<usize, u32> = HashMap::new();
        let mut strings: Vec<String> = Vec::new();
        let mut class: Vec<u32> = Vec::new();
        for cand in candidates {
            for &(l, r) in &cand.pairs {
                for sym in [l, r] {
                    if norm_of_sym.contains_key(&sym) {
                        continue;
                    }
                    let n = normalize(strs.resolve(sym));
                    let id = if n.is_empty() {
                        None
                    } else {
                        match id_of_string.get(&n) {
                            Some(&id) => Some(id),
                            None => {
                                let id = NormId(strings.len() as u32);
                                let c = match synonyms.class_of(&n) {
                                    Some(sc) => *rep_of_class.entry(sc).or_insert(id.0),
                                    None => id.0,
                                };
                                id_of_string.insert(n.clone(), id);
                                strings.push(n);
                                class.push(c);
                                Some(id)
                            }
                        }
                    };
                    norm_of_sym.insert(sym, id);
                }
            }
        }
        (strings, class, norm_of_sym)
    }

    /// The sharded build must be bit-identical to the sequential
    /// reference for every shard and worker count — ids, strings,
    /// classes, symbol resolutions and projections alike.
    #[test]
    fn sharded_interning_matches_sequential_reference() {
        let (corpus, cands) = mk_candidates(vec![
            vec![
                ("United States", "USA"),
                ("UNITED STATES[1]", "usa"),
                ("Canada", "CAN"),
                ("US Virgin Islands", "ISV"),
            ],
            vec![
                ("United States Virgin Islands", "ISV"),
                ("Côte d'Ivoire", "CIV"),
                ("***", "empty-left"),
                ("Canada", "CAN"),
            ],
            vec![("São Tomé", "STP"), ("Peru", "PER"), ("peru", "per")],
        ]);
        let mut dict = SynonymDict::new();
        dict.declare("US Virgin Islands", "United States Virgin Islands");
        let (ref_strings, ref_class, ref_norms) =
            sequential_intern(&corpus.interner, &cands, &dict);
        for workers in [1usize, 2, 8] {
            let mr = MapReduce::new(workers);
            for shards in [1usize, 2, 8] {
                let (space, tables, interning) =
                    build_value_space_sharded(&corpus.interner, &cands, &dict, &mr, shards);
                assert_eq!(
                    space.strings, ref_strings,
                    "workers {workers} shards {shards}"
                );
                assert_eq!(space.class, ref_class, "workers {workers} shards {shards}");
                assert_eq!(interning.norm_of_sym, ref_norms);
                // Projections are downstream of the ids; spot-check
                // they are stable too.
                let (s1, t1, _) =
                    build_value_space_sharded(&corpus.interner, &cands, &dict, &mr, 1);
                assert_eq!(s1.strings, space.strings);
                assert_eq!(tables.len(), t1.len());
                for (a, b) in tables.iter().zip(&t1) {
                    assert_eq!(a.idx, b.idx);
                    assert_eq!(a.pairs, b.pairs);
                }
            }
        }
    }

    /// The spilling build (shards written to disk and streamed back at
    /// stitch) must be bit-identical to the in-memory build — ids,
    /// strings, classes and projections alike — for every shard count.
    #[test]
    fn spilled_build_matches_in_memory() {
        let (corpus, cands) = mk_candidates(vec![
            vec![
                ("United States", "USA"),
                ("UNITED STATES[1]", "usa"),
                ("Canada", "CAN"),
                ("US Virgin Islands", "ISV"),
            ],
            vec![
                ("United States Virgin Islands", "ISV"),
                ("Côte d'Ivoire", "CIV"),
                ("***", "empty-left"),
                ("Canada", "CAN"),
            ],
            vec![("São Tomé", "STP"), ("Peru", "PER"), ("peru", "per")],
        ]);
        let mut dict = SynonymDict::new();
        dict.declare("US Virgin Islands", "United States Virgin Islands");
        let mr = MapReduce::new(2);
        let dir =
            std::env::temp_dir().join(format!("mapsynth-values-spill-test-{}", std::process::id()));
        for shards in [1usize, 3, 8] {
            let (mem_space, mem_tabs, mem_int) =
                build_value_space_sharded(&corpus.interner, &cands, &dict, &mr, shards);
            let (spill_space, spill_tabs, spill_int) = build_value_space_spillable(
                &corpus.interner,
                &cands,
                &dict,
                &mr,
                shards,
                Some(&dir),
            );
            assert_eq!(spill_space.strings, mem_space.strings, "shards {shards}");
            assert_eq!(spill_space.class, mem_space.class, "shards {shards}");
            assert_eq!(spill_int.norm_of_sym, mem_int.norm_of_sym);
            assert_eq!(spill_tabs.len(), mem_tabs.len());
            for (a, b) in spill_tabs.iter().zip(&mem_tabs) {
                assert_eq!(a.idx, b.idx);
                assert_eq!(a.pairs, b.pairs);
            }
            // Spill files are consumed: the directory is left empty.
            let leftover = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
            assert_eq!(leftover, 0, "spill files must be deleted after the stitch");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Extending a space (the delta path) is shard-invariant too: any
    /// shard count appends the same ids in the same order.
    #[test]
    fn sharded_extension_matches_across_shard_counts() {
        let (corpus, cands) = mk_candidates(vec![
            vec![("United States", "USA"), ("Canada", "CAN"), ("Peru", "PER")],
            vec![
                ("Chile", "CHL"),
                ("canada", "CAN"),
                ("Argentina", "ARG"),
                ("Brazil", "BRA"),
            ],
        ]);
        let dict = SynonymDict::new();
        let mr = MapReduce::new(4);
        let mut reference: Option<(Vec<String>, Vec<u32>)> = None;
        for shards in [1usize, 2, 8] {
            let (space, _, mut interning) =
                build_value_space_sharded(&corpus.interner, &cands[..1], &dict, &mr, shards);
            let (grown, tables) = extend_value_space_sharded(
                &space,
                &mut interning,
                &corpus.interner,
                &cands[1..],
                &dict,
                1,
                &mr,
                shards,
            );
            assert!(!tables.is_empty());
            match &reference {
                None => reference = Some((grown.strings.clone(), grown.class.clone())),
                Some((s, c)) => {
                    assert_eq!(&grown.strings, s, "shards {shards}");
                    assert_eq!(&grown.class, c, "shards {shards}");
                }
            }
        }
    }

    #[test]
    fn normalization_folds_case_and_footnotes() {
        let (corpus, cands) = mk_candidates(vec![vec![
            ("United States", "USA"),
            ("UNITED STATES[1]", "usa"),
            ("Canada", "CAN"),
        ]]);
        let (space, tables) = build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &MapReduce::new(2),
        );
        assert_eq!(tables.len(), 1);
        // "United States" and "UNITED STATES[1]" fold to one value;
        // ("united states","usa") dedups to one pair.
        assert_eq!(tables[0].len(), 2);
        let strs: Vec<&str> = tables[0]
            .pairs
            .iter()
            .map(|&(l, _)| space.string(l))
            .collect();
        assert!(strs.contains(&"united states"));
        assert!(strs.contains(&"canada"));
    }

    #[test]
    fn empty_values_dropped_and_small_tables_omitted() {
        let (corpus, cands) = mk_candidates(vec![
            vec![("***", "x"), ("a", "1")], // one usable pair → dropped
            vec![("a", "1"), ("b", "2")],
        ]);
        let (_, tables) = build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &MapReduce::new(2),
        );
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].idx, 1);
    }

    #[test]
    fn char_lengths_count_chars_not_bytes() {
        let (corpus, cands) = mk_candidates(vec![vec![
            ("Côte d'Ivoire", "CIV"),
            ("São Tomé", "STP"),
            ("Curaçao", "CUW"),
        ]]);
        let (space, tables) = build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &MapReduce::new(2),
        );
        for &(l, r) in &tables[0].pairs {
            for id in [l, r] {
                assert_eq!(
                    space.compact_chars(id) as usize,
                    space.compact(id).chars().count(),
                    "cached char length must match {:?}",
                    space.compact(id)
                );
            }
        }
        // Multi-byte values must not report byte lengths.
        let cote = tables[0]
            .pairs
            .iter()
            .find(|&&(l, _)| space.string(l).contains("ivoire"))
            .unwrap()
            .0;
        assert!(space.compact(cote).len() > space.compact_chars(cote) as usize);
    }

    #[test]
    fn signatures_cached_at_intern_time_and_extended_on_delta() {
        let (corpus, cands) = mk_candidates(vec![
            vec![("United States", "USA"), ("Côte d'Ivoire", "CIV")],
            vec![("Canada", "CAN"), ("Peru", "PER")],
        ]);
        let mr = MapReduce::new(2);
        let (space, _, mut interning) =
            build_value_space_stateful(&corpus.interner, &cands[..1], &SynonymDict::new(), &mr);
        for i in 0..space.len() as u32 {
            assert_eq!(
                space.signature(NormId(i)),
                &CharSignature::of(space.compact(NormId(i))),
                "cached signature must match the compact string {:?}",
                space.compact(NormId(i))
            );
        }

        // Growing the space appends signatures for the new values and
        // leaves existing ones untouched.
        let (grown, _) = extend_value_space(
            &space,
            &mut interning,
            &corpus.interner,
            &cands[1..],
            &SynonymDict::new(),
            1,
            &mr,
        );
        assert!(grown.len() > space.len());
        for i in 0..grown.len() as u32 {
            assert_eq!(
                grown.signature(NormId(i)),
                &CharSignature::of(grown.compact(NormId(i)))
            );
        }
        for i in 0..space.len() as u32 {
            assert_eq!(grown.signature(NormId(i)), space.signature(NormId(i)));
        }
    }

    #[test]
    fn synonym_classes_fold() {
        let (corpus, cands) = mk_candidates(vec![
            vec![("US Virgin Islands", "ISV"), ("Canada", "CAN")],
            vec![("United States Virgin Islands", "ISV"), ("Canada", "CAN")],
        ]);
        let mut dict = SynonymDict::new();
        dict.declare("US Virgin Islands", "United States Virgin Islands");
        let (space, tables) =
            build_value_space(&corpus.interner, &cands, &dict, &MapReduce::new(2));
        let l0 = tables[0]
            .pairs
            .iter()
            .find(|&&(l, _)| space.string(l).contains("virgin"))
            .unwrap()
            .0;
        let l1 = tables[1]
            .pairs
            .iter()
            .find(|&&(l, _)| space.string(l).contains("virgin"))
            .unwrap()
            .0;
        assert_ne!(l0, l1, "different strings, different values");
        assert_eq!(space.class(l0), space.class(l1), "same synonym class");
    }
}
