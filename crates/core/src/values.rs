//! Normalized value space.
//!
//! Candidate tables arrive with corpus-interned raw cell symbols. The
//! synthesis step reasons about *values*: normalized strings
//! ([`mapsynth_text::normalize()`]) folded by the optional synonym feed.
//! This module builds:
//!
//! * a [`ValueSpace`]: dense [`NormId`]s for every distinct normalized
//!   string appearing in any candidate, plus a class id per value
//!   (synonym classes collapse to one class);
//! * a [`NormBinary`] per candidate: its deduplicated `(left, right)`
//!   class pairs plus the original strings for approximate matching.

use mapsynth_corpus::{BinaryTable, Corpus, Sym};
use mapsynth_mapreduce::MapReduce;
use mapsynth_text::{normalize, SynonymDict};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Dense id of a distinct normalized string.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NormId(pub u32);

/// The normalized value universe of one synthesis run.
#[derive(Debug)]
pub struct ValueSpace {
    /// NormId → normalized string.
    strings: Vec<String>,
    /// NormId → whitespace-stripped normalized string, precomputed for
    /// the hot approximate-matching loop (paper Example 8 compares with
    /// separators ignored).
    compact: Vec<String>,
    /// NormId → class id. Values in the same synonym class share a
    /// class id; values outside any class have a unique one.
    class: Vec<u32>,
    /// NormId → `char` count of the compact string, precomputed so the
    /// approximate-matching hot path never re-walks UTF-8 (and never
    /// confuses byte lengths with character lengths — edit-distance
    /// thresholds are measured in characters).
    char_len: Vec<u32>,
}

impl ValueSpace {
    /// The normalized string for a value.
    pub fn string(&self, id: NormId) -> &str {
        &self.strings[id.0 as usize]
    }

    /// The whitespace-stripped normalized string (for edit-distance
    /// comparison).
    pub fn compact(&self, id: NormId) -> &str {
        &self.compact[id.0 as usize]
    }

    /// The match class for a value (normalized-equality ∪ synonymy).
    #[inline]
    pub fn class(&self, id: NormId) -> u32 {
        self.class[id.0 as usize]
    }

    /// Cached `char` count of the compact string (the length used by
    /// fractional edit-distance thresholds).
    #[inline]
    pub fn compact_chars(&self, id: NormId) -> u32 {
        self.char_len[id.0 as usize]
    }

    /// Number of distinct normalized values.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Build a space directly from already-normalized strings, each in
    /// its own class. Mainly for tests and for materializing externally
    /// produced mappings; the synthesis path uses
    /// [`build_value_space`].
    pub fn from_strings<I: IntoIterator<Item = String>>(strings: I) -> Arc<Self> {
        let strings: Vec<String> = strings.into_iter().collect();
        let compact: Vec<String> = strings
            .iter()
            .map(|s| s.chars().filter(|c| !c.is_whitespace()).collect())
            .collect();
        let class = (0..strings.len() as u32).collect();
        let char_len = compact.iter().map(|s| s.chars().count() as u32).collect();
        Arc::new(Self {
            strings,
            compact,
            class,
            char_len,
        })
    }
}

/// A candidate table projected into the normalized value space.
#[derive(Clone, Debug)]
pub struct NormBinary {
    /// Index of the originating [`BinaryTable`] in the candidate list.
    pub idx: u32,
    /// Provenance domain (for curation statistics).
    pub domain: mapsynth_corpus::DomainId,
    /// Source table id.
    pub source: mapsynth_corpus::TableId,
    /// Deduplicated `(left, right)` value pairs sorted by `(left class,
    /// right class)`.
    pub pairs: Vec<(NormId, NormId)>,
}

impl NormBinary {
    /// Number of distinct pairs `|B|`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Build the value space and normalized candidates.
///
/// Pairs whose left or right normalizes to the empty string are
/// dropped; candidates left with fewer than two pairs are dropped
/// entirely (their `NormBinary` is omitted — callers use `idx` to map
/// back to the original candidate list).
///
/// The hot work — normalizing every distinct cell symbol and
/// projecting each candidate into the space — runs through the
/// Map-Reduce engine; id assignment stays sequential in
/// first-occurrence order, so the result is byte-identical regardless
/// of worker count.
///
/// The space is returned behind an [`Arc`] so downstream artifacts
/// ([`crate::SynthesizedMapping`] in particular) can hold a handle to
/// it instead of cloning strings out of it.
pub fn build_value_space(
    corpus: &Corpus,
    candidates: &[BinaryTable],
    synonyms: &SynonymDict,
    mr: &MapReduce,
) -> (Arc<ValueSpace>, Vec<NormBinary>) {
    // Distinct cell symbols in first-occurrence order (the order the
    // sequential implementation assigned NormIds in).
    let mut seen: HashSet<Sym> = HashSet::new();
    let mut distinct: Vec<Sym> = Vec::new();
    for cand in candidates {
        for &(l, r) in &cand.pairs {
            if seen.insert(l) {
                distinct.push(l);
            }
            if seen.insert(r) {
                distinct.push(r);
            }
        }
    }

    // Parallel normalization of the distinct symbols (the dominant
    // cost: unicode folding and footnote stripping per string).
    let normalized: Vec<String> = mr.par_map(&distinct, |&sym| normalize(corpus.str_of(sym)));

    // Sequential interning in first-occurrence order.
    let mut norm_of_sym: HashMap<Sym, Option<NormId>> = HashMap::with_capacity(distinct.len());
    let mut id_of_string: HashMap<String, NormId> = HashMap::new();
    let mut strings: Vec<String> = Vec::new();
    for (&sym, n) in distinct.iter().zip(normalized) {
        let id = if n.is_empty() {
            None
        } else {
            Some(*id_of_string.entry(n.clone()).or_insert_with(|| {
                strings.push(n);
                NormId((strings.len() - 1) as u32)
            }))
        };
        norm_of_sym.insert(sym, id);
    }

    // Fold synonym classes: class id = representative NormId, except
    // synonym-class members share the smallest member's id.
    let mut class: Vec<u32> = (0..strings.len() as u32).collect();
    if !synonyms.is_empty() {
        // Map external synonym class → smallest NormId seen.
        let mut rep_of_class: HashMap<usize, u32> = HashMap::new();
        for (i, s) in strings.iter().enumerate() {
            if let Some(c) = synonyms.class_of(s) {
                let rep = rep_of_class.entry(c).or_insert(i as u32);
                class[i] = *rep;
            }
        }
    }

    let compact: Vec<String> = mr.par_map(&strings, |s| {
        s.chars().filter(|c| !c.is_whitespace()).collect()
    });
    let char_len = compact.iter().map(|s| s.chars().count() as u32).collect();
    let space = Arc::new(ValueSpace {
        strings,
        compact,
        class,
        char_len,
    });

    // Parallel projection of each candidate into the space.
    let indexed: Vec<(u32, &BinaryTable)> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (i as u32, c))
        .collect();
    let space_ref = &space;
    let norm_ref = &norm_of_sym;
    let tables: Vec<NormBinary> = mr
        .par_map(&indexed, |&(idx, cand)| {
            let mut pairs: Vec<(NormId, NormId)> = cand
                .pairs
                .iter()
                .filter_map(|&(l, r)| Some(((*norm_ref.get(&l)?)?, (*norm_ref.get(&r)?)?)))
                .collect();
            pairs.sort_unstable();
            pairs.dedup();
            // Sort by class pair for the hash-join in compat scoring.
            pairs.sort_by_key(|&(l, r)| (space_ref.class(l), space_ref.class(r)));
            (pairs.len() >= 2).then_some(NormBinary {
                idx,
                domain: cand.domain,
                source: cand.source,
                pairs,
            })
        })
        .into_iter()
        .flatten()
        .collect();
    (space, tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapsynth_corpus::{BinaryId, Corpus, DomainId, TableId};
    use mapsynth_mapreduce::MapReduce;

    fn mk_candidates(rows: Vec<Vec<(&str, &str)>>) -> (Corpus, Vec<BinaryTable>) {
        let mut corpus = Corpus::new();
        let d = corpus.domain("x");
        let mut out = Vec::new();
        for (i, pairs) in rows.into_iter().enumerate() {
            let syms: Vec<(Sym, Sym)> = pairs
                .iter()
                .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                .collect();
            out.push(BinaryTable::new(
                BinaryId(i as u32),
                TableId(i as u32),
                d,
                0,
                1,
                syms,
            ));
        }
        let _ = DomainId(0);
        (corpus, out)
    }

    #[test]
    fn normalization_folds_case_and_footnotes() {
        let (corpus, cands) = mk_candidates(vec![vec![
            ("United States", "USA"),
            ("UNITED STATES[1]", "usa"),
            ("Canada", "CAN"),
        ]]);
        let (space, tables) =
            build_value_space(&corpus, &cands, &SynonymDict::new(), &MapReduce::new(2));
        assert_eq!(tables.len(), 1);
        // "United States" and "UNITED STATES[1]" fold to one value;
        // ("united states","usa") dedups to one pair.
        assert_eq!(tables[0].len(), 2);
        let strs: Vec<&str> = tables[0]
            .pairs
            .iter()
            .map(|&(l, _)| space.string(l))
            .collect();
        assert!(strs.contains(&"united states"));
        assert!(strs.contains(&"canada"));
    }

    #[test]
    fn empty_values_dropped_and_small_tables_omitted() {
        let (corpus, cands) = mk_candidates(vec![
            vec![("***", "x"), ("a", "1")], // one usable pair → dropped
            vec![("a", "1"), ("b", "2")],
        ]);
        let (_, tables) =
            build_value_space(&corpus, &cands, &SynonymDict::new(), &MapReduce::new(2));
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].idx, 1);
    }

    #[test]
    fn char_lengths_count_chars_not_bytes() {
        let (corpus, cands) = mk_candidates(vec![vec![
            ("Côte d'Ivoire", "CIV"),
            ("São Tomé", "STP"),
            ("Curaçao", "CUW"),
        ]]);
        let (space, tables) =
            build_value_space(&corpus, &cands, &SynonymDict::new(), &MapReduce::new(2));
        for &(l, r) in &tables[0].pairs {
            for id in [l, r] {
                assert_eq!(
                    space.compact_chars(id) as usize,
                    space.compact(id).chars().count(),
                    "cached char length must match {:?}",
                    space.compact(id)
                );
            }
        }
        // Multi-byte values must not report byte lengths.
        let cote = tables[0]
            .pairs
            .iter()
            .find(|&&(l, _)| space.string(l).contains("ivoire"))
            .unwrap()
            .0;
        assert!(space.compact(cote).len() > space.compact_chars(cote) as usize);
    }

    #[test]
    fn synonym_classes_fold() {
        let (corpus, cands) = mk_candidates(vec![
            vec![("US Virgin Islands", "ISV"), ("Canada", "CAN")],
            vec![("United States Virgin Islands", "ISV"), ("Canada", "CAN")],
        ]);
        let mut dict = SynonymDict::new();
        dict.declare("US Virgin Islands", "United States Virgin Islands");
        let (space, tables) = build_value_space(&corpus, &cands, &dict, &MapReduce::new(2));
        let l0 = tables[0]
            .pairs
            .iter()
            .find(|&&(l, _)| space.string(l).contains("virgin"))
            .unwrap()
            .0;
        let l1 = tables[1]
            .pairs
            .iter()
            .find(|&&(l, _)| space.string(l).contains("virgin"))
            .unwrap()
            .0;
        assert_ne!(l0, l1, "different strings, different values");
        assert_eq!(space.class(l0), space.class(l1), "same synonym class");
    }
}
