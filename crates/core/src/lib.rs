//! # mapsynth
//!
//! A from-scratch implementation of **"Synthesizing Mapping
//! Relationships Using Table Corpus"** (Wang & He, SIGMOD 2017).
//!
//! Mapping tables — two-column tables where the left column
//! functionally determines the right, like `(country, country-code)` or
//! `(company, stock-ticker)` — power auto-correction, auto-fill and
//! auto-join. This crate synthesizes them from a heterogeneous table
//! corpus in three steps (paper Figure 1):
//!
//! 1. **Candidate extraction** (via [`mapsynth_extract`]) — ordered
//!    column pairs filtered by PMI coherence and approximate FD;
//! 2. **Table synthesis** — a compatibility graph over candidates with
//!    positive max-containment weights ([`compat`], Eq. 3) and negative
//!    FD-conflict weights (Eq. 4), partitioned by a greedy agglomerative
//!    algorithm ([`partition`], Algorithm 3) that never merges across a
//!    hard conflict; the exact solvers for the paper's complexity
//!    trichotomy live in [`exact`];
//! 3. **Conflict resolution** ([`conflict`], Algorithm 4) — remove the
//!    fewest tables so the unioned mapping has no internal conflicts.
//!
//! The end-to-end driver is [`pipeline::Pipeline`]:
//!
//! ```
//! use mapsynth::pipeline::{Pipeline, PipelineConfig};
//! use mapsynth_corpus::Corpus;
//!
//! let mut corpus = Corpus::new();
//! let d = corpus.domain("example.com");
//! for _ in 0..4 {
//!     corpus.push_table(d, vec![
//!         (Some("name"), vec!["United States", "Canada", "Japan", "Germany", "France"]),
//!         (Some("code"), vec!["USA", "CAN", "JPN", "DEU", "FRA"]),
//!     ]);
//! }
//! let output = Pipeline::new(PipelineConfig::default()).run(&corpus);
//! // Both orientations are synthesized (name→code and code→name).
//! assert!(output.mappings.iter().any(|m| {
//!     m.pairs.iter().any(|(l, r)| l == "united states" && r == "usa")
//! }));
//! ```

pub mod blocking;
pub mod compat;
pub mod config;
pub mod conflict;
pub mod curate;
pub mod exact;
pub mod expand;
pub mod graph;
pub mod partition;
pub mod pipeline;
pub mod synth;
pub mod values;

pub use config::SynthesisConfig;
pub use conflict::{resolve_conflicts, resolve_majority_vote, ConflictStats};
pub use graph::{CompatGraph, EdgeWeights};
pub use partition::{greedy_partition, Partitioning};
pub use pipeline::{
    synthesize_from, synthesize_graph, Pipeline, PipelineConfig, PipelineOutput, Resolver,
    StageTimings,
};
pub use synth::SynthesizedMapping;
pub use values::{NormBinary, NormId, ValueSpace};
