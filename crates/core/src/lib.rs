//! # mapsynth
//!
//! A from-scratch implementation of **"Synthesizing Mapping
//! Relationships Using Table Corpus"** (Wang & He, SIGMOD 2017).
//!
//! Mapping tables — two-column tables where the left column
//! functionally determines the right, like `(country, country-code)` or
//! `(company, stock-ticker)` — power auto-correction, auto-fill and
//! auto-join. This crate synthesizes them from a heterogeneous table
//! corpus in three steps (paper Figure 1):
//!
//! 1. **Candidate extraction** (via [`mapsynth_extract`]) — ordered
//!    column pairs filtered by PMI coherence and approximate FD;
//! 2. **Table synthesis** — a compatibility graph over candidates with
//!    positive max-containment weights ([`compat`], Eq. 3) and negative
//!    FD-conflict weights (Eq. 4), partitioned by a greedy agglomerative
//!    algorithm ([`partition`], Algorithm 3) that never merges across a
//!    hard conflict; the exact solvers for the paper's complexity
//!    trichotomy live in [`exact`];
//! 3. **Conflict resolution** ([`conflict`], Algorithm 4) — remove the
//!    fewest tables so the unioned mapping has no internal conflicts.
//!
//! # The staged engine
//!
//! The synthesis engine is **staged**: a [`session::SynthesisSession`]
//! holds each stage's output — extracted candidates, the interned
//! [`values::ValueSpace`] with its [`values::NormBinary`] projections,
//! scored candidate pairs, and per-variant [`graph::CompatGraph`] /
//! [`partition::Partitioning`] — as a first-class, reusable artifact
//! with its own wall-clock timing. Sweeping a threshold or comparing
//! conflict [`pipeline::Resolver`]s re-runs only the cheap tail, not
//! extraction or scoring. [`pipeline::Pipeline`] is the one-shot
//! facade over a session. Corpora evolve without re-preparing: a
//! [`delta::CorpusDelta`] (tables appended + tables retired) re-enters
//! the pipeline at blocking via
//! [`session::SynthesisSession::apply_delta`], bit-identical to a
//! fresh session on the post-delta corpus.
//!
//! Synthesized mappings carry **interned** `(NormId, NormId)` pairs
//! plus a shared handle to the value space
//! ([`synth::SynthesizedMapping`]); strings are materialized only at
//! application boundaries. One such boundary is the **serving
//! handoff**: `mapsynth-serve`'s `SnapshotBuilder::from_synthesized`
//! reads a run's mappings through
//! [`synth::SynthesizedMapping::pair_strs`] (pairs are already
//! normalized, so snapshot construction skips re-normalization) and
//! publishes them as an immutable, versioned lookup snapshot.
//!
//! ```
//! use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
//! use mapsynth::SynthesisConfig;
//! use mapsynth_corpus::Corpus;
//!
//! let mut corpus = Corpus::new();
//! let d = corpus.domain("example.com");
//! for _ in 0..4 {
//!     corpus.push_table(d, vec![
//!         (Some("name"), vec!["United States", "Canada", "Japan", "Germany", "France"]),
//!         (Some("code"), vec!["USA", "CAN", "JPN", "DEU", "FRA"]),
//!     ]);
//! }
//!
//! // Stages 1–3 (extraction, value space, blocking + scoring) run once.
//! let mut session = SynthesisSession::new(PipelineConfig::default());
//! session.prepare(&corpus);
//! let base = session.config().synthesis;
//!
//! // Many variants reuse those artifacts: here, two resolvers and a
//! // θ_edge sweep, all without re-extracting or re-scoring.
//! let strict = session.synthesize(&base, Resolver::Algorithm4);
//! let raw = session.synthesize(&base, Resolver::None);
//! let loose = session.synthesize(&SynthesisConfig { theta_edge: 0.5, ..base }, Resolver::Algorithm4);
//! assert!(loose.edges >= strict.edges);
//! assert_eq!(strict.mappings.len(), raw.mappings.len());
//!
//! // Both orientations are synthesized (name→code and code→name);
//! // pairs materialize to strings only at this boundary.
//! assert!(strict.mappings.iter().any(|m| m.contains_pair("united states", "usa")));
//!
//! // The one-shot facade is equivalent to session.run(&corpus):
//! use mapsynth::pipeline::Pipeline;
//! let output = Pipeline::new(PipelineConfig::default()).run(&corpus);
//! assert_eq!(output.mappings.len(), strict.mappings.len());
//! ```

pub mod approx;
pub mod blocking;
pub mod compat;
pub mod config;
pub mod conflict;
pub mod curate;
pub mod delta;
pub mod exact;
pub mod expand;
pub mod graph;
pub mod partition;
pub mod pipeline;
pub mod session;
pub mod synth;
pub mod values;

pub use approx::{ApproxMemo, ApproxMemoStats};
pub use compat::{MatchCounts, PairWeights, ScoringContext};
pub use config::SynthesisConfig;
pub use conflict::{resolve_conflicts, resolve_majority_vote, ConflictStats};
pub use delta::{
    CorpusDelta, DeltaError, DeltaReport, DeltaTimings, PortableDelta, PortablePatch, PortableTable,
};
pub use graph::{CompatGraph, EdgeWeights};
pub use partition::{greedy_partition, Partitioning};
pub use pipeline::{
    synthesize_from, synthesize_graph, Pipeline, PipelineConfig, PipelineOutput, Resolver,
    StageTimings,
};
pub use session::{
    ExtractionArtifact, ScoreArtifact, ScoringDetail, SessionRun, SynthesisSession, ValueArtifact,
};
pub use synth::SynthesizedMapping;
pub use values::{NormBinary, NormId, ValueSpace};
