//! Global approximate-match memoization (paper §4.1, Algorithm 2 —
//! applied once per *value pair* instead of once per *table pair*),
//! organized as a **string-similarity join**.
//!
//! The naive scoring loop re-runs banded edit distance for the same
//! value pair every time the two values meet inside another scored
//! table pair, making the graph stage `O(pairs × |a|·|b|)` in
//! edit-distance work. An [`ApproxMemo`] resolves every cross-class
//! approximate match **once**, in a single length-bucketed pass over
//! the value universe, and answers all subsequent queries from a
//! compact adjacency index:
//!
//! 1. **Equal-compact groups** — values whose whitespace-stripped
//!    strings coincide (but whose classes differ) match at distance 0
//!    regardless of the fractional threshold; found by one hash pass.
//! 2. **Filtered length windows** — values sorted by cached `char`
//!    length; each value is compared only against values within its
//!    fractional edit-distance window `len ≤ l + min(⌊l·f_ed⌋, k_ed)`.
//!    Inside the window a candidate pair must survive the **signature
//!    prefilters** — the `O(1)` exact lower bounds of
//!    [`mapsynth_text::CharSignature`] (64-bit charset mask, then
//!    histogram L1) against the pair's threshold — before the
//!    edit-distance kernel ([`mapsynth_text::edit_distance_within`]:
//!    bit-parallel Myers, banded-DP fallback) runs at all. The bounds
//!    never exceed the true distance, so pruning is **exact**: the
//!    cached pair set is bit-identical to the unfiltered scan's.
//!    Each unordered pair is evaluated exactly once and mirrored.
//! 3. **Union-find of approximate equivalence** — every matched pair is
//!    unioned; the flattened component id serves as an `O(1)` negative
//!    filter (different components can never match) in front of the
//!    adjacency binary search. The match predicate itself stays the
//!    exact, *non-transitive* pairwise relation — the union-find only
//!    over-approximates it, so cached answers are bit-identical to
//!    direct evaluation.
//!
//! The fresh [`build`](ApproxMemo::build) and the incremental
//! [`extend`](ApproxMemo::extend) share **one** filtered
//! candidate-generation path (the private `enumerate_matches`) — they
//! differ only in which values participate and which pairs are
//! accepted, so the batch and delta pipelines cannot drift apart.
//!
//! Stored entries carry the **actual edit distance**, so any query with
//! *tighter* matching parameters (`f_ed' ≤ f_ed`, `k_ed' ≤ k_ed`) is
//! answerable from the same memo without re-running a single DP —
//! the basis for matching-parameter sweeps over cached match counts.

use crate::values::{NormId, ValueSpace};
use mapsynth_mapreduce::{MapReduce, UnionFind};
use mapsynth_text::{edit_distance_within, fractional_threshold_for_lens, MatchParams};
use std::collections::HashMap;

/// Role bit: the value appears as a left (key) value in some table.
pub const ROLE_LEFT: u8 = 1;
/// Role bit: the value appears as a right value in some table.
pub const ROLE_RIGHT: u8 = 2;

/// Build-time counters (reported as `graph_detail` in the pipeline
/// baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct ApproxMemoStats {
    /// Values participating (role ≠ 0).
    pub values: usize,
    /// Candidate pairs surviving the length window + role/class filters
    /// (before the signature prefilters — the work an unfiltered scan
    /// would hand to the edit-distance kernel).
    pub candidate_pairs: usize,
    /// Candidates rejected by the 64-bit charset-mask lower bound.
    pub sig_mask_rejects: usize,
    /// Candidates rejected by the histogram-L1 lower bound (after
    /// passing the mask).
    pub sig_hist_rejects: usize,
    /// Edit-distance kernel invocations
    /// (= `candidate_pairs − sig_mask_rejects − sig_hist_rejects`,
    /// minus the distance-0 pairs pass 1 already decided).
    pub dp_calls: usize,
    /// Approximately-matching pairs cached.
    pub matched_pairs: usize,
    /// Approximate-equivalence components with ≥ 2 members.
    pub components: usize,
}

/// The memo: a CSR adjacency of approximately-matching cross-class
/// value pairs with their edit distances, plus flattened
/// approximate-equivalence component ids.
#[derive(Clone, Debug)]
pub struct ApproxMemo {
    /// Parameters the memo was built with (the widest answerable).
    params: MatchParams,
    /// CSR offsets: neighbors of value `i` live at
    /// `entries[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// `(partner NormId, edit distance)`, sorted by partner id within
    /// each value's range.
    entries: Vec<(u32, u32)>,
    /// Flattened union-find representative per value.
    component: Vec<u32>,
    /// Build counters.
    pub stats: ApproxMemoStats,
}

impl ApproxMemo {
    /// Build the memo over every value with a non-zero role.
    ///
    /// `roles[id]` carries [`ROLE_LEFT`] / [`ROLE_RIGHT`] bits; a pair
    /// is cached only if the two values share a role (left–left pairs
    /// feed residual key matching, right–right pairs feed FD-conflict
    /// checks — left–right pairs are never queried). The pass is
    /// deterministic for any worker count.
    pub fn build(space: &ValueSpace, roles: &[u8], params: MatchParams, mr: &MapReduce) -> Self {
        let n = space.len();
        debug_assert_eq!(roles.len(), n);
        let ids: Vec<u32> = (0..n as u32).filter(|&i| roles[i as usize] != 0).collect();
        let mut stats = ApproxMemoStats {
            values: ids.len(),
            ..Default::default()
        };
        let (pairs, tallies) =
            enumerate_matches(space, ids, params, mr, |x, y| compatible(roles, x, y));
        tallies.accumulate(&mut stats);
        stats.matched_pairs = pairs.len();

        // Mirror into CSR adjacency + union approximate equivalents.
        Self::from_pairs(n, params, pairs, stats)
    }

    /// Parameters the memo was built with.
    pub fn params(&self) -> MatchParams {
        self.params
    }

    /// Grow the memo for a corpus delta: `new_roles` covers the grown
    /// value space (old values may have *gained* role bits from added
    /// tables; removed tables' values keep theirs — stale bits only
    /// ever cache extra pairs that no surviving query can reach, which
    /// is harmless because any pair actually queried joins two values
    /// carrying the role in live tables).
    ///
    /// The edit-distance kernel runs **only** for pairs that became
    /// queryable — one side new or role-grown — against partners inside
    /// the length window that also survive the signature prefilters;
    /// everything already cached is carried over verbatim. The
    /// enumeration is the **same** `enumerate_matches` path the fresh
    /// build uses (same ownership order, same thresholds, same
    /// filters), restricted by the freshness predicate, so the two
    /// cannot drift. Deterministic for any worker count.
    pub fn extend(
        &self,
        space: &ValueSpace,
        old_roles: &[u8],
        new_roles: &[u8],
        mr: &MapReduce,
    ) -> Self {
        let n = space.len();
        debug_assert_eq!(new_roles.len(), n);
        let params = self.params;
        let mut stats = self.stats;

        // A pair needs evaluation iff it is compatible now but was not
        // at build time (both-old compatible pairs were already
        // decided). "Dirty" values — new or role-grown — are the only
        // ones that can create such pairs; the dirty test is the cheap
        // screen in front of the exact freshness predicate.
        let old_role = |i: usize| old_roles.get(i).copied().unwrap_or(0);
        let dirty: Vec<bool> = (0..n).map(|i| new_roles[i] & !old_role(i) != 0).collect();
        let fresh_pair = |x: u32, y: u32| {
            new_roles[x as usize] & new_roles[y as usize] != 0
                && old_role(x as usize) & old_role(y as usize) == 0
        };

        // Recover the cached pairs once (each mirrored entry with the
        // larger partner id owns the pair).
        let mut pairs: Vec<(u32, u32, u32)> = Vec::with_capacity(self.entries.len() / 2);
        for x in 0..old_roles.len() as u32 {
            for &(y, d) in self.neighbors(NormId(x)) {
                if y > x {
                    pairs.push((x, y, d));
                }
            }
        }

        let ids: Vec<u32> = (0..n as u32)
            .filter(|&i| new_roles[i as usize] != 0)
            .collect();
        stats.values = ids.len();
        let (new_pairs, tallies) = enumerate_matches(space, ids, params, mr, |x, y| {
            (dirty[x as usize] || dirty[y as usize]) && fresh_pair(x, y)
        });
        tallies.accumulate(&mut stats);
        pairs.extend(new_pairs);
        stats.matched_pairs = pairs.len();

        Self::from_pairs(n, params, pairs, stats)
    }

    /// Shrink the memo onto a freshly rebuilt value space without
    /// re-running any edit-distance work.
    ///
    /// `map` translates a pre-compaction value id to its id in the new
    /// space (`None`: the value died with its last table). `new_roles`
    /// are the roles of a **fresh** build over the new space. A cached
    /// pair survives iff both endpoints survive and the pair is still
    /// role-compatible under the fresh roles.
    ///
    /// Why this is exactly the fresh memo: role bits only ever grow
    /// while a session runs (removed tables' bits are never cleared),
    /// so for every surviving value the stale role set is a superset of
    /// its fresh one — the cached pair set restricted by fresh-role
    /// compatibility is precisely the set a fresh build would cache,
    /// with the same distances (matching is content-only). The CSR and
    /// union-find are reassembled from the kept pairs, so `neighbors`,
    /// `distance` and the component filter are bit-identical to a
    /// fresh build's. The prefilter/DP counters in `stats` stay
    /// cumulative (they describe work actually done across the
    /// session); `values`/`matched_pairs`/`components` are recomputed
    /// for the new space.
    pub fn compact(
        &self,
        map: impl Fn(NormId) -> Option<NormId>,
        n_new: usize,
        new_roles: &[u8],
    ) -> Self {
        debug_assert_eq!(new_roles.len(), n_new);
        let n_old = self.offsets.len().saturating_sub(1);
        let mut pairs: Vec<(u32, u32, u32)> = Vec::new();
        for x in 0..n_old as u32 {
            let Some(nx) = map(NormId(x)) else { continue };
            for &(y, d) in self.neighbors(NormId(x)) {
                if y <= x {
                    continue; // each unordered pair owned by its min id
                }
                let Some(ny) = map(NormId(y)) else { continue };
                if new_roles[nx.0 as usize] & new_roles[ny.0 as usize] == 0 {
                    continue;
                }
                pairs.push((nx.0.min(ny.0), nx.0.max(ny.0), d));
            }
        }
        let mut stats = self.stats;
        stats.values = new_roles.iter().filter(|&&r| r != 0).count();
        stats.matched_pairs = pairs.len();
        Self::from_pairs(n_new, self.params, pairs, stats)
    }

    /// Assemble the CSR adjacency + union-find from an explicit pair
    /// list (shared by [`build`](Self::build) and
    /// [`extend`](Self::extend)).
    fn from_pairs(
        n: usize,
        params: MatchParams,
        pairs: Vec<(u32, u32, u32)>,
        mut stats: ApproxMemoStats,
    ) -> Self {
        let mut degree = vec![0u32; n];
        let mut uf = UnionFind::new(n);
        for &(x, y, _) in &pairs {
            degree[x as usize] += 1;
            degree[y as usize] += 1;
            uf.union(x as usize, y as usize);
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut entries = vec![(0u32, 0u32); pairs.len() * 2];
        for &(x, y, d) in &pairs {
            entries[cursor[x as usize] as usize] = (y, d);
            cursor[x as usize] += 1;
            entries[cursor[y as usize] as usize] = (x, d);
            cursor[y as usize] += 1;
        }
        for i in 0..n {
            entries[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }
        let component: Vec<u32> = (0..n).map(|i| uf.find(i) as u32).collect();
        stats.components = pairs
            .iter()
            .map(|&(x, _, _)| component[x as usize])
            .collect::<std::collections::HashSet<_>>()
            .len();
        Self {
            params,
            offsets,
            entries,
            component,
            stats,
        }
    }

    /// Whether queries at `params` are answerable from this memo
    /// (every pair matchable at `params` was cached at build time).
    pub fn covers(&self, params: MatchParams) -> bool {
        params.f_ed <= self.params.f_ed && params.k_ed <= self.params.k_ed
    }

    /// Cached edit distance between two values, if they match under the
    /// *build* parameters.
    #[inline]
    pub fn distance(&self, x: NormId, y: NormId) -> Option<u32> {
        // O(1) negative filter: matched pairs were unioned, so
        // different components can never hold a cached pair.
        if self.component[x.0 as usize] != self.component[y.0 as usize] {
            return None;
        }
        let range = &self.entries
            [self.offsets[x.0 as usize] as usize..self.offsets[x.0 as usize + 1] as usize];
        range
            .binary_search_by_key(&y.0, |&(p, _)| p)
            .ok()
            .map(|i| range[i].1)
    }

    /// The plain approximate-match predicate
    /// ([`mapsynth_text::approx_match`] over compact strings) at query
    /// `params` — equal compact strings always match.
    #[inline]
    pub fn matches(&self, space: &ValueSpace, x: NormId, y: NormId, params: MatchParams) -> bool {
        match self.distance(x, y) {
            None => false,
            Some(0) => true,
            Some(d) => {
                d <= fractional_threshold_for_lens(
                    space.compact_chars(x) as usize,
                    space.compact_chars(y) as usize,
                    params,
                )
            }
        }
    }

    /// The residual-key predicate used for unmatched left values: like
    /// [`matches`](Self::matches) but a zero threshold never matches
    /// (short keys require *class* equality, not merely equal compact
    /// strings — mirrors the naive loop's prefilter).
    #[inline]
    pub fn matches_residual(
        &self,
        space: &ValueSpace,
        x: NormId,
        y: NormId,
        params: MatchParams,
    ) -> bool {
        self.distance(x, y)
            .is_some_and(|d| residual_match(space, x, y, d, params))
    }

    /// All cached partners of `x` as `(partner id, distance)`, sorted
    /// by partner id. Callers intersect this with a table's key set
    /// instead of scanning the table's keys.
    #[inline]
    pub fn neighbors(&self, x: NormId) -> &[(u32, u32)] {
        &self.entries[self.offsets[x.0 as usize] as usize..self.offsets[x.0 as usize + 1] as usize]
    }
}

/// The residual-key acceptance test given an already-known edit
/// distance `d`: the fractional threshold must be non-zero and admit
/// `d`. The single source of truth for residual matching — used by
/// [`ApproxMemo::matches_residual`] and by the scoring merge-join,
/// which iterates neighbor lists and already holds each `d`.
#[inline]
pub fn residual_match(
    space: &ValueSpace,
    x: NormId,
    y: NormId,
    d: u32,
    params: MatchParams,
) -> bool {
    let t = fractional_threshold_for_lens(
        space.compact_chars(x) as usize,
        space.compact_chars(y) as usize,
        params,
    );
    t > 0 && d <= t
}

/// Whether a value pair can ever be queried: both sides share a role.
#[inline]
fn compatible(roles: &[u8], x: u32, y: u32) -> bool {
    roles[x as usize] & roles[y as usize] != 0
}

/// Tallies of one [`enumerate_matches`] pass, folded into
/// [`ApproxMemoStats`] by the caller (the fresh build starts from
/// zero, the delta extend accumulates on the carried-over stats).
#[derive(Clone, Copy, Debug, Default)]
struct PassTallies {
    /// Pairs surviving window + accept + class filters in pass 2,
    /// **including** equal-compact pairs the strcmp later skips.
    window_pairs: usize,
    /// Window pairs skipped because their compact strings are equal
    /// (already cached at distance 0 by pass 1).
    equal_skips: usize,
    /// Distance-0 pairs found by the equal-compact pass.
    zero_pairs: usize,
    /// Window pairs rejected by the charset-mask lower bound.
    mask_rejects: usize,
    /// Window pairs rejected by the histogram-L1 lower bound.
    hist_rejects: usize,
    /// Edit-distance kernel invocations.
    dp_calls: usize,
}

impl PassTallies {
    /// Fold into the public stats. `candidate_pairs` keeps its
    /// pre-prefilter meaning — the pairs an unfiltered scan would have
    /// DP'd (window survivors minus equal-compact skips, plus the
    /// distance-0 pass) — so the committed-baseline ceiling guards the
    /// length window and the signature filters independently.
    fn accumulate(self, stats: &mut ApproxMemoStats) {
        stats.candidate_pairs += self.zero_pairs + self.window_pairs - self.equal_skips;
        stats.sig_mask_rejects += self.mask_rejects;
        stats.sig_hist_rejects += self.hist_rejects;
        stats.dp_calls += self.dp_calls;
    }
}

/// The single filtered candidate-generation path shared by
/// [`ApproxMemo::build`] and [`ApproxMemo::extend`].
///
/// `ids` are the participating values; `accept(x, y)` decides whether
/// an unordered pair may enter the result at all (role compatibility
/// for the fresh build; role compatibility *gained by the delta* for
/// the incremental extend). Returns every accepted cross-class pair
/// whose compact strings match within the fractional threshold, as
/// `(min id, max id, distance)`:
///
/// * **Pass 1** — equal-compact groups: distance-0 matches across
///   classes (whitespace-only differences survive normalization as
///   distinct values but compare equal after compaction), found by one
///   hash pass.
/// * **Pass 2** — values sorted by (compact `char` length, id); each
///   value owns the window of partners that follow it in that order
///   within its fractional length window (`la ≤ lb`, so the pair
///   threshold equals the owner's own-length threshold), parallel per
///   value and deterministic for any worker count. A window pair runs
///   the filter chain — charset-mask bound, histogram-L1 bound (both
///   exact: they never exceed the true distance), equal-compact skip —
///   and only survivors reach the edit-distance kernel.
fn enumerate_matches<F>(
    space: &ValueSpace,
    mut ids: Vec<u32>,
    params: MatchParams,
    mr: &MapReduce,
    accept: F,
) -> (Vec<(u32, u32, u32)>, PassTallies)
where
    F: Fn(u32, u32) -> bool + Sync,
{
    // Values sorted by (compact char length, id): the window index.
    ids.sort_unstable_by_key(|&i| (space.compact_chars(NormId(i)), i));
    let by_len = ids;
    let lens: Vec<u32> = by_len
        .iter()
        .map(|&i| space.compact_chars(NormId(i)))
        .collect();

    let mut tallies = PassTallies::default();

    // Pass 1 — equal-compact groups.
    let mut pairs: Vec<(u32, u32, u32)> = Vec::new();
    let mut by_compact: HashMap<&str, Vec<u32>> = HashMap::new();
    for &i in &by_len {
        by_compact
            .entry(space.compact(NormId(i)))
            .or_default()
            .push(i);
    }
    for group in by_compact.values() {
        for (gi, &x) in group.iter().enumerate() {
            for &y in &group[gi + 1..] {
                if accept(x, y) && space.class(NormId(x)) != space.class(NormId(y)) {
                    pairs.push((x.min(y), x.max(y), 0));
                }
            }
        }
    }
    tallies.zero_pairs = pairs.len();

    // Pass 2 — filtered length windows, parallel per owner.
    type OwnerResult = (Vec<(u32, u32, u32)>, PassTallies);
    let positions: Vec<u32> = (0..by_len.len() as u32).collect();
    let by_len_ref = &by_len;
    let lens_ref = &lens;
    let accept_ref = &accept;
    let found: Vec<OwnerResult> = mr.par_map(&positions, |&p| {
        let p = p as usize;
        let x = by_len_ref[p];
        let la = lens_ref[p];
        let bound = fractional_threshold_for_lens(la as usize, la as usize, params);
        let mut out = Vec::new();
        let mut t = PassTallies::default();
        if bound == 0 {
            // Only exact compact equality can match — covered by the
            // equal-compact pass.
            return (out, t);
        }
        let max_len = la + bound;
        let x_str = space.compact(NormId(x));
        let x_class = space.class(NormId(x));
        let x_sig = space.signature(NormId(x));
        for q in p + 1..by_len_ref.len() {
            let lb = lens_ref[q];
            if lb > max_len {
                break;
            }
            let y = by_len_ref[q];
            if !accept_ref(x, y) || space.class(NormId(y)) == x_class {
                continue;
            }
            t.window_pairs += 1;
            // Signature prefilters: exact lower bounds, cheapest first.
            let y_sig = space.signature(NormId(y));
            if x_sig.mask_bound(y_sig) > bound {
                t.mask_rejects += 1;
                continue;
            }
            if x_sig.hist_bound(y_sig) > bound {
                t.hist_rejects += 1;
                continue;
            }
            let y_str = space.compact(NormId(y));
            if x_str == y_str {
                t.equal_skips += 1;
                continue; // cached at distance 0 by pass 1
            }
            t.dp_calls += 1;
            // la ≤ lb here, so the pair threshold equals `bound`.
            if let Some(d) = edit_distance_within(x_str, y_str, bound) {
                out.push((x.min(y), x.max(y), d));
            }
        }
        (out, t)
    });
    for (found_pairs, t) in found {
        tallies.window_pairs += t.window_pairs;
        tallies.equal_skips += t.equal_skips;
        tallies.mask_rejects += t.mask_rejects;
        tallies.hist_rejects += t.hist_rejects;
        tallies.dp_calls += t.dp_calls;
        pairs.extend(found_pairs);
    }
    (pairs, tallies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn space_of(strings: &[&str]) -> Arc<ValueSpace> {
        ValueSpace::from_strings(strings.iter().map(|s| s.to_string()))
    }

    #[test]
    fn memo_agrees_with_direct_evaluation() {
        let strings = [
            "american samoa",
            "american samoa us",
            "united states virgin islands",
            "us virgin islands",
            "usa",
            "rsa",
            "south korea",
            "korea republic of south",
            "a b c",
            "abc",
        ];
        let space = space_of(&strings);
        let params = MatchParams::default();
        let roles = vec![ROLE_LEFT | ROLE_RIGHT; space.len()];
        let memo = ApproxMemo::build(&space, &roles, params, &MapReduce::new(2));
        for i in 0..space.len() as u32 {
            for j in 0..space.len() as u32 {
                let (x, y) = (NormId(i), NormId(j));
                if i == j || space.class(x) == space.class(y) {
                    continue;
                }
                let direct =
                    mapsynth_text::approx_match(space.compact(x), space.compact(y), params);
                assert_eq!(
                    memo.matches(&space, x, y, params),
                    direct,
                    "{:?} vs {:?}",
                    space.compact(x),
                    space.compact(y)
                );
                // Residual predicate additionally demands a non-zero
                // threshold.
                let t =
                    mapsynth_text::fractional_threshold(space.compact(x), space.compact(y), params);
                assert_eq!(memo.matches_residual(&space, x, y, params), direct && t > 0);
            }
        }
    }

    #[test]
    fn equal_compact_strings_match_at_distance_zero() {
        let space = space_of(&["a b c", "abc"]);
        let roles = vec![ROLE_LEFT; space.len()];
        let memo = ApproxMemo::build(&space, &roles, MatchParams::default(), &MapReduce::new(1));
        assert_eq!(memo.distance(NormId(0), NormId(1)), Some(0));
        // Plain predicate: yes. Residual predicate: no (threshold 0).
        assert!(memo.matches(&space, NormId(0), NormId(1), MatchParams::default()));
        assert!(!memo.matches_residual(&space, NormId(0), NormId(1), MatchParams::default()));
    }

    #[test]
    fn tighter_params_reuse_the_same_memo() {
        let space = space_of(&["american samoa", "american samoa usx"]);
        let roles = vec![ROLE_LEFT; space.len()];
        let wide = MatchParams {
            f_ed: 0.3,
            k_ed: 10,
        };
        let memo = ApproxMemo::build(&space, &roles, wide, &MapReduce::new(1));
        // Distance 4 matches at f_ed = 0.3 (threshold ⌊13·0.3⌋ = 3? no:
        // lens 13 vs 16 → min(3, 4) = 3) — verify against direct calls
        // instead of hand arithmetic.
        for f_ed in [0.1, 0.2, 0.3] {
            let p = MatchParams { f_ed, k_ed: 10 };
            assert!(memo.covers(p));
            let direct =
                mapsynth_text::approx_match(space.compact(NormId(0)), space.compact(NormId(1)), p);
            assert_eq!(
                memo.matches(&space, NormId(0), NormId(1), p),
                direct,
                "f_ed={f_ed}"
            );
        }
        assert!(!memo.covers(MatchParams {
            f_ed: 0.4,
            k_ed: 10
        }));
    }

    #[test]
    fn role_filter_skips_unqueryable_pairs() {
        let space = space_of(&["north dakota", "north dakotas"]);
        // One is only ever a left, the other only a right: the pair can
        // never be queried, so it must not be cached.
        let memo = ApproxMemo::build(
            &space,
            &[ROLE_LEFT, ROLE_RIGHT],
            MatchParams::default(),
            &MapReduce::new(1),
        );
        assert_eq!(memo.distance(NormId(0), NormId(1)), None);
        let both = ApproxMemo::build(
            &space,
            &[ROLE_LEFT, ROLE_LEFT],
            MatchParams::default(),
            &MapReduce::new(1),
        );
        assert_eq!(both.distance(NormId(0), NormId(1)), Some(1));
    }

    #[test]
    fn extend_equals_fresh_build_through_shared_path() {
        // Roles granted in two steps must produce the same memo as one
        // fresh build with the final roles — the shared enumeration
        // path restricted by freshness must cover exactly the new
        // pairs.
        let strings = [
            "american samoa",
            "american samoa us",
            "american samao", // typo
            "cote divoire",
            "cote d ivoire",
            "usa",
            "uza",
        ];
        let space = space_of(&strings);
        let params = MatchParams::default();
        let mr = MapReduce::new(2);
        let none = vec![0u8; space.len()];
        let mut half = vec![ROLE_LEFT; space.len()];
        half[2] = 0;
        half[4] = 0;
        let full = vec![ROLE_LEFT | ROLE_RIGHT; space.len()];

        let fresh = ApproxMemo::build(&space, &full, params, &mr);
        let grown = ApproxMemo::build(&space, &half, params, &mr)
            .extend(&space, &half, &full, &mr)
            .extend(&space, &full, &full, &mr); // no-op delta
        assert_eq!(fresh.offsets, grown.offsets);
        assert_eq!(fresh.entries, grown.entries);
        assert_eq!(fresh.component, grown.component);

        // From nothing: extend must equal a fresh build outright.
        let from_none =
            ApproxMemo::build(&space, &none, params, &mr).extend(&space, &none, &full, &mr);
        assert_eq!(fresh.entries, from_none.entries);
    }

    #[test]
    fn signature_filters_only_skip_kernel_work() {
        // On a window-dense set the filters must reject candidates
        // (dp_calls < candidate_pairs) without changing the cached
        // pair set — checked against direct evaluation of every pair.
        let strings: Vec<String> = ["alpha", "alhpa", "bravo", "brava", "delta", "gamma"]
            .iter()
            .flat_map(|b| (0..4).map(move |i| format!("{b} station {i}")))
            .collect();
        let space = ValueSpace::from_strings(strings);
        let params = MatchParams::default();
        let roles = vec![ROLE_LEFT | ROLE_RIGHT; space.len()];
        let memo = ApproxMemo::build(&space, &roles, params, &MapReduce::new(2));
        assert!(
            memo.stats.sig_mask_rejects + memo.stats.sig_hist_rejects > 0,
            "expected some prefilter rejections on near-match data"
        );
        // candidate = distance-0 pairs + mask rejects + hist rejects
        // + kernel calls (every window candidate lands in exactly one
        // bucket).
        assert!(
            memo.stats.candidate_pairs
                >= memo.stats.dp_calls + memo.stats.sig_mask_rejects + memo.stats.sig_hist_rejects
        );
        assert!(memo.stats.dp_calls < memo.stats.candidate_pairs);
        for i in 0..space.len() as u32 {
            for j in 0..space.len() as u32 {
                let (x, y) = (NormId(i), NormId(j));
                if i == j || space.class(x) == space.class(y) {
                    continue;
                }
                let direct =
                    mapsynth_text::approx_match(space.compact(x), space.compact(y), params);
                assert_eq!(memo.matches(&space, x, y, params), direct);
            }
        }
    }

    proptest::proptest! {
        /// Memo ≡ direct predicate on generated near-match corpora:
        /// the signature filters and the Myers kernel must be
        /// invisible in the cached result.
        #[test]
        fn prop_filtered_memo_matches_direct(
            bases in proptest::collection::vec("[a-c]{3,12}", 2..8),
            suffix in 0u32..3,
        ) {
            let strings: Vec<String> = bases
                .iter()
                .flat_map(|b| {
                    [
                        format!("{b} number {suffix}"),
                        format!("{b}x number {suffix}"),
                        b.clone(),
                    ]
                })
                .collect();
            let space = ValueSpace::from_strings(strings);
            let params = MatchParams::default();
            let roles = vec![ROLE_LEFT | ROLE_RIGHT; space.len()];
            let memo = ApproxMemo::build(&space, &roles, params, &MapReduce::new(2));
            for i in 0..space.len() as u32 {
                for j in 0..space.len() as u32 {
                    let (x, y) = (NormId(i), NormId(j));
                    if i == j || space.class(x) == space.class(y) {
                        continue;
                    }
                    let direct = mapsynth_text::approx_match(
                        space.compact(x),
                        space.compact(y),
                        params,
                    );
                    proptest::prop_assert_eq!(
                        memo.matches(&space, x, y, params),
                        direct,
                        "{:?} vs {:?}",
                        space.compact(x),
                        space.compact(y)
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let strings: Vec<String> = (0..60)
            .map(|i| format!("entity number {}", i % 20))
            .chain((0..40).map(|i| format!("entity numbr {}", i % 20)))
            .collect();
        // Dedup through the space (identical strings collapse).
        let space = ValueSpace::from_strings(strings);
        let roles = vec![ROLE_LEFT | ROLE_RIGHT; space.len()];
        let m1 = ApproxMemo::build(&space, &roles, MatchParams::default(), &MapReduce::new(1));
        let m8 = ApproxMemo::build(&space, &roles, MatchParams::default(), &MapReduce::new(8));
        assert_eq!(m1.offsets, m8.offsets);
        assert_eq!(m1.entries, m8.entries);
        assert_eq!(m1.component, m8.component);
    }
}
