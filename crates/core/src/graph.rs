//! The compatibility graph `G = (B, E)` (paper §4.2).
//!
//! Vertices are candidate tables; edges carry positive and negative
//! weights. Construction scores blocked candidate pairs in parallel,
//! then keeps an edge only if its positive weight clears `θ_edge` or
//! its negative weight breaches the hard-constraint threshold `τ`.

use crate::blocking::{candidate_pairs, BlockingStats};
use crate::compat::ScoringContext;
use crate::config::SynthesisConfig;
use crate::values::{NormBinary, ValueSpace};
use mapsynth_mapreduce::MapReduce;

/// Edge weights.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeWeights {
    /// Positive compatibility `w⁺ ∈ [0, 1]` (0 if below `θ_edge`).
    pub pos: f64,
    /// Negative incompatibility `w⁻ ∈ [-1, 0]` (0 if above `τ`).
    pub neg: f64,
}

/// The compatibility graph: `n` vertices (indices into the
/// `NormBinary` slice) and a sorted, deduplicated edge list with
/// `a < b`.
#[derive(Clone, Debug)]
pub struct CompatGraph {
    /// Vertex count.
    pub n: usize,
    /// Edges `(a, b, weights)` with `a < b`, sorted. Fixed at
    /// construction — the sign counts below are computed once from
    /// them, not re-scanned per query.
    pub edges: Vec<(u32, u32, EdgeWeights)>,
    /// Blocking statistics (for the scalability experiments).
    pub blocking: BlockingStats,
    /// Edges with `neg < 0`, counted at construction.
    negative_edge_count: usize,
    /// Edges with `pos > 0`, counted at construction.
    positive_edge_count: usize,
}

impl CompatGraph {
    /// Build a graph from an edge list, counting edge signs once.
    pub fn new(n: usize, edges: Vec<(u32, u32, EdgeWeights)>, blocking: BlockingStats) -> Self {
        let negative_edge_count = edges.iter().filter(|(_, _, w)| w.neg < 0.0).count();
        let positive_edge_count = edges.iter().filter(|(_, _, w)| w.pos > 0.0).count();
        Self {
            n,
            edges,
            blocking,
            negative_edge_count,
            positive_edge_count,
        }
    }

    /// Number of edges with a hard negative constraint.
    pub fn negative_edges(&self) -> usize {
        self.negative_edge_count
    }

    /// Number of edges with positive weight.
    pub fn positive_edges(&self) -> usize {
        self.positive_edge_count
    }
}

/// Build the compatibility graph: block, build the shared
/// [`ScoringContext`] (table views + approximate-match memo) once,
/// score all blocked pairs in parallel off it, filter.
pub fn build_graph(
    space: &ValueSpace,
    tables: &[NormBinary],
    cfg: &SynthesisConfig,
    mr: &MapReduce,
) -> CompatGraph {
    let (pairs, blocking) = candidate_pairs(space, tables, cfg, mr);
    let ctx = ScoringContext::build(space, tables, cfg, mr);
    let scored = mr.par_map(&pairs, |&(a, b)| (a, b, ctx.score_pair(space, a, b)));
    let mut g = graph_from_scores(tables.len(), &scored, cfg);
    g.blocking = blocking;
    g
}

/// Build the graph from pre-scored pairs (evaluation harnesses share
/// one scoring pass across Synthesis and the schema-matching
/// baselines, which use the same signals).
pub fn graph_from_scores(
    n: usize,
    scored: &[(u32, u32, crate::compat::PairWeights)],
    cfg: &SynthesisConfig,
) -> CompatGraph {
    let edges: Vec<(u32, u32, EdgeWeights)> = scored
        .iter()
        .filter_map(|&(a, b, w)| {
            let pos = if w.pos >= cfg.theta_edge { w.pos } else { 0.0 };
            let neg = if cfg.use_negative && w.neg < cfg.tau {
                w.neg
            } else {
                0.0
            };
            (pos > 0.0 || neg < 0.0).then_some((a, b, EdgeWeights { pos, neg }))
        })
        .collect();
    CompatGraph::new(n, edges, Default::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_mapreduce::MapReduce;
    use mapsynth_text::SynonymDict;

    fn setup(tables: Vec<Vec<(&str, &str)>>) -> (std::sync::Arc<ValueSpace>, Vec<NormBinary>) {
        let mut corpus = Corpus::new();
        let d = corpus.domain("x");
        let cands: Vec<BinaryTable> = tables
            .into_iter()
            .enumerate()
            .map(|(i, rows)| {
                let syms = rows
                    .iter()
                    .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                    .collect();
                BinaryTable::new(BinaryId(i as u32), TableId(i as u32), d, 0, 1, syms)
            })
            .collect();
        build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &MapReduce::new(2),
        )
    }

    #[test]
    fn graph_keeps_strong_pos_and_hard_neg() {
        let (space, t) = setup(vec![
            // 0 and 1: identical → pos 1.0
            vec![("a", "1"), ("b", "2"), ("c", "3")],
            vec![("a", "1"), ("b", "2"), ("c", "3")],
            // 2: conflicts with both on every row → hard negative
            vec![("a", "9"), ("b", "8"), ("c", "7")],
            // 3: weak overlap with 0 (2/4 = 0.5 < θ_edge) → filtered
            vec![("a", "1"), ("b", "2"), ("x", "5"), ("y", "6")],
        ]);
        let g = build_graph(&space, &t, &SynthesisConfig::default(), &MapReduce::new(2));
        assert_eq!(g.n, 4);
        let find = |a: u32, b: u32| g.edges.iter().find(|&&(x, y, _)| (x, y) == (a, b));
        let e01 = find(0, 1).expect("identical tables edge");
        assert_eq!(e01.2.pos, 1.0);
        let e02 = find(0, 2).expect("conflict edge");
        assert!(e02.2.neg <= -0.9);
        // weak edge filtered: (0,3) pos = max(2/3, 2/4) = 0.67 < 0.85, no conflicts
        assert!(find(0, 3).is_none());
        // hard negatives: (0,2), (1,2), and (2,3) — table 3 also
        // conflicts with 2 on lefts a and b.
        assert_eq!(g.negative_edges(), 3);
    }

    #[test]
    fn without_negative_drops_hard_constraints() {
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2"), ("c", "3")],
            vec![("a", "9"), ("b", "8"), ("c", "7")],
        ]);
        let g = build_graph(
            &space,
            &t,
            &SynthesisConfig::default().without_negative(),
            &MapReduce::new(1),
        );
        assert_eq!(g.edges.len(), 0);
    }

    #[test]
    fn deterministic_across_workers() {
        let rows: Vec<Vec<(&str, &str)>> = (0..6)
            .map(|i| {
                vec![
                    ("a", "1"),
                    ("b", "2"),
                    ("c", "3"),
                    if i % 2 == 0 { ("d", "4") } else { ("e", "5") },
                ]
            })
            .collect();
        let (space, t) = setup(rows);
        let g1 = build_graph(&space, &t, &SynthesisConfig::default(), &MapReduce::new(1));
        let g8 = build_graph(&space, &t, &SynthesisConfig::default(), &MapReduce::new(8));
        assert_eq!(g1.edges.len(), g8.edges.len());
        for (a, b) in g1.edges.iter().zip(&g8.edges) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
            assert_eq!(a.2, b.2);
        }
    }
}
