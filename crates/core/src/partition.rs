//! Greedy table-synthesis partitioning — the paper's Algorithm 3.
//!
//! Table synthesis (Problem 11) maximizes the sum of intra-partition
//! positive weights subject to *no hard negative edge inside any
//! partition*. The problem is NP-hard (Theorem 13, reduction from
//! multiway cut), and the O(log N) LP-rounding approximation is
//! impractical at corpus scale, so the paper uses a greedy
//! agglomerative heuristic:
//!
//! * start with singleton partitions;
//! * repeatedly merge the pair of partitions with the largest positive
//!   weight among pairs whose negative weight is not a hard constraint
//!   (`w⁻ ≥ τ`);
//! * on merge, positive weights to other partitions add up and negative
//!   weights take the minimum (most conflicting member pair governs);
//! * stop when no mergeable pair remains.
//!
//! Implemented with a lazily-invalidated max-heap (stale entries are
//! checked against per-partition versions on pop) and per-partition
//! adjacency maps; overall `O(E log E · α)` with small constants. The
//! divide-and-conquer variant ([`partition_by_components`]) first
//! splits the graph into positively-connected components (Appendix F /
//! Hash-to-Min) and partitions each independently — identical results,
//! embarrassingly parallel.

use crate::config::SynthesisConfig;
use crate::graph::CompatGraph;
use mapsynth_mapreduce::{connected_components_union_find, MapReduce};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// A disjoint partitioning of graph vertices. Groups are sorted
/// internally and by first member; singletons included.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partitioning {
    /// Vertex groups.
    pub groups: Vec<Vec<u32>>,
}

impl Partitioning {
    /// Total objective value: sum of intra-partition positive edge
    /// weights (Equation 5) for a given graph.
    pub fn objective(&self, graph: &CompatGraph) -> f64 {
        let mut part_of: HashMap<u32, usize> = HashMap::new();
        for (gi, g) in self.groups.iter().enumerate() {
            for &v in g {
                part_of.insert(v, gi);
            }
        }
        graph
            .edges
            .iter()
            .filter(|&&(a, b, _)| part_of.get(&a) == part_of.get(&b))
            .map(|&(_, _, w)| w.pos)
            .sum()
    }

    /// Whether the partitioning violates any hard negative constraint.
    pub fn violates_constraints(&self, graph: &CompatGraph, tau: f64) -> bool {
        let mut part_of: HashMap<u32, usize> = HashMap::new();
        for (gi, g) in self.groups.iter().enumerate() {
            for &v in g {
                part_of.insert(v, gi);
            }
        }
        graph
            .edges
            .iter()
            .any(|&(a, b, w)| w.neg < tau && part_of.get(&a) == part_of.get(&b))
    }
}

/// Heap entry ordered by positive weight, tie-broken by vertex ids for
/// determinism.
struct MergeCandidate {
    pos: f64,
    a: u32,
    b: u32,
    ver_a: u64,
    ver_b: u64,
}

impl PartialEq for MergeCandidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeCandidate {}
impl PartialOrd for MergeCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeCandidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.pos
            .total_cmp(&other.pos)
            .then_with(|| other.a.cmp(&self.a)) // smaller ids first on tie
            .then_with(|| other.b.cmp(&self.b))
    }
}

/// Run Algorithm 3 on the whole graph.
pub fn greedy_partition(graph: &CompatGraph, cfg: &SynthesisConfig) -> Partitioning {
    let n = graph.n;
    // Per-partition adjacency: root vertex → (neighbor root → (pos, neg)).
    let mut adj: Vec<HashMap<u32, (f64, f64)>> = vec![HashMap::new(); n];
    for &(a, b, w) in &graph.edges {
        adj[a as usize].insert(b, (w.pos, w.neg));
        adj[b as usize].insert(a, (w.pos, w.neg));
    }
    let mut members: Vec<Vec<u32>> = (0..n as u32).map(|v| vec![v]).collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut version: Vec<u64> = vec![0; n];

    let mut heap: BinaryHeap<MergeCandidate> = BinaryHeap::new();
    for &(a, b, w) in &graph.edges {
        if w.pos > 0.0 && w.neg >= cfg.tau {
            heap.push(MergeCandidate {
                pos: w.pos,
                a,
                b,
                ver_a: 0,
                ver_b: 0,
            });
        }
    }

    while let Some(cand) = heap.pop() {
        let (a, b) = (cand.a as usize, cand.b as usize);
        // Lazy invalidation: stale version or dead partition.
        if !alive[a] || !alive[b] || version[a] != cand.ver_a || version[b] != cand.ver_b {
            continue;
        }
        let Some(&(pos, neg)) = adj[a].get(&cand.b) else {
            continue;
        };
        if pos <= 0.0 || neg < cfg.tau {
            continue;
        }
        debug_assert!((pos - cand.pos).abs() < 1e-12);

        // Merge the smaller adjacency into the larger (keep = larger).
        let (keep, gone) = if adj[a].len() >= adj[b].len() {
            (a, b)
        } else {
            (b, a)
        };
        alive[gone] = false;
        version[keep] += 1;
        let moved_members = std::mem::take(&mut members[gone]);
        members[keep].extend(moved_members);
        let gone_adj = std::mem::take(&mut adj[gone]);
        adj[keep].remove(&(gone as u32));
        for (nb, (p2, n2)) in gone_adj {
            if nb as usize == keep {
                continue;
            }
            let merged = {
                let entry = adj[keep].entry(nb).or_insert((0.0, 0.0));
                entry.0 += p2;
                entry.1 = entry.1.min(n2);
                *entry
            };
            // Fix the neighbor's back-pointers.
            let nb_adj = &mut adj[nb as usize];
            nb_adj.remove(&(gone as u32));
            nb_adj.insert(keep as u32, merged);
        }
        // Other neighbors of `keep` also need their back-pointers
        // version-refreshed via new heap entries.
        for (&nb, &(p2, n2)) in &adj[keep] {
            if p2 > 0.0 && n2 >= cfg.tau {
                heap.push(MergeCandidate {
                    pos: p2,
                    a: (keep as u32).min(nb),
                    b: (keep as u32).max(nb),
                    ver_a: version[(keep).min(nb as usize)],
                    ver_b: version[(keep).max(nb as usize)],
                });
            }
        }
    }

    let mut groups: Vec<Vec<u32>> = (0..n)
        .filter(|&v| alive[v])
        .map(|v| {
            let mut g = std::mem::take(&mut members[v]);
            g.sort_unstable();
            g
        })
        .collect();
    groups.sort_by_key(|g| g[0]);
    Partitioning { groups }
}

/// Divide-and-conquer variant (paper Appendix F): split into
/// positively-connected components, partition each independently in
/// parallel. Produces the same partitioning as [`greedy_partition`]
/// because merges never cross positive components.
pub fn partition_by_components(
    graph: &CompatGraph,
    cfg: &SynthesisConfig,
    mr: &MapReduce,
) -> Partitioning {
    // Components over positive edges only.
    let pos_edges: Vec<(u32, u32)> = graph
        .edges
        .iter()
        .filter(|(_, _, w)| w.pos > 0.0)
        .map(|&(a, b, _)| (a, b))
        .collect();
    let components = connected_components_union_find(graph.n, &pos_edges);

    // Build a subgraph per non-trivial component.
    let mut comp_of: Vec<u32> = vec![0; graph.n];
    for (ci, comp) in components.iter().enumerate() {
        for &v in comp {
            comp_of[v] = ci as u32;
        }
    }
    let mut comp_edges: Vec<Vec<(u32, u32, crate::graph::EdgeWeights)>> =
        vec![Vec::new(); components.len()];
    for &(a, b, w) in &graph.edges {
        if comp_of[a as usize] == comp_of[b as usize] {
            comp_edges[comp_of[a as usize] as usize].push((a, b, w));
        }
        // Negative edges across components can never merge anyway.
    }

    let jobs: Vec<(usize, &Vec<usize>)> = components.iter().enumerate().collect();
    let results: Vec<Vec<Vec<u32>>> = mr.par_map(&jobs, |&(ci, comp)| {
        if comp.len() == 1 {
            return vec![vec![comp[0] as u32]];
        }
        // Local reindex.
        let mut local_of: HashMap<u32, u32> = HashMap::new();
        for (li, &v) in comp.iter().enumerate() {
            local_of.insert(v as u32, li as u32);
        }
        let edges: Vec<(u32, u32, crate::graph::EdgeWeights)> = comp_edges[ci]
            .iter()
            .map(|&(a, b, w)| (local_of[&a], local_of[&b], w))
            .collect();
        let sub = CompatGraph::new(comp.len(), edges, Default::default());
        let part = greedy_partition(&sub, cfg);
        part.groups
            .into_iter()
            .map(|g| g.into_iter().map(|v| comp[v as usize] as u32).collect())
            .collect()
    });

    let mut groups: Vec<Vec<u32>> = results.into_iter().flatten().collect();
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort_by_key(|g| g[0]);
    Partitioning { groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeWeights;

    fn graph(n: usize, edges: Vec<(u32, u32, f64, f64)>) -> CompatGraph {
        CompatGraph::new(
            n,
            edges
                .into_iter()
                .map(|(a, b, p, ng)| (a, b, EdgeWeights { pos: p, neg: ng }))
                .collect(),
            Default::default(),
        )
    }

    fn cfg() -> SynthesisConfig {
        SynthesisConfig {
            theta_edge: 0.0,
            ..Default::default()
        }
    }

    /// Paper Figure 3 / Example 16: vertices 1,2 (ISO) and 3,4,5 (IOC)
    /// — 0-indexed here as 0,1 and 2,3,4.
    #[test]
    fn paper_example_16_figure_3() {
        let g = graph(
            5,
            vec![
                (0, 1, 0.5, 0.0),    // B1-B2
                (1, 2, 0.67, -0.7),  // B2-B3: positive but hard conflict
                (2, 4, 0.8, 0.0),    // B3-B5 (merged first)
                (3, 4, 0.7, 0.0),    // B4-B5
                (2, 3, 0.6, 0.0),    // B3-B4
                (0, 3, 0.33, -0.33), // B1-B4: weak positive, hard conflict
            ],
        );
        let p = greedy_partition(&g, &cfg());
        assert_eq!(p.groups, vec![vec![0, 1], vec![2, 3, 4]]);
    }

    #[test]
    fn respects_hard_constraints() {
        // Triangle: 0-1 strong positive, 1-2 positive, 0-2 hard
        // negative → 2 cannot join the 0-1 partition.
        let g = graph(
            3,
            vec![(0, 1, 0.9, 0.0), (1, 2, 0.8, 0.0), (0, 2, 0.0, -0.9)],
        );
        let p = greedy_partition(&g, &cfg());
        assert!(!p.violates_constraints(&g, cfg().tau));
        // 0 and 1 merge first (0.9); then {0,1}-2 inherits min neg
        // −0.9 → blocked. 2 stays alone.
        assert_eq!(p.groups, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn merge_order_affects_outcome_greedily() {
        // If 1-2 merged first (0.8 < 0.9 so it doesn't), 0 would be
        // blocked. Verify greedy picks the highest edge first.
        let g = graph(
            3,
            vec![(0, 1, 0.7, 0.0), (1, 2, 0.9, 0.0), (0, 2, 0.0, -0.9)],
        );
        let p = greedy_partition(&g, &cfg());
        assert_eq!(p.groups, vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn positive_weights_sum_on_merge() {
        // 0-1 (0.6), 0-2 (0.3), 1-2 (0.3). After merging 0-1, edge to
        // 2 sums to 0.6 and the merge proceeds → all one partition.
        let g = graph(
            3,
            vec![(0, 1, 0.6, 0.0), (0, 2, 0.3, 0.0), (1, 2, 0.3, 0.0)],
        );
        let p = greedy_partition(&g, &cfg());
        assert_eq!(p.groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn negative_min_propagates_through_merges() {
        // 2 conflicts with 1 only; after 0-1 merge, {0,1} must inherit
        // the conflict (min) and refuse 2 despite positive weight to 0.
        let g = graph(
            3,
            vec![(0, 1, 0.9, 0.0), (0, 2, 0.8, 0.0), (1, 2, 0.5, -0.9)],
        );
        let p = greedy_partition(&g, &cfg());
        assert_eq!(p.groups, vec![vec![0, 1], vec![2]]);
        assert!(!p.violates_constraints(&g, cfg().tau));
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = graph(0, vec![]);
        assert!(greedy_partition(&g, &cfg()).groups.is_empty());
        let g = graph(3, vec![]);
        let p = greedy_partition(&g, &cfg());
        assert_eq!(p.groups, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn components_variant_matches_global() {
        // Two independent clusters plus a constraint inside one.
        let g = graph(
            7,
            vec![
                (0, 1, 0.9, 0.0),
                (1, 2, 0.8, 0.0),
                (0, 2, 0.0, -0.9),
                (3, 4, 0.7, 0.0),
                (4, 5, 0.6, 0.0),
                (3, 5, 0.5, 0.0),
            ],
        );
        let a = greedy_partition(&g, &cfg());
        let b = partition_by_components(&g, &cfg(), &MapReduce::new(4));
        assert_eq!(a, b);
        // vertex 6 isolated
        assert!(a.groups.contains(&vec![6]));
    }

    #[test]
    fn objective_counts_intra_partition_weight() {
        let g = graph(
            4,
            vec![
                (0, 1, 0.5, 0.0),
                (2, 3, 0.4, 0.0),
                (1, 2, 0.9, -0.9), // blocked
            ],
        );
        let p = greedy_partition(&g, &cfg());
        assert_eq!(p.groups, vec![vec![0, 1], vec![2, 3]]);
        assert!((p.objective(&g) - 0.9).abs() < 1e-9);
    }
}
