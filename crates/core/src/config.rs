//! Synthesis parameters (paper §4 and §5.4).

use mapsynth_text::MatchParams;

/// Parameters of the synthesis step. Defaults follow the paper's
/// reported settings (§5.4).
#[derive(Clone, Copy, Debug)]
pub struct SynthesisConfig {
    /// `θ_overlap`: minimum shared value pairs (for positive candidate
    /// pairs) or shared left values (for negative candidate pairs)
    /// before a table pair's compatibility is evaluated at all. Blocks
    /// the O(N²) comparison (paper §4.1 "Efficiency").
    pub theta_overlap: usize,
    /// `θ_edge`: positive edges below this weight are filtered from the
    /// graph as insignificant (paper: best at 0.85).
    pub theta_edge: f64,
    /// `τ`: negative edges at or below this weight are hard constraints
    /// — their endpoints may never share a partition (paper: −0.2 used,
    /// peak quality near −0.05). Negative scores above τ are ignored.
    pub tau: f64,
    /// Approximate string matching parameters (`f_ed`, `k_ed`).
    pub match_params: MatchParams,
    /// Whether approximate (edit-distance) matching is applied on top
    /// of normalized-equality matching when scoring table pairs.
    pub approx_matching: bool,
    /// Whether negative (FD-conflict) evidence is used at all. `false`
    /// reproduces the paper's `SynthesisPos` ablation.
    pub use_negative: bool,
    /// Per-blocking-key fanout cap: keys (value pairs / left values)
    /// shared by more than this many tables contribute no candidate
    /// pairs (the tables will meet through rarer keys). Bounds shuffle
    /// size exactly like the paper's inverted-index re-grouping.
    pub max_key_fanout: usize,
    /// Skip approximate matching for table pairs whose cross product
    /// exceeds this bound (cost guard; exact matching still applies).
    pub max_approx_cross: usize,
    /// Run conflict resolution (paper §4.2 "Conflict Resolution",
    /// Algorithm 4) on each synthesized partition.
    pub resolve_conflicts: bool,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self {
            theta_overlap: 2,
            theta_edge: 0.85,
            tau: -0.2,
            match_params: MatchParams::default(),
            approx_matching: true,
            use_negative: true,
            max_key_fanout: 64,
            max_approx_cross: 4096,
            resolve_conflicts: true,
        }
    }
}

impl SynthesisConfig {
    /// The `SynthesisPos` ablation: identical but ignoring FD-induced
    /// negative evidence (paper §5.2).
    pub fn without_negative(mut self) -> Self {
        self.use_negative = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SynthesisConfig::default();
        assert_eq!(c.theta_edge, 0.85);
        assert_eq!(c.tau, -0.2);
        assert_eq!(c.match_params.k_ed, 10);
        assert!(c.use_negative);
        assert!(!c.without_negative().use_negative);
    }
}
