//! Deterministic fault-injection harness over the serve-side
//! [`DeltaIngestor`]: a seeded request stream with malformed deltas,
//! induced apply panics and simulated publish failures at *chosen*
//! positions — so the driver knows every expected rejection,
//! quarantine entry, retry and abandoned publish **a priori** and can
//! gate them exactly.
//!
//! The stream mirrors the sustained row-delta stream's churn shape
//! (row patches, table removals, stashed re-insertions) but goes
//! through the key-addressed [`DeltaRequest`] API, while the driver
//! keeps a *shadow* of the accepted-only corpus content. At the end
//! the harness proves the robustness contract:
//!
//! * the post-stream session is bit-identical (observable synthesis
//!   output) to a **fresh session prepared on a corpus rebuilt from
//!   the shadow** — i.e. from the accepted deltas only, as if every
//!   poisoned delta had never been submitted;
//! * every rejected delta is present in the quarantine with its exact
//!   stream position and expected typed reason;
//! * retry/abandon counters match the publish-failure plan exactly;
//! * a concurrent reader sustained lookups throughout, observing only
//!   monotone snapshot versions (serving QPS under churn is recorded).

use crate::{StreamRng, STREAM_COMPACT_THRESHOLD};
use mapsynth::delta::DeltaError;
use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
use mapsynth_corpus::{Corpus, RowPatchError};
use mapsynth_serve::ingest::{
    DeltaIngestor, DeltaRequest, FaultInjector, IngestError, IngestOutcome, IngestStats,
    IngestorConfig, PatchSpec, TableSpec,
};
use mapsynth_serve::MappingService;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Corpus size of the fault-injection stream tier.
pub const FAULT_STREAM_TABLES: usize = 100;
/// Requests driven through the ingestor by the fault tier.
pub const FAULT_STREAM_DELTAS: usize = 400;
/// Ingestor publish cadence used by the fault tier.
pub const FAULT_PUBLISH_EVERY: usize = 25;
/// Publish attempts before the ingestor abandons a publish.
pub const FAULT_MAX_PUBLISH_ATTEMPTS: u32 = 3;

/// The kind of poison planted at a malformed stream position. Kinds
/// cycle in this order, exercising key resolution, corpus-level patch
/// validation and session-level delta validation respectively.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MalformedKind {
    /// A removal naming a key that was never live.
    UnknownKey,
    /// An add re-using a live key.
    DuplicateKey,
    /// A patch deleting a row its table does not contain.
    MissingRow,
    /// A patch with no deletions and no insertions.
    EmptyPatch,
}

const MALFORMED_CYCLE: [MalformedKind; 4] = [
    MalformedKind::UnknownKey,
    MalformedKind::DuplicateKey,
    MalformedKind::MissingRow,
    MalformedKind::EmptyPatch,
];

/// What the plan expects the quarantine to hold for one rejected
/// position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpectedRejection {
    /// One of the malformed kinds.
    Malformed(MalformedKind),
    /// An induced apply panic, contained by the session.
    ApplyPanicked,
}

/// The deterministic fault plan: which stream positions carry
/// malformed requests, which valid requests get their apply sabotaged,
/// and which publish attempts fail transiently. A pure function of the
/// stream length, so the driver can compute every expected counter
/// before the stream runs.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Stream positions carrying a malformed request, with its kind.
    pub malformed: Vec<(u64, MalformedKind)>,
    /// Stream positions whose (valid) request gets an induced apply
    /// panic.
    pub sabotaged: Vec<u64>,
    /// `(publish idx, leading attempts that fail)`.
    pub publish_failures: Vec<(u64, u32)>,
}

impl FaultPlan {
    /// The standard plan over a `deltas`-long stream: a malformed
    /// request every 37 positions (kinds cycling), an induced panic
    /// every 53 positions (where not already malformed), publish 1
    /// failing twice (retried to success) and publish 3 failing every
    /// attempt (abandoned).
    pub fn standard(deltas: usize) -> Self {
        let mut malformed = Vec::new();
        let mut sabotaged = Vec::new();
        for seq in 0..deltas as u64 {
            if seq % 37 == 7 {
                malformed.push((seq, MALFORMED_CYCLE[malformed.len() % 4]));
            } else if seq % 53 == 23 {
                sabotaged.push(seq);
            }
        }
        Self {
            malformed,
            sabotaged,
            publish_failures: vec![(1, 2), (3, FAULT_MAX_PUBLISH_ATTEMPTS)],
        }
    }

    /// Publish retries the plan will cause, given the ingestor's
    /// attempt budget.
    pub fn expected_retries(&self, max_attempts: u32) -> u64 {
        self.publish_failures
            .iter()
            .map(|&(_, fails)| u64::from(fails.min(max_attempts.saturating_sub(1))))
            .sum()
    }

    /// Publishes the plan abandons outright.
    pub fn expected_abandoned(&self, max_attempts: u32) -> u64 {
        self.publish_failures
            .iter()
            .filter(|&&(_, fails)| fails >= max_attempts)
            .count() as u64
    }
}

/// [`FaultInjector`] driving the ingestor from a [`FaultPlan`].
struct PlanInjector {
    sabotaged: std::collections::HashSet<u64>,
    publish_failures: std::collections::HashMap<u64, u32>,
}

impl PlanInjector {
    fn new(plan: &FaultPlan) -> Self {
        Self {
            sabotaged: plan.sabotaged.iter().copied().collect(),
            publish_failures: plan.publish_failures.iter().copied().collect(),
        }
    }
}

impl FaultInjector for PlanInjector {
    fn sabotage_apply(&mut self, seq: u64) -> bool {
        self.sabotaged.contains(&seq)
    }
    fn fail_publish(&mut self, publish_idx: u64, attempt: u32) -> bool {
        attempt
            < self
                .publish_failures
                .get(&publish_idx)
                .copied()
                .unwrap_or(0)
    }
}

/// One shadow table: stable key, domain name, full columns. The shadow
/// is the driver's accepted-deltas-only record of corpus content —
/// insertion-ordered, exactly like live tables in the ingestor's
/// corpus (compaction preserves relative order).
#[derive(Clone)]
struct ShadowTable {
    key: u64,
    domain: String,
    columns: Vec<(Option<String>, Vec<String>)>,
}

impl ShadowTable {
    fn rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, v)| v.len())
    }
    fn row_at(&self, r: usize) -> Vec<String> {
        self.columns.iter().map(|(_, v)| v[r].clone()).collect()
    }
    fn delete_row_matching(&mut self, tuple: &[String]) {
        let rows = self.rows();
        let at = (0..rows)
            .find(|&r| {
                self.columns
                    .iter()
                    .zip(tuple)
                    .all(|((_, v), cell)| &v[r] == cell)
            })
            .expect("shadow row sampled from shadow content");
        for (_, v) in &mut self.columns {
            v.remove(at);
        }
    }
    fn insert_row(&mut self, tuple: &[String]) {
        for ((_, v), cell) in self.columns.iter_mut().zip(tuple) {
            v.push(cell.clone());
        }
    }
}

/// Everything the fault-injection stream produced.
pub struct FaultStreamOutcome {
    /// The post-stream session (from the ingestor's shutdown).
    pub session: SynthesisSession,
    /// The post-stream corpus the session tracks.
    pub corpus: Corpus,
    /// Final ingestor counters.
    pub stats: IngestStats,
    /// Requests planted malformed.
    pub malformed: usize,
    /// Requests whose apply was sabotaged.
    pub sabotaged: usize,
    /// Reader lookups completed while the stream ran.
    pub churn_lookups: u64,
    /// Reader lookup throughput under churn (0 when the probe is off).
    pub churn_qps: f64,
    /// Served snapshot version at shutdown (== successful publishes).
    pub served_version: u64,
}

/// Drive [`FAULT_STREAM_DELTAS`]-shaped request streams with the given
/// sizes through a [`DeltaIngestor`] under [`FaultPlan::standard`].
///
/// With `verify`, every robustness assertion runs: exact quarantine
/// positions + typed reasons, exact retry/abandon counters, monotone
/// reader versions, and the accepted-deltas-only oracle (a fresh
/// session on a corpus rebuilt from the shadow must observe exactly
/// what the streamed session observes). With `qps_probe`, a concurrent
/// reader hammers the served snapshot throughout and its throughput is
/// recorded.
///
/// The session/corpus outcome is a pure function of `(tables, deltas)`
/// — the reader, the publish failures and `verify` never influence it
/// — which is what makes the committed post-stream edge dump
/// reproducible.
pub fn run_fault_stream(
    tables: usize,
    deltas: usize,
    verify: bool,
    qps_probe: bool,
) -> FaultStreamOutcome {
    let plan = FaultPlan::standard(deltas);
    let wc = crate::bench_corpus(tables);
    let corpus = wc.corpus;

    // Shadow: accepted-only content, seeded from the initial corpus.
    let mut shadow: Vec<ShadowTable> = (0..corpus.len())
        .map(|ti| {
            let t = &corpus.tables[ti];
            ShadowTable {
                key: ti as u64,
                domain: corpus.domain_names[t.domain.0 as usize].clone(),
                columns: t
                    .columns
                    .iter()
                    .map(|c| {
                        (
                            c.header.map(|h| corpus.str_of(h).to_string()),
                            c.values
                                .iter()
                                .map(|&v| corpus.str_of(v).to_string())
                                .collect(),
                        )
                    })
                    .collect(),
            }
        })
        .collect();
    let initial_keys: Vec<u64> = shadow.iter().map(|t| t.key).collect();

    let mut session = SynthesisSession::new(PipelineConfig {
        compact_threshold: STREAM_COMPACT_THRESHOLD,
        ..Default::default()
    });
    session.prepare(&corpus);

    let service = Arc::new(MappingService::new());
    let cfg = IngestorConfig {
        publish_every: FAULT_PUBLISH_EVERY,
        max_publish_attempts: FAULT_MAX_PUBLISH_ATTEMPTS,
        retry_base: Duration::from_micros(200),
        retry_cap: Duration::from_millis(2),
        ..IngestorConfig::default()
    };
    let ingestor = DeltaIngestor::spawn(
        session,
        corpus,
        &initial_keys,
        Arc::clone(&service),
        cfg,
        Box::new(PlanInjector::new(&plan)),
    )
    .expect("ingestor config is valid");

    // Concurrent reader: holds the graceful-degradation contract to
    // account — lookups must keep answering from complete snapshots
    // with monotone versions through every fault.
    let stop = Arc::new(AtomicBool::new(false));
    let probe_keys: Vec<String> = shadow
        .iter()
        .take(8)
        .flat_map(|t| {
            t.columns
                .first()
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        })
        .take(64)
        .collect();
    let reader = qps_probe.then(|| {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let keys = probe_keys.clone();
        std::thread::spawn(move || {
            let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            let mut lookups = 0u64;
            let mut last_version = 0u64;
            let t = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                let snap = service.snapshot();
                let v = snap.version();
                assert!(
                    v >= last_version,
                    "served version moved backwards: {last_version} -> {v}"
                );
                last_version = v;
                snap.lookup_many(&refs);
                lookups += refs.len() as u64;
                std::thread::yield_now();
            }
            (lookups, t.elapsed().as_secs_f64())
        })
    });

    // Drive the stream. The driver tracks expected rejections as it
    // plants them; everything else lands in the shadow.
    let mut rng = StreamRng::new(0x000f_a017_5eed);
    let mut expected: Vec<(u64, ExpectedRejection)> = Vec::new();
    let mut stash: Vec<ShadowTable> = Vec::new();
    let mut next_key = 1_000_000u64;
    let mut malformed_iter = plan.malformed.iter().peekable();
    let sabotaged: std::collections::HashSet<u64> = plan.sabotaged.iter().copied().collect();

    for seq in 0..deltas as u64 {
        if malformed_iter.peek().is_some_and(|&&(s, _)| s == seq) {
            let (_, kind) = *malformed_iter.next().expect("peeked");
            let victim = &shadow[rng.below(shadow.len())];
            let request = match kind {
                MalformedKind::UnknownKey => DeltaRequest {
                    remove: vec![0xdead_0000 + seq],
                    ..Default::default()
                },
                MalformedKind::DuplicateKey => DeltaRequest {
                    add: vec![TableSpec {
                        key: victim.key,
                        domain: victim.domain.clone(),
                        columns: victim.columns.clone(),
                    }],
                    ..Default::default()
                },
                MalformedKind::MissingRow => DeltaRequest {
                    patches: vec![PatchSpec {
                        key: victim.key,
                        deleted: vec![(0..victim.columns.len())
                            .map(|c| format!("no such row {seq} col {c}"))
                            .collect()],
                        inserted: vec![],
                    }],
                    ..Default::default()
                },
                MalformedKind::EmptyPatch => DeltaRequest {
                    patches: vec![PatchSpec {
                        key: victim.key,
                        deleted: vec![],
                        inserted: vec![],
                    }],
                    ..Default::default()
                },
            };
            expected.push((seq, ExpectedRejection::Malformed(kind)));
            ingestor.submit(request);
            continue;
        }

        // A well-formed request, mirroring the delta-stream churn.
        let apply_to_shadow = !sabotaged.contains(&seq);
        if apply_to_shadow {
            // (recorded below per kind)
        } else {
            expected.push((seq, ExpectedRejection::ApplyPanicked));
        }
        if seq % 48 == 17 && shadow.len() > tables / 2 {
            let at = rng.below(shadow.len());
            let request = DeltaRequest {
                remove: vec![shadow[at].key],
                ..Default::default()
            };
            if apply_to_shadow {
                let t = shadow.remove(at);
                stash.push(t);
                if stash.len() > 8 {
                    stash.remove(0);
                }
            }
            ingestor.submit(request);
        } else if seq % 48 == 33 && !stash.is_empty() {
            let mut t = if apply_to_shadow {
                stash.remove(0)
            } else {
                stash[0].clone()
            };
            t.key = next_key;
            next_key += 1;
            let request = DeltaRequest {
                add: vec![TableSpec {
                    key: t.key,
                    domain: t.domain.clone(),
                    columns: t.columns.clone(),
                }],
                ..Default::default()
            };
            if apply_to_shadow {
                shadow.push(t);
            }
            ingestor.submit(request);
        } else {
            let at = rng.below(shadow.len());
            let (deleted, inserted) = {
                let t = &shadow[at];
                let nrows = t.rows();
                match (rng.below(4), nrows) {
                    (0, 1..) => (vec![t.row_at(rng.below(nrows))], vec![]),
                    (1, _) | (_, 0) => {
                        let fresh: Vec<String> = (0..t.columns.len())
                            .map(|c| format!("fault row {seq} col {c}"))
                            .collect();
                        (vec![], vec![fresh])
                    }
                    (2, _) => {
                        let row = t.row_at(rng.below(nrows));
                        let mut edited = row.clone();
                        let c = rng.below(edited.len());
                        edited[c] = format!("{} v{seq}", edited[c]);
                        (vec![row], vec![edited])
                    }
                    (_, _) => {
                        let row = t.row_at(rng.below(nrows));
                        (vec![row.clone()], vec![row])
                    }
                }
            };
            let request = DeltaRequest {
                patches: vec![PatchSpec {
                    key: shadow[at].key,
                    deleted: deleted.clone(),
                    inserted: inserted.clone(),
                }],
                ..Default::default()
            };
            if apply_to_shadow {
                let t = &mut shadow[at];
                for tuple in &deleted {
                    t.delete_row_matching(tuple);
                }
                for tuple in &inserted {
                    t.insert_row(tuple);
                }
            }
            ingestor.submit(request);
        }
    }

    let outcome: IngestOutcome = ingestor.shutdown();
    stop.store(true, Ordering::Relaxed);
    let (churn_lookups, churn_qps) = reader.map_or((0, 0.0), |r| {
        let (lookups, secs) = r.join().expect("reader thread");
        (lookups, lookups as f64 / secs.max(1e-9))
    });

    let stats = outcome.stats;
    let served_version = service.version();
    if verify {
        assert_eq!(stats.submitted, deltas as u64);
        assert_eq!(
            stats.rejected,
            (plan.malformed.len() + plan.sabotaged.len()) as u64,
            "every planted fault (and nothing else) must be rejected"
        );
        assert_eq!(stats.accepted + stats.rejected, stats.submitted);
        assert_eq!(
            stats.publish_retries,
            plan.expected_retries(FAULT_MAX_PUBLISH_ATTEMPTS)
        );
        assert_eq!(
            stats.publishes_abandoned,
            plan.expected_abandoned(FAULT_MAX_PUBLISH_ATTEMPTS)
        );
        assert_eq!(
            served_version, stats.publishes,
            "only successful publishes may install versions"
        );

        // Quarantine transparency: exact positions, exact typed reasons.
        assert_eq!(outcome.quarantine.len(), expected.len());
        for (entry, &(seq, kind)) in outcome.quarantine.iter().zip(&expected) {
            assert_eq!(entry.seq, seq, "quarantine out of order");
            let ok = matches!(
                (kind, &entry.error),
                (
                    ExpectedRejection::Malformed(MalformedKind::UnknownKey),
                    IngestError::UnknownKey { .. },
                ) | (
                    ExpectedRejection::Malformed(MalformedKind::DuplicateKey),
                    IngestError::DuplicateKey { .. },
                ) | (
                    ExpectedRejection::Malformed(MalformedKind::MissingRow),
                    IngestError::Patch(RowPatchError::MissingRow { .. }),
                ) | (
                    ExpectedRejection::Malformed(MalformedKind::EmptyPatch),
                    IngestError::Delta(DeltaError::EmptyPatch { .. }),
                ) | (
                    ExpectedRejection::ApplyPanicked,
                    IngestError::Delta(DeltaError::ApplyPanicked { .. }),
                )
            );
            assert!(
                ok,
                "quarantine seq {seq}: expected {kind:?}, got {:?}",
                entry.error
            );
        }

        // The accepted-deltas-only oracle: rebuild a corpus from the
        // shadow and fresh-prepare on it. The streamed session must
        // observe exactly the same synthesis output — every rejected
        // delta left zero residue.
        let mut oracle_corpus = Corpus::new();
        for t in &shadow {
            let d = oracle_corpus.domain(&t.domain);
            let cols: Vec<(Option<&str>, Vec<&str>)> = t
                .columns
                .iter()
                .map(|(h, vs)| (h.as_deref(), vs.iter().map(String::as_str).collect()))
                .collect();
            oracle_corpus.push_table(d, cols);
        }
        let mut oracle = SynthesisSession::new(outcome.session.config().clone());
        oracle.prepare(&oracle_corpus);
        let observe = |s: &SynthesisSession| {
            let run = s.synthesize(&s.config().synthesis, Resolver::Algorithm4);
            let mut out: Vec<Vec<(String, String)>> = run
                .mappings
                .iter()
                .map(|m| {
                    let mut pairs: Vec<(String, String)> = m
                        .pair_strs()
                        .map(|(a, b)| (a.to_string(), b.to_string()))
                        .collect();
                    pairs.sort();
                    pairs
                })
                .collect();
            out.sort();
            out
        };
        assert_eq!(
            observe(&outcome.session),
            observe(&oracle),
            "post-stream session diverged from the accepted-deltas-only oracle"
        );
        assert!(
            !service.snapshot().is_empty(),
            "the service must end on a non-empty last good snapshot"
        );
    }

    FaultStreamOutcome {
        session: outcome.session,
        corpus: outcome.corpus,
        stats,
        malformed: plan.malformed.len(),
        sabotaged: plan.sabotaged.len(),
        churn_lookups,
        churn_qps,
        served_version,
    }
}

/// The post-fault-stream golden dump: run the full deterministic fault
/// stream and format the final compatibility-graph edges. Committed
/// under `crates/bench/golden/` and byte-compared by
/// `pipeline_baseline --delta-stream --faults --check`, so any drift
/// in validation order, rollback, or the rejected-delta bookkeeping
/// fails CI.
pub fn post_fault_stream_edge_dump(tables: usize, deltas: usize) -> String {
    let out = run_fault_stream(tables, deltas, false, false);
    crate::format_edges(&out.session.graph(&out.session.config().synthesis))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short fully-verified fault stream: covers all four malformed
    /// kinds (positions 7, 44, 81, 118), several induced panics, one
    /// retried and one abandoned publish, plus the accepted-only
    /// oracle and the QPS probe.
    #[test]
    fn short_fault_stream_holds_every_contract() {
        let out = run_fault_stream(24, 160, true, true);
        assert_eq!(out.stats.submitted, 160);
        assert_eq!(out.malformed, 5);
        assert!(out.sabotaged >= 2);
        assert_eq!(out.stats.rejected, (out.malformed + out.sabotaged) as u64);
        assert!(out.stats.publishes >= 1);
        assert_eq!(out.stats.publish_retries, 2 + 2);
        assert_eq!(out.stats.publishes_abandoned, 1);
        assert!(out.churn_lookups > 0, "reader made no lookups under churn");
    }

    /// The fault stream is a pure function of (tables, deltas).
    #[test]
    fn fault_stream_dump_is_deterministic() {
        let a = post_fault_stream_edge_dump(50, 80);
        let b = post_fault_stream_edge_dump(50, 80);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
