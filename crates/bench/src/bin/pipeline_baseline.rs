//! Records a stage-timing baseline for the synthesis pipeline — plus a
//! serving-throughput stage over the synthesized mappings — on a
//! deterministic generated corpus, as JSON on stdout or into a file.
//!
//! ```text
//! cargo run --release -p mapsynth-bench --bin pipeline_baseline -- BENCH_pipeline.json
//! ```
//!
//! See `crates/bench/README.md` for the output schema.

use mapsynth::pipeline::{PipelineConfig, SynthesisSession};
use mapsynth_bench::bench_corpus;
use mapsynth_serve::{MappingService, SnapshotBuilder};
use std::time::Instant;

/// Lookups issued per throughput measurement (single- and multi-thread).
const SERVING_LOOKUPS: usize = 200_000;
/// Batch size fed to `lookup_many` (amortizes shard dispatch).
const SERVING_BATCH: usize = 256;
/// Probe keys sampled from the served mappings (half the probe set;
/// the other half are guaranteed misses, a 50% target hit rate).
const SERVING_KEYS: usize = 2000;

struct ServingReport {
    shards: usize,
    values: usize,
    mappings: usize,
    build_ms: f64,
    probe_keys: usize,
    single_thread_qps: f64,
    threads: usize,
    multi_thread_qps: f64,
    hit_rate: f64,
}

/// Drive `SERVING_LOOKUPS` batched lookups over `keys`, returning QPS.
fn drive_lookups(snapshot: &mapsynth_serve::IndexSnapshot, keys: &[&str]) -> f64 {
    let mut done = 0usize;
    let t = Instant::now();
    while done < SERVING_LOOKUPS {
        for chunk in keys.chunks(SERVING_BATCH) {
            snapshot.lookup_many(chunk);
            done += chunk.len();
            if done >= SERVING_LOOKUPS {
                break;
            }
        }
    }
    done as f64 / t.elapsed().as_secs_f64()
}

/// Serving stage: publish the run's mappings into a `MappingService`
/// and measure lookup throughput against the served snapshot.
fn serving_stage(mappings: &[mapsynth::SynthesizedMapping], threads: usize) -> ServingReport {
    let service = MappingService::new();
    let t = Instant::now();
    let snapshot = SnapshotBuilder::from_synthesized(mappings).build();
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    service.publish(snapshot);
    let snap = service.snapshot();

    // Probe set: every k-th left value of the served mappings (hits),
    // interleaved with as many absent keys (misses).
    let mut keys: Vec<String> = Vec::with_capacity(2 * SERVING_KEYS);
    'outer: for m in mappings {
        for (l, _) in m.pair_strs() {
            keys.push(l.to_string());
            if keys.len() >= SERVING_KEYS {
                break 'outer;
            }
        }
    }
    let hits = keys.len();
    for i in 0..hits {
        keys.push(format!("absent probe {i}"));
    }
    let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();

    let single_thread_qps = drive_lookups(&snap, &key_refs);

    // Multi-thread: each worker holds its own snapshot handle (the
    // realistic serving shape — one `snapshot()` call, many lookups).
    let per_thread = SERVING_LOOKUPS.div_ceil(threads);
    let t = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let service = &service;
            let key_refs = &key_refs;
            s.spawn(move || {
                let snap = service.snapshot();
                let mut done = 0usize;
                while done < per_thread {
                    for chunk in key_refs.chunks(SERVING_BATCH) {
                        snap.lookup_many(chunk);
                        done += chunk.len();
                        if done >= per_thread {
                            break;
                        }
                    }
                }
            });
        }
    });
    let multi_thread_qps = (per_thread * threads) as f64 / t.elapsed().as_secs_f64();

    let stats = snap.stats();
    ServingReport {
        shards: snap.shard_count(),
        values: snap.value_count(),
        mappings: snap.mapping_count(),
        build_ms,
        probe_keys: key_refs.len(),
        single_thread_qps,
        threads,
        multi_thread_qps,
        hit_rate: stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64,
    }
}

fn main() {
    let out_path = std::env::args().nth(1);
    let tables: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(600);

    let wc = bench_corpus(tables);
    let cfg = PipelineConfig::default();
    let mut session = SynthesisSession::new(cfg);
    let output = session.run(&wc.corpus);
    let t = output.timings;

    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let serving = serving_stage(&output.mappings, threads);

    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let json = format!(
        "{{\n  \"corpus_tables\": {},\n  \"candidates\": {},\n  \"edges\": {},\n  \"partitions\": {},\n  \"mappings\": {},\n  \"stage_ms\": {{\n    \"extraction\": {:.3},\n    \"value_space\": {:.3},\n    \"graph\": {:.3},\n    \"partition\": {:.3},\n    \"conflict\": {:.3},\n    \"total\": {:.3}\n  }},\n  \"workers\": {},\n  \"serving\": {{\n    \"shards\": {},\n    \"values\": {},\n    \"mappings\": {},\n    \"snapshot_build_ms\": {:.3},\n    \"probe_keys\": {},\n    \"lookups\": {},\n    \"single_thread_qps\": {:.0},\n    \"threads\": {},\n    \"multi_thread_qps\": {:.0},\n    \"hit_rate\": {:.3}\n  }}\n}}\n",
        tables,
        output.candidates,
        output.edges,
        output.partitions,
        output.mappings.len(),
        ms(t.extraction),
        ms(t.value_space),
        ms(t.graph),
        ms(t.partition),
        ms(t.conflict),
        ms(t.total),
        session.workers(),
        serving.shards,
        serving.values,
        serving.mappings,
        serving.build_ms,
        serving.probe_keys,
        SERVING_LOOKUPS,
        serving.single_thread_qps,
        serving.threads,
        serving.multi_thread_qps,
        serving.hit_rate,
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write baseline file");
            eprintln!("wrote {path}");
            print!("{json}");
        }
        None => print!("{json}"),
    }
}
