//! Records a stage-timing baseline for the synthesis pipeline — plus a
//! serving-throughput stage over the synthesized mappings — on a
//! deterministic generated corpus, as JSON on stdout or into a file.
//!
//! ```text
//! cargo run --release -p mapsynth-bench --bin pipeline_baseline -- BENCH_pipeline.json
//! # verify counts against a committed baseline (CI drift gate):
//! cargo run --release -p mapsynth-bench --bin pipeline_baseline -- --check BENCH_pipeline.json
//! # corpus scale tier: growth-curve points up to N tables
//! cargo run --release -p mapsynth-bench --bin pipeline_baseline -- --tables 30000 BENCH_scale.json
//! # explicit point list instead of the default N/4, N/2, N, with the
//! # sharded builds spilling shard artifacts to disk:
//! cargo run --release -p mapsynth-bench --bin pipeline_baseline -- --tables 100000 --points 600,7500,15000,30000,100000 --spill BENCH_scale.json
//! # verify one committed scale point (CI growth-curve gate):
//! cargo run --release -p mapsynth-bench --bin pipeline_baseline -- --tables 600 --check BENCH_scale.json --spill
//! # fault-injection tier: deterministic stream with planned malformed
//! # deltas, induced apply panics and publish failures:
//! cargo run --release -p mapsynth-bench --bin pipeline_baseline -- --delta-stream --faults BENCH_fault.json
//! # verify the committed fault counts + post-fault edge golden (CI gate):
//! cargo run --release -p mapsynth-bench --bin pipeline_baseline -- --delta-stream --faults --check BENCH_pipeline.json
//! ```
//!
//! See `crates/bench/README.md` for the output schema. In `--check`
//! mode the corpus size is read from the committed file, the pipeline
//! re-runs, and the process exits non-zero if any deterministic count
//! (candidates, edges, partitions, mappings) drifted, or if the memo's
//! filter counters (`memo_candidate_pairs`, `memo_dp_calls`) **exceed**
//! their committed ceilings (a silent prefilter regression) — timings
//! are machine-dependent and informational only. In `--tables N` mode
//! the binary runs the **streaming** synthesis pipeline (the corpus is
//! generated table-by-table, never materialized) at each point —
//! `N/4`, `N/2` and `N` tables unless `--points` lists them — each
//! point in a child process so its peak-RSS reading is isolated, and
//! writes a `scale_detail` block with per-stage wall-clock, per-stage
//! peak RSS, and growth-curve ceilings. `--tables N --check FILE`
//! re-runs the single committed point with `"tables": N` and fails on
//! exact-count drift or on any `ceil_*` ceiling being exceeded —
//! count ceilings are the committed measurements themselves, the
//! wall-clock ceilings (`ceil_extraction_ms`, `ceil_blocking_ms`)
//! carry a 4× machine-variance margin.

use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
use mapsynth_bench::{bench_corpus, bench_delta, bench_stream, peak_rss_kb};
use mapsynth_serve::{DeltaPublishStats, MappingService, SnapshotBuilder};
use std::time::Instant;

/// Lookups issued per throughput measurement (single- and multi-thread).
const SERVING_LOOKUPS: usize = 200_000;
/// Batch size fed to `lookup_many` (amortizes shard dispatch).
const SERVING_BATCH: usize = 256;
/// Probe keys sampled from the served mappings (half the probe set;
/// the other half are guaranteed misses, a 50% target hit rate).
const SERVING_KEYS: usize = 2000;

struct ServingReport {
    shards: usize,
    values: usize,
    mappings: usize,
    build_ms: f64,
    probe_keys: usize,
    single_thread_qps: f64,
    threads: usize,
    multi_thread_qps: f64,
    hit_rate: f64,
}

/// Drive `SERVING_LOOKUPS` batched lookups over `keys`, returning QPS.
fn drive_lookups(snapshot: &mapsynth_serve::IndexSnapshot, keys: &[&str]) -> f64 {
    let mut done = 0usize;
    let t = Instant::now();
    while done < SERVING_LOOKUPS {
        for chunk in keys.chunks(SERVING_BATCH) {
            snapshot.lookup_many(chunk);
            done += chunk.len();
            if done >= SERVING_LOOKUPS {
                break;
            }
        }
    }
    done as f64 / t.elapsed().as_secs_f64()
}

/// Serving stage: publish the run's mappings into a `MappingService`
/// and measure lookup throughput against the served snapshot.
fn serving_stage(mappings: &[mapsynth::SynthesizedMapping], threads: usize) -> ServingReport {
    let service = MappingService::new();
    let t = Instant::now();
    let snapshot = SnapshotBuilder::from_synthesized(mappings).build();
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    service.publish(snapshot);
    let snap = service.snapshot();

    // Probe set: every k-th left value of the served mappings (hits),
    // interleaved with as many absent keys (misses).
    let mut keys: Vec<String> = Vec::with_capacity(2 * SERVING_KEYS);
    'outer: for m in mappings {
        for (l, _) in m.pair_strs() {
            keys.push(l.to_string());
            if keys.len() >= SERVING_KEYS {
                break 'outer;
            }
        }
    }
    let hits = keys.len();
    for i in 0..hits {
        keys.push(format!("absent probe {i}"));
    }
    let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();

    let single_thread_qps = drive_lookups(&snap, &key_refs);

    // Multi-thread: each worker holds its own snapshot handle (the
    // realistic serving shape — one `snapshot()` call, many lookups).
    let per_thread = SERVING_LOOKUPS.div_ceil(threads);
    let t = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let service = &service;
            let key_refs = &key_refs;
            s.spawn(move || {
                let snap = service.snapshot();
                let mut done = 0usize;
                while done < per_thread {
                    for chunk in key_refs.chunks(SERVING_BATCH) {
                        snap.lookup_many(chunk);
                        done += chunk.len();
                        if done >= per_thread {
                            break;
                        }
                    }
                }
            });
        }
    });
    let multi_thread_qps = (per_thread * threads) as f64 / t.elapsed().as_secs_f64();

    let stats = snap.stats();
    ServingReport {
        shards: snap.shard_count(),
        values: snap.value_count(),
        mappings: snap.mapping_count(),
        build_ms,
        probe_keys: key_refs.len(),
        single_thread_qps,
        threads,
        multi_thread_qps,
        hit_rate: stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64,
    }
}

/// Outcome of the incremental stage: counts + timings of the standard
/// 5% bench delta, against a fresh full rebuild on the same corpus.
struct DeltaBenchReport {
    report: mapsynth::delta::DeltaReport,
    /// Post-delta deterministic counts.
    candidates: usize,
    edges: usize,
    partitions: usize,
    mappings: usize,
    /// Variant-tail wall-clock after the delta.
    synth_ms: f64,
    /// Fresh prepare + synthesize on the post-delta corpus.
    rebuild_ms: f64,
    /// Incremental snapshot publish of the post-delta mappings.
    serve: DeltaPublishStats,
    publish_delta_ms: f64,
}

/// The incremental stage: apply the standard 5% delta through
/// `session.apply_delta`, re-derive the synthesis variant, publish the
/// post-delta mappings incrementally, and time a full rebuild on the
/// post-delta corpus as the reference — asserting along the way that
/// the incremental output is identical to the rebuild's.
fn delta_stage(
    session: &mut SynthesisSession,
    corpus: &mut mapsynth_corpus::Corpus,
    tables: usize,
    base_mappings: &[mapsynth::SynthesizedMapping],
) -> DeltaBenchReport {
    let delta = bench_delta(corpus, tables);
    let report = session.apply_delta(corpus, &delta).expect("valid delta");

    let t = Instant::now();
    let run = session.synthesize(&session.config().synthesis.clone(), Resolver::Algorithm4);
    let synth_ms = t.elapsed().as_secs_f64() * 1e3;

    // Incremental snapshot publish on top of the base mappings.
    let service = MappingService::new();
    service.publish(SnapshotBuilder::from_synthesized(base_mappings).build());
    let t = Instant::now();
    let (_, serve) = service.publish_delta(&run.mappings);
    let publish_delta_ms = t.elapsed().as_secs_f64() * 1e3;

    // Reference: a batch session on the post-delta corpus.
    let live = session.live_corpus(corpus);
    let t = Instant::now();
    let mut fresh = SynthesisSession::new(PipelineConfig::default());
    let fresh_out = fresh.run(&live);
    let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        run.mappings.len(),
        fresh_out.mappings.len(),
        "incremental delta diverged from the fresh rebuild"
    );
    for (a, b) in run.mappings.iter().zip(&fresh_out.mappings) {
        assert_eq!(
            a.materialize_pairs(),
            b.materialize_pairs(),
            "incremental delta diverged from the fresh rebuild"
        );
    }

    DeltaBenchReport {
        candidates: session.live_tables(),
        edges: run.edges,
        partitions: run.partitions,
        mappings: run.mappings.len(),
        synth_ms,
        rebuild_ms,
        serve,
        publish_delta_ms,
        report,
    }
}

/// Pull an integer field out of a (flat-keyed) baseline JSON file.
/// The baseline is written by this binary with unique key names, so a
/// plain text scan is sufficient — no JSON dependency needed.
fn json_int(json: &str, key: &str) -> Option<i64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pull a float field out of a baseline JSON snippet (same text-scan
/// approach as [`json_int`]).
fn json_num(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '-' && c != '.')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Slice the committed `scale_detail` point object whose `"tables"`
/// equals `tables`. Points are flat objects with `"tables"` as their
/// first key, so the scope runs from that key to the next `}`.
fn scale_point_block(json: &str, tables: usize) -> Option<&str> {
    let mut rest = json;
    loop {
        let at = rest.find("\"tables\":")?;
        let block_end = rest[at..].find('}').map(|e| at + e).unwrap_or(rest.len());
        let block = &rest[at..block_end];
        if json_int(block, "tables") == Some(tables as i64) {
            return Some(block);
        }
        rest = &rest[block_end..];
    }
}

/// `--tables N --check FILE`: re-measure the single committed scale
/// point at `N` tables and fail on exact-count drift (candidates,
/// edges, mappings) or on any committed ceiling being exceeded —
/// growth-curve counts (`ceil_blocking_pairs`,
/// `ceil_memo_candidate_pairs`, `ceil_memo_dp_calls`,
/// `ceil_coh_list_probes`) and the margin-carrying wall-clock
/// ceilings (`ceil_extraction_ms`, `ceil_blocking_ms`).
fn check_scale_point(tables: usize, path: &str, spill: bool) -> ! {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read scale baseline {path}: {e}"));
    let block = scale_point_block(&committed, tables)
        .unwrap_or_else(|| panic!("no committed scale point with \"tables\": {tables} in {path}"));

    let p = measure_scale_point(tables, spill);
    let mut drifted = false;
    let exact = [
        ("candidates", p.candidates as i64),
        ("edges", p.edges as i64),
        ("mappings", p.mappings as i64),
    ];
    for (key, actual) in exact {
        match json_int(block, key) {
            Some(expected) if expected == actual => {
                eprintln!("scale-check {key}: {actual} (ok)");
            }
            Some(expected) => {
                eprintln!("scale-check {key}: expected {expected}, got {actual} (DRIFT)");
                drifted = true;
            }
            None => {
                eprintln!("scale-check {key}: missing from baseline point (DRIFT)");
                drifted = true;
            }
        }
    }
    let count_ceilings = [
        ("ceil_blocking_pairs", p.blocking_pairs as i64),
        ("ceil_memo_candidate_pairs", p.memo.candidate_pairs as i64),
        ("ceil_memo_dp_calls", p.memo.dp_calls as i64),
        ("ceil_coh_list_probes", p.coh_list_probes as i64),
    ];
    for (key, actual) in count_ceilings {
        match json_int(block, key) {
            Some(ceiling) if actual <= ceiling => {
                eprintln!("scale-check {key}: {actual} ≤ {ceiling} (ok)");
            }
            Some(ceiling) => {
                eprintln!("scale-check {key}: {actual} exceeds ceiling {ceiling} (DRIFT)");
                drifted = true;
            }
            None => {
                eprintln!("scale-check {key}: missing from baseline point (DRIFT)");
                drifted = true;
            }
        }
    }
    let ms_ceilings = [
        ("ceil_extraction_ms", p.extraction_ms),
        ("ceil_blocking_ms", p.blocking_ms),
    ];
    for (key, actual) in ms_ceilings {
        match json_num(block, key) {
            Some(ceiling) if actual <= ceiling => {
                eprintln!("scale-check {key}: {actual:.1}ms ≤ {ceiling:.0}ms (ok)");
            }
            Some(ceiling) => {
                eprintln!(
                    "scale-check {key}: {actual:.1}ms exceeds ceiling {ceiling:.0}ms (DRIFT)"
                );
                drifted = true;
            }
            None => {
                eprintln!("scale-check {key}: missing from baseline point (DRIFT)");
                drifted = true;
            }
        }
    }
    if drifted {
        eprintln!("scale point {tables} drifted from {path}; regenerate the baseline if intended");
        std::process::exit(1);
    }
    eprintln!("scale point {tables} matches {path}");
    std::process::exit(0);
}

/// Committed golden dump of the post-stream compatibility-graph edges
/// (the final graph after the full `run_delta_stream` sequence of row
/// patches, table churn and compactions).
const STREAM_GOLDEN_PATH: &str = "crates/bench/golden/delta_stream_edges_200.txt";

/// RSS ceiling margin for the stream tier's post-compaction reading:
/// tighter than the wall-clock margin (resident size varies far less
/// across machines than timings do), loose enough for allocator noise.
const RSS_CEILING_MARGIN: f64 = 2.0;

/// Outcome of the sustained row-delta stream tier: latency
/// distribution of `apply_delta` across the whole stream, churn and
/// compaction counts, final deterministic counts, and the RSS probes
/// that bound the session's footprint under sustained churn.
struct StreamBenchReport {
    outcome: mapsynth_bench::DeltaStreamOutcome,
    publishes: usize,
    publish_total_ms: f64,
    candidates: usize,
    edges: usize,
    partitions: usize,
    mappings: usize,
    memo_values: usize,
    apply_p50_ms: f64,
    apply_p90_ms: f64,
    apply_p99_ms: f64,
    apply_max_ms: f64,
    apply_total_ms: f64,
    end_vmrss_mb: f64,
    end_vmhwm_mb: f64,
    /// Post-stream edge dump (byte-compared against the committed
    /// golden file in `--delta-stream --check`).
    edge_dump: String,
}

/// Nearest-rank percentile over a sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The sustained-stream stage: drive the full deterministic row-delta
/// stream at [`mapsynth_bench::STREAM_TABLES`] tables, publishing into
/// a `MappingService` every [`mapsynth_bench::STREAM_PUBLISH_EVERY`]
/// deltas (first publish full, the rest incremental), then derive the
/// final counts and the latency distribution. With `verify` the stream
/// self-checks against fresh rebuilds at its midpoint and end.
fn stream_stage(verify: bool) -> StreamBenchReport {
    use mapsynth_bench::{current_rss_kb, run_delta_stream, STREAM_DELTAS, STREAM_TABLES};
    let service = MappingService::new();
    let mut publishes = 0usize;
    let mut publish_total_ms = 0.0;
    let outcome = run_delta_stream(STREAM_TABLES, STREAM_DELTAS, verify, |mappings| {
        let t = Instant::now();
        if publishes == 0 {
            service.publish(SnapshotBuilder::from_synthesized(mappings).build());
        } else {
            service.publish_delta(mappings);
        }
        publish_total_ms += t.elapsed().as_secs_f64() * 1e3;
        publishes += 1;
    });

    let run = outcome.session.synthesize(
        &outcome.session.config().synthesis.clone(),
        Resolver::Algorithm4,
    );
    let memo_values = outcome
        .session
        .scores()
        .expect("prepared")
        .detail
        .memo
        .values;
    let edge_dump =
        mapsynth_bench::format_edges(&outcome.session.graph(&outcome.session.config().synthesis));

    let mut sorted = outcome.apply_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    StreamBenchReport {
        publishes,
        publish_total_ms,
        candidates: outcome.session.live_tables(),
        edges: run.edges,
        partitions: run.partitions,
        mappings: run.mappings.len(),
        memo_values,
        apply_p50_ms: percentile(&sorted, 0.50),
        apply_p90_ms: percentile(&sorted, 0.90),
        apply_p99_ms: percentile(&sorted, 0.99),
        apply_max_ms: sorted.last().copied().unwrap_or(0.0),
        apply_total_ms: sorted.iter().sum(),
        end_vmrss_mb: current_rss_kb() as f64 / 1024.0,
        end_vmhwm_mb: peak_rss_kb() as f64 / 1024.0,
        edge_dump,
        outcome,
    }
}

/// Render the stream report as the `delta_stream_detail` JSON object
/// (indented for embedding at depth 1 in the main baseline file).
fn render_stream(r: &StreamBenchReport) -> String {
    let rss_measured = if r.outcome.post_compact_vmrss_mb > 0.0 {
        r.outcome.post_compact_vmrss_mb
    } else {
        r.end_vmrss_mb
    };
    format!(
        "{{\n    \"stream_tables\": {},\n    \"stream_deltas\": {},\n    \"stream_row_patches\": {},\n    \"stream_removals\": {},\n    \"stream_additions\": {},\n    \"stream_reorders\": {},\n    \"stream_compactions\": {},\n    \"stream_publishes\": {},\n    \"stream_candidates\": {},\n    \"stream_edges\": {},\n    \"stream_partitions\": {},\n    \"stream_mappings\": {},\n    \"stream_memo_values\": {},\n    \"stream_apply_p50_ms\": {:.3},\n    \"stream_apply_p90_ms\": {:.3},\n    \"stream_apply_p99_ms\": {:.3},\n    \"stream_apply_max_ms\": {:.3},\n    \"stream_apply_total_ms\": {:.3},\n    \"stream_publish_total_ms\": {:.3},\n    \"post_compact_vmrss_mb\": {:.1},\n    \"post_compact_vmhwm_mb\": {:.1},\n    \"stream_end_vmrss_mb\": {:.1},\n    \"stream_end_vmhwm_mb\": {:.1},\n    \"ceil_stream_p99_ms\": {:.0},\n    \"ceil_stream_rss_mb\": {:.0}\n  }}",
        mapsynth_bench::STREAM_TABLES,
        mapsynth_bench::STREAM_DELTAS,
        r.outcome.row_patches,
        r.outcome.removals,
        r.outcome.additions,
        r.outcome.reorders,
        r.outcome.compactions,
        r.publishes,
        r.candidates,
        r.edges,
        r.partitions,
        r.mappings,
        r.memo_values,
        r.apply_p50_ms,
        r.apply_p90_ms,
        r.apply_p99_ms,
        r.apply_max_ms,
        r.apply_total_ms,
        r.publish_total_ms,
        r.outcome.post_compact_vmrss_mb,
        r.outcome.post_compact_vmhwm_mb,
        r.end_vmrss_mb,
        r.end_vmhwm_mb,
        (r.apply_p99_ms * MS_CEILING_MARGIN).ceil().max(1.0),
        (rss_measured * RSS_CEILING_MARGIN).ceil().max(1.0),
    )
}

/// `--delta-stream --check FILE`: re-run the full verified stream and
/// fail on exact-count drift against the committed
/// `delta_stream_detail` block, on the per-delta p99 latency or the
/// post-compaction RSS exceeding their committed ceilings, or on the
/// post-stream edge dump differing from the committed golden file.
fn check_stream(path: &str) -> ! {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let r = stream_stage(true);

    let exact = [
        ("stream_deltas", mapsynth_bench::STREAM_DELTAS as i64),
        ("stream_row_patches", r.outcome.row_patches as i64),
        ("stream_removals", r.outcome.removals as i64),
        ("stream_additions", r.outcome.additions as i64),
        ("stream_reorders", r.outcome.reorders as i64),
        ("stream_compactions", r.outcome.compactions as i64),
        ("stream_publishes", r.publishes as i64),
        ("stream_candidates", r.candidates as i64),
        ("stream_edges", r.edges as i64),
        ("stream_partitions", r.partitions as i64),
        ("stream_mappings", r.mappings as i64),
        ("stream_memo_values", r.memo_values as i64),
    ];
    let mut drifted = false;
    for (key, actual) in exact {
        match json_int(&committed, key) {
            Some(expected) if expected == actual => {
                eprintln!("stream-check {key}: {actual} (ok)");
            }
            Some(expected) => {
                eprintln!("stream-check {key}: expected {expected}, got {actual} (DRIFT)");
                drifted = true;
            }
            None => {
                eprintln!("stream-check {key}: missing from baseline (DRIFT)");
                drifted = true;
            }
        }
    }

    let rss_measured = if r.outcome.post_compact_vmrss_mb > 0.0 {
        r.outcome.post_compact_vmrss_mb
    } else {
        r.end_vmrss_mb
    };
    let ceilings = [
        ("ceil_stream_p99_ms", r.apply_p99_ms),
        ("ceil_stream_rss_mb", rss_measured),
    ];
    for (key, actual) in ceilings {
        match json_num(&committed, key) {
            Some(ceiling) if actual <= ceiling => {
                eprintln!("stream-check {key}: {actual:.1} ≤ {ceiling:.0} (ok)");
            }
            Some(ceiling) => {
                eprintln!("stream-check {key}: {actual:.1} exceeds ceiling {ceiling:.0} (DRIFT)");
                drifted = true;
            }
            None => {
                eprintln!("stream-check {key}: missing from baseline (DRIFT)");
                drifted = true;
            }
        }
    }

    match std::fs::read_to_string(STREAM_GOLDEN_PATH) {
        Ok(golden) => {
            if golden == r.edge_dump {
                eprintln!("stream-check golden edges: {} bytes (ok)", golden.len());
            } else {
                eprintln!(
                    "stream-check golden edges: dump differs from {STREAM_GOLDEN_PATH} (DRIFT); \
                     regenerate via `cargo run --release -p mapsynth-bench --example dump_edges -- \
                     {STREAM_GOLDEN_PATH} {} --stream` if intended",
                    mapsynth_bench::STREAM_TABLES
                );
                drifted = true;
            }
        }
        Err(e) => {
            eprintln!("stream-check golden edges: cannot read {STREAM_GOLDEN_PATH}: {e} (DRIFT)");
            drifted = true;
        }
    }

    if drifted {
        eprintln!("delta-stream tier drifted from {path}; regenerate the baseline if intended");
        std::process::exit(1);
    }
    eprintln!("delta-stream tier matches {path}");
    std::process::exit(0);
}

/// Committed golden dump of the post-fault-stream compatibility-graph
/// edges (the final graph after the deterministic fault-injection
/// stream: every planted rejection rolled back, accepted deltas only).
const FAULT_GOLDEN_PATH: &str = "crates/bench/golden/fault_stream_edges_100.txt";

/// Outcome of the fault-injection tier: the ingestor's counters under
/// a planted fault plan, serving throughput under churn, and the final
/// deterministic counts of the surviving (accepted-only) state.
struct FaultBenchReport {
    outcome: mapsynth_bench::fault::FaultStreamOutcome,
    candidates: usize,
    edges: usize,
    partitions: usize,
    mappings: usize,
    /// Post-fault-stream edge dump (byte-compared against the
    /// committed golden file in `--delta-stream --faults --check`).
    edge_dump: String,
}

/// The fault-injection stage: drive the full deterministic fault
/// stream through a `DeltaIngestor` (with the concurrent-reader QPS
/// probe on), then derive the final counts. With `verify` every
/// robustness assertion runs — exact quarantine, retry/abandon
/// counters, the accepted-deltas-only oracle.
fn fault_stage(verify: bool) -> FaultBenchReport {
    use mapsynth_bench::fault::{run_fault_stream, FAULT_STREAM_DELTAS, FAULT_STREAM_TABLES};
    let outcome = run_fault_stream(FAULT_STREAM_TABLES, FAULT_STREAM_DELTAS, verify, true);
    let run = outcome.session.synthesize(
        &outcome.session.config().synthesis.clone(),
        Resolver::Algorithm4,
    );
    let edge_dump =
        mapsynth_bench::format_edges(&outcome.session.graph(&outcome.session.config().synthesis));
    FaultBenchReport {
        candidates: outcome.session.live_tables(),
        edges: run.edges,
        partitions: run.partitions,
        mappings: run.mappings.len(),
        edge_dump,
        outcome,
    }
}

/// Render the fault report as the `fault_detail` JSON object (indented
/// for embedding at depth 1 in the main baseline file).
fn render_fault(r: &FaultBenchReport) -> String {
    let s = &r.outcome.stats;
    format!(
        "{{\n    \"fault_tables\": {},\n    \"fault_deltas\": {},\n    \"fault_submitted\": {},\n    \"fault_accepted\": {},\n    \"fault_rejected\": {},\n    \"fault_quarantined\": {},\n    \"fault_malformed\": {},\n    \"fault_sabotaged\": {},\n    \"fault_publishes\": {},\n    \"fault_publish_retries\": {},\n    \"fault_publishes_abandoned\": {},\n    \"fault_compactions\": {},\n    \"fault_served_version\": {},\n    \"fault_candidates\": {},\n    \"fault_edges\": {},\n    \"fault_partitions\": {},\n    \"fault_mappings\": {},\n    \"fault_churn_lookups\": {},\n    \"fault_churn_qps\": {:.0}\n  }}",
        mapsynth_bench::fault::FAULT_STREAM_TABLES,
        mapsynth_bench::fault::FAULT_STREAM_DELTAS,
        s.submitted,
        s.accepted,
        s.rejected,
        s.quarantined,
        r.outcome.malformed,
        r.outcome.sabotaged,
        s.publishes,
        s.publish_retries,
        s.publishes_abandoned,
        s.compactions,
        r.outcome.served_version,
        r.candidates,
        r.edges,
        r.partitions,
        r.mappings,
        r.outcome.churn_lookups,
        r.outcome.churn_qps,
    )
}

/// `--delta-stream --faults --check FILE`: re-run the fully verified
/// fault stream and fail on exact-count drift against the committed
/// `fault_detail` block (acceptance/rejection/quarantine/retry/abandon
/// counters and the final deterministic counts are all exact — the
/// fault plan is deterministic, so there is nothing to tolerate), or
/// on the post-fault-stream edge dump differing from the committed
/// golden file. Serving QPS under churn is informational only.
fn check_fault(path: &str) -> ! {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let r = fault_stage(true);

    let s = &r.outcome.stats;
    let exact = [
        (
            "fault_deltas",
            mapsynth_bench::fault::FAULT_STREAM_DELTAS as i64,
        ),
        ("fault_submitted", s.submitted as i64),
        ("fault_accepted", s.accepted as i64),
        ("fault_rejected", s.rejected as i64),
        ("fault_quarantined", s.quarantined as i64),
        ("fault_malformed", r.outcome.malformed as i64),
        ("fault_sabotaged", r.outcome.sabotaged as i64),
        ("fault_publishes", s.publishes as i64),
        ("fault_publish_retries", s.publish_retries as i64),
        ("fault_publishes_abandoned", s.publishes_abandoned as i64),
        ("fault_compactions", s.compactions as i64),
        ("fault_served_version", r.outcome.served_version as i64),
        ("fault_candidates", r.candidates as i64),
        ("fault_edges", r.edges as i64),
        ("fault_partitions", r.partitions as i64),
        ("fault_mappings", r.mappings as i64),
    ];
    let mut drifted = false;
    for (key, actual) in exact {
        match json_int(&committed, key) {
            Some(expected) if expected == actual => {
                eprintln!("fault-check {key}: {actual} (ok)");
            }
            Some(expected) => {
                eprintln!("fault-check {key}: expected {expected}, got {actual} (DRIFT)");
                drifted = true;
            }
            None => {
                eprintln!("fault-check {key}: missing from baseline (DRIFT)");
                drifted = true;
            }
        }
    }

    match std::fs::read_to_string(FAULT_GOLDEN_PATH) {
        Ok(golden) => {
            if golden == r.edge_dump {
                eprintln!("fault-check golden edges: {} bytes (ok)", golden.len());
            } else {
                eprintln!(
                    "fault-check golden edges: dump differs from {FAULT_GOLDEN_PATH} (DRIFT); \
                     regenerate via `cargo run --release -p mapsynth-bench --example dump_edges -- \
                     {FAULT_GOLDEN_PATH} {} --faults` if intended",
                    mapsynth_bench::fault::FAULT_STREAM_TABLES
                );
                drifted = true;
            }
        }
        Err(e) => {
            eprintln!("fault-check golden edges: cannot read {FAULT_GOLDEN_PATH}: {e} (DRIFT)");
            drifted = true;
        }
    }

    if drifted {
        eprintln!("fault-injection tier drifted from {path}; regenerate the baseline if intended");
        std::process::exit(1);
    }
    eprintln!("fault-injection tier matches {path}");
    std::process::exit(0);
}

/// The crash-recovery tier: kill-point sweep plus torn-write/corruption
/// fault matrix over the persistence layer. `verify` turns on the
/// oracle equivalence and per-cell typed-error assertions.
fn recovery_stage(verify: bool) -> mapsynth_bench::recovery::RecoveryMatrixOutcome {
    mapsynth_bench::recovery::run_recovery_matrix(verify)
}

/// Render the recovery report as the `recovery_detail` JSON object
/// (indented for embedding at depth 1 in the main baseline file).
fn render_recovery(r: &mapsynth_bench::recovery::RecoveryMatrixOutcome) -> String {
    use mapsynth_bench::recovery::{RECOVERY_DELTAS, RECOVERY_TABLES};
    format!(
        "{{\n    \"recovery_tables\": {},\n    \"recovery_deltas\": {},\n    \"recovery_kill_points\": {},\n    \"recovery_sweep_replayed\": {},\n    \"recovery_sweep_skipped\": {},\n    \"recovery_generations\": {},\n    \"recovery_wal_segments\": {},\n    \"recovery_full_replayed\": {},\n    \"recovery_matrix_cells\": {},\n    \"recovery_matrix_recovered\": {},\n    \"recovery_matrix_fallbacks\": {},\n    \"recovery_matrix_typed_errors\": {},\n    \"recovery_matrix_torn_repaired\": {},\n    \"recovery_matrix_wal_halted\": {},\n    \"recovery_sweep_recover_ms\": {:.3}\n  }}",
        RECOVERY_TABLES,
        RECOVERY_DELTAS,
        r.kill_points,
        r.sweep_replayed,
        r.sweep_skipped,
        r.full_generations,
        r.full_wal_segments,
        r.full_replayed,
        r.cells.len(),
        r.cells_recovered(),
        r.cells_fallback(),
        r.cells_typed_errors(),
        r.cells_torn_repaired(),
        r.cells_wal_halted(),
        r.sweep_recover_ms,
    )
}

/// `--recovery --check FILE`: re-run the fully verified recovery tier
/// (kill-point oracle equivalence plus every corruption-matrix cell's
/// typed expectation) and fail on exact-count drift against the
/// committed `recovery_detail` block. The sweep and the matrix are
/// deterministic, so every count is exact; recovery latency is
/// informational only.
fn check_recovery(path: &str) -> ! {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let r = recovery_stage(true);

    let exact = [
        (
            "recovery_tables",
            mapsynth_bench::recovery::RECOVERY_TABLES as i64,
        ),
        (
            "recovery_deltas",
            mapsynth_bench::recovery::RECOVERY_DELTAS as i64,
        ),
        ("recovery_kill_points", r.kill_points as i64),
        ("recovery_sweep_replayed", r.sweep_replayed as i64),
        ("recovery_sweep_skipped", r.sweep_skipped as i64),
        ("recovery_generations", r.full_generations as i64),
        ("recovery_wal_segments", r.full_wal_segments as i64),
        ("recovery_full_replayed", r.full_replayed as i64),
        ("recovery_matrix_cells", r.cells.len() as i64),
        ("recovery_matrix_recovered", r.cells_recovered() as i64),
        ("recovery_matrix_fallbacks", r.cells_fallback() as i64),
        (
            "recovery_matrix_typed_errors",
            r.cells_typed_errors() as i64,
        ),
        (
            "recovery_matrix_torn_repaired",
            r.cells_torn_repaired() as i64,
        ),
        ("recovery_matrix_wal_halted", r.cells_wal_halted() as i64),
    ];
    let mut drifted = false;
    for (key, actual) in exact {
        match json_int(&committed, key) {
            Some(expected) if expected == actual => {
                eprintln!("recovery-check {key}: {actual} (ok)");
            }
            Some(expected) => {
                eprintln!("recovery-check {key}: expected {expected}, got {actual} (DRIFT)");
                drifted = true;
            }
            None => {
                eprintln!("recovery-check {key}: missing from baseline (DRIFT)");
                drifted = true;
            }
        }
    }
    for cell in &r.cells {
        eprintln!(
            "recovery-check cell '{}': {} ({:.1} ms)",
            cell.label,
            match (&cell.typed_error, cell.fell_back) {
                (Some(e), _) => format!("typed error {e}"),
                (None, true) => "recovered via fallback".to_string(),
                (None, false) => "recovered".to_string(),
            },
            cell.recover_ms,
        );
    }

    if drifted {
        eprintln!("recovery tier drifted from {path}; regenerate the baseline if intended");
        std::process::exit(1);
    }
    eprintln!("recovery tier matches {path}");
    std::process::exit(0);
}

/// Corpus size of the committed post-delta golden edge dump.
const GOLDEN_TABLES: usize = 200;
/// Committed golden dump of the post-delta compatibility-graph edges
/// (repo-relative; `--check` runs from the workspace root in CI).
const GOLDEN_PATH: &str = "crates/bench/golden/delta_edges_200.txt";

/// `--check` mode: rerun the pipeline (batch *and* incremental stages)
/// at the committed corpus size and fail on any deterministic-count
/// drift — plus a byte-level compare of the post-delta edge dump
/// against the committed golden file.
fn check_against(path: &str) -> ! {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let tables = json_int(&committed, "corpus_tables").expect("corpus_tables in baseline") as usize;

    let mut wc = bench_corpus(tables);
    let mut session = SynthesisSession::new(PipelineConfig::default());
    let output = session.run(&wc.corpus);
    // Snapshot the memo counters now: the committed ceilings describe
    // the batch build, so they must be read before the delta stage
    // grows the memo.
    let memo = session.scores().expect("prepared session").detail.memo;

    // Incremental stage re-run (counts only; the full bench also times
    // a rebuild).
    let delta = bench_delta(&mut wc.corpus, tables);
    session
        .apply_delta(&wc.corpus, &delta)
        .expect("valid delta");
    let run = session.synthesize(&session.config().synthesis.clone(), Resolver::Algorithm4);

    let expectations = [
        ("candidates", output.candidates as i64),
        ("edges", output.edges as i64),
        ("partitions", output.partitions as i64),
        ("mappings", output.mappings.len() as i64),
        ("delta_candidates", session.live_tables() as i64),
        ("delta_edges", run.edges as i64),
        ("delta_partitions", run.partitions as i64),
        ("delta_mappings", run.mappings.len() as i64),
    ];
    let mut drifted = false;
    for (key, actual) in expectations {
        match json_int(&committed, key) {
            Some(expected) if expected == actual => {
                eprintln!("check {key}: {actual} (ok)");
            }
            Some(expected) => {
                eprintln!("check {key}: expected {expected}, got {actual} (DRIFT)");
                drifted = true;
            }
            None => {
                eprintln!("check {key}: missing from baseline (DRIFT)");
                drifted = true;
            }
        }
    }

    // Filter-regression guard: the memo's enumeration and kernel work
    // may only shrink. Counts above the committed ceilings mean the
    // length window or the signature prefilters silently regressed —
    // exactly the failure mode a wall-clock check can't see on CI.
    let ceilings = [
        ("memo_candidate_pairs", memo.candidate_pairs as i64),
        ("memo_dp_calls", memo.dp_calls as i64),
    ];
    for (key, actual) in ceilings {
        match json_int(&committed, key) {
            Some(ceiling) if actual <= ceiling => {
                eprintln!("check {key}: {actual} ≤ {ceiling} (ok)");
            }
            Some(ceiling) => {
                eprintln!("check {key}: {actual} exceeds committed ceiling {ceiling} (DRIFT)");
                drifted = true;
            }
            None => {
                eprintln!("check {key}: missing from baseline (DRIFT)");
                drifted = true;
            }
        }
    }

    // Golden post-delta edge dump: byte-identical or drift.
    match std::fs::read_to_string(GOLDEN_PATH) {
        Ok(golden) => {
            let fresh = mapsynth_bench::post_delta_edge_dump(GOLDEN_TABLES);
            if golden == fresh {
                eprintln!("check golden delta edges: {} bytes (ok)", golden.len());
            } else {
                eprintln!(
                    "check golden delta edges: dump differs from {GOLDEN_PATH} (DRIFT); \
                     regenerate via `cargo run --release -p mapsynth-bench --example dump_edges -- \
                     {GOLDEN_PATH} {GOLDEN_TABLES} --delta` if intended"
                );
                drifted = true;
            }
        }
        Err(e) => {
            eprintln!("check golden delta edges: cannot read {GOLDEN_PATH}: {e} (DRIFT)");
            drifted = true;
        }
    }

    if drifted {
        eprintln!("pipeline counts drifted from {path}; regenerate the baseline if intended");
        std::process::exit(1);
    }
    eprintln!("pipeline counts match {path}");
    std::process::exit(0);
}

/// One measured point of the corpus scale tier.
struct ScalePoint {
    tables: usize,
    candidates: usize,
    edges: usize,
    mappings: usize,
    blocking_pairs: usize,
    memo: mapsynth::approx::ApproxMemoStats,
    /// Coherence sketch-filter funnel: pairs the content sketch
    /// rejected outright, and pairs that went on to probe posting
    /// lists. Their sum tracks the O(samples²) pair loop; the probe
    /// count is the expensive tail the sketch exists to shrink.
    coh_sketch_rejects: u64,
    coh_list_probes: u64,
    extraction_ms: f64,
    value_space_ms: f64,
    blocking_ms: f64,
    scoring_ms: f64,
    approx_memo_ms: f64,
    graph_ms: f64,
    total_ms: f64,
    /// `VmHWM` watermarks (MiB): process start, then after each
    /// prepare stage, then the run's overall peak. `VmHWM` is
    /// monotone, so consecutive differences attribute the growth.
    vmhwm_start_mb: f64,
    vmhwm_extraction_mb: f64,
    vmhwm_value_space_mb: f64,
    vmhwm_scoring_mb: f64,
    vmhwm_peak_mb: f64,
    /// `VmRSS` when the run finished — unlike the watermarks this
    /// drops as stages release memory, so peak − end is the
    /// transient (spillable) share of the footprint.
    vmrss_end_mb: f64,
}

/// Wall-clock ceiling margin for committed scale points: generous
/// enough to absorb machine variance in CI, tight enough that a
/// complexity-class regression (linear → quadratic between committed
/// points) still trips it.
const MS_CEILING_MARGIN: f64 = 4.0;

/// Measure one scale point: generate the corpus as a stream (never
/// materialized — the whole reason peak RSS stays sublinear), run the
/// streaming prepare with the stage probe sampling `VmHWM`, then the
/// synthesis tail. Serving/delta stages are skipped: this tier is
/// about how extraction, blocking, and the match memo *grow*. With
/// `spill`, the sharded value-space and blocking builds stream their
/// shard artifacts through a temp directory (bit-identical outputs;
/// only the RSS watermarks move).
fn measure_scale_point(tables: usize, spill: bool) -> ScalePoint {
    let mb = |kb: u64| kb as f64 / 1024.0;
    let rss_start = peak_rss_kb();
    let mut stream = bench_stream(tables);
    let mut cfg = PipelineConfig::default();
    let spill_dir = spill
        .then(|| std::env::temp_dir().join(format!("mapsynth-scale-spill-{}", std::process::id())));
    cfg.spill_dir = spill_dir.clone();
    let mut session = SynthesisSession::new(cfg);
    let mut stage_rss: Vec<(&'static str, u64)> = Vec::new();
    session.prepare_streaming_with(&mut stream, |stage| stage_rss.push((stage, peak_rss_kb())));
    let run = session.synthesize(&session.config().synthesis.clone(), Resolver::Algorithm4);
    let peak = peak_rss_kb();
    if let Some(dir) = &spill_dir {
        std::fs::remove_dir_all(dir).ok();
    }

    let rss_of = |stage: &str| {
        stage_rss
            .iter()
            .find(|(s, _)| *s == stage)
            .map_or(0.0, |&(_, kb)| mb(kb))
    };
    let extraction = session.extraction().expect("prepared");
    let values = session.values().expect("prepared");
    let scores = session.scores().expect("prepared");
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let point = ScalePoint {
        tables,
        candidates: session.live_tables(),
        edges: run.edges,
        mappings: run.mappings.len(),
        blocking_pairs: scores.blocking.pairs,
        memo: scores.detail.memo,
        coh_sketch_rejects: extraction.funnel.sketch_rejects,
        coh_list_probes: extraction.funnel.list_probes,
        extraction_ms: ms(extraction.elapsed),
        value_space_ms: ms(values.elapsed),
        blocking_ms: ms(scores.detail.blocking),
        scoring_ms: ms(scores.elapsed.saturating_sub(scores.detail.blocking)),
        approx_memo_ms: ms(scores.detail.approx_memo),
        graph_ms: ms(run.timings.graph),
        total_ms: ms(run.timings.total),
        vmhwm_start_mb: mb(rss_start),
        vmhwm_extraction_mb: rss_of("extraction"),
        vmhwm_value_space_mb: rss_of("value_space"),
        vmhwm_scoring_mb: rss_of("scoring"),
        vmhwm_peak_mb: mb(peak),
        vmrss_end_mb: mb(mapsynth_bench::current_rss_kb()),
    };
    eprintln!(
        "scale {} tables{}: {} blocked pairs, {} memo candidate pairs, {} dp calls, \
         {} sketch rejects / {} list probes, extraction {:.1}ms, blocking {:.1}ms, \
         peak rss {:.1}MB",
        tables,
        if spill { " (spill)" } else { "" },
        point.blocking_pairs,
        point.memo.candidate_pairs,
        point.memo.dp_calls,
        point.coh_sketch_rejects,
        point.coh_list_probes,
        point.extraction_ms,
        point.blocking_ms,
        point.vmhwm_peak_mb
    );
    point
}

/// Render one scale point as its (flat-keyed) JSON object. `"tables"`
/// is deliberately the first key: the per-point `--check` scanner
/// scopes its text scan from that key to the object's closing brace.
fn render_point(p: &ScalePoint) -> String {
    format!(
        "      {{\n        \"tables\": {},\n        \"candidates\": {},\n        \"edges\": {},\n        \"mappings\": {},\n        \"blocking_pairs\": {},\n        \"memo_values\": {},\n        \"memo_candidate_pairs\": {},\n        \"memo_sig_mask_rejects\": {},\n        \"memo_sig_hist_rejects\": {},\n        \"memo_dp_calls\": {},\n        \"memo_matched_pairs\": {},\n        \"coh_sketch_rejects\": {},\n        \"coh_list_probes\": {},\n        \"extraction_ms\": {:.3},\n        \"value_space_ms\": {:.3},\n        \"blocking_ms\": {:.3},\n        \"scoring_ms\": {:.3},\n        \"approx_memo_ms\": {:.3},\n        \"graph_ms\": {:.3},\n        \"total_ms\": {:.3},\n        \"vmhwm_start_mb\": {:.1},\n        \"vmhwm_extraction_mb\": {:.1},\n        \"vmhwm_value_space_mb\": {:.1},\n        \"vmhwm_scoring_mb\": {:.1},\n        \"vmhwm_peak_mb\": {:.1},\n        \"vmrss_end_mb\": {:.1},\n        \"ceil_extraction_ms\": {:.0},\n        \"ceil_blocking_ms\": {:.0},\n        \"ceil_blocking_pairs\": {},\n        \"ceil_memo_candidate_pairs\": {},\n        \"ceil_memo_dp_calls\": {},\n        \"ceil_coh_list_probes\": {}\n      }}",
        p.tables,
        p.candidates,
        p.edges,
        p.mappings,
        p.blocking_pairs,
        p.memo.values,
        p.memo.candidate_pairs,
        p.memo.sig_mask_rejects,
        p.memo.sig_hist_rejects,
        p.memo.dp_calls,
        p.memo.matched_pairs,
        p.coh_sketch_rejects,
        p.coh_list_probes,
        p.extraction_ms,
        p.value_space_ms,
        p.blocking_ms,
        p.scoring_ms,
        p.approx_memo_ms,
        p.graph_ms,
        p.total_ms,
        p.vmhwm_start_mb,
        p.vmhwm_extraction_mb,
        p.vmhwm_value_space_mb,
        p.vmhwm_scoring_mb,
        p.vmhwm_peak_mb,
        p.vmrss_end_mb,
        (p.extraction_ms * MS_CEILING_MARGIN).ceil().max(1.0),
        (p.blocking_ms * MS_CEILING_MARGIN).ceil().max(1.0),
        p.blocking_pairs,
        p.memo.candidate_pairs,
        p.memo.dp_calls,
        p.coh_list_probes,
    )
}

/// The scale tier driver: one child process per point (so each point's
/// `VmHWM` watermark is its own, not inherited from a bigger earlier
/// point), assembling the children's stdout blocks into `scale_detail`.
fn scale_stage(points: &[usize], spill: bool) -> Vec<String> {
    let exe = std::env::current_exe().expect("current_exe");
    points
        .iter()
        .map(|&tables| {
            let mut args = vec!["--scale-point".to_string(), tables.to_string()];
            if spill {
                args.push("--spill".to_string());
            }
            let out = std::process::Command::new(&exe)
                .args(&args)
                .output()
                .expect("spawn scale-point child");
            std::io::Write::write_all(&mut std::io::stderr(), &out.stderr).ok();
            assert!(out.status.success(), "scale point {tables} failed");
            String::from_utf8(out.stdout).expect("scale point JSON is UTF-8")
        })
        .collect()
}

/// Render the scale points as the `scale_detail` JSON block.
fn scale_json(max_tables: usize, rows: &[String]) -> String {
    format!(
        "{{\n  \"scale_detail\": {{\n    \"max_tables\": {},\n    \"points\": [\n{}\n    ]\n  }}\n}}\n",
        max_tables,
        rows.join(",\n")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--scale-point") {
        let tables: usize = args
            .get(1)
            .and_then(|v| v.parse().ok())
            .expect("--scale-point needs a corpus size");
        let spill = args.get(2).map(String::as_str) == Some("--spill");
        let p = measure_scale_point(tables, spill);
        print!("{}", render_point(&p));
        return;
    }
    if args.first().map(String::as_str) == Some("--delta-stream") {
        if args.get(1).map(String::as_str) == Some("--faults") {
            if args.get(2).map(String::as_str) == Some("--check") {
                let path = args
                    .get(3)
                    .map(String::as_str)
                    .unwrap_or("BENCH_pipeline.json");
                check_fault(path);
            }
            // Standalone (child-process) mode: print the bare
            // `fault_detail` object for embedding by the parent run.
            let r = fault_stage(true);
            print!("{}", render_fault(&r));
            return;
        }
        if args.get(1).map(String::as_str) == Some("--check") {
            let path = args
                .get(2)
                .map(String::as_str)
                .unwrap_or("BENCH_pipeline.json");
            check_stream(path);
        }
        // Standalone (child-process) mode: print the bare
        // `delta_stream_detail` object for embedding by the parent run.
        let r = stream_stage(true);
        print!("{}", render_stream(&r));
        return;
    }
    if args.first().map(String::as_str) == Some("--recovery") {
        if args.get(1).map(String::as_str) == Some("--check") {
            let path = args
                .get(2)
                .map(String::as_str)
                .unwrap_or("BENCH_pipeline.json");
            check_recovery(path);
        }
        // Standalone (child-process) mode: print the bare
        // `recovery_detail` object for embedding by the parent run.
        let r = recovery_stage(true);
        print!("{}", render_recovery(&r));
        return;
    }
    if args.first().map(String::as_str) == Some("--check") {
        let path = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("BENCH_pipeline.json");
        check_against(path);
    }
    if args.first().map(String::as_str) == Some("--tables") {
        let max_tables: usize = args
            .get(1)
            .and_then(|v| v.parse().ok())
            .expect("--tables needs a corpus size");
        let mut points: Option<Vec<usize>> = None;
        let mut check: Option<String> = None;
        let mut out: Option<String> = None;
        let mut spill = false;
        let mut i = 2;
        while i < args.len() {
            match args[i].as_str() {
                "--points" => {
                    let arg = args
                        .get(i + 1)
                        .expect("--points needs a comma-separated list");
                    points = Some(mapsynth_bench::parse_points(arg).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }));
                    i += 2;
                }
                "--check" => {
                    check = Some(
                        args.get(i + 1)
                            .cloned()
                            .unwrap_or_else(|| "BENCH_scale.json".to_string()),
                    );
                    i += 2;
                }
                "--spill" => {
                    spill = true;
                    i += 1;
                }
                other => {
                    out = Some(other.to_string());
                    i += 1;
                }
            }
        }
        if let Some(path) = check {
            check_scale_point(max_tables, &path, spill);
        }
        let points = points.unwrap_or_else(|| {
            [max_tables / 4, max_tables / 2, max_tables]
                .into_iter()
                .filter(|&t| t > 0)
                .collect()
        });
        let rows = scale_stage(&points, spill);
        let json = scale_json(max_tables, &rows);
        match out {
            Some(path) => {
                std::fs::write(&path, &json).expect("write scale file");
                eprintln!("wrote {path}");
                print!("{json}");
            }
            None => print!("{json}"),
        }
        return;
    }
    let out_path = args.first().cloned();
    let tables: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(600);

    let mut wc = bench_corpus(tables);
    let cfg = PipelineConfig::default();
    let requested_workers = cfg.workers;
    let mut session = SynthesisSession::new(cfg);
    let rss_start_kb = peak_rss_kb();
    let mut stage_rss: Vec<(&'static str, u64)> = Vec::new();
    session.prepare_with(&wc.corpus, |stage| stage_rss.push((stage, peak_rss_kb())));
    let output = session.run(&wc.corpus);
    let t = output.timings;
    let detail = session.scores().expect("prepared").detail;

    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let serving = serving_stage(&output.mappings, threads);

    let delta = delta_stage(&mut session, &mut wc.corpus, tables, &output.mappings);
    let rss_end_kb = peak_rss_kb();

    // Sustained-stream tier in a child process, so its RSS probes read
    // only the stream's own footprint — not the 600-table batch state
    // still resident in this process.
    let stream_block = {
        let exe = std::env::current_exe().expect("current_exe");
        let out = std::process::Command::new(&exe)
            .arg("--delta-stream")
            .output()
            .expect("spawn delta-stream child");
        std::io::Write::write_all(&mut std::io::stderr(), &out.stderr).ok();
        assert!(out.status.success(), "delta-stream stage failed");
        String::from_utf8(out.stdout).expect("delta-stream JSON is UTF-8")
    };

    // Fault-injection tier, also in a child process (it spawns its own
    // ingestor + reader threads and runs a fresh-oracle rebuild).
    let fault_block = {
        let exe = std::env::current_exe().expect("current_exe");
        let out = std::process::Command::new(&exe)
            .args(["--delta-stream", "--faults"])
            .output()
            .expect("spawn fault-stream child");
        std::io::Write::write_all(&mut std::io::stderr(), &out.stderr).ok();
        assert!(out.status.success(), "fault-injection stage failed");
        String::from_utf8(out.stdout).expect("fault-stream JSON is UTF-8")
    };

    // Crash-recovery tier, also in a child process (it persists and
    // recovers its own ingestor states in a scratch directory keyed by
    // the child's pid).
    let recovery_block = {
        let exe = std::env::current_exe().expect("current_exe");
        let out = std::process::Command::new(&exe)
            .arg("--recovery")
            .output()
            .expect("spawn recovery child");
        std::io::Write::write_all(&mut std::io::stderr(), &out.stderr).ok();
        assert!(out.status.success(), "recovery stage failed");
        String::from_utf8(out.stdout).expect("recovery JSON is UTF-8")
    };
    let mb = |kb: u64| kb as f64 / 1024.0;
    let rss_of = |stage: &str| {
        stage_rss
            .iter()
            .find(|(s, _)| *s == stage)
            .map_or(0.0, |&(_, kb)| mb(kb))
    };

    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let delta_apply_ms = ms(delta.report.timings.total);
    let json = format!(
        "{{\n  \"corpus_tables\": {},\n  \"candidates\": {},\n  \"edges\": {},\n  \"partitions\": {},\n  \"mappings\": {},\n  \"coh_sketch_rejects\": {},\n  \"coh_list_probes\": {},\n  \"stage_ms\": {{\n    \"extraction\": {:.3},\n    \"value_space\": {:.3},\n    \"graph\": {:.3},\n    \"partition\": {:.3},\n    \"conflict\": {:.3},\n    \"total\": {:.3}\n  }},\n  \"graph_detail\": {{\n    \"blocking_ms\": {:.3},\n    \"index_build_ms\": {:.3},\n    \"approx_memo_ms\": {:.3},\n    \"merge_join_ms\": {:.3},\n    \"memo_values\": {},\n    \"memo_candidate_pairs\": {},\n    \"memo_sig_mask_rejects\": {},\n    \"memo_sig_hist_rejects\": {},\n    \"memo_dp_calls\": {},\n    \"memo_matched_pairs\": {}\n  }},\n  \"stage_peak_rss_mb\": {{\n    \"start\": {:.1},\n    \"extraction\": {:.1},\n    \"value_space\": {:.1},\n    \"scoring\": {:.1},\n    \"end\": {:.1}\n  }},\n  \"workers\": {{\n    \"requested\": {},\n    \"effective\": {},\n    \"available\": {}\n  }},\n  \"serving\": {{\n    \"shards\": {},\n    \"values\": {},\n    \"mappings\": {},\n    \"snapshot_build_ms\": {:.3},\n    \"probe_keys\": {},\n    \"lookups\": {},\n    \"single_thread_qps\": {:.0},\n    \"threads\": {},\n    \"multi_thread_qps\": {:.0},\n    \"hit_rate\": {:.3}\n  }},\n  \"delta_detail\": {{\n    \"delta_removed_tables\": {},\n    \"delta_added_tables\": {},\n    \"delta_reordered\": {},\n    \"delta_coherence_flips\": {},\n    \"delta_candidates\": {},\n    \"delta_edges\": {},\n    \"delta_partitions\": {},\n    \"delta_mappings\": {},\n    \"delta_pairs_kept\": {},\n    \"delta_pairs_added\": {},\n    \"delta_pairs_removed\": {},\n    \"delta_memo_dp_calls\": {},\n    \"delta_apply_ms\": {{\n      \"extraction\": {:.3},\n      \"values\": {:.3},\n      \"blocking\": {:.3},\n      \"scoring\": {:.3},\n      \"total\": {:.3}\n    }},\n    \"delta_synth_ms\": {:.3},\n    \"full_rebuild_ms\": {:.3},\n    \"delta_speedup\": {:.2},\n    \"delta_serve\": {{\n      \"publish_added\": {},\n      \"publish_removed\": {},\n      \"publish_unchanged\": {},\n      \"rebuilt_shards\": {},\n      \"total_shards\": {},\n      \"publish_delta_ms\": {:.3}\n    }}\n  }},\n  \"delta_stream_detail\": {},\n  \"fault_detail\": {},\n  \"recovery_detail\": {}\n}}\n",
        tables,
        output.candidates,
        output.edges,
        output.partitions,
        output.mappings.len(),
        session.extraction().expect("prepared").funnel.sketch_rejects,
        session.extraction().expect("prepared").funnel.list_probes,
        ms(t.extraction),
        ms(t.value_space),
        ms(t.graph),
        ms(t.partition),
        ms(t.conflict),
        ms(t.total),
        ms(detail.blocking),
        ms(detail.index_build),
        ms(detail.approx_memo),
        ms(detail.merge_join),
        detail.memo.values,
        detail.memo.candidate_pairs,
        detail.memo.sig_mask_rejects,
        detail.memo.sig_hist_rejects,
        detail.memo.dp_calls,
        detail.memo.matched_pairs,
        mb(rss_start_kb),
        rss_of("extraction"),
        rss_of("value_space"),
        rss_of("scoring"),
        mb(rss_end_kb),
        requested_workers,
        session.workers(),
        threads,
        serving.shards,
        serving.values,
        serving.mappings,
        serving.build_ms,
        serving.probe_keys,
        SERVING_LOOKUPS,
        serving.single_thread_qps,
        serving.threads,
        serving.multi_thread_qps,
        serving.hit_rate,
        delta.report.tables_removed,
        delta.report.tables_added,
        usize::from(delta.report.reordered),
        delta.report.coherence_flips,
        delta.candidates,
        delta.edges,
        delta.partitions,
        delta.mappings,
        delta.report.pairs_kept,
        delta.report.pairs_added,
        delta.report.pairs_removed,
        delta.report.memo_dp_calls,
        ms(delta.report.timings.extraction),
        ms(delta.report.timings.values),
        ms(delta.report.timings.blocking),
        ms(delta.report.timings.scoring),
        delta_apply_ms,
        delta.synth_ms,
        delta.rebuild_ms,
        delta.rebuild_ms / (delta_apply_ms + delta.synth_ms),
        delta.serve.added,
        delta.serve.removed,
        delta.serve.unchanged,
        delta.serve.rebuilt_shards,
        delta.serve.total_shards,
        delta.publish_delta_ms,
        stream_block,
        fault_block,
        recovery_block,
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write baseline file");
            eprintln!("wrote {path}");
            print!("{json}");
        }
        None => print!("{json}"),
    }
}
