//! Records a stage-timing baseline for the synthesis pipeline on a
//! deterministic generated corpus, as JSON on stdout or into a file.
//!
//! ```text
//! cargo run --release -p mapsynth-bench --bin pipeline_baseline -- BENCH_pipeline.json
//! ```

use mapsynth::pipeline::{PipelineConfig, SynthesisSession};
use mapsynth_bench::bench_corpus;

fn main() {
    let out_path = std::env::args().nth(1);
    let tables: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(600);

    let wc = bench_corpus(tables);
    let cfg = PipelineConfig::default();
    let mut session = SynthesisSession::new(cfg);
    let output = session.run(&wc.corpus);
    let t = output.timings;

    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let json = format!(
        "{{\n  \"corpus_tables\": {},\n  \"candidates\": {},\n  \"edges\": {},\n  \"partitions\": {},\n  \"mappings\": {},\n  \"stage_ms\": {{\n    \"extraction\": {:.3},\n    \"value_space\": {:.3},\n    \"graph\": {:.3},\n    \"partition\": {:.3},\n    \"conflict\": {:.3},\n    \"total\": {:.3}\n  }},\n  \"workers\": {}\n}}\n",
        tables,
        output.candidates,
        output.edges,
        output.partitions,
        output.mappings.len(),
        ms(t.extraction),
        ms(t.value_space),
        ms(t.graph),
        ms(t.partition),
        ms(t.conflict),
        ms(t.total),
        session.workers(),
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write baseline file");
            eprintln!("wrote {path}");
            print!("{json}");
        }
        None => print!("{json}"),
    }
}
