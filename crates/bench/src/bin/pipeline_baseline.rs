//! Records a stage-timing baseline for the synthesis pipeline — plus a
//! serving-throughput stage over the synthesized mappings — on a
//! deterministic generated corpus, as JSON on stdout or into a file.
//!
//! ```text
//! cargo run --release -p mapsynth-bench --bin pipeline_baseline -- BENCH_pipeline.json
//! # verify counts against a committed baseline (CI drift gate):
//! cargo run --release -p mapsynth-bench --bin pipeline_baseline -- --check BENCH_pipeline.json
//! ```
//!
//! See `crates/bench/README.md` for the output schema. In `--check`
//! mode the corpus size is read from the committed file, the pipeline
//! re-runs, and the process exits non-zero if any deterministic count
//! (candidates, edges, partitions, mappings) drifted — timings are
//! machine-dependent and informational only.

use mapsynth::pipeline::{PipelineConfig, SynthesisSession};
use mapsynth_bench::bench_corpus;
use mapsynth_serve::{MappingService, SnapshotBuilder};
use std::time::Instant;

/// Lookups issued per throughput measurement (single- and multi-thread).
const SERVING_LOOKUPS: usize = 200_000;
/// Batch size fed to `lookup_many` (amortizes shard dispatch).
const SERVING_BATCH: usize = 256;
/// Probe keys sampled from the served mappings (half the probe set;
/// the other half are guaranteed misses, a 50% target hit rate).
const SERVING_KEYS: usize = 2000;

struct ServingReport {
    shards: usize,
    values: usize,
    mappings: usize,
    build_ms: f64,
    probe_keys: usize,
    single_thread_qps: f64,
    threads: usize,
    multi_thread_qps: f64,
    hit_rate: f64,
}

/// Drive `SERVING_LOOKUPS` batched lookups over `keys`, returning QPS.
fn drive_lookups(snapshot: &mapsynth_serve::IndexSnapshot, keys: &[&str]) -> f64 {
    let mut done = 0usize;
    let t = Instant::now();
    while done < SERVING_LOOKUPS {
        for chunk in keys.chunks(SERVING_BATCH) {
            snapshot.lookup_many(chunk);
            done += chunk.len();
            if done >= SERVING_LOOKUPS {
                break;
            }
        }
    }
    done as f64 / t.elapsed().as_secs_f64()
}

/// Serving stage: publish the run's mappings into a `MappingService`
/// and measure lookup throughput against the served snapshot.
fn serving_stage(mappings: &[mapsynth::SynthesizedMapping], threads: usize) -> ServingReport {
    let service = MappingService::new();
    let t = Instant::now();
    let snapshot = SnapshotBuilder::from_synthesized(mappings).build();
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    service.publish(snapshot);
    let snap = service.snapshot();

    // Probe set: every k-th left value of the served mappings (hits),
    // interleaved with as many absent keys (misses).
    let mut keys: Vec<String> = Vec::with_capacity(2 * SERVING_KEYS);
    'outer: for m in mappings {
        for (l, _) in m.pair_strs() {
            keys.push(l.to_string());
            if keys.len() >= SERVING_KEYS {
                break 'outer;
            }
        }
    }
    let hits = keys.len();
    for i in 0..hits {
        keys.push(format!("absent probe {i}"));
    }
    let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();

    let single_thread_qps = drive_lookups(&snap, &key_refs);

    // Multi-thread: each worker holds its own snapshot handle (the
    // realistic serving shape — one `snapshot()` call, many lookups).
    let per_thread = SERVING_LOOKUPS.div_ceil(threads);
    let t = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let service = &service;
            let key_refs = &key_refs;
            s.spawn(move || {
                let snap = service.snapshot();
                let mut done = 0usize;
                while done < per_thread {
                    for chunk in key_refs.chunks(SERVING_BATCH) {
                        snap.lookup_many(chunk);
                        done += chunk.len();
                        if done >= per_thread {
                            break;
                        }
                    }
                }
            });
        }
    });
    let multi_thread_qps = (per_thread * threads) as f64 / t.elapsed().as_secs_f64();

    let stats = snap.stats();
    ServingReport {
        shards: snap.shard_count(),
        values: snap.value_count(),
        mappings: snap.mapping_count(),
        build_ms,
        probe_keys: key_refs.len(),
        single_thread_qps,
        threads,
        multi_thread_qps,
        hit_rate: stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64,
    }
}

/// Pull an integer field out of a (flat-keyed) baseline JSON file.
/// The baseline is written by this binary with unique key names, so a
/// plain text scan is sufficient — no JSON dependency needed.
fn json_int(json: &str, key: &str) -> Option<i64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `--check` mode: rerun the pipeline at the committed corpus size and
/// fail on any deterministic-count drift.
fn check_against(path: &str) -> ! {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let tables = json_int(&committed, "corpus_tables").expect("corpus_tables in baseline") as usize;

    let wc = bench_corpus(tables);
    let mut session = SynthesisSession::new(PipelineConfig::default());
    let output = session.run(&wc.corpus);

    let expectations = [
        ("candidates", output.candidates as i64),
        ("edges", output.edges as i64),
        ("partitions", output.partitions as i64),
        ("mappings", output.mappings.len() as i64),
    ];
    let mut drifted = false;
    for (key, actual) in expectations {
        match json_int(&committed, key) {
            Some(expected) if expected == actual => {
                eprintln!("check {key}: {actual} (ok)");
            }
            Some(expected) => {
                eprintln!("check {key}: expected {expected}, got {actual} (DRIFT)");
                drifted = true;
            }
            None => {
                eprintln!("check {key}: missing from baseline (DRIFT)");
                drifted = true;
            }
        }
    }
    if drifted {
        eprintln!("pipeline counts drifted from {path}; regenerate the baseline if intended");
        std::process::exit(1);
    }
    eprintln!("pipeline counts match {path}");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("BENCH_pipeline.json");
        check_against(path);
    }
    let out_path = args.first().cloned();
    let tables: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(600);

    let wc = bench_corpus(tables);
    let cfg = PipelineConfig::default();
    let mut session = SynthesisSession::new(cfg);
    let output = session.run(&wc.corpus);
    let t = output.timings;
    let detail = session.scores().expect("prepared").detail;

    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let serving = serving_stage(&output.mappings, threads);

    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let json = format!(
        "{{\n  \"corpus_tables\": {},\n  \"candidates\": {},\n  \"edges\": {},\n  \"partitions\": {},\n  \"mappings\": {},\n  \"stage_ms\": {{\n    \"extraction\": {:.3},\n    \"value_space\": {:.3},\n    \"graph\": {:.3},\n    \"partition\": {:.3},\n    \"conflict\": {:.3},\n    \"total\": {:.3}\n  }},\n  \"graph_detail\": {{\n    \"blocking_ms\": {:.3},\n    \"index_build_ms\": {:.3},\n    \"approx_memo_ms\": {:.3},\n    \"merge_join_ms\": {:.3},\n    \"memo_values\": {},\n    \"memo_candidate_pairs\": {},\n    \"memo_dp_calls\": {},\n    \"memo_matched_pairs\": {}\n  }},\n  \"workers\": {},\n  \"serving\": {{\n    \"shards\": {},\n    \"values\": {},\n    \"mappings\": {},\n    \"snapshot_build_ms\": {:.3},\n    \"probe_keys\": {},\n    \"lookups\": {},\n    \"single_thread_qps\": {:.0},\n    \"threads\": {},\n    \"multi_thread_qps\": {:.0},\n    \"hit_rate\": {:.3}\n  }}\n}}\n",
        tables,
        output.candidates,
        output.edges,
        output.partitions,
        output.mappings.len(),
        ms(t.extraction),
        ms(t.value_space),
        ms(t.graph),
        ms(t.partition),
        ms(t.conflict),
        ms(t.total),
        ms(detail.blocking),
        ms(detail.index_build),
        ms(detail.approx_memo),
        ms(detail.merge_join),
        detail.memo.values,
        detail.memo.candidate_pairs,
        detail.memo.dp_calls,
        detail.memo.matched_pairs,
        session.workers(),
        serving.shards,
        serving.values,
        serving.mappings,
        serving.build_ms,
        serving.probe_keys,
        SERVING_LOOKUPS,
        serving.single_thread_qps,
        serving.threads,
        serving.multi_thread_qps,
        serving.hit_rate,
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write baseline file");
            eprintln!("wrote {path}");
            print!("{json}");
        }
        None => print!("{json}"),
    }
}
