//! # mapsynth-bench
//!
//! Shared fixtures for the Criterion benchmarks. The benches map to
//! the paper's evaluation as follows:
//!
//! | Bench | Paper artifact |
//! |---|---|
//! | `fig7_quality` | Figure 7 — per-method synthesis quality workload |
//! | `fig8_runtime` | Figure 8 — per-method end-to-end runtime |
//! | `fig9_scalability` | Figure 9 — pipeline runtime vs corpus fraction |
//! | `micro_edit_distance` | Algorithm 2 ablation: banded vs full DP |
//! | `micro_blocking` | §4.1 ablation: blocked vs all-pairs scoring |
//! | `micro_partition` | Algorithm 3: lazy-heap greedy merge |
//! | `micro_scoring` | §4.1 hot path: shared `ScoringContext` vs throwaway per-pair scoring |
//! | `apps_lookup` | §1 mapping-index containment lookup (Bloom) |

use mapsynth_gen::procedural::ProceduralConfig;
use mapsynth_gen::webgen::WebCorpus;
use mapsynth_gen::{generate_web, WebConfig};

/// A small deterministic web corpus for benchmarks.
pub fn bench_corpus(tables: usize) -> WebCorpus {
    generate_web(&WebConfig {
        tables,
        domains: (tables / 20).clamp(30, 200),
        procedural: ProceduralConfig {
            families: 20,
            temporal_families: 2,
            ..Default::default()
        },
        ..Default::default()
    })
}
