//! # mapsynth-bench
//!
//! Shared fixtures for the Criterion benchmarks. The benches map to
//! the paper's evaluation as follows:
//!
//! | Bench | Paper artifact |
//! |---|---|
//! | `fig7_quality` | Figure 7 — per-method synthesis quality workload |
//! | `fig8_runtime` | Figure 8 — per-method end-to-end runtime |
//! | `fig9_scalability` | Figure 9 — pipeline runtime vs corpus fraction |
//! | `micro_edit_distance` | Algorithm 2 ablation: banded vs bit-parallel Myers vs full DP, across length buckets |
//! | `micro_blocking` | §4.1 ablation: blocked vs all-pairs scoring |
//! | `micro_partition` | Algorithm 3: lazy-heap greedy merge |
//! | `micro_scoring` | §4.1 hot path: shared `ScoringContext` vs throwaway per-pair scoring |
//! | `apps_lookup` | §1 mapping-index containment lookup (Bloom) |

pub mod fault;
pub mod recovery;

use mapsynth::delta::CorpusDelta;
use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
use mapsynth_corpus::{Corpus, RowPatch, TableId};
use mapsynth_gen::procedural::ProceduralConfig;
use mapsynth_gen::webgen::WebCorpus;
use mapsynth_gen::{generate_web, WebConfig, WebTableStream};

/// The generator configuration behind every benchmark corpus —
/// [`bench_corpus`] and [`bench_stream`] share it, so the streamed and
/// materialized fixtures are the same corpus.
pub fn bench_config(tables: usize) -> WebConfig {
    WebConfig {
        tables,
        domains: (tables / 20).clamp(30, 200),
        procedural: ProceduralConfig {
            families: 20,
            temporal_families: 2,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A small deterministic web corpus for benchmarks.
pub fn bench_corpus(tables: usize) -> WebCorpus {
    generate_web(&bench_config(tables))
}

/// The benchmark corpus as a bounded-memory
/// [`TableSource`](mapsynth_corpus::TableSource): yields exactly the tables
/// [`bench_corpus`] materializes, one at a time, for the scale tier's
/// streaming runs.
pub fn bench_stream(tables: usize) -> WebTableStream {
    WebTableStream::new(bench_config(tables))
}

/// Peak resident-set size of this process in kibibytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable. A
/// monotone high-water mark: sampling it after each pipeline stage
/// shows which stage pushed the peak.
pub fn peak_rss_kb() -> u64 {
    proc_status_kb("VmHWM:")
}

/// Current resident-set size of this process in kibibytes (`VmRSS`
/// from `/proc/self/status`), or 0 where procfs is unavailable.
/// Unlike [`peak_rss_kb`] this goes *down* when memory is reclaimed —
/// the probe behind the delta-stream tier's post-compaction reading.
pub fn current_rss_kb() -> u64 {
    proc_status_kb("VmRSS:")
}

fn proc_status_kb(field: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Parse a `--points` argument: a comma-separated list of corpus
/// sizes that must be strictly increasing and non-zero. Duplicate,
/// unsorted, zero, or non-numeric points are configuration mistakes —
/// each gets its own error message rather than a silent reorder (the
/// scale harness assumes growth-curve order) or a cryptic panic.
pub fn parse_points(arg: &str) -> Result<Vec<usize>, String> {
    let mut points = Vec::new();
    for part in arg.split(',') {
        let part = part.trim();
        let n: usize = part
            .parse()
            .map_err(|_| format!("--points: `{part}` is not a table count"))?;
        if n == 0 {
            return Err("--points: table counts must be non-zero".to_string());
        }
        if let Some(&prev) = points.last() {
            if n == prev {
                return Err(format!("--points: duplicate point {n}"));
            }
            if n < prev {
                return Err(format!(
                    "--points: {n} after {prev} — points must be sorted ascending"
                ));
            }
        }
        points.push(n);
    }
    if points.is_empty() {
        return Err("--points: expected at least one table count".to_string());
    }
    Ok(points)
}

/// Append one table of `src` to `dst`, re-interning its strings (the
/// two corpora own separate interners).
pub fn append_table(dst: &mut Corpus, src: &Corpus, ti: usize) -> TableId {
    let t = &src.tables[ti];
    let name = &src.domain_names[t.domain.0 as usize];
    let d = dst.domain(name);
    let cols: Vec<(Option<&str>, Vec<&str>)> = t
        .columns
        .iter()
        .map(|c| {
            (
                c.header.map(|h| src.str_of(h)),
                c.values.iter().map(|&v| src.str_of(v)).collect(),
            )
        })
        .collect();
    dst.push_table(d, cols)
}

/// Format a compatibility graph's edge list (weights at 17 significant
/// digits) for byte-identity golden comparisons.
pub fn format_edges(graph: &mapsynth::CompatGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for &(a, b, w) in &graph.edges {
        writeln!(out, "{a} {b} {:.17e} {:.17e}", w.pos, w.neg).unwrap();
    }
    out
}

/// The post-delta golden dump: prepare a [`bench_corpus`] of `tables`
/// tables, apply the standard [`bench_delta`], and format the
/// resulting compatibility-graph edges. Committed under
/// `crates/bench/golden/` and byte-compared by
/// `pipeline_baseline --check` so any drift in the incremental path —
/// blocking, memo growth, count reuse — fails CI.
pub fn post_delta_edge_dump(tables: usize) -> String {
    use mapsynth::pipeline::{PipelineConfig, SynthesisSession};
    let mut wc = bench_corpus(tables);
    let mut session = SynthesisSession::new(PipelineConfig::default());
    session.prepare(&wc.corpus);
    let delta = bench_delta(&mut wc.corpus, tables);
    session
        .apply_delta(&wc.corpus, &delta)
        .expect("valid delta");
    format_edges(&session.graph(&session.config().synthesis))
}

/// The standard incremental-update workload over a [`bench_corpus`] of
/// `tables` tables: remove `tables/40` spread tables and append the
/// same number of freshly generated ones (a "new crawl" of unseen
/// sites) — a ~5% churn. Deterministic; mutates `corpus` by appending
/// the new tables and returns the delta to apply.
pub fn bench_delta(corpus: &mut Corpus, tables: usize) -> CorpusDelta {
    let n = (tables / 40).max(1);
    let mut seen = std::collections::HashSet::new();
    let removed: Vec<TableId> = (0u32..)
        .map(|k| TableId((k * 53) % tables as u32))
        .filter(|t| seen.insert(*t))
        .take(n)
        .collect();
    let fresh = generate_web(&WebConfig {
        tables: n,
        domains: (n / 3).max(2),
        procedural: ProceduralConfig {
            families: 4,
            temporal_families: 0,
            ..Default::default()
        },
        ..Default::default()
    });
    let added: Vec<TableId> = (0..fresh.corpus.len())
        .map(|ti| append_table(corpus, &fresh.corpus, ti))
        .collect();
    CorpusDelta {
        added,
        removed,
        patches: vec![],
    }
}

/// Corpus size of the sustained row-delta stream tier.
pub const STREAM_TABLES: usize = 200;
/// Deltas driven through the session by the stream tier.
pub const STREAM_DELTAS: usize = 1200;
/// The stream publishes an incremental snapshot every this many deltas.
pub const STREAM_PUBLISH_EVERY: usize = 32;
/// Compaction threshold used by the stream tier: garbage is reclaimed
/// aggressively so a 1000+-delta run exercises several compactions.
pub const STREAM_COMPACT_THRESHOLD: f64 = 0.05;

/// Deterministic splitmix64 generator driving the row-delta stream.
pub struct StreamRng(u64);

impl StreamRng {
    /// Seeded generator; the stream tier always uses the same seed.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A removed table's content, stashed for later re-insertion (the
/// stream's re-crawl churn): domain name plus full columns.
type StashedTable = (String, Vec<(Option<String>, Vec<String>)>);

/// Everything the sustained row-delta stream produced, for the
/// `delta_stream_detail` bench block and the post-stream golden dump.
pub struct DeltaStreamOutcome {
    /// The session after the full stream (compacted zero or more times).
    pub session: SynthesisSession,
    /// The corpus the session tracks (replaced at each compaction).
    pub corpus: Corpus,
    /// Wall-clock of each `apply_delta` call, milliseconds.
    pub apply_ms: Vec<f64>,
    /// Deltas that were a row patch.
    pub row_patches: usize,
    /// Deltas that removed a table.
    pub removals: usize,
    /// Deltas that re-inserted a stashed table.
    pub additions: usize,
    /// Deltas that took the renumber path.
    pub reorders: usize,
    /// Compaction passes triggered by `compaction_due`.
    pub compactions: usize,
    /// `VmRSS` (MiB) right after the last compaction (0 if none) —
    /// the instantaneous residency, which *drops* when compaction
    /// reclaims memory.
    pub post_compact_vmrss_mb: f64,
    /// `VmHWM` (MiB) at the same instant — the process-lifetime
    /// high-water mark, which never drops.
    pub post_compact_vmhwm_mb: f64,
}

/// Drive the sustained row-delta stream: `deltas` deterministic deltas
/// over a [`bench_corpus`] of `tables` tables — mostly single-row
/// patches (delete, insert, edit, touch), with an occasional table
/// removal or re-insertion of stashed content — each applied through
/// [`SynthesisSession::apply_delta`], compacting whenever
/// [`SynthesisSession::compaction_due`] fires. Every
/// [`STREAM_PUBLISH_EVERY`] deltas the current synthesis output is
/// handed to `on_publish` (the bench binary feeds it to
/// `MappingService::publish_delta`; the golden dump passes a no-op).
///
/// With `verify`, the session is compared pair-for-pair against a
/// fresh batch session at the midpoint and the end, and the unified
/// candidate counters are balance-checked across the whole stream.
/// The sequence of corpus states, compaction points and session
/// artifacts is a pure function of `(tables, deltas)` — `on_publish`
/// and `verify` never influence it — which is what makes the
/// committed post-stream edge dump reproducible.
pub fn run_delta_stream(
    tables: usize,
    deltas: usize,
    verify: bool,
    mut on_publish: impl FnMut(&[mapsynth::SynthesizedMapping]),
) -> DeltaStreamOutcome {
    let wc = bench_corpus(tables);
    let mut corpus = wc.corpus;
    let mut session = SynthesisSession::new(PipelineConfig {
        compact_threshold: STREAM_COMPACT_THRESHOLD,
        ..Default::default()
    });
    session.prepare(&corpus);
    let mut alive: Vec<TableId> = (0..corpus.len() as u32).map(TableId).collect();
    let mut stash: Vec<StashedTable> = Vec::new();
    let mut rng = StreamRng::new(0x5eed_cafe);
    let mut expected_live = session.extraction().expect("prepared").candidates.len();

    let mut out = DeltaStreamOutcome {
        apply_ms: Vec::with_capacity(deltas),
        row_patches: 0,
        removals: 0,
        additions: 0,
        reorders: 0,
        compactions: 0,
        post_compact_vmrss_mb: 0.0,
        post_compact_vmhwm_mb: 0.0,
        session: SynthesisSession::new(PipelineConfig::default()),
        corpus: Corpus::new(),
    };

    for k in 0..deltas {
        let delta = if k % 48 == 17 && alive.len() > tables / 2 {
            // Table churn: retire one live table, stashing its content.
            let tid = alive[rng.below(alive.len())];
            let t = corpus.table(tid);
            let name = corpus.domain_names[t.domain.0 as usize].clone();
            let cols: Vec<(Option<String>, Vec<String>)> = t
                .columns
                .iter()
                .map(|c| {
                    (
                        c.header.map(|h| corpus.str_of(h).to_string()),
                        c.values
                            .iter()
                            .map(|&v| corpus.str_of(v).to_string())
                            .collect(),
                    )
                })
                .collect();
            stash.push((name, cols));
            if stash.len() > 8 {
                stash.remove(0);
            }
            alive.retain(|&t| t != tid);
            out.removals += 1;
            CorpusDelta {
                added: vec![],
                removed: vec![tid],
                patches: vec![],
            }
        } else if k % 48 == 33 && !stash.is_empty() {
            // Re-crawl: push a stashed table back under a fresh id.
            let (name, cols) = stash.remove(0);
            let d = corpus.domain(&name);
            let cols_ref: Vec<(Option<&str>, Vec<&str>)> = cols
                .iter()
                .map(|(h, vs)| (h.as_deref(), vs.iter().map(String::as_str).collect()))
                .collect();
            let tid = corpus.push_table(d, cols_ref);
            alive.push(tid);
            out.additions += 1;
            CorpusDelta {
                added: vec![tid],
                removed: vec![],
                patches: vec![],
            }
        } else {
            // A single-row patch on a random live table.
            let tid = alive[rng.below(alive.len())];
            let (deleted, inserted) = {
                let t = corpus.table(tid);
                let nrows = t.rows();
                let row_at = |r: usize| -> Vec<String> {
                    t.columns
                        .iter()
                        .map(|c| corpus.str_of(c.values[r]).to_string())
                        .collect()
                };
                match (rng.below(4), nrows) {
                    (0, 1..) => (vec![row_at(rng.below(nrows))], vec![]),
                    (1, _) | (_, 0) => {
                        // Insert a brand-new row: fresh values that only
                        // compaction will ever reclaim.
                        let fresh: Vec<String> = (0..t.width())
                            .map(|c| format!("stream row {k} col {c}"))
                            .collect();
                        (vec![], vec![fresh])
                    }
                    (2, _) => {
                        // Edit: replace one cell of an existing row.
                        let row = row_at(rng.below(nrows));
                        let mut edited = row.clone();
                        let c = rng.below(edited.len());
                        edited[c] = format!("{} v{k}", edited[c]);
                        (vec![row], vec![edited])
                    }
                    (_, _) => {
                        // Touch: delete + re-insert the same tuple.
                        let row = row_at(rng.below(nrows));
                        (vec![row.clone()], vec![row])
                    }
                }
            };
            let patch = RowPatch {
                table: tid,
                deleted,
                inserted,
            };
            corpus.apply_row_patch(&patch);
            out.row_patches += 1;
            CorpusDelta {
                added: vec![],
                removed: vec![],
                patches: vec![patch],
            }
        };

        let t = std::time::Instant::now();
        let report = session.apply_delta(&corpus, &delta).expect("valid delta");
        out.apply_ms.push(t.elapsed().as_secs_f64() * 1e3);
        out.reorders += usize::from(report.reordered);
        expected_live = expected_live + report.candidates_added - report.candidates_tombstoned;

        if session.compaction_due() {
            corpus = session.compact(&corpus);
            alive = (0..corpus.len() as u32).map(TableId).collect();
            out.compactions += 1;
            out.post_compact_vmrss_mb = current_rss_kb() as f64 / 1024.0;
            out.post_compact_vmhwm_mb = peak_rss_kb() as f64 / 1024.0;
        }

        if (k + 1) % STREAM_PUBLISH_EVERY == 0 {
            let run = session.synthesize(&session.config().synthesis.clone(), Resolver::Algorithm4);
            on_publish(&run.mappings);
        }

        if verify && (k + 1 == deltas / 2 || k + 1 == deltas) {
            assert_eq!(
                expected_live,
                session.extraction().expect("prepared").candidates.len()
                    - (0..session.extraction().expect("prepared").candidates.len() as u32)
                        .filter(|&i| !session.is_live(i))
                        .count(),
                "candidate counters out of balance after {} deltas",
                k + 1
            );
            let live = session.live_corpus(&corpus);
            let mut fresh = SynthesisSession::new(PipelineConfig::default());
            let fresh_out = fresh.run(&live);
            let run = session.synthesize(&session.config().synthesis.clone(), Resolver::Algorithm4);
            assert_eq!(
                run.mappings.len(),
                fresh_out.mappings.len(),
                "stream diverged from fresh rebuild after {} deltas",
                k + 1
            );
            for (a, b) in run.mappings.iter().zip(&fresh_out.mappings) {
                assert_eq!(
                    a.materialize_pairs(),
                    b.materialize_pairs(),
                    "stream diverged from fresh rebuild after {} deltas",
                    k + 1
                );
            }
        }
    }

    out.session = session;
    out.corpus = corpus;
    out
}

/// The post-stream golden dump: run the full deterministic delta
/// stream and format the final compatibility-graph edges. Committed
/// under `crates/bench/golden/` and byte-compared by
/// `pipeline_baseline --delta-stream --check`, so any drift in the
/// row-patch path, the compaction renumbering, or their interleaving
/// fails CI.
pub fn post_stream_edge_dump(tables: usize, deltas: usize) -> String {
    let out = run_delta_stream(tables, deltas, false, |_| {});
    format_edges(&out.session.graph(&out.session.config().synthesis))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short verified stream: exercises every step kind (patch modes,
    /// removal at k=17, stashed re-insertion at k=33), at least one
    /// publish, and the midpoint/endpoint fresh-rebuild comparison.
    #[test]
    fn short_stream_matches_fresh_rebuilds() {
        let mut publishes = 0usize;
        let out = run_delta_stream(12, 60, true, |mappings| {
            publishes += 1;
            assert!(!mappings.is_empty(), "stream publish produced no mappings");
        });
        assert_eq!(publishes, 60 / STREAM_PUBLISH_EVERY);
        assert_eq!(out.apply_ms.len(), 60);
        assert_eq!(out.removals, 1);
        assert_eq!(out.additions, 1);
        assert_eq!(out.row_patches, 58);
        assert!(
            out.session.garbage_fractions().0 <= STREAM_COMPACT_THRESHOLD
                && out.session.garbage_fractions().1 <= STREAM_COMPACT_THRESHOLD,
            "stream ended above the compaction threshold"
        );
    }

    #[test]
    fn parse_points_accepts_sorted_unique_lists() {
        assert_eq!(parse_points("600").unwrap(), vec![600]);
        assert_eq!(
            parse_points("600, 7500,15000").unwrap(),
            vec![600, 7500, 15000]
        );
    }

    #[test]
    fn parse_points_rejects_malformed_lists() {
        for (arg, needle) in [
            ("", "not a table count"),
            ("abc", "not a table count"),
            ("600,,7500", "not a table count"),
            ("0,600", "non-zero"),
            ("600,600", "duplicate point 600"),
            ("7500,600", "sorted ascending"),
        ] {
            let err = parse_points(arg).unwrap_err();
            assert!(
                err.contains(needle),
                "parse_points({arg:?}) → {err:?}, expected {needle:?}"
            );
        }
    }

    /// The stream is a pure function of (tables, deltas): two dumps of
    /// the same stream are byte-identical.
    #[test]
    fn stream_edge_dump_is_deterministic() {
        let a = post_stream_edge_dump(50, 50);
        let b = post_stream_edge_dump(50, 50);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
