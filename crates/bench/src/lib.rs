//! # mapsynth-bench
//!
//! Shared fixtures for the Criterion benchmarks. The benches map to
//! the paper's evaluation as follows:
//!
//! | Bench | Paper artifact |
//! |---|---|
//! | `fig7_quality` | Figure 7 — per-method synthesis quality workload |
//! | `fig8_runtime` | Figure 8 — per-method end-to-end runtime |
//! | `fig9_scalability` | Figure 9 — pipeline runtime vs corpus fraction |
//! | `micro_edit_distance` | Algorithm 2 ablation: banded vs bit-parallel Myers vs full DP, across length buckets |
//! | `micro_blocking` | §4.1 ablation: blocked vs all-pairs scoring |
//! | `micro_partition` | Algorithm 3: lazy-heap greedy merge |
//! | `micro_scoring` | §4.1 hot path: shared `ScoringContext` vs throwaway per-pair scoring |
//! | `apps_lookup` | §1 mapping-index containment lookup (Bloom) |

use mapsynth::delta::CorpusDelta;
use mapsynth_corpus::{Corpus, TableId};
use mapsynth_gen::procedural::ProceduralConfig;
use mapsynth_gen::webgen::WebCorpus;
use mapsynth_gen::{generate_web, WebConfig, WebTableStream};

/// The generator configuration behind every benchmark corpus —
/// [`bench_corpus`] and [`bench_stream`] share it, so the streamed and
/// materialized fixtures are the same corpus.
pub fn bench_config(tables: usize) -> WebConfig {
    WebConfig {
        tables,
        domains: (tables / 20).clamp(30, 200),
        procedural: ProceduralConfig {
            families: 20,
            temporal_families: 2,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A small deterministic web corpus for benchmarks.
pub fn bench_corpus(tables: usize) -> WebCorpus {
    generate_web(&bench_config(tables))
}

/// The benchmark corpus as a bounded-memory
/// [`TableSource`](mapsynth_corpus::TableSource): yields exactly the tables
/// [`bench_corpus`] materializes, one at a time, for the scale tier's
/// streaming runs.
pub fn bench_stream(tables: usize) -> WebTableStream {
    WebTableStream::new(bench_config(tables))
}

/// Peak resident-set size of this process in kibibytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable. A
/// monotone high-water mark: sampling it after each pipeline stage
/// shows which stage pushed the peak.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Append one table of `src` to `dst`, re-interning its strings (the
/// two corpora own separate interners).
pub fn append_table(dst: &mut Corpus, src: &Corpus, ti: usize) -> TableId {
    let t = &src.tables[ti];
    let name = &src.domain_names[t.domain.0 as usize];
    let d = dst.domain(name);
    let cols: Vec<(Option<&str>, Vec<&str>)> = t
        .columns
        .iter()
        .map(|c| {
            (
                c.header.map(|h| src.str_of(h)),
                c.values.iter().map(|&v| src.str_of(v)).collect(),
            )
        })
        .collect();
    dst.push_table(d, cols)
}

/// Format a compatibility graph's edge list (weights at 17 significant
/// digits) for byte-identity golden comparisons.
pub fn format_edges(graph: &mapsynth::CompatGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for &(a, b, w) in &graph.edges {
        writeln!(out, "{a} {b} {:.17e} {:.17e}", w.pos, w.neg).unwrap();
    }
    out
}

/// The post-delta golden dump: prepare a [`bench_corpus`] of `tables`
/// tables, apply the standard [`bench_delta`], and format the
/// resulting compatibility-graph edges. Committed under
/// `crates/bench/golden/` and byte-compared by
/// `pipeline_baseline --check` so any drift in the incremental path —
/// blocking, memo growth, count reuse — fails CI.
pub fn post_delta_edge_dump(tables: usize) -> String {
    use mapsynth::pipeline::{PipelineConfig, SynthesisSession};
    let mut wc = bench_corpus(tables);
    let mut session = SynthesisSession::new(PipelineConfig::default());
    session.prepare(&wc.corpus);
    let delta = bench_delta(&mut wc.corpus, tables);
    session.apply_delta(&wc.corpus, &delta);
    format_edges(&session.graph(&session.config().synthesis))
}

/// The standard incremental-update workload over a [`bench_corpus`] of
/// `tables` tables: remove `tables/40` spread tables and append the
/// same number of freshly generated ones (a "new crawl" of unseen
/// sites) — a ~5% churn. Deterministic; mutates `corpus` by appending
/// the new tables and returns the delta to apply.
pub fn bench_delta(corpus: &mut Corpus, tables: usize) -> CorpusDelta {
    let n = (tables / 40).max(1);
    let mut seen = std::collections::HashSet::new();
    let removed: Vec<TableId> = (0u32..)
        .map(|k| TableId((k * 53) % tables as u32))
        .filter(|t| seen.insert(*t))
        .take(n)
        .collect();
    let fresh = generate_web(&WebConfig {
        tables: n,
        domains: (n / 3).max(2),
        procedural: ProceduralConfig {
            families: 4,
            temporal_families: 0,
            ..Default::default()
        },
        ..Default::default()
    });
    let added: Vec<TableId> = (0..fresh.corpus.len())
        .map(|ti| append_table(corpus, &fresh.corpus, ti))
        .collect();
    CorpusDelta { added, removed }
}
