//! Crash-recovery bench tier: a deterministic kill-point sweep plus a
//! torn-write/corruption fault matrix over the serve-side persistence
//! layer ([`mapsynth_serve::Persistence`] + [`mapsynth_serve::recover`]).
//!
//! The harness proves the crash-safety contract end to end, at bench
//! scale and with exact, gateable counts:
//!
//! * **kill-point sweep** — a persisted delta stream is cut at chosen
//!   positions (right after the base archive, mid-WAL between
//!   publishes, on the final record). The ingestor's graceful shutdown
//!   deliberately leaves the same bytes on disk a `kill -9` would, so
//!   each cut *is* a kill state. Recovery from every cut must be
//!   observation-identical (served lookups, golden compatibility
//!   edges, live key set) to an uncrashed run over the same prefix.
//! * **corruption matrix** — a fully persisted directory is copied per
//!   cell and damaged in one specific way: the final WAL record torn
//!   mid-frame, the newest archive truncated at each frame boundary ±
//!   a partial record, single bits flipped in archive header / body /
//!   trailer, a crafted future-format-version header, whole
//!   generations deleted, a sealed WAL segment rotted. Every cell must
//!   either recover (falling back to an older generation where the
//!   newest is damaged) or fail with the exact typed
//!   [`PersistError`] — never a panic, never silently wrong data.

use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
use mapsynth_corpus::{crc32, Corpus, FrameError, FRAME_VERSION};
use mapsynth_serve::ingest::{DeltaIngestor, DeltaRequest, IngestorConfig, NoFaults, TableSpec};
use mapsynth_serve::{
    recover, IndexSnapshot, MappingService, PersistConfig, PersistError, Persistence, Recovered,
    WalTail,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::StreamRng;

/// Initial corpus size of the recovery tier.
pub const RECOVERY_TABLES: usize = 48;
/// Deltas driven through the persisted ingestor. Deliberately *not* a
/// multiple of the publish × archive cadence (8 × 3 = 24), so the full
/// run always leaves a replayable WAL tail past the last archive.
pub const RECOVERY_DELTAS: usize = 100;
/// Publish cadence of the recovery tier's ingestor.
pub const RECOVERY_PUBLISH_EVERY: usize = 8;
/// Archive roll cadence (in publishes).
pub const RECOVERY_ARCHIVE_EVERY: u64 = 3;
/// WAL segment rotation threshold (bytes) — small enough that the
/// stream rotates several times.
pub const RECOVERY_SEGMENT_BYTES: u64 = 8 * 1024;

/// Kill points of the sweep: immediately after the base archive
/// (empty WAL), one accepted record, mid-stream between publishes,
/// one short of the end, and the full stream.
pub fn kill_points() -> Vec<usize> {
    vec![
        0,
        1,
        RECOVERY_DELTAS / 2,
        RECOVERY_DELTAS - 1,
        RECOVERY_DELTAS,
    ]
}

/// What one corruption-matrix cell did to the directory and what
/// happened.
#[derive(Debug)]
pub struct MatrixCell {
    /// Cell label (stable across runs; drives the per-cell log line).
    pub label: String,
    /// Whether recovery succeeded.
    pub recovered: bool,
    /// Whether recovery had to fall back past the newest generation.
    pub fell_back: bool,
    /// Whether a torn final WAL record was truncated away.
    pub torn_repaired: bool,
    /// Whether mid-WAL corruption halted replay with a typed cause.
    pub wal_halted: bool,
    /// The typed error when recovery (correctly) refused, as a stable
    /// variant label.
    pub typed_error: Option<String>,
    /// Recovery wall-clock for this cell (ms).
    pub recover_ms: f64,
}

/// Everything the recovery tier produced.
pub struct RecoveryMatrixOutcome {
    /// Kill points swept (each proven observation-identical under
    /// `verify`).
    pub kill_points: usize,
    /// WAL records replayed across the sweep.
    pub sweep_replayed: u64,
    /// WAL records skipped (already archived) across the sweep.
    pub sweep_skipped: u64,
    /// Mean recovery latency across the sweep (ms).
    pub sweep_recover_ms: f64,
    /// Archive generations on disk after the full persisted run.
    pub full_generations: usize,
    /// WAL segment files on disk after the full persisted run.
    pub full_wal_segments: usize,
    /// Records the full run's clean recovery replayed.
    pub full_replayed: u64,
    /// Corruption-matrix cells run.
    pub cells: Vec<MatrixCell>,
}

impl RecoveryMatrixOutcome {
    /// Cells that recovered (possibly from an older generation).
    pub fn cells_recovered(&self) -> usize {
        self.cells.iter().filter(|c| c.recovered).count()
    }
    /// Cells that fell back past the newest archive generation.
    pub fn cells_fallback(&self) -> usize {
        self.cells.iter().filter(|c| c.fell_back).count()
    }
    /// Cells that failed with the expected typed error.
    pub fn cells_typed_errors(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.typed_error.is_some())
            .count()
    }
    /// Cells that repaired a torn final WAL record.
    pub fn cells_torn_repaired(&self) -> usize {
        self.cells.iter().filter(|c| c.torn_repaired).count()
    }
    /// Cells that halted WAL replay on mid-log corruption.
    pub fn cells_wal_halted(&self) -> usize {
        self.cells.iter().filter(|c| c.wal_halted).count()
    }
}

fn pipe_cfg() -> PipelineConfig {
    PipelineConfig {
        compact_threshold: crate::STREAM_COMPACT_THRESHOLD,
        ..PipelineConfig::default()
    }
}

fn ing_cfg() -> IngestorConfig {
    IngestorConfig {
        publish_every: RECOVERY_PUBLISH_EVERY,
        retry_base: Duration::from_micros(200),
        retry_cap: Duration::from_millis(2),
        ..IngestorConfig::default()
    }
}

fn persist_cfg(dir: &Path) -> PersistConfig {
    let mut cfg = PersistConfig::new(dir);
    cfg.segment_bytes = RECOVERY_SEGMENT_BYTES;
    cfg.archive_every_publishes = RECOVERY_ARCHIVE_EVERY;
    cfg.keep_generations = 2;
    cfg
}

/// The initial corpus plus its stable ingest keys (`0..tables`).
fn base_state() -> (Corpus, SynthesisSession, Vec<u64>) {
    let wc = crate::bench_corpus(RECOVERY_TABLES);
    let corpus = wc.corpus;
    let keys: Vec<u64> = (0..corpus.len() as u64).collect();
    let mut session = SynthesisSession::new(pipe_cfg());
    session.prepare(&corpus);
    (corpus, session, keys)
}

/// The deterministic delta stream: a pure function of
/// [`RECOVERY_DELTAS`]. Mostly adds (cloning a seed table's content
/// under a fresh domain with one table-unique row, so value overlap
/// keeps the synthesis graph connected), with a removal of an earlier
/// add every 9th position.
fn stream(corpus: &Corpus) -> Vec<DeltaRequest> {
    let mut rng = StreamRng::new(0x7ec0_4e59_5eed);
    let mut deltas = Vec::with_capacity(RECOVERY_DELTAS);
    let mut added: Vec<u64> = Vec::new();
    let mut removed_at = 0usize;
    for seq in 0..RECOVERY_DELTAS as u64 {
        if seq % 9 == 8 && removed_at < added.len() {
            let key = added[removed_at];
            removed_at += 1;
            deltas.push(DeltaRequest {
                remove: vec![key],
                ..Default::default()
            });
            continue;
        }
        let seed = &corpus.tables[rng.below(corpus.len())];
        let key = 1_000 + seq;
        let mut columns: Vec<(Option<String>, Vec<String>)> = seed
            .columns
            .iter()
            .map(|c| {
                (
                    c.header.map(|h| corpus.str_of(h).to_string()),
                    c.values
                        .iter()
                        .map(|&v| corpus.str_of(v).to_string())
                        .collect(),
                )
            })
            .collect();
        for (ci, (_, values)) in columns.iter_mut().enumerate() {
            values.push(format!("recrawl-{key}-{ci}"));
        }
        added.push(key);
        deltas.push(DeltaRequest {
            add: vec![TableSpec {
                key,
                domain: format!("recrawl-{seq}.example.org"),
                columns,
            }],
            ..Default::default()
        });
    }
    deltas
}

/// Drive the first `k` stream deltas through a persisted ingestor
/// rooted at `dir`, then shut down — leaving `dir` as the kill state.
fn run_persisted(dir: &Path, k: usize) -> (Arc<MappingService>, mapsynth_serve::IngestOutcome) {
    let (corpus, session, keys) = base_state();
    let deltas = stream(&corpus);
    let service = Arc::new(MappingService::new());
    let persistence = Persistence::create(persist_cfg(dir), 0).expect("init persistence");
    let ing = DeltaIngestor::spawn_with_persistence(
        session,
        corpus,
        &keys,
        Arc::clone(&service),
        ing_cfg(),
        Box::new(NoFaults),
        Some(persistence),
    )
    .expect("spawn persisted ingestor");
    for delta in deltas.into_iter().take(k) {
        ing.submit(delta);
    }
    let outcome = ing.shutdown();
    assert_eq!(outcome.stats.accepted, k as u64, "recovery stream is clean");
    assert_eq!(outcome.stats.wal_records, k as u64);
    assert_eq!(outcome.stats.persist_errors, 0, "no persistence failures");
    (service, outcome)
}

/// The uncrashed oracle over the same `k`-delta prefix (no
/// persistence).
fn run_oracle(k: usize) -> (Arc<MappingService>, mapsynth_serve::IngestOutcome) {
    let (corpus, session, keys) = base_state();
    let deltas = stream(&corpus);
    let service = Arc::new(MappingService::new());
    let ing = DeltaIngestor::spawn(
        session,
        corpus,
        &keys,
        Arc::clone(&service),
        ing_cfg(),
        Box::new(NoFaults),
    )
    .expect("spawn oracle ingestor");
    for delta in deltas.into_iter().take(k) {
        ing.submit(delta);
    }
    (service, ing.shutdown())
}

/// Golden edges of a state: fresh session on the live corpus (fresh
/// preparation is ID-stable, so identical content ⇒ identical bytes).
fn golden_edges(session: &SynthesisSession, corpus: &Corpus) -> String {
    let live = session.live_corpus(corpus);
    let mut fresh = SynthesisSession::new(session.config().clone());
    fresh.prepare(&live);
    let graph = fresh.graph(&fresh.config().synthesis);
    let mut edges: Vec<String> = graph
        .edges
        .iter()
        .map(|&(a, b, w)| format!("{a} {b} {:.17e} {:.17e}", w.pos, w.neg))
        .collect();
    edges.sort();
    edges.join("\n")
}

/// Content-level lookup observations (mapping ids excluded: an
/// incrementally patched snapshot and a one-shot rebuild number
/// mappings differently while serving the same translations).
fn lookups(snapshot: &IndexSnapshot, probes: &[String]) -> Vec<Vec<String>> {
    probes
        .iter()
        .map(|p| {
            let mut hits: Vec<String> = snapshot
                .lookup(p)
                .map(|h| h.translations().map(|(_, r)| r.to_string()).collect())
                .unwrap_or_default();
            hits.sort();
            hits
        })
        .collect()
}

/// Probe keys: a deterministic sample of initial-corpus values.
fn probe_keys(corpus: &Corpus) -> Vec<String> {
    corpus
        .tables
        .iter()
        .take(8)
        .flat_map(|t| t.columns.first())
        .flat_map(|c| c.values.iter().take(8))
        .map(|&v| corpus.str_of(v).to_string())
        .collect()
}

fn assert_equivalent(
    cell: &str,
    recovered: &Recovered,
    oracle_service: &MappingService,
    oracle: &mapsynth_serve::IngestOutcome,
    probes: &[String],
) {
    let mut a: Vec<u64> = recovered.key_of_table.keys().copied().collect();
    let mut b: Vec<u64> = oracle.key_of_table.keys().copied().collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "{cell}: live key set diverged");
    assert_eq!(
        golden_edges(&recovered.session, &recovered.corpus),
        golden_edges(&oracle.session, &oracle.corpus),
        "{cell}: golden edges diverged"
    );
    assert_eq!(
        lookups(&recovered.service.snapshot(), probes),
        lookups(&oracle_service.snapshot(), probes),
        "{cell}: served lookups diverged"
    );
    assert!(
        recovered.report.served_version >= recovered.report.archive_version,
        "{cell}: served version regressed below the archive's"
    );
}

/// Recursively copy a flat persistence directory.
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("create matrix cell dir");
    for entry in fs::read_dir(src).expect("read persistence dir") {
        let entry = entry.expect("dir entry");
        fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy cell file");
    }
}

fn sorted_files(dir: &Path, suffix: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| {
            let p = e.expect("entry").path();
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(suffix))
                .then_some(p)
        })
        .collect();
    out.sort();
    out
}

fn flip_byte(path: &Path, offset: u64) {
    let mut bytes = fs::read(path).expect("read file to corrupt");
    let at = (offset as usize).min(bytes.len() - 1);
    bytes[at] ^= 0x40;
    fs::write(path, bytes).expect("write corrupted file");
}

fn truncate_to(path: &Path, len: u64) {
    fs::OpenOptions::new()
        .write(true)
        .open(path)
        .expect("open file to truncate")
        .set_len(len)
        .expect("truncate");
}

/// Frame boundaries of a framed file: offsets right after the 16-byte
/// header and after each `len`-prefixed frame (trailer excluded).
fn frame_boundaries(path: &Path) -> Vec<u64> {
    let bytes = fs::read(path).expect("read framed file");
    let mut boundaries = vec![16u64];
    let mut at = 16usize;
    while at + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        if len == u32::MAX as usize {
            break; // trailer mark
        }
        let end = at + 4 + len + 4;
        if end > bytes.len() {
            break;
        }
        boundaries.push(end as u64);
        at = end;
    }
    boundaries
}

/// A stable label for the typed error a refused cell produced.
fn error_label(e: &PersistError) -> String {
    match e {
        PersistError::Io(_) => "io".into(),
        PersistError::Frame { error, .. } => format!("frame:{}", frame_label(error)),
        PersistError::Decode { .. } => "decode".into(),
        PersistError::Layout { .. } => "layout".into(),
        PersistError::NoArchive => "no_archive".into(),
        PersistError::AllArchivesCorrupt { .. } => "all_archives_corrupt".into(),
        PersistError::WalGap { .. } => "wal_gap".into(),
        PersistError::Replay { .. } => "replay".into(),
    }
}

fn frame_label(e: &FrameError) -> &'static str {
    match e {
        FrameError::Io(_) => "io",
        FrameError::BadMagic { .. } => "bad_magic",
        FrameError::VersionMismatch { .. } => "version_mismatch",
        FrameError::KindMismatch { .. } => "kind_mismatch",
        FrameError::HeaderCorrupt => "header_corrupt",
        FrameError::Truncated { .. } => "truncated",
        FrameError::OversizedFrame { .. } => "oversized",
        FrameError::ChecksumMismatch { .. } => "checksum_mismatch",
        FrameError::MissingTrailer { .. } => "missing_trailer",
        FrameError::TrailerMismatch { .. } => "trailer_mismatch",
    }
}

/// One corruption cell: copy the pristine directory, apply `damage`,
/// recover, and record what happened. Panics (the one hard "never") in
/// any cell fail the whole tier.
fn run_cell(
    pristine: &Path,
    scratch: &Path,
    label: &str,
    baseline_generation: u64,
    damage: impl FnOnce(&Path),
) -> (MatrixCell, Option<Recovered>) {
    let cell_dir = scratch.join(label.replace([' ', '/'], "_"));
    let _ = fs::remove_dir_all(&cell_dir);
    copy_dir(pristine, &cell_dir);
    damage(&cell_dir);
    let t = Instant::now();
    let result = recover(&cell_dir, pipe_cfg(), Resolver::Algorithm4);
    let recover_ms = t.elapsed().as_secs_f64() * 1e3;
    let cell = match &result {
        Ok(r) => MatrixCell {
            label: label.to_string(),
            recovered: true,
            fell_back: r.report.generation < baseline_generation || r.report.archives_tried > 1,
            torn_repaired: r.report.wal_tail == WalTail::Torn,
            wal_halted: r.report.wal_halted.is_some(),
            typed_error: None,
            recover_ms,
        },
        Err(e) => MatrixCell {
            label: label.to_string(),
            recovered: false,
            fell_back: false,
            torn_repaired: false,
            wal_halted: false,
            typed_error: Some(error_label(e)),
            recover_ms,
        },
    };
    let _ = fs::remove_dir_all(&cell_dir);
    (cell, result.ok())
}

/// Run the recovery tier: the kill-point sweep, then the corruption
/// matrix. With `verify`, every oracle equivalence and per-cell typed
/// expectation is asserted (the bench's `--check` mode); without it
/// only the structural invariants that double as counters run.
pub fn run_recovery_matrix(verify: bool) -> RecoveryMatrixOutcome {
    let scratch =
        std::env::temp_dir().join(format!("mapsynth-bench-recovery-{}", std::process::id()));
    let _ = fs::remove_dir_all(&scratch);
    fs::create_dir_all(&scratch).expect("create recovery scratch dir");
    let probes = probe_keys(&base_state().0);

    // ---- Kill-point sweep ----------------------------------------
    let points = kill_points();
    let mut sweep_replayed = 0u64;
    let mut sweep_skipped = 0u64;
    let mut sweep_ms = 0.0f64;
    let full_dir = scratch.join("full");
    let mut full_generations = 0usize;
    let mut full_wal_segments = 0usize;
    let mut full_replayed = 0u64;
    let mut full_baseline_generation = 0u64;
    for &k in &points {
        let dir = if k == RECOVERY_DELTAS {
            full_dir.clone()
        } else {
            scratch.join(format!("kill-{k}"))
        };
        run_persisted(&dir, k);
        let t = Instant::now();
        let recovered = recover(&dir, pipe_cfg(), Resolver::Algorithm4)
            .unwrap_or_else(|e| panic!("kill point {k}: recovery failed: {e}"));
        sweep_ms += t.elapsed().as_secs_f64() * 1e3;
        assert!(
            recovered.report.wal_halted.is_none(),
            "kill point {k}: clean WAL reported corrupt"
        );
        assert_eq!(
            recovered.report.next_seq,
            k as u64 + 1,
            "kill point {k}: next_seq resumes after the last accepted record"
        );
        sweep_replayed += recovered.report.wal_replayed;
        sweep_skipped += recovered.report.wal_skipped;
        if k == RECOVERY_DELTAS {
            full_generations = sorted_files(&dir, ".msa").len();
            full_wal_segments = sorted_files(&dir, ".mswal").len();
            full_replayed = recovered.report.wal_replayed;
            full_baseline_generation = recovered.report.generation;
        }
        if verify {
            let (oracle_service, oracle) = run_oracle(k);
            assert_equivalent(
                &format!("kill point {k}"),
                &recovered,
                &oracle_service,
                &oracle,
                &probes,
            );
        }
        if k != RECOVERY_DELTAS {
            let _ = fs::remove_dir_all(&dir);
        }
    }

    // The matrix needs room to fall back and a WAL tail to tear.
    assert!(
        full_generations >= 2,
        "archive cadence must retain ≥ 2 generations (got {full_generations})"
    );
    assert!(
        full_replayed >= 1,
        "full run must leave replayable WAL tail records (got {full_replayed})"
    );

    // ---- Corruption matrix ---------------------------------------
    let mut cells: Vec<MatrixCell> = Vec::new();
    let mut push = |cell: MatrixCell, expect: &str| {
        if verify {
            match cell.typed_error.as_deref() {
                Some(label) => assert_eq!(
                    label, expect,
                    "cell '{}' failed with the wrong typed error",
                    cell.label
                ),
                None => assert_eq!(
                    expect, "recovered",
                    "cell '{}' recovered where a typed error was expected",
                    cell.label
                ),
            }
        }
        cells.push(cell);
    };
    let gen0 = full_baseline_generation;

    // Cell: pristine copy — the matrix's control.
    let (cell, rec) = run_cell(&full_dir, &scratch, "control", gen0, |_| {});
    let control = rec.expect("control cell recovers");
    assert!(!cell.fell_back && !cell.torn_repaired && !cell.wal_halted);
    if verify {
        let (oracle_service, oracle) = run_oracle(RECOVERY_DELTAS);
        assert_equivalent(
            "matrix control",
            &control,
            &oracle_service,
            &oracle,
            &probes,
        );
    }
    push(cell, "recovered");

    // Cell: torn final WAL record (crash mid-append) — truncated away,
    // recovery lands one record short.
    let (cell, rec) = run_cell(&full_dir, &scratch, "wal torn tail", gen0, |d| {
        let segs = sorted_files(d, ".mswal");
        let last = segs.last().expect("wal segment present");
        // Cut 5 bytes into the *last record* (not merely the trailer,
        // if the segment happens to end sealed), so exactly one
        // record's bytes are incomplete.
        let end = *frame_boundaries(last).last().expect("wal record present");
        truncate_to(last, end - 5);
    });
    {
        let r = rec.expect("torn tail recovers");
        assert_eq!(r.report.wal_tail, WalTail::Torn, "torn tail detected");
        assert_eq!(
            r.report.wal_replayed,
            full_replayed - 1,
            "exactly the torn record is lost"
        );
        if verify {
            let (oracle_service, oracle) = run_oracle(RECOVERY_DELTAS - 1);
            assert_equivalent("torn tail", &r, &oracle_service, &oracle, &probes);
        }
    }
    push(cell, "recovered");

    // Cells: newest archive truncated at every frame boundary and just
    // past it (a partial record) — each falls back to the older
    // generation.
    let newest_archive = sorted_files(&full_dir, ".msa")
        .last()
        .expect("archive present")
        .clone();
    let boundaries = frame_boundaries(&newest_archive);
    for (i, &b) in boundaries.iter().enumerate() {
        let name = newest_archive.file_name().expect("file name").to_owned();
        let (cell, rec) = run_cell(
            &full_dir,
            &scratch,
            &format!("archive cut at frame boundary {i}"),
            gen0,
            |d| truncate_to(&d.join(&name), b),
        );
        assert!(
            rec.expect("boundary cut falls back").report.archives_tried > 1,
            "boundary cut must fall back"
        );
        push(cell, "recovered");

        let name = newest_archive.file_name().expect("file name").to_owned();
        let (cell, rec) = run_cell(
            &full_dir,
            &scratch,
            &format!("archive cut inside frame {i}"),
            gen0,
            |d| truncate_to(&d.join(&name), b + 3),
        );
        assert!(rec.is_some(), "partial-record cut falls back");
        push(cell, "recovered");
    }

    // Cells: single-bit damage in the newest archive's header, body,
    // and trailer — all detected, all fall back.
    let archive_len = fs::metadata(&newest_archive)
        .expect("archive metadata")
        .len();
    for (label, offset) in [
        ("archive header bitflip", 1u64),
        ("archive body bitflip", boundaries[0] + 12),
        ("archive trailer bitflip", archive_len - 2),
    ] {
        let name = newest_archive.file_name().expect("file name").to_owned();
        let (cell, rec) = run_cell(&full_dir, &scratch, label, gen0, |d| {
            flip_byte(&d.join(&name), offset);
        });
        let r = rec.unwrap_or_else(|| panic!("{label}: must fall back, not fail"));
        assert!(r.report.archives_tried > 1, "{label}: must fall back");
        push(cell, "recovered");
    }

    // Cell: crafted future-format-version header (valid CRC, higher
    // version) — refused as VersionMismatch, falls back.
    {
        let name = newest_archive.file_name().expect("file name").to_owned();
        let (cell, rec) = run_cell(&full_dir, &scratch, "archive future version", gen0, |d| {
            let path = d.join(&name);
            let mut bytes = fs::read(&path).expect("read archive");
            bytes[4..8].copy_from_slice(&(FRAME_VERSION + 1).to_le_bytes());
            let crc = crc32(&bytes[..12]);
            bytes[12..16].copy_from_slice(&crc.to_le_bytes());
            fs::write(&path, bytes).expect("re-stamp archive header");
        });
        let r = rec.expect("future version falls back");
        assert!(
            matches!(
                r.report.archive_errors.first(),
                Some((
                    _,
                    PersistError::Frame {
                        error: FrameError::VersionMismatch { .. },
                        ..
                    }
                ))
            ),
            "future version must be refused as VersionMismatch, got {:?}",
            r.report.archive_errors.first()
        );
        push(cell, "recovered");
    }

    // Cell: newest generation deleted outright — older one serves.
    {
        let name = newest_archive.file_name().expect("file name").to_owned();
        let (cell, rec) = run_cell(&full_dir, &scratch, "newest archive deleted", gen0, |d| {
            fs::remove_file(d.join(&name)).expect("delete newest archive");
        });
        let r = rec.expect("deletion falls back to the older generation");
        assert!(r.report.generation < gen0, "older generation must serve");
        push(cell, "recovered");
    }

    // Cell: every archive deleted — typed NoArchive, no panic.
    let (cell, _) = run_cell(&full_dir, &scratch, "all archives deleted", gen0, |d| {
        for p in sorted_files(d, ".msa") {
            fs::remove_file(p).expect("delete archive");
        }
    });
    push(cell, "no_archive");

    // Cell: every archive corrupted — typed AllArchivesCorrupt.
    let (cell, _) = run_cell(&full_dir, &scratch, "all archives corrupt", gen0, |d| {
        for p in sorted_files(d, ".msa") {
            flip_byte(&p, 20);
        }
    });
    push(cell, "all_archives_corrupt");

    // Cell: rot inside a sealed (non-final) WAL segment — recovery
    // serves the archive state and halts replay with the typed cause
    // instead of replaying past unverifiable records.
    {
        let segs = sorted_files(&full_dir, ".mswal");
        if segs.len() >= 2 {
            let name = segs[0].file_name().expect("file name").to_owned();
            let (cell, rec) = run_cell(&full_dir, &scratch, "sealed wal segment rot", gen0, |d| {
                let path = d.join(&name);
                let mid = fs::metadata(&path).expect("segment metadata").len() / 2;
                flip_byte(&path, mid);
            });
            let r = rec.expect("sealed-segment rot still recovers the archive state");
            assert!(
                r.report.wal_halted.is_some(),
                "sealed-segment rot must halt replay with a typed cause"
            );
            push(cell, "recovered");
        }
    }

    let _ = fs::remove_dir_all(&scratch);
    RecoveryMatrixOutcome {
        kill_points: points.len(),
        sweep_replayed,
        sweep_skipped,
        sweep_recover_ms: sweep_ms / points.len() as f64,
        full_generations,
        full_wal_segments,
        full_replayed,
        cells,
    }
}
