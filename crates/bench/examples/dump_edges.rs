//! Golden-output dump: the full edge list (weights at 17 significant
//! digits) of the bench-corpus compatibility graph, for byte-identity
//! verification across scoring refactors:
//!
//! ```text
//! git stash / checkout old rev
//! cargo run --release -p mapsynth-bench --example dump_edges /tmp/before.txt
//! git checkout new rev
//! cargo run --release -p mapsynth-bench --example dump_edges /tmp/after.txt
//! cmp /tmp/before.txt /tmp/after.txt
//! ```

use mapsynth::pipeline::{PipelineConfig, SynthesisSession};
use std::fmt::Write as _;

fn main() {
    let tables: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(600);
    let wc = mapsynth_bench::bench_corpus(tables);
    let mut session = SynthesisSession::new(PipelineConfig::default());
    session.prepare(&wc.corpus);
    let graph = session.graph(&session.config().synthesis);
    let mut out = String::new();
    for &(a, b, w) in &graph.edges {
        writeln!(out, "{a} {b} {:.17e} {:.17e}", w.pos, w.neg).unwrap();
    }
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "edges.txt".into());
    std::fs::write(&path, &out).unwrap();
    eprintln!("wrote {} edges to {path}", graph.edges.len());
}
