//! Golden-output dump: the full edge list (weights at 17 significant
//! digits) of the bench-corpus compatibility graph, for byte-identity
//! verification across scoring refactors:
//!
//! ```text
//! git stash / checkout old rev
//! cargo run --release -p mapsynth-bench --example dump_edges /tmp/before.txt
//! git checkout new rev
//! cargo run --release -p mapsynth-bench --example dump_edges /tmp/after.txt
//! cmp /tmp/before.txt /tmp/after.txt
//! ```
//!
//! With a trailing `--delta` argument the dump is taken **after**
//! applying the standard 5% incremental delta
//! (`mapsynth_bench::bench_delta`) through `session.apply_delta` —
//! the committed golden file `crates/bench/golden/delta_edges_200.txt`
//! is this mode at 200 tables, regenerated via:
//!
//! ```text
//! cargo run --release -p mapsynth-bench --example dump_edges -- \
//!     crates/bench/golden/delta_edges_200.txt 200 --delta
//! ```
//!
//! With a trailing `--stream` argument the dump is taken **after**
//! the full sustained row-delta stream
//! (`mapsynth_bench::run_delta_stream`: `STREAM_DELTAS` row patches,
//! table churn and compactions) — the committed golden file
//! `crates/bench/golden/delta_stream_edges_200.txt` is this mode at
//! `STREAM_TABLES` tables, regenerated via:
//!
//! ```text
//! cargo run --release -p mapsynth-bench --example dump_edges -- \
//!     crates/bench/golden/delta_stream_edges_200.txt 200 --stream
//! ```
//!
//! With a trailing `--faults` argument the dump is taken **after**
//! the deterministic fault-injection stream
//! (`mapsynth_bench::fault::run_fault_stream`: malformed deltas,
//! induced apply panics and publish failures at planned positions,
//! each rejected delta rolled back) — the committed golden file
//! `crates/bench/golden/fault_stream_edges_100.txt` is this mode at
//! `FAULT_STREAM_TABLES` tables, regenerated via:
//!
//! ```text
//! cargo run --release -p mapsynth-bench --example dump_edges -- \
//!     crates/bench/golden/fault_stream_edges_100.txt 100 --faults
//! ```

use mapsynth::pipeline::{PipelineConfig, SynthesisSession};
use mapsynth_bench::fault::{post_fault_stream_edge_dump, FAULT_STREAM_DELTAS};
use mapsynth_bench::{bench_delta, format_edges, post_stream_edge_dump, STREAM_DELTAS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tables: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(600);
    let delta_mode = args.iter().any(|a| a == "--delta");
    let stream_mode = args.iter().any(|a| a == "--stream");
    let fault_mode = args.iter().any(|a| a == "--faults");
    let path = args.first().cloned().unwrap_or_else(|| "edges.txt".into());

    let (out, edges, label) = if fault_mode {
        let out = post_fault_stream_edge_dump(tables, FAULT_STREAM_DELTAS);
        let edges = out.lines().count();
        (out, edges, " (post-fault-stream)")
    } else if stream_mode {
        let out = post_stream_edge_dump(tables, STREAM_DELTAS);
        let edges = out.lines().count();
        (out, edges, " (post-stream)")
    } else {
        let mut wc = mapsynth_bench::bench_corpus(tables);
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&wc.corpus);
        if delta_mode {
            let delta = bench_delta(&mut wc.corpus, tables);
            session
                .apply_delta(&wc.corpus, &delta)
                .expect("valid delta");
        }
        let graph = session.graph(&session.config().synthesis);
        let out = format_edges(&graph);
        (
            out,
            graph.edges.len(),
            if delta_mode { " (post-delta)" } else { "" },
        )
    };
    std::fs::write(&path, &out).unwrap();
    eprintln!("wrote {edges} edges to {path}{label}");
}
