//! Figure 7 workload: per-method synthesis over a fixed corpus.
//!
//! Times what each method does *after* shared preprocessing — the
//! quality numbers themselves come from `experiments comparison`; this
//! bench tracks the cost of the aggregation stage per method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapsynth::pipeline::Resolver;
use mapsynth::SynthesisConfig;
use mapsynth_baselines::correlation::{correlation_from_scores, CorrelationConfig};
use mapsynth_baselines::schema_cc::{schema_cc_from_scores, SchemaCcConfig};
use mapsynth_baselines::union::{union_tables, UnionScope};
use mapsynth_bench::bench_corpus;
use mapsynth_eval::PreparedWeb;

fn fig7(c: &mut Criterion) {
    let prepared = PreparedWeb::prepare(bench_corpus(600), 0.5, 0);
    let mut g = c.benchmark_group("fig7_methods");
    g.sample_size(10);

    g.bench_function(BenchmarkId::new("method", "Synthesis"), |b| {
        b.iter(|| prepared.run_synthesis(&SynthesisConfig::default(), Resolver::Algorithm4))
    });
    g.bench_function(BenchmarkId::new("method", "SynthesisPos"), |b| {
        b.iter(|| {
            prepared.run_synthesis(
                &SynthesisConfig::default().without_negative(),
                Resolver::Algorithm4,
            )
        })
    });
    g.bench_function(BenchmarkId::new("method", "SchemaCC"), |b| {
        b.iter(|| {
            schema_cc_from_scores(
                prepared.space(),
                prepared.tables(),
                prepared.scored(),
                &SchemaCcConfig::default(),
            )
        })
    });
    g.bench_function(BenchmarkId::new("method", "Correlation"), |b| {
        b.iter(|| {
            correlation_from_scores(
                prepared.space(),
                prepared.tables(),
                prepared.scored(),
                &CorrelationConfig::default(),
            )
        })
    });
    g.bench_function(BenchmarkId::new("method", "UnionWeb"), |b| {
        b.iter(|| {
            union_tables(
                &prepared.corpus,
                prepared.candidates(),
                prepared.space(),
                prepared.tables(),
                UnionScope::Web,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
