//! §1 "why pre-compute mappings": containment lookup against the
//! materialized mapping index (Bloom prefilter + hash maps) — the
//! simple, scalable runtime the paper contrasts with online corpus
//! reasoning.

use criterion::{criterion_group, criterion_main, Criterion};
use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_apps::MappingIndex;
use mapsynth_bench::bench_corpus;

fn lookup(c: &mut Criterion) {
    let wc = bench_corpus(400);
    let out = Pipeline::new(PipelineConfig::default()).run(&wc.corpus);
    let index = MappingIndex::build(&out.mappings);

    let present: Vec<&str> = vec!["united states", "canada", "japan", "germany", "france"];
    let absent: Vec<&str> = vec!["zzz-1", "zzz-2", "zzz-3", "zzz-4", "zzz-5"];

    let mut g = c.benchmark_group("mapping_index");
    g.bench_function("rank_by_containment_present", |b| {
        b.iter(|| index.rank_by_containment(&present))
    });
    g.bench_function("rank_by_containment_absent", |b| {
        b.iter(|| index.rank_by_containment(&absent))
    });
    let handle = &index.mappings[0];
    let values: Vec<String> = present.iter().map(|s| s.to_string()).collect();
    g.bench_function("coverage_bloom_prefilter", |b| {
        b.iter(|| handle.coverage(&values))
    });
    g.finish();
}

criterion_group!(benches, lookup);
criterion_main!(benches);
