//! Algorithm 2 ablation: bounded edit-distance kernels.
//!
//! Two axes. `edit_distance` is the original banded-vs-full-matrix
//! comparison (the paper's point: with small thresholds the bounded
//! check is affordable at corpus scale). `kernel_lengths` compares the
//! **banded DP** against the **bit-parallel Myers** kernel across
//! pattern-length buckets — including lengths past one 64-bit block —
//! at the production bound (`k_ed = 10`); the two return identical
//! distances, so the only question is wall-clock per length regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapsynth_text::{
    edit_distance_full, edit_distance_within, edit_distance_within_banded,
    edit_distance_within_myers,
};

fn pairs(n: usize) -> Vec<(String, String)> {
    (0..n)
        .map(|i| {
            (
                format!("korea republic of number {i} extended name"),
                format!("korea repulbic of number {i} extended names"),
            )
        })
        .collect()
}

/// Typo'd pairs whose sides are ~`len` chars: a shared stem with a
/// transposition plus per-pair distinct tails, so the kernels do real
/// work (no trivial early accept/reject).
fn bucket_pairs(len: usize, n: usize) -> Vec<(String, String)> {
    (0..n)
        .map(|i| {
            let stem: String = (0..len)
                .map(|k| char::from(b'a' + ((k + i) % 9) as u8))
                .collect();
            let mut swapped: Vec<char> = stem.chars().collect();
            let mid = len / 2;
            swapped.swap(mid, mid - 1);
            (stem, swapped.into_iter().collect())
        })
        .collect()
}

fn edit_distance(c: &mut Criterion) {
    let data = pairs(200);
    let mut g = c.benchmark_group("edit_distance");
    for bound in [2u32, 5, 10] {
        g.bench_with_input(BenchmarkId::new("banded", bound), &bound, |b, &bound| {
            b.iter(|| {
                data.iter()
                    .filter(|(x, y)| edit_distance_within_banded(x, y, bound).is_some())
                    .count()
            })
        });
        g.bench_with_input(BenchmarkId::new("myers", bound), &bound, |b, &bound| {
            b.iter(|| {
                data.iter()
                    .filter(|(x, y)| edit_distance_within_myers(x, y, bound).is_some())
                    .count()
            })
        });
    }
    g.bench_function("full_dp", |b| {
        b.iter(|| {
            data.iter()
                .map(|(x, y)| edit_distance_full(x, y))
                .sum::<u32>()
        })
    });
    g.finish();
}

fn kernel_lengths(c: &mut Criterion) {
    const BOUND: u32 = 10; // the paper's k_ed cap
    let mut g = c.benchmark_group("kernel_lengths");
    // 12/24: the value lengths matching actually sees. 56/64: the
    // single-word ceiling. 96/192: multi-block Myers territory.
    for len in [12usize, 24, 56, 64, 96, 192] {
        let data = bucket_pairs(len, 200);
        g.bench_with_input(BenchmarkId::new("banded", len), &len, |b, _| {
            b.iter(|| {
                data.iter()
                    .map(|(x, y)| edit_distance_within_banded(x, y, BOUND).unwrap_or(BOUND + 1))
                    .sum::<u32>()
            })
        });
        g.bench_with_input(BenchmarkId::new("myers", len), &len, |b, _| {
            b.iter(|| {
                data.iter()
                    .map(|(x, y)| edit_distance_within_myers(x, y, BOUND).unwrap_or(BOUND + 1))
                    .sum::<u32>()
            })
        });
        g.bench_with_input(BenchmarkId::new("dispatch", len), &len, |b, _| {
            b.iter(|| {
                data.iter()
                    .map(|(x, y)| edit_distance_within(x, y, BOUND).unwrap_or(BOUND + 1))
                    .sum::<u32>()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, edit_distance, kernel_lengths);
criterion_main!(benches);
