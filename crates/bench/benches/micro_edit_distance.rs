//! Algorithm 2 ablation: banded edit distance vs full-matrix DP.
//! The paper's point: with small thresholds, the banded DP makes
//! approximate matching affordable at corpus scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapsynth_text::{edit_distance_full, edit_distance_within};

fn pairs(n: usize) -> Vec<(String, String)> {
    (0..n)
        .map(|i| {
            (
                format!("korea republic of number {i} extended name"),
                format!("korea repulbic of number {i} extended names"),
            )
        })
        .collect()
}

fn edit_distance(c: &mut Criterion) {
    let data = pairs(200);
    let mut g = c.benchmark_group("edit_distance");
    for bound in [2u32, 5, 10] {
        g.bench_with_input(BenchmarkId::new("banded", bound), &bound, |b, &bound| {
            b.iter(|| {
                data.iter()
                    .filter(|(x, y)| edit_distance_within(x, y, bound).is_some())
                    .count()
            })
        });
    }
    g.bench_function("full_dp", |b| {
        b.iter(|| {
            data.iter()
                .map(|(x, y)| edit_distance_full(x, y))
                .sum::<u32>()
        })
    });
    g.finish();
}

criterion_group!(benches, edit_distance);
criterion_main!(benches);
