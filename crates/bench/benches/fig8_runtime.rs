//! Figure 8 workload: end-to-end pipeline runtime (extraction through
//! conflict resolution) — the Synthesis bar of the paper's runtime
//! comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_bench::bench_corpus;

fn fig8(c: &mut Criterion) {
    let wc = bench_corpus(600);
    let mut g = c.benchmark_group("fig8_pipeline");
    g.sample_size(10);
    g.bench_function("end_to_end", |b| {
        let pipeline = Pipeline::new(PipelineConfig::default());
        b.iter(|| pipeline.run(&wc.corpus))
    });
    g.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
