//! Figure 8 workload: end-to-end pipeline runtime (extraction through
//! conflict resolution) — the Synthesis bar of the paper's runtime
//! comparison — plus the staged-engine split: the cost of a full run
//! vs. the cost of one more variant off cached stage artifacts.

use criterion::{criterion_group, criterion_main, Criterion};
use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
use mapsynth_bench::bench_corpus;

fn fig8(c: &mut Criterion) {
    let wc = bench_corpus(600);
    let mut g = c.benchmark_group("fig8_pipeline");
    g.sample_size(10);
    g.bench_function("end_to_end", |b| {
        b.iter(|| SynthesisSession::new(PipelineConfig::default()).run(&wc.corpus))
    });
    g.finish();

    // The staged split: stages 1–3 once, then each additional variant
    // reuses the artifacts (the reuse the eval harness leans on).
    let mut session = SynthesisSession::new(PipelineConfig::default());
    session.prepare(&wc.corpus);
    let base = session.config().synthesis;
    let mut g = c.benchmark_group("fig8_staged");
    g.sample_size(10);
    g.bench_function("variant_from_artifacts", |b| {
        b.iter(|| session.synthesize(&base, Resolver::Algorithm4))
    });
    g.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
