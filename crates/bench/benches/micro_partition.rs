//! Algorithm 3 micro-bench: lazy-heap greedy partitioning, global vs
//! divide-and-conquer by connected components (Appendix F).

use criterion::{criterion_group, criterion_main, Criterion};
use mapsynth::partition::{greedy_partition, partition_by_components};
use mapsynth::SynthesisConfig;
use mapsynth_bench::bench_corpus;
use mapsynth_eval::PreparedWeb;
use mapsynth_mapreduce::MapReduce;

fn partition(c: &mut Criterion) {
    let prepared = PreparedWeb::prepare(bench_corpus(600), 0.5, 0);
    let cfg = SynthesisConfig {
        theta_edge: 0.5,
        ..Default::default()
    };
    // The session's cached score artifact feeds the variant graph.
    let graph = prepared.session.graph(&cfg);
    let mr = MapReduce::default();

    let mut g = c.benchmark_group("partition");
    g.sample_size(20);
    g.bench_function("greedy_global", |b| {
        b.iter(|| greedy_partition(&graph, &cfg))
    });
    g.bench_function("greedy_by_components", |b| {
        b.iter(|| partition_by_components(&graph, &cfg, &mr))
    });
    g.finish();
}

criterion_group!(benches, partition);
criterion_main!(benches);
