//! Algorithm 3 micro-bench: lazy-heap greedy partitioning, global vs
//! divide-and-conquer by connected components (Appendix F).

use criterion::{criterion_group, criterion_main, Criterion};
use mapsynth::graph::graph_from_scores;
use mapsynth::partition::{greedy_partition, partition_by_components};
use mapsynth::SynthesisConfig;
use mapsynth_baselines::score_candidate_pairs;
use mapsynth_bench::bench_corpus;
use mapsynth_eval::PreparedWeb;
use mapsynth_mapreduce::MapReduce;

fn partition(c: &mut Criterion) {
    let prepared = PreparedWeb::prepare(bench_corpus(600), 0.5, 0);
    let scored = score_candidate_pairs(&prepared.space, &prepared.tables, &prepared.mr);
    let cfg = SynthesisConfig {
        theta_edge: 0.5,
        ..Default::default()
    };
    let graph = graph_from_scores(prepared.tables.len(), &scored, &cfg);
    let mr = MapReduce::default();

    let mut g = c.benchmark_group("partition");
    g.sample_size(20);
    g.bench_function("greedy_global", |b| {
        b.iter(|| greedy_partition(&graph, &cfg))
    });
    g.bench_function("greedy_by_components", |b| {
        b.iter(|| partition_by_components(&graph, &cfg, &mr))
    });
    g.finish();
}

criterion_group!(benches, partition);
criterion_main!(benches);
