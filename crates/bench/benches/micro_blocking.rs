//! §4.1 efficiency ablation: blocked candidate generation vs the
//! all-pairs comparison it avoids. The paper's inverted-index
//! re-grouping is what makes pairwise scoring feasible.

use criterion::{criterion_group, criterion_main, Criterion};
use mapsynth::blocking::candidate_pairs;
use mapsynth::compat::ScoringContext;
use mapsynth::values::build_value_space;
use mapsynth::SynthesisConfig;
use mapsynth_bench::bench_corpus;
use mapsynth_extract::{extract_candidates, ExtractionConfig};
use mapsynth_mapreduce::MapReduce;

fn blocking(c: &mut Criterion) {
    let wc = bench_corpus(400);
    let mr = MapReduce::default();
    let (cands, _) = extract_candidates(&wc.corpus, &ExtractionConfig::default(), &mr);
    let feed = wc.registry.partial_synonym_feed(0.5, 11);
    let (space, tables) = build_value_space(&wc.corpus.interner, &cands, &feed, &mr);
    let cfg = SynthesisConfig::default();

    let ctx = ScoringContext::build(&space, &tables, &cfg, &mr);

    let mut g = c.benchmark_group("blocking");
    g.sample_size(10);
    g.bench_function("blocked_pairs", |b| {
        b.iter(|| candidate_pairs(&space, &tables, &cfg, &mr))
    });
    // All-pairs scoring on a small subset to keep the bench bounded;
    // the quadratic shape is the point (both paths share the context,
    // so the gap measured is pair count, not per-pair setup).
    let k = tables.len().min(150);
    g.bench_function("all_pairs_scoring_150", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..k as u32 {
                for j in (i + 1)..k as u32 {
                    total += ctx.score_pair(&space, i, j).pos;
                }
            }
            total
        })
    });
    let (pairs, _) = candidate_pairs(&space, &tables, &cfg, &mr);
    g.bench_function("blocked_scoring_all", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(a, b2)| ctx.score_pair(&space, a, b2).pos)
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, blocking);
criterion_main!(benches);
