//! Figure 9 workload: pipeline runtime at growing input fractions.
//! The paper reports near-linear scaling thanks to edge sparsity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_bench::bench_corpus;
use mapsynth_eval::experiments::scalability::subsample;

fn fig9(c: &mut Criterion) {
    let wc = bench_corpus(800);
    let mut g = c.benchmark_group("fig9_scalability");
    g.sample_size(10);
    for pct in [20usize, 60, 100] {
        let k = wc.corpus.len() * pct / 100;
        let sub = subsample(&wc.corpus, k);
        g.throughput(Throughput::Elements(k as u64));
        g.bench_with_input(BenchmarkId::new("input_pct", pct), &sub, |b, sub| {
            let pipeline = Pipeline::new(PipelineConfig::default());
            b.iter(|| pipeline.run(sub))
        });
    }
    g.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
