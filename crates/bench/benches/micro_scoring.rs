//! Scoring hot-path ablation (paper §4.1 / Algorithm 2): the shared
//! [`ScoringContext`] — prebuilt sorted table views + the one-shot
//! approximate-match memo — versus the throwaway per-pair path that
//! rebuilds indexes and re-runs banded edit distance for every scored
//! table pair.

use criterion::{criterion_group, criterion_main, Criterion};
use mapsynth::blocking::candidate_pairs;
use mapsynth::compat::{match_counts, ScoringContext};
use mapsynth::graph::build_graph;
use mapsynth::values::build_value_space;
use mapsynth::SynthesisConfig;
use mapsynth_bench::bench_corpus;
use mapsynth_extract::{extract_candidates, ExtractionConfig};
use mapsynth_mapreduce::MapReduce;

fn scoring(c: &mut Criterion) {
    let wc = bench_corpus(400);
    let mr = MapReduce::default();
    let (cands, _) = extract_candidates(&wc.corpus, &ExtractionConfig::default(), &mr);
    let feed = wc.registry.partial_synonym_feed(0.5, 11);
    let (space, tables) = build_value_space(&wc.corpus.interner, &cands, &feed, &mr);
    let cfg = SynthesisConfig::default();
    let (pairs, _) = candidate_pairs(&space, &tables, &cfg, &mr);
    let ctx = ScoringContext::build(&space, &tables, &cfg, &mr);

    // Report the similarity-join filter funnel once: of the candidate
    // pairs the length window admits, how many each signature stage
    // rejects before the edit-distance kernel runs at all.
    let m = ctx.build_stats.memo;
    let rejected = m.sig_mask_rejects + m.sig_hist_rejects;
    eprintln!(
        "memo filter funnel: {} window candidates → mask −{} → histogram −{} → {} kernel calls \
         ({:.1}% pruned before DP), {} matched",
        m.candidate_pairs,
        m.sig_mask_rejects,
        m.sig_hist_rejects,
        m.dp_calls,
        100.0 * rejected as f64 / m.candidate_pairs.max(1) as f64,
        m.matched_pairs,
    );

    let mut g = c.benchmark_group("scoring");
    g.sample_size(10);
    // One-time cost: per-table views + the length-bucketed memo pass.
    g.bench_function("context_build", |b| {
        b.iter(|| ScoringContext::build(&space, &tables, &cfg, &mr).len())
    });
    // The production shape: every blocked pair counted off the shared
    // context (merge-join + memo lookups, no DP).
    g.bench_function("match_counts_all_blocked", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(x, y)| ctx.counts(&space, x, y).overlap as u64)
                .sum::<u64>()
        })
    });
    // The anti-pattern the shared context exists to avoid: per-pair
    // state rebuild. `match_counts` constructs a throwaway two-table
    // context (views + a fresh memo pass over the value space) on
    // every call — not the literal pre-rewrite loop (that survives
    // only as the test oracle), but the same per-pair-setup shape.
    // Bounded to 200 pairs to keep the bench affordable — the
    // per-pair gap vs the shared context is the point.
    let k = pairs.len().min(200);
    g.bench_function("match_counts_throwaway_200", |b| {
        b.iter(|| {
            pairs[..k]
                .iter()
                .map(|&(x, y)| {
                    match_counts(&space, &tables[x as usize], &tables[y as usize], &cfg).overlap
                        as u64
                })
                .sum::<u64>()
        })
    });
    // End to end: blocking + context build + scoring + filter.
    g.bench_function("build_graph", |b| {
        b.iter(|| build_graph(&space, &tables, &cfg, &mr).edges.len())
    });
    g.finish();
}

criterion_group!(benches, scoring);
criterion_main!(benches);
