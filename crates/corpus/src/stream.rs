//! Streaming access to a table corpus.
//!
//! The batch pipeline materializes every [`Table`] of a [`Corpus`] in
//! memory before extraction starts. At web scale (the paper's 100M-table
//! setting, our 30k-table bench tier) the raw tables dominate peak
//! memory even though extraction only ever looks at one table at a
//! time. A [`TableSource`] decouples *production* of tables from their
//! *consumption*: extraction pulls tables one by one (or in small
//! batches for parallelism), accumulates its per-table statistics
//! incrementally, and lets each raw table be dropped as soon as it has
//! been scanned. Only the shared [`Interner`] — whose size tracks the
//! number of *distinct* strings, which saturates long before the table
//! count does — is retained across the whole pass.
//!
//! Extraction needs two passes (one to build the value index and
//! co-occurrence statistics, one to enumerate candidate pairs), so a
//! source must be [`rewind`](TableSource::rewind)-able: after a rewind
//! it re-yields the *identical* table sequence, with identical
//! [`Sym`](crate::Sym) assignments (the interner is append-only and
//! deduplicating, so re-interning the same strings is a no-op).

use crate::intern::Interner;
use crate::table::{Corpus, Table};

/// A rewindable, bounded-memory producer of corpus tables.
///
/// Implementations own the [`Interner`] that resolves the `Sym`s in the
/// tables they yield. Table ids must be dense and ascending:
/// `TableId(0), TableId(1), …` in yield order, identical on every pass.
pub trait TableSource {
    /// Total number of tables this source will yield per pass. Known up
    /// front so consumers can size per-table accumulators without
    /// buffering the tables themselves.
    fn table_count(&self) -> usize;

    /// The interner resolving symbols in yielded tables. Grows as
    /// tables are produced; symbols already yielded stay valid.
    fn interner(&self) -> &Interner;

    /// Names of provenance domains, indexed by `DomainId`. Like the
    /// interner this may still be growing while tables are produced.
    fn domain_names(&self) -> &[String];

    /// Produce the next table, or `None` at end of pass.
    fn next_table(&mut self) -> Option<Table>;

    /// Reset to the start. The next pass must yield the same tables
    /// (ids, domains, symbols) as the previous one.
    fn rewind(&mut self);

    /// Pull up to `max` tables. Returns an empty vector at end of pass.
    fn next_batch(&mut self, max: usize) -> Vec<Table> {
        let mut out = Vec::with_capacity(max.min(64));
        while out.len() < max {
            match self.next_table() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        out
    }

    /// Drain the source into a materialized [`Corpus`].
    ///
    /// The interner and domain names are cloned at end of pass, so the
    /// resulting corpus is self-contained and bit-identical to what a
    /// batch producer would have built.
    fn collect_corpus(&mut self) -> Corpus
    where
        Self: Sized,
    {
        let mut tables = Vec::with_capacity(self.table_count());
        while let Some(t) = self.next_table() {
            tables.push(t);
        }
        let mut interner = Interner::with_capacity(self.interner().len());
        for (_, s) in self.interner().iter() {
            interner.intern(s);
        }
        Corpus {
            interner,
            tables,
            domain_names: self.domain_names().to_vec(),
        }
    }
}

/// Adapter presenting an existing in-memory [`Corpus`] as a
/// [`TableSource`]. Tables are cloned on demand; the clone is the
/// consumer's to drop, so the *transient* footprint is one table (or
/// one batch) even though the borrowed corpus itself stays resident.
///
/// This exists so every consumer can be written once against
/// [`TableSource`] and still accept a materialized corpus; the memory
/// win comes from sources that generate or parse tables on the fly
/// (e.g. the web-corpus generator's streaming mode).
pub struct CorpusStream<'a> {
    corpus: &'a Corpus,
    next: usize,
}

impl<'a> CorpusStream<'a> {
    /// Stream over `corpus` from the first table.
    pub fn new(corpus: &'a Corpus) -> Self {
        Self { corpus, next: 0 }
    }
}

impl TableSource for CorpusStream<'_> {
    fn table_count(&self) -> usize {
        self.corpus.tables.len()
    }

    fn interner(&self) -> &Interner {
        &self.corpus.interner
    }

    fn domain_names(&self) -> &[String] {
        &self.corpus.domain_names
    }

    fn next_table(&mut self) -> Option<Table> {
        let t = self.corpus.tables.get(self.next)?.clone();
        self.next += 1;
        Some(t)
    }

    fn rewind(&mut self) {
        self.next = 0;
    }
}

impl Corpus {
    /// A streaming view over this corpus's tables.
    pub fn stream(&self) -> CorpusStream<'_> {
        CorpusStream::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Corpus {
        let mut c = Corpus::new();
        let d = c.domain("a.org");
        c.push_table(d, vec![(Some("x"), vec!["1", "2"])]);
        let d2 = c.domain("b.org");
        c.push_table(d2, vec![(None, vec!["3"])]);
        c.push_table(d, vec![(Some("y"), vec!["4", "5", "6"])]);
        c
    }

    #[test]
    fn stream_yields_all_tables_in_order() {
        let c = sample();
        let mut s = c.stream();
        assert_eq!(s.table_count(), 3);
        let mut ids = Vec::new();
        while let Some(t) = s.next_table() {
            ids.push(t.id.0);
        }
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(s.next_table().is_none());
    }

    #[test]
    fn rewind_replays_identically() {
        let c = sample();
        let mut s = c.stream();
        let first: Vec<Table> = std::iter::from_fn(|| s.next_table()).collect();
        s.rewind();
        let second: Vec<Table> = std::iter::from_fn(|| s.next_table()).collect();
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.columns.len(), b.columns.len());
            for (ca, cb) in a.columns.iter().zip(&b.columns) {
                assert_eq!(ca.header, cb.header);
                assert_eq!(ca.values, cb.values);
            }
        }
    }

    #[test]
    fn next_batch_chunks_and_terminates() {
        let c = sample();
        let mut s = c.stream();
        assert_eq!(s.next_batch(2).len(), 2);
        assert_eq!(s.next_batch(2).len(), 1);
        assert!(s.next_batch(2).is_empty());
    }

    #[test]
    fn collect_corpus_roundtrips() {
        let c = sample();
        let mut s = c.stream();
        let out = s.collect_corpus();
        assert_eq!(out.len(), c.len());
        assert_eq!(out.domain_names, c.domain_names);
        assert_eq!(out.interner.len(), c.interner.len());
        for (a, b) in c.tables.iter().zip(&out.tables) {
            assert_eq!(a.id, b.id);
            for (ca, cb) in a.columns.iter().zip(&b.columns) {
                assert_eq!(ca.values, cb.values);
            }
        }
    }
}
