//! # mapsynth-corpus
//!
//! The table-corpus substrate for the `mapsynth` workspace: an in-memory
//! model of a heterogeneous corpus of relational tables (web tables or
//! enterprise spreadsheets), together with the statistics the synthesis
//! pipeline needs:
//!
//! * a [`Interner`] mapping cell strings to compact [`Sym`] ids,
//! * [`Table`]/[`Column`]/[`Corpus`] containers with provenance
//!   (originating web domain),
//! * a [`ValueIndex`] inverted index from values to the columns that
//!   contain them,
//! * PMI / NPMI co-occurrence statistics and column coherence scores
//!   (paper §3.1, Equations 1–2),
//! * the [`BinaryTable`] candidate type produced by extraction and
//!   consumed by synthesis.
//!
//! The corpus is the *only* input to the synthesis problem (paper
//! Definition 3): `T = {T}` where each table is a set of columns.
//!
//! ```
//! use mapsynth_corpus::Corpus;
//!
//! let mut corpus = Corpus::new();
//! let d = corpus.domain("example.org");
//! let t = corpus.push_table(d, vec![
//!     (Some("country"), vec!["United States", "Canada"]),
//!     (Some("code"), vec!["USA", "CAN"]),
//! ]);
//! assert_eq!(corpus.len(), 1);
//! assert_eq!(corpus.total_columns(), 2);
//! // Cells are interned: the table stores compact `Sym` ids.
//! let sym = corpus.table(t).columns[1].values[0];
//! assert_eq!(corpus.str_of(sym), "USA");
//! ```

// The corpus layer underpins the durable persistence formats: library
// code must degrade to typed errors, never panic, on rotten input.
// Unit tests are exempt (they assert with unwrap freely).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod binary;
pub mod index;
pub mod intern;
pub mod io;
pub mod sketch;
pub mod stats;
pub mod stream;
pub mod table;

pub use binary::{
    crc32, read_sealed, wire, BinaryId, BinaryTable, FrameError, FrameReader, FrameTail,
    FrameWriter, SpillReader, SpillWriter, FRAME_VERSION, MAX_FRAME_LEN,
};
pub use index::{GlobalColId, ValueIndex};
pub use intern::{Interner, Sym};
pub use io::{load_csv_dir, load_csv_table, parse_csv};
pub use sketch::{PostingSketch, SKETCH_MIN_LEN};
pub use stats::{
    coherence_from_counts, column_coherence, column_coherence_detailed, column_coherence_excluding,
    npmi, pmi, CoherenceConfig, CoherenceDetail, CoherenceFunnel, CooccurrenceStats,
};
pub use stream::{CorpusStream, TableSource};
pub use table::{Column, Corpus, DomainId, RowPatch, RowPatchError, Table, TableId};
