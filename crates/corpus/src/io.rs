//! Loading real table corpora from disk.
//!
//! The paper's corpora are crawled HTML tables and enterprise
//! spreadsheets; the portable interchange for both is CSV. This module
//! loads a directory tree of CSV files into a [`Corpus`]:
//!
//! ```text
//! corpus-root/
//!   en.wikipedia.org/        <- one directory per provenance domain
//!     country_codes.csv      <- one CSV file per table (header row = column names)
//!     airports.csv
//!   data.gov/
//!     iata_registry.csv
//! ```
//!
//! The parser is a minimal RFC-4180 reader (quoted fields, embedded
//! commas/newlines/escaped quotes) — enough for spreadsheet exports
//! without pulling in a dependency.

use crate::table::{Corpus, DomainId, TableId};
use std::fs;
use std::io;
use std::path::Path;

/// Parse one CSV document into rows of fields.
///
/// Handles RFC-4180 quoting: fields may be wrapped in `"`, embedded
/// quotes are doubled, quoted fields may contain commas and newlines.
/// CRLF and LF line endings both work. A trailing newline does not
/// produce an empty row.
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false; // saw content since last row flush

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                any = true;
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                any = true;
            }
            '\r' => {} // swallow; LF follows in CRLF
            '\n' => {
                if any || !field.is_empty() || !row.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    any = false;
                }
            }
            _ => {
                field.push(c);
                any = true;
            }
        }
    }
    if any || !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

/// Load one CSV table into the corpus under the given domain.
///
/// The first row is treated as the header when `has_header` is true.
/// Short rows are padded with empty cells; overlong rows are truncated
/// to the header width (spreadsheet exports are ragged in practice).
/// Returns `None` for tables with no data rows or fewer than two
/// columns.
pub fn load_csv_table(
    corpus: &mut Corpus,
    domain: DomainId,
    text: &str,
    has_header: bool,
) -> Option<TableId> {
    let mut rows = parse_csv(text);
    if rows.is_empty() {
        return None;
    }
    let header: Option<Vec<String>> = if has_header {
        Some(rows.remove(0))
    } else {
        None
    };
    if rows.is_empty() {
        return None;
    }
    let width = header
        .as_ref()
        .map(Vec::len)
        .unwrap_or_else(|| rows.iter().map(Vec::len).max().unwrap_or(0));
    if width < 2 {
        return None;
    }
    // Column-major with padding/truncation.
    let mut columns: Vec<(Option<&str>, Vec<&str>)> = Vec::with_capacity(width);
    static EMPTY: &str = "";
    for ci in 0..width {
        let h = header.as_ref().and_then(|h| h.get(ci)).map(String::as_str);
        let values: Vec<&str> = rows
            .iter()
            .map(|r| r.get(ci).map(String::as_str).unwrap_or(EMPTY))
            .collect();
        columns.push((h, values));
    }
    Some(corpus.push_table(domain, columns))
}

/// Load a corpus from a directory tree: one subdirectory per domain,
/// one CSV file per table. Files and directories are visited in sorted
/// order so corpus construction is deterministic.
pub fn load_csv_dir(root: &Path) -> io::Result<Corpus> {
    let mut corpus = Corpus::new();
    let mut domains: Vec<_> = fs::read_dir(root)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .filter(|e| e.path().is_dir())
        .collect();
    domains.sort_by_key(|e| e.file_name());
    for dir in domains {
        let domain_name = dir.file_name().to_string_lossy().to_string();
        let domain = corpus.domain(&domain_name);
        let mut files: Vec<_> = fs::read_dir(dir.path())?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .filter(|e| {
                e.path()
                    .extension()
                    .is_some_and(|x| x.eq_ignore_ascii_case("csv"))
            })
            .collect();
        files.sort_by_key(|e| e.file_name());
        for file in files {
            let text = fs::read_to_string(file.path())?;
            load_csv_table(&mut corpus, domain, &text, true);
        }
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_csv() {
        let rows = parse_csv("a,b,c\n1,2,3\n");
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn parse_quoted_fields() {
        let rows = parse_csv("name,note\n\"Korea, Republic of\",\"says \"\"hi\"\"\"\n");
        assert_eq!(rows[1][0], "Korea, Republic of");
        assert_eq!(rows[1][1], "says \"hi\"");
    }

    #[test]
    fn parse_quoted_newline_and_crlf() {
        let rows = parse_csv("a,b\r\n\"line1\nline2\",x\r\n");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][0], "line1\nline2");
    }

    #[test]
    fn parse_empty_fields() {
        let rows = parse_csv("a,,c\n,,\n");
        assert_eq!(rows[0], vec!["a", "", "c"]);
        assert_eq!(rows[1], vec!["", "", ""]);
    }

    #[test]
    fn load_table_pads_ragged_rows() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        let id = load_csv_table(&mut c, d, "a,b,c\n1,2,3\n4,5\n", true).unwrap();
        let t = c.table(id);
        assert_eq!(t.width(), 3);
        assert_eq!(t.rows(), 2);
        assert_eq!(c.str_of(t.columns[2].values[1]), "");
        assert_eq!(c.str_of(t.columns[0].header.unwrap()), "a");
    }

    #[test]
    fn load_rejects_narrow_or_empty() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        assert!(load_csv_table(&mut c, d, "", true).is_none());
        assert!(load_csv_table(&mut c, d, "only\nrow\n", true).is_none());
        assert!(
            load_csv_table(&mut c, d, "a,b\n", true).is_none(),
            "header only"
        );
    }

    #[test]
    fn load_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mapsynth-io-test-{}", std::process::id()));
        let site = dir.join("site-a.example.org");
        std::fs::create_dir_all(&site).unwrap();
        std::fs::write(
            site.join("codes.csv"),
            "country,code\nUnited States,USA\nCanada,CAN\n",
        )
        .unwrap();
        std::fs::write(site.join("ignored.txt"), "not a table").unwrap();
        let corpus = load_csv_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus.domain_names, vec!["site-a.example.org"]);
        let t = &corpus.tables[0];
        assert_eq!(t.rows(), 2);
        assert_eq!(corpus.str_of(t.columns[1].values[0]), "USA");
    }
}
