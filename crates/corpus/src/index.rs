//! Inverted index from values to the corpus columns containing them.
//!
//! This is the `C(u)` of paper §3.1: the set of columns that contain
//! value `u`. Column sets are stored as sorted vectors of
//! [`GlobalColId`], so co-occurrence counts `|C(u) ∩ C(v)|` reduce to a
//! linear sorted-set intersection.

use crate::intern::Sym;
use crate::sketch::{PostingSketch, SKETCH_MIN_LEN};
use crate::table::Corpus;
use std::collections::HashSet;

/// Global identifier of a column: dense index over all columns in the
/// corpus in `(table, column)` order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GlobalColId(pub u32);

/// Inverted index: value symbol → sorted list of columns containing it.
///
/// A value is counted at most once per column (set semantics), matching
/// the paper's definition of `C(u)`.
#[derive(Clone)]
pub struct ValueIndex {
    /// postings[sym.index()] = sorted column ids containing that value.
    postings: Vec<Vec<GlobalColId>>,
    /// Constant-size overlap sketch per posting list, maintained only
    /// once a list reaches [`SKETCH_MIN_LEN`] (short lists are cheaper
    /// to probe than to summarize). [`crate::stats`] resolves a
    /// coherence pair from a sketch only when its lower and upper
    /// bounds meet, so a sketch must always describe its list exactly:
    /// additions extend it append-only, removals rebuild it (a dropped
    /// gid could have been a stored bucket minimum).
    sketches: Vec<Option<Box<PostingSketch>>>,
    total_columns: usize,
}

impl ValueIndex {
    /// An index with no columns. Streaming construction starts here
    /// and registers columns with [`add_column`](Self::add_column) in
    /// ascending gid order; the result is identical to
    /// [`build`](Self::build) over the same columns.
    pub fn empty() -> Self {
        Self {
            postings: Vec::new(),
            sketches: Vec::new(),
            total_columns: 0,
        }
    }

    /// Build the index over an entire corpus.
    pub fn build(corpus: &Corpus) -> Self {
        Self::build_filtered(corpus, |_| true)
    }

    /// Build the index over the tables `alive` accepts. Global column
    /// ids are still assigned across *all* tables (so they line up
    /// with any caller-side `first_gid` arithmetic), but dead tables
    /// contribute no postings and do not count toward
    /// [`total_columns`](Self::total_columns) — the statistics are
    /// those of the live view.
    pub fn build_filtered(corpus: &Corpus, alive: impl Fn(crate::table::TableId) -> bool) -> Self {
        let mut postings: Vec<Vec<GlobalColId>> = vec![Vec::new(); corpus.interner.len()];
        let mut col_id = 0u32;
        let mut total = 0usize;
        for table in &corpus.tables {
            let live = alive(table.id);
            for column in &table.columns {
                let gid = GlobalColId(col_id);
                col_id += 1;
                if !live {
                    continue;
                }
                total += 1;
                let mut seen: HashSet<Sym> = HashSet::with_capacity(column.values.len());
                for &v in &column.values {
                    if seen.insert(v) {
                        postings[v.index()].push(gid);
                    }
                }
            }
        }
        // Postings are produced in ascending column order already, but
        // sort defensively so intersection invariants cannot silently
        // break if construction order changes.
        for p in &mut postings {
            debug_assert!(p.windows(2).all(|w| w[0] < w[1]));
            p.sort_unstable();
        }
        let sketches = postings.iter().map(|p| sketch_of(p)).collect();
        Self {
            postings,
            sketches,
            total_columns: total,
        }
    }

    /// `|C(u)|`: the number of columns containing `u`. Zero for symbols
    /// that only appear as headers.
    #[inline]
    pub fn column_count(&self, u: Sym) -> usize {
        self.postings.get(u.index()).map_or(0, Vec::len)
    }

    /// The sorted postings list for `u`.
    pub fn columns(&self, u: Sym) -> &[GlobalColId] {
        self.postings.get(u.index()).map_or(&[], Vec::as_slice)
    }

    /// `|C(u) ∩ C(v)|`: number of columns containing both values.
    pub fn cooccurrence(&self, u: Sym, v: Sym) -> usize {
        intersection_len(self.columns(u), self.columns(v))
    }

    /// The overlap sketch of `u`'s posting list, when the list is long
    /// enough to carry one (see [`SKETCH_MIN_LEN`]).
    #[inline]
    pub fn sketch(&self, u: Sym) -> Option<&PostingSketch> {
        self.sketches.get(u.index()).and_then(|s| s.as_deref())
    }

    /// Total number of columns contributing evidence (the `N` of
    /// Equation 1). After incremental updates this counts *live*
    /// columns only — removed columns no longer contribute.
    pub fn total_columns(&self) -> usize {
        self.total_columns
    }

    /// Grow the posting table to cover symbols up to `interner_len`
    /// (new tables intern new cell strings; their postings start
    /// empty).
    pub fn grow_symbols(&mut self, interner_len: usize) {
        if self.postings.len() < interner_len {
            self.postings.resize(interner_len, Vec::new());
            self.sketches.resize(interner_len, None);
        }
    }

    /// Register a new column's distinct values under `gid`.
    ///
    /// Incremental-update contract: `gid` must be larger than every
    /// column id currently in the index (fresh columns are appended
    /// after the corpus' existing ones), which keeps every posting
    /// list sorted by a plain push.
    pub fn add_column<I: IntoIterator<Item = Sym>>(&mut self, gid: GlobalColId, distinct: I) {
        for v in distinct {
            self.grow_symbols(v.index() + 1);
            let p = &mut self.postings[v.index()];
            debug_assert!(p.last().is_none_or(|&last| last < gid));
            p.push(gid);
            // Append-only sketch maintenance: extend an existing
            // sketch in place, or start one when the list crosses the
            // threshold.
            match &mut self.sketches[v.index()] {
                Some(s) => s.insert(gid),
                slot => *slot = sketch_of(p),
            }
        }
        self.total_columns += 1;
    }

    /// Patch one registered column's evidence in place: `leaving`
    /// values no longer appear in the column, `entering` values now do.
    /// Unlike [`add_column`](Self::add_column), the column keeps its
    /// (possibly mid-range) `gid`, so entering postings are inserted at
    /// their sorted position rather than pushed. The column count is
    /// unchanged — only value membership moved.
    pub fn patch_column(
        &mut self,
        gid: GlobalColId,
        leaving: impl IntoIterator<Item = Sym>,
        entering: impl IntoIterator<Item = Sym>,
    ) {
        for v in leaving {
            let p = &mut self.postings[v.index()];
            let at = p
                .binary_search(&gid)
                .expect("patch_column: column was not registered for this value");
            p.remove(at);
            // The removed gid may have been a stored bucket minimum:
            // rebuild (or drop) the sketch from the surviving list.
            self.sketches[v.index()] = sketch_of(p);
        }
        for v in entering {
            self.grow_symbols(v.index() + 1);
            let p = &mut self.postings[v.index()];
            let at = p
                .binary_search(&gid)
                .expect_err("patch_column: column already registered for this value");
            p.insert(at, gid);
            match &mut self.sketches[v.index()] {
                Some(s) => s.insert(gid),
                slot => *slot = sketch_of(p),
            }
        }
    }

    /// Remove a column's evidence. `distinct` must be the same distinct
    /// value set the column was registered with.
    pub fn remove_column<I: IntoIterator<Item = Sym>>(&mut self, gid: GlobalColId, distinct: I) {
        for v in distinct {
            let p = &mut self.postings[v.index()];
            let at = p
                .binary_search(&gid)
                .expect("remove_column: column was not registered for this value");
            p.remove(at);
            self.sketches[v.index()] = sketch_of(p);
        }
        self.total_columns -= 1;
    }
}

/// The sketch a posting list should carry: one iff the list is long
/// enough to be worth summarizing. The single policy point shared by
/// batch builds and incremental maintenance, so an incrementally grown
/// index always matches a fresh build.
fn sketch_of(postings: &[GlobalColId]) -> Option<Box<PostingSketch>> {
    (postings.len() >= SKETCH_MIN_LEN).then(|| Box::new(PostingSketch::of(postings)))
}

/// Length of the intersection of two sorted, duplicate-free slices.
fn intersection_len(a: &[GlobalColId], b: &[GlobalColId]) -> usize {
    // Galloping helps when one list is much shorter; the plain merge is
    // fine at our scale and simpler to verify.
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Corpus;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        let d = c.domain("t.org");
        // col0: {USA, Canada}, col1: {1,2}
        c.push_table(
            d,
            vec![(None, vec!["USA", "Canada"]), (None, vec!["1", "2"])],
        );
        // col2: {USA, Mexico}
        c.push_table(d, vec![(None, vec!["USA", "Mexico", "USA"])]);
        // col3: {Canada}
        c.push_table(d, vec![(None, vec!["Canada"])]);
        c
    }

    #[test]
    fn counts_and_cooccurrence() {
        let c = corpus();
        let idx = ValueIndex::build(&c);
        let usa = c.interner.get("USA").unwrap();
        let can = c.interner.get("Canada").unwrap();
        let mex = c.interner.get("Mexico").unwrap();
        assert_eq!(idx.total_columns(), 4);
        assert_eq!(idx.column_count(usa), 2); // col0, col2 (dup inside col2 counted once)
        assert_eq!(idx.column_count(can), 2); // col0, col3
        assert_eq!(idx.column_count(mex), 1);
        assert_eq!(idx.cooccurrence(usa, can), 1); // only col0
        assert_eq!(idx.cooccurrence(usa, mex), 1); // col2
        assert_eq!(idx.cooccurrence(can, mex), 0);
    }

    /// Incremental sketch maintenance (append, patch, remove) must
    /// land on exactly the sketches a fresh build over the same
    /// postings produces — the invariant that keeps sketch-resolved
    /// coherence pairs exact under deltas.
    #[test]
    fn sketches_track_postings_through_mutation() {
        let mut c = Corpus::new();
        let d = c.domain("t.org");
        // Enough repetition that some values cross SKETCH_MIN_LEN.
        for i in 0..12 {
            let extra = format!("only-{i}");
            c.push_table(d, vec![(None, vec!["USA", "Canada", extra.as_str()])]);
        }
        let mut idx = ValueIndex::build(&c);
        let usa = c.interner.get("USA").unwrap();
        let can = c.interner.get("Canada").unwrap();
        let fresh = PostingSketch::of(idx.columns(usa));
        assert_eq!(
            idx.sketch(usa),
            Some(&fresh),
            "12-column list must be sketched"
        );

        // Remove a mid-range column, patch another, append a new one.
        idx.remove_column(
            GlobalColId(3),
            [usa, can, c.interner.get("only-3").unwrap()],
        );
        idx.patch_column(GlobalColId(5), [usa], [c.interner.get("only-0").unwrap()]);
        idx.add_column(GlobalColId(12), [usa, can]);

        for v in [usa, can, c.interner.get("only-0").unwrap()] {
            let expect = if idx.column_count(v) >= SKETCH_MIN_LEN {
                Some(PostingSketch::of(idx.columns(v)))
            } else {
                None
            };
            assert_eq!(
                idx.sketch(v),
                expect.as_ref(),
                "sketch out of sync for {:?}",
                c.str_of(v)
            );
        }
    }

    #[test]
    fn intersection_len_basics() {
        let a: Vec<GlobalColId> = [1u32, 3, 5, 7].iter().map(|&x| GlobalColId(x)).collect();
        let b: Vec<GlobalColId> = [2u32, 3, 7, 9].iter().map(|&x| GlobalColId(x)).collect();
        assert_eq!(intersection_len(&a, &b), 2);
        assert_eq!(intersection_len(&a, &[]), 0);
        assert_eq!(intersection_len(&a, &a), 4);
    }
}
