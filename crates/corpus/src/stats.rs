//! Co-occurrence statistics: PMI, NPMI and column coherence.
//!
//! Paper §3.1. The coherence of a column is the average pairwise
//! Normalized Pointwise Mutual Information (NPMI) of its values, where
//! co-occurrence is measured over all columns of the corpus:
//!
//! * `PMI(u,v) = log( p(u,v) / (p(u)·p(v)) )`           (Equation 1)
//! * `NPMI(u,v) = PMI(u,v) / (−log p(u,v))` in `[-1, 1]`
//! * `S(C) = mean of s(v_i, v_j) over value pairs`       (Equation 2)
//!
//! Columns whose values never co-occur elsewhere ("Location" in the
//! paper's Table 7: mixed addresses, zip codes, free text) score low and
//! are pruned before candidate extraction.

use crate::index::{GlobalColId, ValueIndex};
use crate::intern::Sym;

/// Pre-resolved co-occurrence counts for a pair of values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CooccurrenceStats {
    /// `|C(u)|`
    pub count_u: usize,
    /// `|C(v)|`
    pub count_v: usize,
    /// `|C(u) ∩ C(v)|`
    pub count_uv: usize,
    /// Total columns `N`.
    pub total: usize,
}

impl CooccurrenceStats {
    /// Gather counts from the inverted index.
    pub fn gather(index: &ValueIndex, u: Sym, v: Sym) -> Self {
        Self {
            count_u: index.column_count(u),
            count_v: index.column_count(v),
            count_uv: index.cooccurrence(u, v),
            total: index.total_columns(),
        }
    }

    /// Gather counts while excluding one column from the statistics.
    ///
    /// When scoring the coherence of column `g` itself, `g` must not
    /// contribute evidence: otherwise any column trivially co-occurs
    /// with itself and junk columns of corpus-unique values would score
    /// +1 instead of −1.
    pub fn gather_excluding(index: &ValueIndex, u: Sym, v: Sym, exclude: GlobalColId) -> Self {
        let in_u = index.columns(u).binary_search(&exclude).is_ok();
        let in_v = index.columns(v).binary_search(&exclude).is_ok();
        Self {
            count_u: index.column_count(u) - usize::from(in_u),
            count_v: index.column_count(v) - usize::from(in_v),
            count_uv: index.cooccurrence(u, v) - usize::from(in_u && in_v),
            total: index.total_columns().saturating_sub(1),
        }
    }
}

/// Pointwise mutual information (paper Equation 1).
///
/// Returns `None` when any probability is zero (a value never observed
/// in a column, or the pair never co-occurring), where PMI is
/// undefined / −∞.
pub fn pmi(s: CooccurrenceStats) -> Option<f64> {
    if s.count_u == 0 || s.count_v == 0 || s.count_uv == 0 || s.total == 0 {
        return None;
    }
    let n = s.total as f64;
    let p_u = s.count_u as f64 / n;
    let p_v = s.count_v as f64 / n;
    let p_uv = s.count_uv as f64 / n;
    Some((p_uv / (p_u * p_v)).ln())
}

/// Normalized PMI in `[-1, 1]`; the coherence `s(u, v)` of §3.1.
///
/// Pairs that never co-occur get the minimum score −1 (the limit of
/// NPMI as `p(u,v) → 0`), so incoherent columns are penalized rather
/// than skipped. A pair that always co-occurs (`p(u,v) = p(u) = p(v)`)
/// scores +1. When `p(u,v) = 1` (both values in every column) the
/// normalizer is 0; such degenerate pairs score +1 by convention.
pub fn npmi(s: CooccurrenceStats) -> f64 {
    if s.count_uv == 0 || s.total == 0 {
        return -1.0;
    }
    if s.count_uv == s.total {
        return 1.0;
    }
    let p_uv = s.count_uv as f64 / s.total as f64;
    match pmi(s) {
        Some(p) => (p / -p_uv.ln()).clamp(-1.0, 1.0),
        None => -1.0,
    }
}

/// Configuration for column coherence scoring.
#[derive(Clone, Copy, Debug)]
pub struct CoherenceConfig {
    /// Maximum number of distinct values sampled from a column before
    /// computing pairwise scores. Equation 2 is O(|C|²); sampling keeps
    /// wide columns affordable with negligible effect on the mean
    /// (the paper computes the same statistic on Map-Reduce).
    pub max_sample: usize,
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        Self { max_sample: 40 }
    }
}

/// Column coherence `S(C)` (paper Equation 2): average pairwise NPMI of
/// the column's distinct values.
///
/// Sampling is deterministic (evenly strided over first-occurrence
/// order) so results are reproducible. Columns with fewer than two
/// distinct values get coherence 1.0: a constant column is trivially
/// coherent (and will be rejected later by FD filtering if useless).
pub fn column_coherence(index: &ValueIndex, distinct_values: &[Sym], cfg: CoherenceConfig) -> f64 {
    coherence_inner(index, distinct_values, cfg, None)
}

/// Column coherence of the column with global id `exclude`, with that
/// column removed from the co-occurrence evidence. This is the form
/// used by extraction: a column must be coherent *according to the rest
/// of the corpus*, not according to itself.
pub fn column_coherence_excluding(
    index: &ValueIndex,
    distinct_values: &[Sym],
    cfg: CoherenceConfig,
    exclude: GlobalColId,
) -> f64 {
    coherence_inner(index, distinct_values, cfg, Some(exclude))
}

fn coherence_inner(
    index: &ValueIndex,
    distinct_values: &[Sym],
    cfg: CoherenceConfig,
    exclude: Option<GlobalColId>,
) -> f64 {
    let vals = sample_values(distinct_values, cfg);
    coherence_sum(vals.len(), |i, j| match exclude {
        Some(g) => CooccurrenceStats::gather_excluding(index, vals[i], vals[j], g),
        None => CooccurrenceStats::gather(index, vals[i], vals[j]),
    })
}

/// The deterministic sample (evenly strided over first-occurrence
/// order, no RNG) Equation 2 is evaluated over.
fn sample_values(distinct_values: &[Sym], cfg: CoherenceConfig) -> Vec<Sym> {
    if distinct_values.len() > cfg.max_sample {
        let stride = distinct_values.len() as f64 / cfg.max_sample as f64;
        (0..cfg.max_sample)
            .map(|i| distinct_values[(i as f64 * stride) as usize])
            .collect()
    } else {
        distinct_values.to_vec()
    }
}

/// The shared Equation 2 summation: mean NPMI over sampled pairs in
/// `i < j` order. Every coherence entry point funnels through this one
/// loop, so a score recomputed from cached counts is bit-identical to
/// one gathered from the index.
fn coherence_sum(
    n_vals: usize,
    mut stats_of: impl FnMut(usize, usize) -> CooccurrenceStats,
) -> f64 {
    if n_vals < 2 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..n_vals {
        for j in (i + 1)..n_vals {
            sum += npmi(stats_of(i, j));
            pairs += 1;
        }
    }
    sum / pairs as f64
}

/// Raw co-occurrence evidence behind one column's coherence score,
/// cached by incremental extraction so a corpus delta can re-score the
/// column arithmetically instead of re-intersecting posting lists.
///
/// Counts are *raw* (they still include the scored column itself); the
/// self-exclusion of [`column_coherence_excluding`] is pure arithmetic
/// — every sampled value is by definition in the column, so each count
/// is reduced by exactly one — and is re-applied by
/// [`coherence_from_counts`].
#[derive(Clone, Debug)]
pub struct CoherenceDetail {
    /// The sampled values, in sample order.
    pub samples: Vec<Sym>,
    /// `|C(u)|` per sampled value (including the scored column).
    pub value_counts: Vec<u32>,
    /// `|C(u) ∩ C(v)|` per sampled pair, in `i < j` order (including
    /// the scored column).
    pub pair_counts: Vec<u32>,
}

/// [`column_coherence_excluding`] plus the raw evidence it was computed
/// from. The score is bit-identical to the plain entry point.
pub fn column_coherence_detailed(
    index: &ValueIndex,
    distinct_values: &[Sym],
    cfg: CoherenceConfig,
    exclude: GlobalColId,
) -> (f64, CoherenceDetail) {
    let samples = sample_values(distinct_values, cfg);
    let value_counts: Vec<u32> = samples
        .iter()
        .map(|&u| {
            debug_assert!(index.columns(u).binary_search(&exclude).is_ok());
            index.column_count(u) as u32
        })
        .collect();
    let mut pair_counts = Vec::with_capacity(samples.len() * samples.len().saturating_sub(1) / 2);
    for i in 0..samples.len() {
        for j in (i + 1)..samples.len() {
            pair_counts.push(index.cooccurrence(samples[i], samples[j]) as u32);
        }
    }
    let score = coherence_from_counts(&value_counts, &pair_counts, index.total_columns());
    (
        score,
        CoherenceDetail {
            samples,
            value_counts,
            pair_counts,
        },
    )
}

/// Re-score a column from cached raw counts (see [`CoherenceDetail`])
/// against a corpus of `total` live columns. Bit-identical to
/// [`column_coherence_excluding`] gathered from an index with the same
/// counts.
pub fn coherence_from_counts(value_counts: &[u32], pair_counts: &[u32], total: usize) -> f64 {
    let mut k = 0usize;
    coherence_sum(value_counts.len(), |i, j| {
        let count_uv = pair_counts[k] as usize - 1;
        k += 1;
        CooccurrenceStats {
            count_u: value_counts[i] as usize - 1,
            count_v: value_counts[j] as usize - 1,
            count_uv,
            total: total.saturating_sub(1),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Corpus;

    #[test]
    fn pmi_example_from_paper() {
        // Paper Example 4: N = 100M, |C(u)|=1000, |C(v)|=500,
        // |C(u)∩C(v)|=300 → PMI = 4.78 (natural log in our
        // implementation gives ln(60000) ≈ 11.0; the paper's 4.78 is
        // log base 10: 10^4.78 ≈ 60256). Check the ratio itself.
        let s = CooccurrenceStats {
            count_u: 1000,
            count_v: 500,
            count_uv: 300,
            total: 100_000_000,
        };
        let p = pmi(s).unwrap();
        // ratio = (300/1e8) / ((1000/1e8)*(500/1e8)) = 60000
        assert!((p - 60000f64.ln()).abs() < 1e-9);
        // log10 form matches the paper's 4.78
        assert!(((p / 10f64.ln()) - 4.778).abs() < 1e-3);
        let n = npmi(s);
        assert!(n > 0.0 && n <= 1.0, "paper: strong coherence, got {n}");
    }

    #[test]
    fn npmi_bounds() {
        // never co-occur
        let s = CooccurrenceStats {
            count_u: 10,
            count_v: 10,
            count_uv: 0,
            total: 100,
        };
        assert_eq!(npmi(s), -1.0);
        // perfectly correlated
        let s = CooccurrenceStats {
            count_u: 5,
            count_v: 5,
            count_uv: 5,
            total: 100,
        };
        assert!((npmi(s) - 1.0).abs() < 1e-12);
        // degenerate: everything everywhere
        let s = CooccurrenceStats {
            count_u: 100,
            count_v: 100,
            count_uv: 100,
            total: 100,
        };
        assert_eq!(npmi(s), 1.0);
    }

    #[test]
    fn npmi_negative_for_anticorrelated() {
        // u and v each frequent, rarely together → below 0.
        let s = CooccurrenceStats {
            count_u: 5000,
            count_v: 5000,
            count_uv: 1,
            total: 10_000,
        };
        assert!(npmi(s) < 0.0);
    }

    #[test]
    fn coherent_vs_incoherent_column() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        // Countries co-occur in many columns.
        for _ in 0..20 {
            c.push_table(d, vec![(None, vec!["USA", "Canada", "Japan"])]);
        }
        // Unrelated background tables so no value spans the entire
        // corpus (PMI is uninformative for ubiquitous values).
        for i in 0..20 {
            let a = format!("city-{i}");
            let b = format!("city-{}", (i + 1) % 20);
            c.push_table(d, vec![(None, vec![&a, &b])]);
        }
        // A messy column whose values appear nowhere else.
        c.push_table(
            d,
            vec![(None, vec!["USA", "blob-1", "blob-2", "blob-3", "blob-4"])],
        );
        let idx = ValueIndex::build(&c);
        let cfg = CoherenceConfig::default();
        let coherent = &c.tables[0].columns[0];
        let messy = &c.tables[40].columns[0];
        // Column global ids: one column per table here, in order.
        let s_good = column_coherence_excluding(&idx, &coherent.distinct(), cfg, GlobalColId(0));
        let s_bad = column_coherence_excluding(&idx, &messy.distinct(), cfg, GlobalColId(40));
        assert!(
            s_good > 0.5 && s_bad < 0.0,
            "coherent={s_good:.3} messy={s_bad:.3}"
        );
    }

    #[test]
    fn self_column_excluded_from_evidence() {
        // A column of corpus-unique values must not look coherent by
        // co-occurring with itself.
        let mut c = Corpus::new();
        let d = c.domain("x");
        c.push_table(d, vec![(None, vec!["uniq-a", "uniq-b", "uniq-c"])]);
        c.push_table(d, vec![(None, vec!["other-1", "other-2"])]);
        let idx = ValueIndex::build(&c);
        let col = &c.tables[0].columns[0];
        let with_self = column_coherence(&idx, &col.distinct(), CoherenceConfig::default());
        let without = column_coherence_excluding(
            &idx,
            &col.distinct(),
            CoherenceConfig::default(),
            GlobalColId(0),
        );
        assert!(with_self > 0.9, "self-evidence inflates: {with_self}");
        assert_eq!(without, -1.0);
    }

    #[test]
    fn coherence_sampling_is_deterministic_and_bounded() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        let many: Vec<String> = (0..200).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = many.iter().map(String::as_str).collect();
        c.push_table(d, vec![(None, refs.clone())]);
        c.push_table(d, vec![(None, refs)]);
        let idx = ValueIndex::build(&c);
        let col = &c.tables[0].columns[0];
        let cfg = CoherenceConfig { max_sample: 10 };
        let a = column_coherence(&idx, &col.distinct(), cfg);
        let b = column_coherence(&idx, &col.distinct(), cfg);
        assert_eq!(a, b);
        assert!((-1.0..=1.0).contains(&a));
        // Values always co-occur → high coherence.
        assert!(a > 0.9);
    }

    #[test]
    fn single_value_column_is_trivially_coherent() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        c.push_table(d, vec![(None, vec!["only", "only"])]);
        let idx = ValueIndex::build(&c);
        let col = &c.tables[0].columns[0];
        assert_eq!(
            column_coherence(&idx, &col.distinct(), CoherenceConfig::default()),
            1.0
        );
    }
}
