//! Co-occurrence statistics: PMI, NPMI and column coherence.
//!
//! Paper §3.1. The coherence of a column is the average pairwise
//! Normalized Pointwise Mutual Information (NPMI) of its values, where
//! co-occurrence is measured over all columns of the corpus:
//!
//! * `PMI(u,v) = log( p(u,v) / (p(u)·p(v)) )`           (Equation 1)
//! * `NPMI(u,v) = PMI(u,v) / (−log p(u,v))` in `[-1, 1]`
//! * `S(C) = mean of s(v_i, v_j) over value pairs`       (Equation 2)
//!
//! Columns whose values never co-occur elsewhere ("Location" in the
//! paper's Table 7: mixed addresses, zip codes, free text) score low and
//! are pruned before candidate extraction.

use crate::index::{GlobalColId, ValueIndex};
use crate::intern::Sym;

/// Pre-resolved co-occurrence counts for a pair of values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CooccurrenceStats {
    /// `|C(u)|`
    pub count_u: usize,
    /// `|C(v)|`
    pub count_v: usize,
    /// `|C(u) ∩ C(v)|`
    pub count_uv: usize,
    /// Total columns `N`.
    pub total: usize,
}

impl CooccurrenceStats {
    /// Gather counts from the inverted index.
    pub fn gather(index: &ValueIndex, u: Sym, v: Sym) -> Self {
        Self {
            count_u: index.column_count(u),
            count_v: index.column_count(v),
            count_uv: index.cooccurrence(u, v),
            total: index.total_columns(),
        }
    }

    /// Gather counts while excluding one column from the statistics.
    ///
    /// When scoring the coherence of column `g` itself, `g` must not
    /// contribute evidence: otherwise any column trivially co-occurs
    /// with itself and junk columns of corpus-unique values would score
    /// +1 instead of −1.
    pub fn gather_excluding(index: &ValueIndex, u: Sym, v: Sym, exclude: GlobalColId) -> Self {
        let in_u = index.columns(u).binary_search(&exclude).is_ok();
        let in_v = index.columns(v).binary_search(&exclude).is_ok();
        Self {
            count_u: index.column_count(u) - usize::from(in_u),
            count_v: index.column_count(v) - usize::from(in_v),
            count_uv: index.cooccurrence(u, v) - usize::from(in_u && in_v),
            total: index.total_columns().saturating_sub(1),
        }
    }
}

/// Pointwise mutual information (paper Equation 1).
///
/// Returns `None` when any probability is zero (a value never observed
/// in a column, or the pair never co-occurring), where PMI is
/// undefined / −∞.
pub fn pmi(s: CooccurrenceStats) -> Option<f64> {
    if s.count_u == 0 || s.count_v == 0 || s.count_uv == 0 || s.total == 0 {
        return None;
    }
    let n = s.total as f64;
    let p_u = s.count_u as f64 / n;
    let p_v = s.count_v as f64 / n;
    let p_uv = s.count_uv as f64 / n;
    Some((p_uv / (p_u * p_v)).ln())
}

/// Normalized PMI in `[-1, 1]`; the coherence `s(u, v)` of §3.1.
///
/// Pairs that never co-occur get the minimum score −1 (the limit of
/// NPMI as `p(u,v) → 0`), so incoherent columns are penalized rather
/// than skipped. A pair that always co-occurs (`p(u,v) = p(u) = p(v)`)
/// scores +1. When `p(u,v) = 1` (both values in every column) the
/// normalizer is 0; such degenerate pairs score +1 by convention.
pub fn npmi(s: CooccurrenceStats) -> f64 {
    if s.count_uv == 0 || s.total == 0 {
        return -1.0;
    }
    if s.count_uv == s.total {
        return 1.0;
    }
    let p_uv = s.count_uv as f64 / s.total as f64;
    match pmi(s) {
        Some(p) => (p / -p_uv.ln()).clamp(-1.0, 1.0),
        None => -1.0,
    }
}

/// Configuration for column coherence scoring.
#[derive(Clone, Copy, Debug)]
pub struct CoherenceConfig {
    /// Maximum number of distinct values sampled from a column before
    /// computing pairwise scores. Equation 2 is O(|C|²); sampling keeps
    /// wide columns affordable with negligible effect on the mean
    /// (the paper computes the same statistic on Map-Reduce).
    pub max_sample: usize,
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        Self { max_sample: 40 }
    }
}

/// Column coherence `S(C)` (paper Equation 2): average pairwise NPMI of
/// the column's distinct values.
///
/// Sampling is deterministic (evenly strided over first-occurrence
/// order) so results are reproducible. Columns with fewer than two
/// distinct values get coherence 1.0: a constant column is trivially
/// coherent (and will be rejected later by FD filtering if useless).
pub fn column_coherence(index: &ValueIndex, distinct_values: &[Sym], cfg: CoherenceConfig) -> f64 {
    coherence_inner(index, distinct_values, cfg, None)
}

/// Column coherence of the column with global id `exclude`, with that
/// column removed from the co-occurrence evidence. This is the form
/// used by extraction: a column must be coherent *according to the rest
/// of the corpus*, not according to itself.
pub fn column_coherence_excluding(
    index: &ValueIndex,
    distinct_values: &[Sym],
    cfg: CoherenceConfig,
    exclude: GlobalColId,
) -> f64 {
    coherence_inner(index, distinct_values, cfg, Some(exclude))
}

fn coherence_inner(
    index: &ValueIndex,
    distinct_values: &[Sym],
    cfg: CoherenceConfig,
    exclude: Option<GlobalColId>,
) -> f64 {
    let vals = sample_values(distinct_values, cfg);
    coherence_sum(vals.len(), |i, j| match exclude {
        Some(g) => CooccurrenceStats::gather_excluding(index, vals[i], vals[j], g),
        None => CooccurrenceStats::gather(index, vals[i], vals[j]),
    })
}

/// The deterministic sample (evenly strided over first-occurrence
/// order, no RNG) Equation 2 is evaluated over.
fn sample_values(distinct_values: &[Sym], cfg: CoherenceConfig) -> Vec<Sym> {
    if distinct_values.len() > cfg.max_sample {
        let stride = distinct_values.len() as f64 / cfg.max_sample as f64;
        (0..cfg.max_sample)
            .map(|i| distinct_values[(i as f64 * stride) as usize])
            .collect()
    } else {
        distinct_values.to_vec()
    }
}

/// The shared Equation 2 summation: mean NPMI over sampled pairs in
/// `i < j` order. Every coherence entry point funnels through this one
/// loop, so a score recomputed from cached counts is bit-identical to
/// one gathered from the index.
fn coherence_sum(
    n_vals: usize,
    mut stats_of: impl FnMut(usize, usize) -> CooccurrenceStats,
) -> f64 {
    if n_vals < 2 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..n_vals {
        for j in (i + 1)..n_vals {
            sum += npmi(stats_of(i, j));
            pairs += 1;
        }
    }
    sum / pairs as f64
}

/// Raw co-occurrence evidence behind one column's coherence score,
/// cached by incremental extraction so a corpus delta can re-score the
/// column arithmetically instead of re-intersecting posting lists.
///
/// Counts are *raw* (they still include the scored column itself); the
/// self-exclusion of [`column_coherence_excluding`] is pure arithmetic
/// — every sampled value is by definition in the column, so each count
/// is reduced by exactly one — and is re-applied by
/// [`coherence_from_counts`].
#[derive(Clone, Debug)]
pub struct CoherenceDetail {
    /// The sampled values, in sample order.
    pub samples: Vec<Sym>,
    /// `|C(u)|` per sampled value (including the scored column).
    pub value_counts: Vec<u32>,
    /// `|C(u) ∩ C(v)|` per sampled pair, in `i < j` order (including
    /// the scored column).
    pub pair_counts: Vec<u32>,
}

/// Funnel counters for the sketch-accelerated coherence pair loop:
/// how many sampled pairs were resolved from sketches alone versus
/// needing real posting-list data. Purely observational — the counts
/// themselves are exact either way — but committed to the scale-tier
/// baseline so a regression in sketch effectiveness fails CI.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoherenceFunnel {
    /// Pairs resolved without touching a posting list: zero-length or
    /// singleton shortcuts, and sketch bounds that pinched
    /// (`lower == upper`).
    pub sketch_rejects: u64,
    /// Pairs that fell through to posting-list data (small-list
    /// probes or the restricted-universe bitmap intersection).
    pub list_probes: u64,
}

impl CoherenceFunnel {
    /// Fold another funnel's counts into this one (per-table funnels
    /// are gathered in parallel and merged by the extraction cache).
    pub fn merge(&mut self, other: &CoherenceFunnel) {
        self.sketch_rejects += other.sketch_rejects;
        self.list_probes += other.list_probes;
    }
}

/// Below this length a direct gallop of the shorter list against the
/// longer is cheaper than routing the pair through the bitmap
/// intersection (and keeps the bitmap universe small).
const DIRECT_PROBE_MAX: usize = 8;

/// [`column_coherence_excluding`] plus the raw evidence it was computed
/// from. The score is bit-identical to the plain entry point.
///
/// The O(samples²) pair loop consults the posting-list sketches first
/// ([`crate::sketch::PostingSketch`]); pairs the exact bounds resolve
/// never touch a posting list, and the survivors are intersected
/// together over one restricted universe of column ids (64 columns per
/// machine word) instead of pair-by-pair list merges. Every count is
/// exact, so the detail — and therefore the score — is bit-identical
/// to the `#[cfg(test)]` probe oracle this path is tested against.
pub fn column_coherence_detailed(
    index: &ValueIndex,
    distinct_values: &[Sym],
    cfg: CoherenceConfig,
    exclude: GlobalColId,
    funnel: &mut CoherenceFunnel,
) -> (f64, CoherenceDetail) {
    let samples = sample_values(distinct_values, cfg);
    let value_counts: Vec<u32> = samples
        .iter()
        .map(|&u| {
            debug_assert!(index.columns(u).binary_search(&exclude).is_ok());
            index.column_count(u) as u32
        })
        .collect();
    let pair_counts = pair_cooccurrences(index, &samples, exclude, funnel);
    let score = coherence_from_counts(&value_counts, &pair_counts, index.total_columns());
    (
        score,
        CoherenceDetail {
            samples,
            value_counts,
            pair_counts,
        },
    )
}

/// `|C(u) ∩ C(v)|` for every sampled pair in `i < j` order — the exact
/// counts the old pair-by-pair [`ValueIndex::cooccurrence`] loop
/// produced, through a three-tier funnel:
///
/// 1. **Shortcuts** — an empty list intersects nothing; when both
///    lists contain the scored column `g`, a singleton list is exactly
///    `{g}` and the pair counts 1.
/// 2. **Sketch resolution** — the exact lower/upper overlap bounds of
///    the posting sketches (floored at 1 when both lists contain `g`);
///    a pinched pair (`lb == ub`) is resolved without list access.
/// 3. **Bitmap intersection** — survivors are counted over one shared
///    restricted universe: the union of the involved posting lists,
///    each list materialized once as a bitvector, each pair a
///    word-parallel AND/popcount.
fn pair_cooccurrences(
    index: &ValueIndex,
    samples: &[Sym],
    exclude: GlobalColId,
    funnel: &mut CoherenceFunnel,
) -> Vec<u32> {
    let k = samples.len();
    let n_pairs = k * k.saturating_sub(1) / 2;
    let mut pair_counts = vec![0u32; n_pairs];
    if n_pairs == 0 {
        return pair_counts;
    }
    // Per-sample facts, gathered once: list length and whether the
    // scored column is a member (true by construction when extraction
    // calls this, but verified so the entry point stays exact for any
    // caller).
    let lens: Vec<usize> = samples.iter().map(|&u| index.column_count(u)).collect();
    let has_g: Vec<bool> = samples
        .iter()
        .map(|&u| index.columns(u).binary_search(&exclude).is_ok())
        .collect();

    // (i, j, slot) of pairs the sketches could not resolve.
    let mut unresolved: Vec<(u32, u32, u32)> = Vec::new();
    let mut slot = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            let floor = u32::from(has_g[i] && has_g[j]);
            if lens[i] == 0 || lens[j] == 0 {
                // pair_counts[slot] stays 0.
                funnel.sketch_rejects += 1;
            } else if floor == 1 && (lens[i] == 1 || lens[j] == 1) {
                // A singleton list containing g is exactly {g}, and g
                // is in the other list too.
                pair_counts[slot] = 1;
                funnel.sketch_rejects += 1;
            } else if let (Some(su), Some(sv)) =
                (index.sketch(samples[i]), index.sketch(samples[j]))
            {
                let lb = floor.max(su.overlap_lower_bound(sv));
                let ub = su.overlap_upper_bound(sv, lens[i] as u32, lens[j] as u32);
                if lb == ub {
                    debug_assert_eq!(
                        lb,
                        index.cooccurrence(samples[i], samples[j]) as u32,
                        "sketch resolved a pair to the wrong count"
                    );
                    pair_counts[slot] = lb;
                    funnel.sketch_rejects += 1;
                } else {
                    unresolved.push((i as u32, j as u32, slot as u32));
                }
            } else if lens[i].min(lens[j]) <= DIRECT_PROBE_MAX {
                // Short lists gallop against the longer one directly —
                // cheaper than widening the bitmap universe for them.
                pair_counts[slot] =
                    gallop_intersection(index.columns(samples[i]), index.columns(samples[j]));
                funnel.list_probes += 1;
            } else {
                unresolved.push((i as u32, j as u32, slot as u32));
            }
            slot += 1;
        }
    }
    if unresolved.is_empty() {
        return pair_counts;
    }
    funnel.list_probes += unresolved.len() as u64;

    // Restricted universe: the union of the unresolved samples'
    // posting lists, deduplicated to dense bit positions.
    let mut involved = vec![false; k];
    for &(i, j, _) in &unresolved {
        involved[i as usize] = true;
        involved[j as usize] = true;
    }
    let mut universe: Vec<GlobalColId> = Vec::new();
    for (i, &inv) in involved.iter().enumerate() {
        if inv {
            universe.extend_from_slice(index.columns(samples[i]));
        }
    }
    universe.sort_unstable();
    universe.dedup();
    let words = universe.len().div_ceil(64);

    // One bitvector per involved sample: each posting list is read
    // once here, instead of once per pair in the old merge loop.
    let mut rows: Vec<Vec<u64>> = vec![Vec::new(); k];
    for (i, &inv) in involved.iter().enumerate() {
        if !inv {
            continue;
        }
        let mut row = vec![0u64; words];
        let mut at = 0usize;
        for &gid in index.columns(samples[i]) {
            // Every gid is in the universe by construction; a merge
            // walk finds its slot without per-element binary search.
            while universe[at] < gid {
                at += 1;
            }
            row[at / 64] |= 1u64 << (at % 64);
            at += 1;
        }
        rows[i] = row;
    }
    for &(i, j, s) in &unresolved {
        let (ru, rv) = (&rows[i as usize], &rows[j as usize]);
        pair_counts[s as usize] = ru.iter().zip(rv).map(|(a, b)| (a & b).count_ones()).sum();
    }
    pair_counts
}

/// `|a ∩ b|` by binary-searching each element of the shorter list in
/// the longer — exact, and O(short · log long) instead of the linear
/// merge, which matters when a rare value meets a hot one.
fn gallop_intersection(a: &[GlobalColId], b: &[GlobalColId]) -> u32 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    short
        .iter()
        .filter(|g| long.binary_search(g).is_ok())
        .count() as u32
}

/// The pre-sketch pair loop, kept as the oracle the fast path is
/// tested against: plain pair-by-pair posting-list intersections.
#[cfg(test)]
fn pair_cooccurrences_probe(index: &ValueIndex, samples: &[Sym]) -> Vec<u32> {
    let mut pair_counts = Vec::with_capacity(samples.len() * samples.len().saturating_sub(1) / 2);
    for i in 0..samples.len() {
        for j in (i + 1)..samples.len() {
            pair_counts.push(index.cooccurrence(samples[i], samples[j]) as u32);
        }
    }
    pair_counts
}

/// Re-score a column from cached raw counts (see [`CoherenceDetail`])
/// against a corpus of `total` live columns. Bit-identical to
/// [`column_coherence_excluding`] gathered from an index with the same
/// counts.
pub fn coherence_from_counts(value_counts: &[u32], pair_counts: &[u32], total: usize) -> f64 {
    let mut k = 0usize;
    coherence_sum(value_counts.len(), |i, j| {
        let count_uv = pair_counts[k] as usize - 1;
        k += 1;
        CooccurrenceStats {
            count_u: value_counts[i] as usize - 1,
            count_v: value_counts[j] as usize - 1,
            count_uv,
            total: total.saturating_sub(1),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Corpus;

    #[test]
    fn pmi_example_from_paper() {
        // Paper Example 4: N = 100M, |C(u)|=1000, |C(v)|=500,
        // |C(u)∩C(v)|=300 → PMI = 4.78 (natural log in our
        // implementation gives ln(60000) ≈ 11.0; the paper's 4.78 is
        // log base 10: 10^4.78 ≈ 60256). Check the ratio itself.
        let s = CooccurrenceStats {
            count_u: 1000,
            count_v: 500,
            count_uv: 300,
            total: 100_000_000,
        };
        let p = pmi(s).unwrap();
        // ratio = (300/1e8) / ((1000/1e8)*(500/1e8)) = 60000
        assert!((p - 60000f64.ln()).abs() < 1e-9);
        // log10 form matches the paper's 4.78
        assert!(((p / 10f64.ln()) - 4.778).abs() < 1e-3);
        let n = npmi(s);
        assert!(n > 0.0 && n <= 1.0, "paper: strong coherence, got {n}");
    }

    #[test]
    fn npmi_bounds() {
        // never co-occur
        let s = CooccurrenceStats {
            count_u: 10,
            count_v: 10,
            count_uv: 0,
            total: 100,
        };
        assert_eq!(npmi(s), -1.0);
        // perfectly correlated
        let s = CooccurrenceStats {
            count_u: 5,
            count_v: 5,
            count_uv: 5,
            total: 100,
        };
        assert!((npmi(s) - 1.0).abs() < 1e-12);
        // degenerate: everything everywhere
        let s = CooccurrenceStats {
            count_u: 100,
            count_v: 100,
            count_uv: 100,
            total: 100,
        };
        assert_eq!(npmi(s), 1.0);
    }

    #[test]
    fn npmi_negative_for_anticorrelated() {
        // u and v each frequent, rarely together → below 0.
        let s = CooccurrenceStats {
            count_u: 5000,
            count_v: 5000,
            count_uv: 1,
            total: 10_000,
        };
        assert!(npmi(s) < 0.0);
    }

    #[test]
    fn coherent_vs_incoherent_column() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        // Countries co-occur in many columns.
        for _ in 0..20 {
            c.push_table(d, vec![(None, vec!["USA", "Canada", "Japan"])]);
        }
        // Unrelated background tables so no value spans the entire
        // corpus (PMI is uninformative for ubiquitous values).
        for i in 0..20 {
            let a = format!("city-{i}");
            let b = format!("city-{}", (i + 1) % 20);
            c.push_table(d, vec![(None, vec![&a, &b])]);
        }
        // A messy column whose values appear nowhere else.
        c.push_table(
            d,
            vec![(None, vec!["USA", "blob-1", "blob-2", "blob-3", "blob-4"])],
        );
        let idx = ValueIndex::build(&c);
        let cfg = CoherenceConfig::default();
        let coherent = &c.tables[0].columns[0];
        let messy = &c.tables[40].columns[0];
        // Column global ids: one column per table here, in order.
        let s_good = column_coherence_excluding(&idx, &coherent.distinct(), cfg, GlobalColId(0));
        let s_bad = column_coherence_excluding(&idx, &messy.distinct(), cfg, GlobalColId(40));
        assert!(
            s_good > 0.5 && s_bad < 0.0,
            "coherent={s_good:.3} messy={s_bad:.3}"
        );
    }

    #[test]
    fn self_column_excluded_from_evidence() {
        // A column of corpus-unique values must not look coherent by
        // co-occurring with itself.
        let mut c = Corpus::new();
        let d = c.domain("x");
        c.push_table(d, vec![(None, vec!["uniq-a", "uniq-b", "uniq-c"])]);
        c.push_table(d, vec![(None, vec!["other-1", "other-2"])]);
        let idx = ValueIndex::build(&c);
        let col = &c.tables[0].columns[0];
        let with_self = column_coherence(&idx, &col.distinct(), CoherenceConfig::default());
        let without = column_coherence_excluding(
            &idx,
            &col.distinct(),
            CoherenceConfig::default(),
            GlobalColId(0),
        );
        assert!(with_self > 0.9, "self-evidence inflates: {with_self}");
        assert_eq!(without, -1.0);
    }

    #[test]
    fn coherence_sampling_is_deterministic_and_bounded() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        let many: Vec<String> = (0..200).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = many.iter().map(String::as_str).collect();
        c.push_table(d, vec![(None, refs.clone())]);
        c.push_table(d, vec![(None, refs)]);
        let idx = ValueIndex::build(&c);
        let col = &c.tables[0].columns[0];
        let cfg = CoherenceConfig { max_sample: 10 };
        let a = column_coherence(&idx, &col.distinct(), cfg);
        let b = column_coherence(&idx, &col.distinct(), cfg);
        assert_eq!(a, b);
        assert!((-1.0..=1.0).contains(&a));
        // Values always co-occur → high coherence.
        assert!(a > 0.9);
    }

    #[test]
    fn single_value_column_is_trivially_coherent() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        c.push_table(d, vec![(None, vec!["only", "only"])]);
        let idx = ValueIndex::build(&c);
        let col = &c.tables[0].columns[0];
        assert_eq!(
            column_coherence(&idx, &col.distinct(), CoherenceConfig::default()),
            1.0
        );
    }

    /// The sketch fast path must reproduce the probe oracle bit for
    /// bit — pair counts, value counts, and the f64 score — on a
    /// corpus mixing hot (sketched), rare, and column-unique values.
    #[test]
    fn fast_pair_counts_match_probe_oracle() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        for i in 0..30 {
            let uniq = format!("u{i}");
            c.push_table(
                d,
                vec![(
                    None,
                    vec!["USA", "Canada", "Japan", uniq.as_str(), "rare-pair"],
                )],
            );
        }
        c.push_table(
            d,
            vec![(None, vec!["USA", "blob-1", "blob-2", "rare-pair", "u7"])],
        );
        let idx = ValueIndex::build(&c);
        let cfg = CoherenceConfig::default();
        let mut funnel = CoherenceFunnel::default();
        for (ti, table) in c.tables.iter().enumerate() {
            let col = &table.columns[0];
            let g = GlobalColId(ti as u32);
            let (score, detail) =
                column_coherence_detailed(&idx, &col.distinct(), cfg, g, &mut funnel);
            assert_eq!(
                detail.pair_counts,
                pair_cooccurrences_probe(&idx, &detail.samples),
                "pair counts diverged from probe oracle on column {ti}"
            );
            let oracle = column_coherence_excluding(&idx, &col.distinct(), cfg, g);
            assert_eq!(score.to_bits(), oracle.to_bits(), "score drifted, col {ti}");
        }
        assert!(funnel.sketch_rejects > 0, "no pair resolved by sketch");
        assert!(funnel.list_probes > 0, "no pair needed a probe");
    }

    proptest::proptest! {
        /// Bit-identity on arbitrary corpora: whatever mixture of
        /// list lengths, overlaps and saturations the generator
        /// produces, the fast pair loop equals the probe oracle.
        #[test]
        fn prop_fast_pair_counts_match_probe(
            tables in proptest::collection::vec(
                proptest::collection::vec(0u8..24, 1..12),
                1..24,
            ),
            scored in 0usize..24,
        ) {
            let mut c = Corpus::new();
            let d = c.domain("x");
            for vals in &tables {
                let strs: Vec<String> = vals.iter().map(|v| format!("v{v}")).collect();
                let refs: Vec<&str> = strs.iter().map(String::as_str).collect();
                c.push_table(d, vec![(None, refs)]);
            }
            let idx = ValueIndex::build(&c);
            let ti = scored % tables.len();
            let col = &c.tables[ti].columns[0];
            let mut funnel = CoherenceFunnel::default();
            let (score, detail) = column_coherence_detailed(
                &idx,
                &col.distinct(),
                CoherenceConfig::default(),
                GlobalColId(ti as u32),
                &mut funnel,
            );
            proptest::prop_assert_eq!(
                &detail.pair_counts,
                &pair_cooccurrences_probe(&idx, &detail.samples)
            );
            let oracle = column_coherence_excluding(
                &idx,
                &col.distinct(),
                CoherenceConfig::default(),
                GlobalColId(ti as u32),
            );
            proptest::prop_assert_eq!(score.to_bits(), oracle.to_bits());
        }
    }
}
