//! String interning.
//!
//! Every distinct cell string in the corpus is mapped to a compact
//! 32-bit [`Sym`]. Interning makes value equality O(1), lets the
//! inverted indexes key on integers, and keeps per-table memory small —
//! essential when a corpus holds hundreds of thousands of tables whose
//! cells repeat heavily (the same country name appears in thousands of
//! columns).

use std::collections::HashMap;
use std::fmt;

/// Interned string id. `Sym`s are only meaningful relative to the
/// [`Interner`] (and thus the [`Corpus`](crate::Corpus)) that produced
/// them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Sym(pub u32);

impl Sym {
    /// The raw index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// An append-only string interner.
///
/// Strings are stored once in an arena vector; a hash map resolves
/// string → [`Sym`]. Lookups by symbol are a plain vector index.
#[derive(Clone, Default)]
pub struct Interner {
    strings: Vec<Box<str>>,
    map: HashMap<Box<str>, Sym>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an interner with capacity for `n` distinct strings.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            strings: Vec::with_capacity(n),
            map: HashMap::with_capacity(n),
        }
    }

    /// Intern `s`, returning its symbol. Re-interning the same string
    /// returns the same symbol.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.strings.len()).expect("interner overflow: >4B strings"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Look up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), s.as_ref()))
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.strings.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_roundtrip() {
        let mut i = Interner::new();
        let a = i.intern("United States");
        let b = i.intern("Canada");
        let a2 = i.intern("United States");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "United States");
        assert_eq!(i.resolve(b), "Canada");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_without_interning() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = Interner::new();
        let syms: Vec<Sym> = ["a", "b", "c"].iter().map(|s| i.intern(s)).collect();
        let collected: Vec<(Sym, &str)> = i.iter().collect();
        assert_eq!(collected.len(), 3);
        for (k, (sym, s)) in collected.iter().enumerate() {
            assert_eq!(*sym, syms[k]);
            assert_eq!(*s, ["a", "b", "c"][k]);
        }
    }
}
