//! Posting-list sketches: constant-size summaries of `C(u)` column
//! sets with *exact* overlap bounds.
//!
//! Coherence scoring (paper §3.1) intersects posting lists for every
//! sampled value pair of every column — the dominant extraction cost
//! at scale. A [`PostingSketch`] summarizes one posting list in a few
//! dozen bytes so that `|C(u) ∩ C(v)|` can often be *resolved* (lower
//! bound == upper bound) without touching either list. The bounds are
//! sound, never heuristic, mirroring the
//! [`CharSignature`](../../mapsynth_text/struct.CharSignature.html)
//! prefilters of the approximate-matching stage: a pair the sketch
//! resolves gets the exact count the full intersection would produce,
//! and every other pair falls through to a real probe. Output is
//! therefore bit-identical with sketches on or off.
//!
//! Structure: column gids are hashed into [`SKETCH_BUCKETS`] buckets;
//! per bucket the sketch keeps the **minimum gid** and a saturating
//! occupant count, plus a 64-bit occupancy mask at double resolution
//! (the charset-mask analog).
//!
//! * **Lower bound** — if two sketches store the same non-empty
//!   minimum in a bucket, that gid is an element of *both* lists
//!   (a bucket's stored minimum is always a real member); distinct
//!   buckets hold distinct gids, so the number of agreeing buckets
//!   never exceeds the true overlap.
//! * **Upper bound** — common elements of a bucket are at most
//!   `min(count_u, count_v)` for that bucket; a saturated count is
//!   replaced by the owning list's full length (the count may have
//!   wrapped, the length cannot). Disjoint occupancy masks prove an
//!   empty intersection outright.

use crate::index::GlobalColId;

/// Buckets carrying minima and counts. Gids hash uniformly, so ~32
/// buckets resolve the short and disjoint lists that dominate pairwise
/// coherence sampling while keeping the sketch under 200 bytes.
pub const SKETCH_BUCKETS: usize = 32;

/// Posting lists shorter than this are not sketched: a direct probe of
/// so few elements is cheaper than maintaining a summary, and the
/// coherence fast path short-circuits most of them anyway.
pub const SKETCH_MIN_LEN: usize = 8;

/// Sentinel for an empty bucket (no gid can be `u32::MAX`: global
/// column ids are dense indices).
const EMPTY: u32 = u32::MAX;

/// Knuth multiplicative hash; the same mixer the text-layer signature
/// uses for its charset mask.
#[inline]
fn mix(gid: u32) -> u32 {
    gid.wrapping_mul(0x9E37_79B1)
}

/// A constant-size summary of one sorted posting list. See the module
/// docs for the exact-bound contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PostingSketch {
    /// Minimum gid hashed into each bucket (`EMPTY` when none).
    mins: [u32; SKETCH_BUCKETS],
    /// Saturating occupant count per bucket.
    counts: [u8; SKETCH_BUCKETS],
    /// 64-bucket occupancy mask (double the min/count resolution).
    mask: u64,
}

impl PostingSketch {
    /// The sketch of an empty list.
    pub fn new() -> Self {
        Self {
            mins: [EMPTY; SKETCH_BUCKETS],
            counts: [0; SKETCH_BUCKETS],
            mask: 0,
        }
    }

    /// Build the sketch of a posting list (order-independent).
    pub fn of(postings: &[GlobalColId]) -> Self {
        let mut s = Self::new();
        for &gid in postings {
            s.insert(gid);
        }
        s
    }

    /// Register one gid. Append-only maintenance: inserting never
    /// invalidates a stored minimum, so incremental index growth can
    /// extend sketches in place (removals rebuild via [`of`](Self::of)
    /// instead — dropping a minimum *would* go stale).
    pub fn insert(&mut self, gid: GlobalColId) {
        let h = mix(gid.0);
        let b = (h >> 27) as usize; // top 5 bits → 32 buckets
        self.mask |= 1u64 << (h >> 26); // top 6 bits → 64-bit mask
        self.counts[b] = self.counts[b].saturating_add(1);
        if gid.0 < self.mins[b] {
            self.mins[b] = gid.0;
        }
    }

    /// Exact lower bound on `|A ∩ B|`: the number of buckets whose
    /// stored minima agree. Each agreeing bucket certifies one shared
    /// gid; different buckets certify different gids.
    #[inline]
    pub fn overlap_lower_bound(&self, other: &Self) -> u32 {
        let mut lb = 0u32;
        for b in 0..SKETCH_BUCKETS {
            if self.mins[b] != EMPTY && self.mins[b] == other.mins[b] {
                lb += 1;
            }
        }
        lb
    }

    /// Exact upper bound on `|A ∩ B|` given the true list lengths
    /// (needed to de-saturate wrapped bucket counts).
    #[inline]
    pub fn overlap_upper_bound(&self, other: &Self, len_a: u32, len_b: u32) -> u32 {
        if self.mask & other.mask == 0 {
            return 0;
        }
        let mut ub = 0u32;
        for b in 0..SKETCH_BUCKETS {
            let ca = desaturate(self.counts[b], len_a);
            let cb = desaturate(other.counts[b], len_b);
            ub += ca.min(cb);
        }
        ub.min(len_a).min(len_b)
    }
}

impl Default for PostingSketch {
    fn default() -> Self {
        Self::new()
    }
}

/// A saturated bucket count only proves "at least 255"; the owning
/// list's length is the tightest sound replacement.
#[inline]
fn desaturate(count: u8, len: u32) -> u32 {
    if count == u8::MAX {
        len
    } else {
        u32::from(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: &[u32]) -> Vec<GlobalColId> {
        v.iter().map(|&x| GlobalColId(x)).collect()
    }

    fn true_overlap(a: &[GlobalColId], b: &[GlobalColId]) -> u32 {
        a.iter().filter(|x| b.contains(x)).count() as u32
    }

    #[test]
    fn identical_lists_resolve_exactly() {
        // Few enough elements that every one lands alone in a bucket:
        // the bounds pinch to the true overlap and the pair resolves.
        let a = ids(&[1, 5, 9, 200, 4001]);
        let s = PostingSketch::of(&a);
        let n = a.len() as u32;
        assert!(s.overlap_lower_bound(&s) <= n);
        assert!(s.overlap_upper_bound(&s, n, n) >= n);
        if s.overlap_lower_bound(&s) == s.overlap_upper_bound(&s, n, n) {
            assert_eq!(s.overlap_lower_bound(&s), n);
        }
    }

    #[test]
    fn disjoint_masks_prove_zero() {
        // Construct lists whose gids land in different mask bits.
        let a = ids(&[0]);
        let b = ids(&[1]);
        let (sa, sb) = (PostingSketch::of(&a), PostingSketch::of(&b));
        if sa.mask & sb.mask == 0 {
            assert_eq!(sa.overlap_upper_bound(&sb, 1, 1), 0);
        }
        assert_eq!(sa.overlap_lower_bound(&sb), 0);
    }

    #[test]
    fn append_only_insert_matches_batch_build() {
        let list = ids(&[3, 17, 17_000, 90_000, 123]);
        let batch = PostingSketch::of(&list);
        let mut inc = PostingSketch::new();
        for &g in &list {
            inc.insert(g);
        }
        assert_eq!(batch, inc);
    }

    proptest! {
        /// Soundness on arbitrary gid sets: the lower bound never
        /// exceeds the true overlap and the upper bound never
        /// undercuts it, so a coherence pair resolved by `lb == ub`
        /// always gets the exact intersection count.
        #[test]
        fn prop_bounds_bracket_true_overlap(
            mut a in proptest::collection::vec(0u32..5000, 0..120),
            mut b in proptest::collection::vec(0u32..5000, 0..120),
        ) {
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let (a, b) = (ids(&a), ids(&b));
            let (sa, sb) = (PostingSketch::of(&a), PostingSketch::of(&b));
            let t = true_overlap(&a, &b);
            let lb = sa.overlap_lower_bound(&sb);
            let ub = sa.overlap_upper_bound(&sb, a.len() as u32, b.len() as u32);
            prop_assert!(lb <= t, "lower bound {lb} > true {t}");
            prop_assert!(ub >= t, "upper bound {ub} < true {t}");
        }

        /// Saturation soundness: dense gid ranges overflow the u8
        /// bucket counts; the de-saturated upper bound must still
        /// bracket the true overlap.
        #[test]
        fn prop_bounds_sound_under_bucket_saturation(
            start_a in 0u32..2000,
            start_b in 0u32..2000,
            len in 4000u32..12_000,
        ) {
            let a: Vec<GlobalColId> = (start_a..start_a + len).map(GlobalColId).collect();
            let b: Vec<GlobalColId> = (start_b..start_b + len).map(GlobalColId).collect();
            let (sa, sb) = (PostingSketch::of(&a), PostingSketch::of(&b));
            let t = len - start_a.abs_diff(start_b).min(len);
            let lb = sa.overlap_lower_bound(&sb);
            let ub = sa.overlap_upper_bound(&sb, len, len);
            prop_assert!(lb <= t, "lower bound {lb} > true {t}");
            prop_assert!(ub >= t, "upper bound {ub} < true {t}");
        }
    }
}
