//! Tables, columns and the corpus container.
//!
//! A [`Corpus`] is the paper's only input (Definition 3): a set of
//! relational tables, each a list of columns. Tables carry provenance —
//! the web domain (or spreadsheet share) they were extracted from —
//! because the curation step (paper §4.3) ranks synthesized mappings by
//! the number of *independent* domains that contributed to them.

use crate::intern::{Interner, Sym};
use std::fmt;

/// Identifier of a table within its corpus.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TableId(pub u32);

/// Identifier of a provenance domain (web site / spreadsheet share).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DomainId(pub u32);

/// A single table column: an optional header plus the cell values in
/// row order. Values are interned [`Sym`]s.
#[derive(Clone, Debug)]
pub struct Column {
    /// Column header, if the source table had one. Headers on the web
    /// are frequently undescriptive ("name", "code") — the paper's
    /// motivation for value-based rather than name-based synthesis.
    pub header: Option<Sym>,
    /// Cell values in row order.
    pub values: Vec<Sym>,
}

impl Column {
    /// Build a column from a header and values.
    pub fn new(header: Option<Sym>, values: Vec<Sym>) -> Self {
        Self { header, values }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Distinct values, in first-occurrence order.
    pub fn distinct(&self) -> Vec<Sym> {
        let mut seen = std::collections::HashSet::with_capacity(self.values.len());
        let mut out = Vec::new();
        for &v in &self.values {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }
}

/// A relational table: columns of equal length, plus provenance.
#[derive(Clone, Debug)]
pub struct Table {
    /// Identifier within the corpus.
    pub id: TableId,
    /// The web domain / share this table came from.
    pub domain: DomainId,
    /// Columns. All columns have the same number of rows.
    pub columns: Vec<Column>,
}

impl Table {
    /// Number of rows (0 for a table with no columns).
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }
}

/// A row-granular edit to one table: delete some existing rows and
/// append some new ones, leaving the table (and its id) in place.
///
/// Rows are full string tuples in column order. Deletions match by
/// value — the first row whose cells all equal the tuple is removed —
/// because external change feeds (re-crawls, spreadsheet diffs) carry
/// values, not row offsets. Deletions are applied before insertions.
#[derive(Clone, Debug)]
pub struct RowPatch {
    /// The table to edit. Must exist (and, when applied through an
    /// incremental session, must be live).
    pub table: TableId,
    /// Rows to remove, as full-width string tuples. Each must match an
    /// existing row.
    pub deleted: Vec<Vec<String>>,
    /// Rows to append, as full-width string tuples.
    pub inserted: Vec<Vec<String>>,
}

/// A corpus of tables plus the interner that owns their cell strings.
pub struct Corpus {
    /// String interner for every cell and header in the corpus.
    pub interner: Interner,
    /// All tables.
    pub tables: Vec<Table>,
    /// Human-readable names of provenance domains, indexed by
    /// [`DomainId`].
    pub domain_names: Vec<String>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self {
            interner: Interner::new(),
            tables: Vec::new(),
            domain_names: Vec::new(),
        }
    }

    /// Register (or look up) a provenance domain by name.
    pub fn domain(&mut self, name: &str) -> DomainId {
        if let Some(pos) = self.domain_names.iter().position(|d| d == name) {
            return DomainId(pos as u32);
        }
        self.domain_names.push(name.to_string());
        DomainId((self.domain_names.len() - 1) as u32)
    }

    /// Append a table built from string cells. Columns must be the same
    /// length.
    ///
    /// # Panics
    /// Panics if columns have unequal lengths.
    pub fn push_table(
        &mut self,
        domain: DomainId,
        columns: Vec<(Option<&str>, Vec<&str>)>,
    ) -> TableId {
        let rows = columns.first().map_or(0, |(_, v)| v.len());
        assert!(
            columns.iter().all(|(_, v)| v.len() == rows),
            "all columns in a table must have equal length"
        );
        let cols = columns
            .into_iter()
            .map(|(h, vals)| {
                let header = h.map(|h| self.interner.intern(h));
                let values = vals.iter().map(|v| self.interner.intern(v)).collect();
                Column::new(header, values)
            })
            .collect();
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Table {
            id,
            domain,
            columns: cols,
        });
        id
    }

    /// Append a pre-interned table. Used by generators that intern
    /// strings themselves for efficiency.
    pub fn push_interned_table(&mut self, domain: DomainId, columns: Vec<Column>) -> TableId {
        let rows = columns.first().map_or(0, Column::len);
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "all columns in a table must have equal length"
        );
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Table {
            id,
            domain,
            columns,
        });
        id
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the corpus holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of columns across all tables (the `N` of the PMI
    /// probabilities in paper Equation 1).
    pub fn total_columns(&self) -> usize {
        self.tables.iter().map(Table::width).sum()
    }

    /// Look up a table.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// A fresh corpus holding only the tables `keep` accepts, in the
    /// original order, re-interned from scratch (table ids are
    /// renumbered densely; domain names are re-registered on first
    /// use).
    ///
    /// This is the *reference* semantics of a table-removal delta: the
    /// corpus that a batch run would have seen had the removed tables
    /// never existed. [`crate::Corpus`] itself is append-only — the
    /// incremental path (`mapsynth::delta`) tombstones instead of
    /// rebuilding — so this constructor exists for oracles, benchmarks
    /// and fallback rebuilds that need the post-delta corpus as a
    /// first-class value.
    pub fn subset(&self, keep: impl Fn(TableId) -> bool) -> Corpus {
        let mut out = Corpus::new();
        for table in &self.tables {
            if !keep(table.id) {
                continue;
            }
            let domain = out.domain(&self.domain_names[table.domain.0 as usize]);
            let columns = table
                .columns
                .iter()
                .map(|c| {
                    Column::new(
                        c.header.map(|h| out.interner.intern(self.str_of(h))),
                        c.values
                            .iter()
                            .map(|&v| out.interner.intern(self.str_of(v)))
                            .collect(),
                    )
                })
                .collect();
            out.push_interned_table(domain, columns);
        }
        out
    }

    /// A corpus holding only the tables `keep` accepts, in the
    /// original order with densely renumbered table ids, *sharing*
    /// this corpus' interner: every `Sym` stays valid, so caches keyed
    /// by symbol (extraction state, postings) survive the rebuild.
    /// Compaction uses this; strings referenced only by dropped tables
    /// stay interned (full string reclamation is [`subset`]'s job —
    /// `Sym`s are append-only by contract).
    ///
    /// [`subset`]: Self::subset
    pub fn retain_interned(&self, keep: impl Fn(TableId) -> bool) -> Corpus {
        let mut tables: Vec<Table> = Vec::new();
        for table in &self.tables {
            if !keep(table.id) {
                continue;
            }
            let mut t = table.clone();
            t.id = TableId(tables.len() as u32);
            tables.push(t);
        }
        Corpus {
            interner: self.interner.clone(),
            tables,
            domain_names: self.domain_names.clone(),
        }
    }

    /// Apply a [`RowPatch`] in place: delete each `deleted` tuple (first
    /// matching row, by value) and append each `inserted` tuple,
    /// interning any new strings. Call this *before*
    /// `session.apply_delta` so the session sees the post-patch corpus,
    /// mirroring how added tables are pushed before the delta is
    /// applied.
    ///
    /// # Panics
    /// Panics if the table does not exist, a tuple's width differs from
    /// the table's, or a deleted tuple matches no remaining row.
    pub fn apply_row_patch(&mut self, patch: &RowPatch) {
        assert!(
            (patch.table.0 as usize) < self.tables.len(),
            "row patch targets unknown table {:?}",
            patch.table
        );
        let width = self.tables[patch.table.0 as usize].width();
        for row in &patch.deleted {
            assert_eq!(
                row.len(),
                width,
                "deleted row width {} != table width {width}",
                row.len()
            );
            // A tuple containing a never-interned string cannot match
            // any row.
            let syms: Option<Vec<Sym>> = row.iter().map(|s| self.interner.get(s)).collect();
            let table = &mut self.tables[patch.table.0 as usize];
            let at = syms.and_then(|syms| {
                (0..table.rows()).find(|&ri| {
                    table
                        .columns
                        .iter()
                        .zip(&syms)
                        .all(|(c, &s)| c.values[ri] == s)
                })
            });
            let at = at.unwrap_or_else(|| {
                panic!("deleted row {row:?} not present in table {:?}", patch.table)
            });
            for c in &mut table.columns {
                c.values.remove(at);
            }
        }
        for row in &patch.inserted {
            assert_eq!(
                row.len(),
                width,
                "inserted row width {} != table width {width}",
                row.len()
            );
            let syms: Vec<Sym> = row.iter().map(|s| self.interner.intern(s)).collect();
            let table = &mut self.tables[patch.table.0 as usize];
            for (c, s) in table.columns.iter_mut().zip(syms) {
                c.values.push(s);
            }
        }
    }

    /// Resolve a symbol to its string.
    pub fn str_of(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }
}

impl Default for Corpus {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Corpus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Corpus")
            .field("tables", &self.tables.len())
            .field("domains", &self.domain_names.len())
            .field("distinct_strings", &self.interner.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Corpus {
        let mut c = Corpus::new();
        let d = c.domain("example.org");
        c.push_table(
            d,
            vec![
                (Some("Country"), vec!["United States", "Canada", "Japan"]),
                (Some("Code"), vec!["USA", "CAN", "JPN"]),
            ],
        );
        c
    }

    #[test]
    fn push_and_lookup() {
        let c = sample();
        assert_eq!(c.len(), 1);
        let t = c.table(TableId(0));
        assert_eq!(t.rows(), 3);
        assert_eq!(t.width(), 2);
        assert_eq!(c.str_of(t.columns[0].values[1]), "Canada");
        assert_eq!(c.str_of(t.columns[1].header.unwrap()), "Code");
    }

    #[test]
    fn domain_dedup() {
        let mut c = Corpus::new();
        let a = c.domain("a.com");
        let b = c.domain("b.com");
        let a2 = c.domain("a.com");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.domain_names.len(), 2);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_table_rejected() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        c.push_table(d, vec![(None, vec!["a", "b"]), (None, vec!["c"])]);
    }

    #[test]
    fn distinct_preserves_order() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        c.push_table(d, vec![(None, vec!["b", "a", "b", "c", "a"])]);
        let col = &c.table(TableId(0)).columns[0];
        let names: Vec<&str> = col.distinct().iter().map(|&s| c.str_of(s)).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn total_columns_counts_all_tables() {
        let mut c = sample();
        let d = c.domain("second.org");
        c.push_table(
            d,
            vec![(None, vec!["x"]), (None, vec!["y"]), (None, vec!["z"])],
        );
        assert_eq!(c.total_columns(), 5);
    }
}
