//! Tables, columns and the corpus container.
//!
//! A [`Corpus`] is the paper's only input (Definition 3): a set of
//! relational tables, each a list of columns. Tables carry provenance —
//! the web domain (or spreadsheet share) they were extracted from —
//! because the curation step (paper §4.3) ranks synthesized mappings by
//! the number of *independent* domains that contributed to them.

use crate::intern::{Interner, Sym};
use std::fmt;

/// Identifier of a table within its corpus.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TableId(pub u32);

/// Identifier of a provenance domain (web site / spreadsheet share).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DomainId(pub u32);

/// A single table column: an optional header plus the cell values in
/// row order. Values are interned [`Sym`]s.
#[derive(Clone, Debug)]
pub struct Column {
    /// Column header, if the source table had one. Headers on the web
    /// are frequently undescriptive ("name", "code") — the paper's
    /// motivation for value-based rather than name-based synthesis.
    pub header: Option<Sym>,
    /// Cell values in row order.
    pub values: Vec<Sym>,
}

impl Column {
    /// Build a column from a header and values.
    pub fn new(header: Option<Sym>, values: Vec<Sym>) -> Self {
        Self { header, values }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Distinct values, in first-occurrence order.
    pub fn distinct(&self) -> Vec<Sym> {
        let mut seen = std::collections::HashSet::with_capacity(self.values.len());
        let mut out = Vec::new();
        for &v in &self.values {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }
}

/// A relational table: columns of equal length, plus provenance.
#[derive(Clone, Debug)]
pub struct Table {
    /// Identifier within the corpus.
    pub id: TableId,
    /// The web domain / share this table came from.
    pub domain: DomainId,
    /// Columns. All columns have the same number of rows.
    pub columns: Vec<Column>,
}

impl Table {
    /// Number of rows (0 for a table with no columns).
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }
}

/// A row-granular edit to one table: delete some existing rows and
/// append some new ones, leaving the table (and its id) in place.
///
/// Rows are full string tuples in column order. Deletions match by
/// value — the first row whose cells all equal the tuple is removed —
/// because external change feeds (re-crawls, spreadsheet diffs) carry
/// values, not row offsets. Deletions are applied before insertions.
#[derive(Clone, Debug)]
pub struct RowPatch {
    /// The table to edit. Must exist (and, when applied through an
    /// incremental session, must be live).
    pub table: TableId,
    /// Rows to remove, as full-width string tuples. Each must match an
    /// existing row.
    pub deleted: Vec<Vec<String>>,
    /// Rows to append, as full-width string tuples.
    pub inserted: Vec<Vec<String>>,
}

/// Why a [`RowPatch`] cannot apply to a corpus — the non-mutating
/// verdict of [`Corpus::check_row_patch`], for ingestion paths that
/// must reject bad patches instead of panicking mid-stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RowPatchError {
    /// The patch names a table the corpus does not hold.
    UnknownTable {
        /// The offending id.
        table: TableId,
    },
    /// A tuple's width differs from the table's.
    WidthMismatch {
        /// The targeted table.
        table: TableId,
        /// The tuple width found in the patch.
        width: usize,
        /// The table's actual width.
        expected: usize,
    },
    /// A deleted tuple (counted with multiplicity) matches fewer rows
    /// than the patch deletes.
    MissingRow {
        /// The targeted table.
        table: TableId,
        /// The unmatched tuple.
        row: Vec<String>,
    },
}

impl fmt::Display for RowPatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowPatchError::UnknownTable { table } => {
                write!(f, "row patch targets unknown table {table:?}")
            }
            RowPatchError::WidthMismatch {
                table,
                width,
                expected,
            } => write!(
                f,
                "row patch tuple width {width} != table {table:?} width {expected}"
            ),
            RowPatchError::MissingRow { table, row } => {
                write!(f, "deleted row {row:?} not present in table {table:?}")
            }
        }
    }
}

impl std::error::Error for RowPatchError {}

/// A corpus of tables plus the interner that owns their cell strings.
pub struct Corpus {
    /// String interner for every cell and header in the corpus.
    pub interner: Interner,
    /// All tables.
    pub tables: Vec<Table>,
    /// Human-readable names of provenance domains, indexed by
    /// [`DomainId`].
    pub domain_names: Vec<String>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self {
            interner: Interner::new(),
            tables: Vec::new(),
            domain_names: Vec::new(),
        }
    }

    /// Register (or look up) a provenance domain by name.
    pub fn domain(&mut self, name: &str) -> DomainId {
        if let Some(pos) = self.domain_names.iter().position(|d| d == name) {
            return DomainId(pos as u32);
        }
        self.domain_names.push(name.to_string());
        DomainId((self.domain_names.len() - 1) as u32)
    }

    /// Append a table built from string cells. Columns must be the same
    /// length.
    ///
    /// # Panics
    /// Panics if columns have unequal lengths.
    pub fn push_table(
        &mut self,
        domain: DomainId,
        columns: Vec<(Option<&str>, Vec<&str>)>,
    ) -> TableId {
        let rows = columns.first().map_or(0, |(_, v)| v.len());
        assert!(
            columns.iter().all(|(_, v)| v.len() == rows),
            "all columns in a table must have equal length"
        );
        let cols = columns
            .into_iter()
            .map(|(h, vals)| {
                let header = h.map(|h| self.interner.intern(h));
                let values = vals.iter().map(|v| self.interner.intern(v)).collect();
                Column::new(header, values)
            })
            .collect();
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Table {
            id,
            domain,
            columns: cols,
        });
        id
    }

    /// Append a pre-interned table. Used by generators that intern
    /// strings themselves for efficiency.
    pub fn push_interned_table(&mut self, domain: DomainId, columns: Vec<Column>) -> TableId {
        let rows = columns.first().map_or(0, Column::len);
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "all columns in a table must have equal length"
        );
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Table {
            id,
            domain,
            columns,
        });
        id
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the corpus holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of columns across all tables (the `N` of the PMI
    /// probabilities in paper Equation 1).
    pub fn total_columns(&self) -> usize {
        self.tables.iter().map(Table::width).sum()
    }

    /// Look up a table.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// A fresh corpus holding only the tables `keep` accepts, in the
    /// original order, re-interned from scratch (table ids are
    /// renumbered densely; domain names are re-registered on first
    /// use).
    ///
    /// This is the *reference* semantics of a table-removal delta: the
    /// corpus that a batch run would have seen had the removed tables
    /// never existed. [`crate::Corpus`] itself is append-only — the
    /// incremental path (`mapsynth::delta`) tombstones instead of
    /// rebuilding — so this constructor exists for oracles, benchmarks
    /// and fallback rebuilds that need the post-delta corpus as a
    /// first-class value.
    pub fn subset(&self, keep: impl Fn(TableId) -> bool) -> Corpus {
        let mut out = Corpus::new();
        for table in &self.tables {
            if !keep(table.id) {
                continue;
            }
            let domain = out.domain(&self.domain_names[table.domain.0 as usize]);
            let columns = table
                .columns
                .iter()
                .map(|c| {
                    Column::new(
                        c.header.map(|h| out.interner.intern(self.str_of(h))),
                        c.values
                            .iter()
                            .map(|&v| out.interner.intern(self.str_of(v)))
                            .collect(),
                    )
                })
                .collect();
            out.push_interned_table(domain, columns);
        }
        out
    }

    /// A corpus holding only the tables `keep` accepts, in the
    /// original order with densely renumbered table ids, *sharing*
    /// this corpus' interner: every `Sym` stays valid, so caches keyed
    /// by symbol (extraction state, postings) survive the rebuild.
    /// Compaction uses this; strings referenced only by dropped tables
    /// stay interned (full string reclamation is [`subset`]'s job —
    /// `Sym`s are append-only by contract).
    ///
    /// [`subset`]: Self::subset
    pub fn retain_interned(&self, keep: impl Fn(TableId) -> bool) -> Corpus {
        let mut tables: Vec<Table> = Vec::new();
        for table in &self.tables {
            if !keep(table.id) {
                continue;
            }
            let mut t = table.clone();
            t.id = TableId(tables.len() as u32);
            tables.push(t);
        }
        Corpus {
            interner: self.interner.clone(),
            tables,
            domain_names: self.domain_names.clone(),
        }
    }

    /// Apply a [`RowPatch`] in place: delete each `deleted` tuple (first
    /// matching row, by value) and append each `inserted` tuple,
    /// interning any new strings. Call this *before*
    /// `session.apply_delta` so the session sees the post-patch corpus,
    /// mirroring how added tables are pushed before the delta is
    /// applied.
    ///
    /// Validate a [`RowPatch`] against the current corpus **without
    /// mutating anything**: the table must exist, every tuple must
    /// match the table's width, and each deleted tuple (counted with
    /// multiplicity) must match at least that many current rows. `Ok`
    /// guarantees [`apply_row_patch`](Self::apply_row_patch) cannot
    /// panic on this patch — the transactional entry point for
    /// ingestion paths fed caller-controlled patches.
    pub fn check_row_patch(&self, patch: &RowPatch) -> Result<(), RowPatchError> {
        if (patch.table.0 as usize) >= self.tables.len() {
            return Err(RowPatchError::UnknownTable { table: patch.table });
        }
        let table = &self.tables[patch.table.0 as usize];
        let expected = table.width();
        for row in patch.deleted.iter().chain(&patch.inserted) {
            if row.len() != expected {
                return Err(RowPatchError::WidthMismatch {
                    table: patch.table,
                    width: row.len(),
                    expected,
                });
            }
        }
        // Deletions consume rows one at a time, so a tuple deleted
        // twice needs two matching rows: compare multiplicities.
        let mut demand: std::collections::HashMap<&Vec<String>, usize> = Default::default();
        for row in &patch.deleted {
            *demand.entry(row).or_insert(0) += 1;
        }
        for (row, need) in demand {
            // A tuple containing a never-interned string cannot match
            // any row.
            let syms: Option<Vec<Sym>> = row.iter().map(|s| self.interner.get(s)).collect();
            let have = match syms {
                None => 0,
                Some(syms) => (0..table.rows())
                    .filter(|&ri| {
                        table
                            .columns
                            .iter()
                            .zip(&syms)
                            .all(|(c, &s)| c.values[ri] == s)
                    })
                    .count(),
            };
            if have < need {
                return Err(RowPatchError::MissingRow {
                    table: patch.table,
                    row: row.clone(),
                });
            }
        }
        Ok(())
    }

    /// Drop every table past `len`, undoing a run of
    /// [`push_table`](Self::push_table) calls — the corpus half of a
    /// transactional rollback when a delta is rejected after its added
    /// tables were appended. Interned strings stay (symbols are
    /// append-only and harmless when dormant); the caller re-applies
    /// inverse row patches separately.
    ///
    /// # Panics
    /// Panics if `len` exceeds the current table count.
    pub fn truncate_tables(&mut self, len: usize) {
        assert!(
            len <= self.tables.len(),
            "truncate_tables({len}) on a corpus of {}",
            self.tables.len()
        );
        self.tables.truncate(len);
    }

    /// # Panics
    /// Panics if the table does not exist, a tuple's width differs from
    /// the table's, or a deleted tuple matches no remaining row
    /// (validate first with [`check_row_patch`](Self::check_row_patch)
    /// when the patch is not trusted).
    pub fn apply_row_patch(&mut self, patch: &RowPatch) {
        assert!(
            (patch.table.0 as usize) < self.tables.len(),
            "row patch targets unknown table {:?}",
            patch.table
        );
        let width = self.tables[patch.table.0 as usize].width();
        for row in &patch.deleted {
            assert_eq!(
                row.len(),
                width,
                "deleted row width {} != table width {width}",
                row.len()
            );
            // A tuple containing a never-interned string cannot match
            // any row.
            let syms: Option<Vec<Sym>> = row.iter().map(|s| self.interner.get(s)).collect();
            let table = &mut self.tables[patch.table.0 as usize];
            let at = syms.and_then(|syms| {
                (0..table.rows()).find(|&ri| {
                    table
                        .columns
                        .iter()
                        .zip(&syms)
                        .all(|(c, &s)| c.values[ri] == s)
                })
            });
            let at = at.unwrap_or_else(|| {
                panic!("deleted row {row:?} not present in table {:?}", patch.table)
            });
            for c in &mut table.columns {
                c.values.remove(at);
            }
        }
        for row in &patch.inserted {
            assert_eq!(
                row.len(),
                width,
                "inserted row width {} != table width {width}",
                row.len()
            );
            let syms: Vec<Sym> = row.iter().map(|s| self.interner.intern(s)).collect();
            let table = &mut self.tables[patch.table.0 as usize];
            for (c, s) in table.columns.iter_mut().zip(syms) {
                c.values.push(s);
            }
        }
    }

    /// Resolve a symbol to its string.
    pub fn str_of(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }
}

impl Default for Corpus {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Corpus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Corpus")
            .field("tables", &self.tables.len())
            .field("domains", &self.domain_names.len())
            .field("distinct_strings", &self.interner.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Corpus {
        let mut c = Corpus::new();
        let d = c.domain("example.org");
        c.push_table(
            d,
            vec![
                (Some("Country"), vec!["United States", "Canada", "Japan"]),
                (Some("Code"), vec!["USA", "CAN", "JPN"]),
            ],
        );
        c
    }

    #[test]
    fn push_and_lookup() {
        let c = sample();
        assert_eq!(c.len(), 1);
        let t = c.table(TableId(0));
        assert_eq!(t.rows(), 3);
        assert_eq!(t.width(), 2);
        assert_eq!(c.str_of(t.columns[0].values[1]), "Canada");
        assert_eq!(c.str_of(t.columns[1].header.unwrap()), "Code");
    }

    #[test]
    fn domain_dedup() {
        let mut c = Corpus::new();
        let a = c.domain("a.com");
        let b = c.domain("b.com");
        let a2 = c.domain("a.com");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.domain_names.len(), 2);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_table_rejected() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        c.push_table(d, vec![(None, vec!["a", "b"]), (None, vec!["c"])]);
    }

    #[test]
    fn distinct_preserves_order() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        c.push_table(d, vec![(None, vec!["b", "a", "b", "c", "a"])]);
        let col = &c.table(TableId(0)).columns[0];
        let names: Vec<&str> = col.distinct().iter().map(|&s| c.str_of(s)).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn total_columns_counts_all_tables() {
        let mut c = sample();
        let d = c.domain("second.org");
        c.push_table(
            d,
            vec![(None, vec!["x"]), (None, vec!["y"]), (None, vec!["z"])],
        );
        assert_eq!(c.total_columns(), 5);
    }

    fn rows(rows: &[(&str, &str)]) -> Vec<Vec<String>> {
        rows.iter()
            .map(|&(l, r)| vec![l.to_string(), r.to_string()])
            .collect()
    }

    #[test]
    fn check_row_patch_verdicts() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        let t = c.push_table(
            d,
            vec![
                (Some("l"), vec!["a", "b", "a"]),
                (Some("r"), vec!["1", "2", "1"]),
            ],
        );

        // Valid: duplicate tuple deleted twice (two matching rows).
        let ok = RowPatch {
            table: t,
            deleted: rows(&[("a", "1"), ("a", "1")]),
            inserted: rows(&[("c", "3")]),
        };
        assert_eq!(c.check_row_patch(&ok), Ok(()));

        // Same tuple deleted three times: only two rows match.
        let over = RowPatch {
            table: t,
            deleted: rows(&[("a", "1"), ("a", "1"), ("a", "1")]),
            inserted: vec![],
        };
        assert_eq!(
            c.check_row_patch(&over),
            Err(RowPatchError::MissingRow {
                table: t,
                row: vec!["a".to_string(), "1".to_string()]
            })
        );

        // Never-interned string: no row can match.
        let ghost = RowPatch {
            table: t,
            deleted: rows(&[("zzz", "1")]),
            inserted: vec![],
        };
        assert!(matches!(
            c.check_row_patch(&ghost),
            Err(RowPatchError::MissingRow { .. })
        ));

        let wide = RowPatch {
            table: t,
            deleted: vec![],
            inserted: vec![vec!["only-one".to_string()]],
        };
        assert_eq!(
            c.check_row_patch(&wide),
            Err(RowPatchError::WidthMismatch {
                table: t,
                width: 1,
                expected: 2
            })
        );

        let missing_table = RowPatch {
            table: TableId(99),
            deleted: vec![],
            inserted: rows(&[("c", "3")]),
        };
        assert_eq!(
            c.check_row_patch(&missing_table),
            Err(RowPatchError::UnknownTable { table: TableId(99) })
        );

        // Ok implies apply cannot panic.
        c.apply_row_patch(&ok);
        assert_eq!(c.table(t).rows(), 2);
    }

    #[test]
    fn truncate_tables_undoes_pushes() {
        let mut c = Corpus::new();
        let d = c.domain("x");
        c.push_table(d, vec![(None, vec!["a"])]);
        let before = c.len();
        c.push_table(d, vec![(None, vec!["b"])]);
        c.push_table(d, vec![(None, vec!["c"])]);
        c.truncate_tables(before);
        assert_eq!(c.len(), before);
        // Interned strings stay; re-pushing re-uses them.
        let t = c.push_table(d, vec![(None, vec!["b"])]);
        assert_eq!(c.table(t).id, TableId(1));
    }
}
