//! Candidate two-column ("binary") tables, plus the binary spill
//! format shard builds stream their artifacts through.
//!
//! The unit of synthesis (paper §3): an *ordered* pair of columns
//! `(left, right)` drawn from one source table, stored as a
//! deduplicated set of `(l, r)` value pairs. Extraction produces these;
//! the synthesis graph's vertices are these.
//!
//! [`SpillWriter`]/[`SpillReader`] are the on-disk half of the
//! bounded-memory shard builds: a shard serializes its output as
//! length-prefixed frames of `u32` words (everything the sharded
//! value-space and blocking builds produce is u32-shaped), drops it
//! from memory, and the stitch phase streams the frames back. The
//! format carries no interpretation — each spill site defines its own
//! frame layout — so the round trip is trivially byte-exact.

use crate::intern::Sym;
use crate::table::{DomainId, TableId};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Identifier of a binary candidate table within one extraction run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BinaryId(pub u32);

/// A candidate two-column table `B = {(l_i, r_i)}`.
#[derive(Clone, Debug)]
pub struct BinaryTable {
    /// Identifier within the candidate set.
    pub id: BinaryId,
    /// Source table.
    pub source: TableId,
    /// Provenance domain of the source table (for curation stats).
    pub domain: DomainId,
    /// Index of the left column in the source table.
    pub left_col: u16,
    /// Index of the right column in the source table.
    pub right_col: u16,
    /// Header of the left column, if present (used by name-based
    /// baselines like UnionDomain, not by synthesis itself).
    pub left_header: Option<Sym>,
    /// Header of the right column, if present.
    pub right_header: Option<Sym>,
    /// Deduplicated `(left, right)` value pairs, sorted for fast
    /// set operations.
    pub pairs: Vec<(Sym, Sym)>,
}

impl BinaryTable {
    /// Build a binary table from (possibly duplicated, unsorted) row
    /// pairs; deduplicates and sorts.
    pub fn new(
        id: BinaryId,
        source: TableId,
        domain: DomainId,
        left_col: u16,
        right_col: u16,
        mut pairs: Vec<(Sym, Sym)>,
    ) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        Self {
            id,
            source,
            domain,
            left_col,
            right_col,
            left_header: None,
            right_header: None,
            pairs,
        }
    }

    /// Attach column headers.
    pub fn with_headers(mut self, left: Option<Sym>, right: Option<Sym>) -> Self {
        self.left_header = left;
        self.right_header = right;
        self
    }

    /// Number of distinct value pairs `|B|`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the table has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate left values (with duplicates if a left value maps to
    /// several rights).
    pub fn lefts(&self) -> impl Iterator<Item = Sym> + '_ {
        self.pairs.iter().map(|&(l, _)| l)
    }

    /// Iterate right values.
    pub fn rights(&self) -> impl Iterator<Item = Sym> + '_ {
        self.pairs.iter().map(|&(_, r)| r)
    }

    /// Exact set intersection size `|B ∩ B'|` on interned pairs.
    /// (The synthesis layer refines this with normalization and
    /// approximate matching; this raw version is used in tests and as a
    /// fast path.)
    pub fn exact_overlap(&self, other: &BinaryTable) -> usize {
        let (a, b) = (&self.pairs, &other.pairs);
        let mut i = 0;
        let mut j = 0;
        let mut n = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

/// Streams length-prefixed `u32` frames to a spill file. One writer
/// per shard; shard paths are distinct, so parallel shard workers
/// never share a file.
pub struct SpillWriter {
    out: BufWriter<File>,
}

impl SpillWriter {
    /// Create (truncate) the spill file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(File::create(path)?),
        })
    }

    /// Append one frame: a `u32` little-endian length prefix followed
    /// by the words.
    pub fn write_frame(&mut self, words: &[u32]) -> io::Result<()> {
        let len = u32::try_from(words.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "spill frame too long"))?;
        self.out.write_all(&len.to_le_bytes())?;
        for w in words {
            self.out.write_all(&w.to_le_bytes())?;
        }
        Ok(())
    }

    /// Flush and close the file.
    pub fn finish(mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Streams frames back from a spill file in write order.
pub struct SpillReader {
    input: BufReader<File>,
}

impl SpillReader {
    /// Open the spill file at `path`.
    pub fn open(path: &Path) -> io::Result<Self> {
        Ok(Self {
            input: BufReader::new(File::open(path)?),
        })
    }

    /// The next frame, or `None` at a clean end of file. A truncated
    /// frame (EOF mid-record) is an error, never a silent `None`.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u32>>> {
        let mut len_buf = [0u8; 4];
        match self.input.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut words = vec![0u32; len];
        let mut buf = [0u8; 4];
        for w in &mut words {
            self.input.read_exact(&mut buf)?;
            *w = u32::from_le_bytes(buf);
        }
        Ok(Some(words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bt(id: u32, pairs: Vec<(u32, u32)>) -> BinaryTable {
        BinaryTable::new(
            BinaryId(id),
            TableId(0),
            DomainId(0),
            0,
            1,
            pairs.into_iter().map(|(a, b)| (Sym(a), Sym(b))).collect(),
        )
    }

    #[test]
    fn dedup_and_sort() {
        let b = bt(0, vec![(3, 4), (1, 2), (3, 4), (1, 2)]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.pairs, vec![(Sym(1), Sym(2)), (Sym(3), Sym(4))]);
    }

    #[test]
    fn exact_overlap_symmetric() {
        let a = bt(0, vec![(1, 2), (3, 4), (5, 6)]);
        let b = bt(1, vec![(3, 4), (5, 6), (7, 8)]);
        assert_eq!(a.exact_overlap(&b), 2);
        assert_eq!(b.exact_overlap(&a), 2);
        assert_eq!(a.exact_overlap(&a), 3);
    }

    #[test]
    fn empty_table() {
        let e = bt(0, vec![]);
        let a = bt(1, vec![(1, 2)]);
        assert!(e.is_empty());
        assert_eq!(e.exact_overlap(&a), 0);
    }

    #[test]
    fn spill_round_trips_frames_in_order() {
        let dir = std::env::temp_dir().join(format!("mapsynth-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frames.spill");
        let frames: Vec<Vec<u32>> =
            vec![vec![], vec![7], (0..1000).collect(), vec![u32::MAX, 0, 42]];
        let mut w = SpillWriter::create(&path).unwrap();
        for f in &frames {
            w.write_frame(f).unwrap();
        }
        w.finish().unwrap();
        let mut r = SpillReader::open(&path).unwrap();
        for f in &frames {
            assert_eq!(r.next_frame().unwrap().as_ref(), Some(f));
        }
        assert!(r.next_frame().unwrap().is_none());
        assert!(r.next_frame().unwrap().is_none(), "EOF is sticky");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_spill_frame_is_an_error() {
        let dir = std::env::temp_dir().join(format!("mapsynth-trunc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.spill");
        let mut w = SpillWriter::create(&path).unwrap();
        w.write_frame(&[1, 2, 3]).unwrap();
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 2]).unwrap();
        let mut r = SpillReader::open(&path).unwrap();
        assert!(r.next_frame().is_err(), "mid-frame EOF must not be silent");
        std::fs::remove_dir_all(&dir).ok();
    }
}
