//! Candidate two-column ("binary") tables, plus the binary spill
//! format shard builds stream their artifacts through.
//!
//! The unit of synthesis (paper §3): an *ordered* pair of columns
//! `(left, right)` drawn from one source table, stored as a
//! deduplicated set of `(l, r)` value pairs. Extraction produces these;
//! the synthesis graph's vertices are these.
//!
//! [`SpillWriter`]/[`SpillReader`] are the on-disk half of the
//! bounded-memory shard builds: a shard serializes its output as
//! length-prefixed frames of `u32` words (everything the sharded
//! value-space and blocking builds produce is u32-shaped), drops it
//! from memory, and the stitch phase streams the frames back. The
//! format carries no interpretation — each spill site defines its own
//! frame layout — so the round trip is trivially byte-exact.
//!
//! [`FrameWriter`]/[`FrameReader`] are the *durable* sibling: the
//! checksummed framing the crash-safe persistence layer (snapshot
//! archives, the delta WAL) stores its records in. Unlike spill files —
//! transient, single-process, deleted after the stitch — framed files
//! survive process death and must therefore detect every way a file
//! can rot: a versioned magic header binds the file to a format
//! revision and a caller-chosen `kind`, every frame carries a CRC32 of
//! its payload, and a sealed file ends in a trailer recording the
//! frame count. Each failure mode gets its own [`FrameError`] variant,
//! so recovery code can distinguish a clean end of file from a torn
//! tail from actual corruption — the distinction the WAL's
//! truncate-the-torn-record / fail-on-corruption policy rests on.
//! The CRC32 (reflected IEEE polynomial) is hand-rolled — the
//! workspace vendors every dependency, so no checksum crate.

use crate::intern::Sym;
use crate::table::{DomainId, TableId};
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Identifier of a binary candidate table within one extraction run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BinaryId(pub u32);

/// A candidate two-column table `B = {(l_i, r_i)}`.
#[derive(Clone, Debug)]
pub struct BinaryTable {
    /// Identifier within the candidate set.
    pub id: BinaryId,
    /// Source table.
    pub source: TableId,
    /// Provenance domain of the source table (for curation stats).
    pub domain: DomainId,
    /// Index of the left column in the source table.
    pub left_col: u16,
    /// Index of the right column in the source table.
    pub right_col: u16,
    /// Header of the left column, if present (used by name-based
    /// baselines like UnionDomain, not by synthesis itself).
    pub left_header: Option<Sym>,
    /// Header of the right column, if present.
    pub right_header: Option<Sym>,
    /// Deduplicated `(left, right)` value pairs, sorted for fast
    /// set operations.
    pub pairs: Vec<(Sym, Sym)>,
}

impl BinaryTable {
    /// Build a binary table from (possibly duplicated, unsorted) row
    /// pairs; deduplicates and sorts.
    pub fn new(
        id: BinaryId,
        source: TableId,
        domain: DomainId,
        left_col: u16,
        right_col: u16,
        mut pairs: Vec<(Sym, Sym)>,
    ) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        Self {
            id,
            source,
            domain,
            left_col,
            right_col,
            left_header: None,
            right_header: None,
            pairs,
        }
    }

    /// Attach column headers.
    pub fn with_headers(mut self, left: Option<Sym>, right: Option<Sym>) -> Self {
        self.left_header = left;
        self.right_header = right;
        self
    }

    /// Number of distinct value pairs `|B|`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the table has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate left values (with duplicates if a left value maps to
    /// several rights).
    pub fn lefts(&self) -> impl Iterator<Item = Sym> + '_ {
        self.pairs.iter().map(|&(l, _)| l)
    }

    /// Iterate right values.
    pub fn rights(&self) -> impl Iterator<Item = Sym> + '_ {
        self.pairs.iter().map(|&(_, r)| r)
    }

    /// Exact set intersection size `|B ∩ B'|` on interned pairs.
    /// (The synthesis layer refines this with normalization and
    /// approximate matching; this raw version is used in tests and as a
    /// fast path.)
    pub fn exact_overlap(&self, other: &BinaryTable) -> usize {
        let (a, b) = (&self.pairs, &other.pairs);
        let mut i = 0;
        let mut j = 0;
        let mut n = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

/// Streams length-prefixed `u32` frames to a spill file. One writer
/// per shard; shard paths are distinct, so parallel shard workers
/// never share a file.
pub struct SpillWriter {
    out: BufWriter<File>,
}

impl SpillWriter {
    /// Create (truncate) the spill file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(File::create(path)?),
        })
    }

    /// Append one frame: a `u32` little-endian length prefix followed
    /// by the words.
    pub fn write_frame(&mut self, words: &[u32]) -> io::Result<()> {
        let len = u32::try_from(words.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "spill frame too long"))?;
        self.out.write_all(&len.to_le_bytes())?;
        for w in words {
            self.out.write_all(&w.to_le_bytes())?;
        }
        Ok(())
    }

    /// Flush and close the file.
    pub fn finish(mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Streams frames back from a spill file in write order.
pub struct SpillReader {
    input: BufReader<File>,
}

impl SpillReader {
    /// Open the spill file at `path`.
    pub fn open(path: &Path) -> io::Result<Self> {
        Ok(Self {
            input: BufReader::new(File::open(path)?),
        })
    }

    /// The next frame, or `None` at a clean end of file. A truncated
    /// frame — EOF anywhere mid-record, *including* inside the length
    /// prefix itself — is an error, never a silent `None`.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u32>>> {
        let mut len_buf = [0u8; 4];
        match read_full(&mut self.input, &mut len_buf)? {
            Fill::Full => {}
            Fill::Empty => return Ok(None),
            Fill::Partial => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "spill frame torn inside its length prefix",
                ))
            }
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut words = vec![0u32; len];
        let mut buf = [0u8; 4];
        for w in &mut words {
            self.input.read_exact(&mut buf)?;
            *w = u32::from_le_bytes(buf);
        }
        Ok(Some(words))
    }
}

/// Current revision of the checksummed frame format.
pub const FRAME_VERSION: u32 = 1;
/// File magic opening every framed file.
const FRAME_MAGIC: [u8; 4] = *b"MSFR";
/// Length sentinel introducing the trailer (deliberately larger than
/// [`MAX_FRAME_LEN`], so it can never be a real frame length).
const TRAILER_MARK: u32 = u32::MAX;
/// Upper bound on a single frame's payload (256 MiB). A corrupted
/// length prefix above this is reported as
/// [`FrameError::OversizedFrame`] instead of attempting the
/// allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 28;

/// Table-driven CRC-32 (reflected IEEE 802.3 polynomial `0xEDB88320`),
/// hand-rolled because the workspace vendors every dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = u32::MAX;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ u32::MAX
}

/// Why a framed file could not be read. Every on-disk failure mode is
/// distinguishable, because the persistence layer's recovery policy
/// branches on *which* one it hit: a clean end of file on an unsealed
/// file is normal for an in-progress WAL segment, a torn tail is
/// truncated away, everything else is corruption.
#[derive(Debug)]
pub enum FrameError {
    /// An I/O error other than end of file.
    Io(io::Error),
    /// The file does not start with the frame magic.
    BadMagic {
        /// The four bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The file was written by a different format revision.
    VersionMismatch {
        /// Version recorded in the header.
        found: u32,
        /// The revision this reader supports.
        supported: u32,
    },
    /// The file's kind tag is not the one the caller expected (e.g. a
    /// WAL segment opened as a snapshot archive).
    KindMismatch {
        /// Kind recorded in the header.
        found: u32,
        /// Kind the caller asked for.
        expected: u32,
    },
    /// The header checksum does not cover its bytes (a flipped bit in
    /// the first 16 bytes).
    HeaderCorrupt,
    /// End of file in the middle of a unit (header, frame, or
    /// trailer) — a torn write. `offset` is the end of the last whole
    /// unit, i.e. the length a tolerant reader truncates the file to.
    Truncated {
        /// Byte offset of the last complete unit's end.
        offset: u64,
    },
    /// A frame length prefix above [`MAX_FRAME_LEN`] — a corrupted
    /// length, refused before the allocation it implies.
    OversizedFrame {
        /// The absurd length read.
        len: u32,
        /// Byte offset of the frame's length prefix.
        offset: u64,
    },
    /// A frame (or trailer) checksum mismatch — payload bytes rotted.
    ChecksumMismatch {
        /// 0-based index of the failing frame (== frames read so far).
        frame: u64,
        /// Byte offset of the failing unit.
        offset: u64,
    },
    /// A reader that required a sealed file reached a clean end of
    /// file without finding the trailer.
    MissingTrailer {
        /// Whole frames read before the end.
        frames: u64,
    },
    /// The trailer's recorded frame count disagrees with the frames
    /// actually read — frames were lost or the trailer belongs to a
    /// different write.
    TrailerMismatch {
        /// Frames actually read.
        counted: u64,
        /// Frame count recorded in the trailer.
        recorded: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadMagic { found } => write!(f, "bad magic {found:?}"),
            FrameError::VersionMismatch { found, supported } => {
                write!(f, "format version {found} (supported: {supported})")
            }
            FrameError::KindMismatch { found, expected } => {
                write!(f, "file kind {found:#x} (expected {expected:#x})")
            }
            FrameError::HeaderCorrupt => write!(f, "header checksum mismatch"),
            FrameError::Truncated { offset } => {
                write!(f, "torn write: end of file mid-unit after offset {offset}")
            }
            FrameError::OversizedFrame { len, offset } => {
                write!(
                    f,
                    "frame length {len} at offset {offset} exceeds the format maximum"
                )
            }
            FrameError::ChecksumMismatch { frame, offset } => {
                write!(f, "checksum mismatch at frame {frame} (offset {offset})")
            }
            FrameError::MissingTrailer { frames } => {
                write!(f, "clean end of file after {frames} frames, but no trailer")
            }
            FrameError::TrailerMismatch { counted, recorded } => {
                write!(f, "trailer records {recorded} frames, read {counted}")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// How a fully-read framed file ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameTail {
    /// A valid trailer was found: the file is complete.
    Sealed,
    /// Clean end of file with no trailer: an unsealed (in-progress)
    /// file whose every frame was nonetheless whole.
    CleanEof,
}

/// Writes checksummed frames: a 16-byte header (magic, format
/// version, caller kind, header CRC), then per frame a `u32` LE length
/// prefix, the payload, and the payload's CRC32.
/// [`finish`](FrameWriter::finish) seals the file with a trailer;
/// [`sync`](FrameWriter::sync) makes everything written so far durable
/// without sealing (the WAL's append-fsync primitive).
pub struct FrameWriter {
    out: BufWriter<File>,
    frames: u64,
    bytes: u64,
}

impl FrameWriter {
    /// Create (truncate) a framed file of the given `kind` at `path`
    /// and write its header.
    pub fn create(path: &Path, kind: u32) -> Result<Self, FrameError> {
        let mut header = [0u8; 16];
        header[..4].copy_from_slice(&FRAME_MAGIC);
        header[4..8].copy_from_slice(&FRAME_VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&kind.to_le_bytes());
        let crc = crc32(&header[..12]);
        header[12..16].copy_from_slice(&crc.to_le_bytes());
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&header)?;
        Ok(Self {
            out,
            frames: 0,
            bytes: 16,
        })
    }

    /// Append one checksummed frame.
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
        if len > MAX_FRAME_LEN {
            return Err(FrameError::OversizedFrame {
                len,
                offset: self.bytes,
            });
        }
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(payload)?;
        self.out.write_all(&crc32(payload).to_le_bytes())?;
        self.frames += 1;
        self.bytes += 8 + payload.len() as u64;
        Ok(())
    }

    /// Flush and fsync everything appended so far **without** sealing:
    /// after this returns, every whole frame written survives a crash
    /// (a reader sees at worst a torn final frame beyond them).
    pub fn sync(&mut self) -> Result<(), FrameError> {
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        Ok(())
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.frames
    }

    /// Bytes written so far (header included) — the WAL's segment
    /// rotation threshold reads this.
    pub fn len(&self) -> u64 {
        self.bytes
    }

    /// Whether nothing beyond the header has been written.
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// Seal the file: write the trailer (sentinel, frame count, CRC),
    /// flush, and fsync file contents *and* metadata.
    pub fn finish(mut self) -> Result<(), FrameError> {
        let mut trailer = [0u8; 16];
        trailer[..4].copy_from_slice(&TRAILER_MARK.to_le_bytes());
        trailer[4..12].copy_from_slice(&self.frames.to_le_bytes());
        let crc = crc32(&trailer[4..12]);
        trailer[12..16].copy_from_slice(&crc.to_le_bytes());
        self.out.write_all(&trailer)?;
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        Ok(())
    }
}

/// How many bytes [`read_full`] managed to fill.
enum Fill {
    Full,
    Empty,
    Partial,
}

/// Read exactly `buf.len()` bytes, distinguishing "no bytes at all"
/// (a clean end of file between units) from "some but not all" (a
/// torn unit).
fn read_full(input: &mut impl Read, buf: &mut [u8]) -> io::Result<Fill> {
    let mut n = 0;
    while n < buf.len() {
        match input.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(if n == buf.len() {
        Fill::Full
    } else if n == 0 {
        Fill::Empty
    } else {
        Fill::Partial
    })
}

/// Streams checksummed frames back, validating the header on open and
/// every CRC on the way. After [`next_frame`](Self::next_frame)
/// returns `Ok(None)`, [`tail`](Self::tail) says whether the file was
/// sealed; on an error, [`valid_len`](Self::valid_len) is the byte
/// length of the intact prefix (what a tolerant tail reader truncates
/// to).
pub struct FrameReader {
    input: BufReader<File>,
    /// End offset of the last whole unit read (header counts).
    offset: u64,
    frames: u64,
    tail: Option<FrameTail>,
}

impl FrameReader {
    /// Open a framed file, validating magic, header CRC, format
    /// version, and the expected `kind` — in that order, so a rotted
    /// header reports corruption rather than a bogus version.
    pub fn open(path: &Path, kind: u32) -> Result<Self, FrameError> {
        let mut input = BufReader::new(File::open(path)?);
        let mut header = [0u8; 16];
        match read_full(&mut input, &mut header)? {
            Fill::Full => {}
            _ => return Err(FrameError::Truncated { offset: 0 }),
        }
        if header[..4] != FRAME_MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&header[..4]);
            return Err(FrameError::BadMagic { found });
        }
        let stored = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        if stored != crc32(&header[..12]) {
            return Err(FrameError::HeaderCorrupt);
        }
        let version = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if version != FRAME_VERSION {
            return Err(FrameError::VersionMismatch {
                found: version,
                supported: FRAME_VERSION,
            });
        }
        let found_kind = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if found_kind != kind {
            return Err(FrameError::KindMismatch {
                found: found_kind,
                expected: kind,
            });
        }
        Ok(Self {
            input,
            offset: 16,
            frames: 0,
            tail: None,
        })
    }

    /// The next frame's payload, or `None` once the file ends —
    /// check [`tail`](Self::tail) for *how* it ended. Truncation and
    /// corruption are typed errors, never a silent `None`.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.tail.is_some() {
            return Ok(None);
        }
        let mut len_buf = [0u8; 4];
        match read_full(&mut self.input, &mut len_buf)? {
            Fill::Empty => {
                self.tail = Some(FrameTail::CleanEof);
                return Ok(None);
            }
            Fill::Partial => {
                return Err(FrameError::Truncated {
                    offset: self.offset,
                })
            }
            Fill::Full => {}
        }
        let len = u32::from_le_bytes(len_buf);
        if len == TRAILER_MARK {
            let mut rest = [0u8; 12];
            match read_full(&mut self.input, &mut rest)? {
                Fill::Full => {}
                _ => {
                    return Err(FrameError::Truncated {
                        offset: self.offset,
                    })
                }
            }
            let recorded = u64::from_le_bytes([
                rest[0], rest[1], rest[2], rest[3], rest[4], rest[5], rest[6], rest[7],
            ]);
            let stored = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]);
            if stored != crc32(&rest[..8]) {
                return Err(FrameError::ChecksumMismatch {
                    frame: self.frames,
                    offset: self.offset,
                });
            }
            if recorded != self.frames {
                return Err(FrameError::TrailerMismatch {
                    counted: self.frames,
                    recorded,
                });
            }
            self.offset += 16;
            self.tail = Some(FrameTail::Sealed);
            return Ok(None);
        }
        if len > MAX_FRAME_LEN {
            return Err(FrameError::OversizedFrame {
                len,
                offset: self.offset,
            });
        }
        let mut payload = vec![0u8; len as usize];
        match read_full(&mut self.input, &mut payload)? {
            Fill::Full => {}
            _ => {
                return Err(FrameError::Truncated {
                    offset: self.offset,
                })
            }
        }
        let mut crc_buf = [0u8; 4];
        match read_full(&mut self.input, &mut crc_buf)? {
            Fill::Full => {}
            _ => {
                return Err(FrameError::Truncated {
                    offset: self.offset,
                })
            }
        }
        if u32::from_le_bytes(crc_buf) != crc32(&payload) {
            return Err(FrameError::ChecksumMismatch {
                frame: self.frames,
                offset: self.offset,
            });
        }
        self.offset += 8 + u64::from(len);
        self.frames += 1;
        Ok(Some(payload))
    }

    /// How the file ended, once `next_frame` has returned `Ok(None)`.
    pub fn tail(&self) -> Option<FrameTail> {
        self.tail
    }

    /// Whole frames read so far.
    pub fn frames_read(&self) -> u64 {
        self.frames
    }

    /// Byte length of the intact prefix: the end of the last whole
    /// unit read. After a [`FrameError::Truncated`], truncating the
    /// file to this length removes exactly the torn tail.
    pub fn valid_len(&self) -> u64 {
        self.offset
    }
}

/// Read a **sealed** framed file completely. Any tail other than a
/// valid trailer — including a clean but unsealed end of file — is an
/// error: archives are written atomically, so an unsealed archive is
/// a broken invariant, not an in-progress write.
pub fn read_sealed(path: &Path, kind: u32) -> Result<Vec<Vec<u8>>, FrameError> {
    let mut reader = FrameReader::open(path, kind)?;
    let mut frames = Vec::new();
    while let Some(f) = reader.next_frame()? {
        frames.push(f);
    }
    match reader.tail() {
        Some(FrameTail::Sealed) => Ok(frames),
        _ => Err(FrameError::MissingTrailer {
            frames: reader.frames_read(),
        }),
    }
}

pub mod wire {
    //! Little-endian byte-encoding helpers shared by every durable
    //! record format (portable deltas, archived snapshots): writers
    //! append to a `Vec<u8>`, [`WireReader`] decodes with typed
    //! errors so a corrupted-but-checksum-valid record (impossible
    //! short of a CRC collision, but decoders must not panic) degrades
    //! to a [`WireError`] instead of a panic.

    use std::fmt;

    /// Typed decode failure.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum WireError {
        /// The buffer ended before the value.
        UnexpectedEnd {
            /// Offset at which more bytes were needed.
            at: usize,
        },
        /// A string's bytes are not UTF-8.
        BadUtf8 {
            /// Offset of the string's length prefix.
            at: usize,
        },
        /// A tag byte (`Option`/`bool` discriminant) out of range.
        BadTag {
            /// Offset of the tag.
            at: usize,
            /// The byte found.
            found: u8,
        },
        /// Structurally impossible content (e.g. a shard count that is
        /// not a power of two).
        Invalid {
            /// What invariant the content broke.
            what: &'static str,
        },
        /// Decoding finished with bytes left over.
        TrailingBytes {
            /// Bytes remaining past the decoded value.
            remaining: usize,
        },
    }

    impl fmt::Display for WireError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                WireError::UnexpectedEnd { at } => write!(f, "record ends at offset {at}"),
                WireError::BadUtf8 { at } => write!(f, "non-UTF-8 string at offset {at}"),
                WireError::BadTag { at, found } => {
                    write!(f, "bad tag byte {found:#x} at offset {at}")
                }
                WireError::Invalid { what } => write!(f, "invalid content: {what}"),
                WireError::TrailingBytes { remaining } => {
                    write!(f, "{remaining} bytes left after the record")
                }
            }
        }
    }

    impl std::error::Error for WireError {}

    /// Append a `u8`.
    pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
        buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_u32(buf, s.len() as u32);
        buf.extend_from_slice(s.as_bytes());
    }

    /// Append an optional string as a tag byte plus the string.
    pub fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
        match s {
            None => put_u8(buf, 0),
            Some(s) => {
                put_u8(buf, 1);
                put_str(buf, s);
            }
        }
    }

    /// Cursor decoding the formats the `put_*` writers produce.
    pub struct WireReader<'a> {
        buf: &'a [u8],
        at: usize,
    }

    impl<'a> WireReader<'a> {
        /// Decode from the start of `buf`.
        pub fn new(buf: &'a [u8]) -> Self {
            Self { buf, at: 0 }
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
            let end = self
                .at
                .checked_add(n)
                .filter(|&e| e <= self.buf.len())
                .ok_or(WireError::UnexpectedEnd { at: self.at })?;
            let s = &self.buf[self.at..end];
            self.at = end;
            Ok(s)
        }

        /// Next `u8`.
        pub fn u8(&mut self) -> Result<u8, WireError> {
            Ok(self.take(1)?[0])
        }

        /// Next little-endian `u32`.
        pub fn u32(&mut self) -> Result<u32, WireError> {
            let b = self.take(4)?;
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        }

        /// Next little-endian `u64`.
        pub fn u64(&mut self) -> Result<u64, WireError> {
            let b = self.take(8)?;
            Ok(u64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ]))
        }

        /// Next length-prefixed UTF-8 string.
        pub fn str(&mut self) -> Result<String, WireError> {
            let at = self.at;
            let len = self.u32()? as usize;
            let bytes = self
                .take(len)
                .map_err(|_| WireError::UnexpectedEnd { at })?;
            String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8 { at })
        }

        /// Next optional string (tag byte + string).
        pub fn opt_str(&mut self) -> Result<Option<String>, WireError> {
            let at = self.at;
            match self.u8()? {
                0 => Ok(None),
                1 => Ok(Some(self.str()?)),
                found => Err(WireError::BadTag { at, found }),
            }
        }

        /// Offset decoded so far.
        pub fn position(&self) -> usize {
            self.at
        }

        /// Bytes not yet decoded.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.at
        }

        /// Assert the whole buffer was consumed.
        pub fn finish(&self) -> Result<(), WireError> {
            if self.at == self.buf.len() {
                Ok(())
            } else {
                Err(WireError::TrailingBytes {
                    remaining: self.buf.len() - self.at,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bt(id: u32, pairs: Vec<(u32, u32)>) -> BinaryTable {
        BinaryTable::new(
            BinaryId(id),
            TableId(0),
            DomainId(0),
            0,
            1,
            pairs.into_iter().map(|(a, b)| (Sym(a), Sym(b))).collect(),
        )
    }

    #[test]
    fn dedup_and_sort() {
        let b = bt(0, vec![(3, 4), (1, 2), (3, 4), (1, 2)]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.pairs, vec![(Sym(1), Sym(2)), (Sym(3), Sym(4))]);
    }

    #[test]
    fn exact_overlap_symmetric() {
        let a = bt(0, vec![(1, 2), (3, 4), (5, 6)]);
        let b = bt(1, vec![(3, 4), (5, 6), (7, 8)]);
        assert_eq!(a.exact_overlap(&b), 2);
        assert_eq!(b.exact_overlap(&a), 2);
        assert_eq!(a.exact_overlap(&a), 3);
    }

    #[test]
    fn empty_table() {
        let e = bt(0, vec![]);
        let a = bt(1, vec![(1, 2)]);
        assert!(e.is_empty());
        assert_eq!(e.exact_overlap(&a), 0);
    }

    #[test]
    fn spill_round_trips_frames_in_order() {
        let dir = std::env::temp_dir().join(format!("mapsynth-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frames.spill");
        let frames: Vec<Vec<u32>> =
            vec![vec![], vec![7], (0..1000).collect(), vec![u32::MAX, 0, 42]];
        let mut w = SpillWriter::create(&path).unwrap();
        for f in &frames {
            w.write_frame(f).unwrap();
        }
        w.finish().unwrap();
        let mut r = SpillReader::open(&path).unwrap();
        for f in &frames {
            assert_eq!(r.next_frame().unwrap().as_ref(), Some(f));
        }
        assert!(r.next_frame().unwrap().is_none());
        assert!(r.next_frame().unwrap().is_none(), "EOF is sticky");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_spill_frame_is_an_error() {
        let dir = std::env::temp_dir().join(format!("mapsynth-trunc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.spill");
        let mut w = SpillWriter::create(&path).unwrap();
        w.write_frame(&[1, 2, 3]).unwrap();
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 2]).unwrap();
        let mut r = SpillReader::open(&path).unwrap();
        assert!(r.next_frame().is_err(), "mid-frame EOF must not be silent");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mapsynth-{tag}-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A multi-frame spill file must distinguish clean EOF from a torn
    /// frame at *every* prefix length: the reader either yields some
    /// whole frames then `Ok(None)` (prefix ends exactly on a frame
    /// boundary) or errors (prefix ends mid-frame) — never a silent
    /// short read.
    #[test]
    fn spill_truncation_sweep_every_byte_offset() {
        let dir = tmp_dir("spill-sweep");
        let path = dir.join("full.spill");
        let frames: Vec<Vec<u32>> = vec![vec![], vec![9, 8], vec![1, 2, 3], vec![u32::MAX]];
        let mut w = SpillWriter::create(&path).unwrap();
        for f in &frames {
            w.write_frame(f).unwrap();
        }
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        // Byte offsets at which a truncated file is *valid* (ends on a
        // frame boundary), and how many whole frames each holds.
        let mut boundaries = vec![(0u64, 0usize)];
        let mut off = 0u64;
        for (i, f) in frames.iter().enumerate() {
            off += 4 + 4 * f.len() as u64;
            boundaries.push((off, i + 1));
        }
        assert_eq!(off, full.len() as u64);
        for cut in 0..=full.len() {
            let p = dir.join("cut.spill");
            std::fs::write(&p, &full[..cut]).unwrap();
            let mut r = SpillReader::open(&p).unwrap();
            let mut got = Vec::new();
            let outcome = loop {
                match r.next_frame() {
                    Ok(Some(f)) => got.push(f),
                    Ok(None) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            match boundaries.iter().find(|&&(b, _)| b == cut as u64) {
                Some(&(_, n)) => {
                    assert!(outcome.is_ok(), "clean boundary at {cut} misread as torn");
                    assert_eq!(got.len(), n, "wrong frame count at boundary {cut}");
                    assert_eq!(got, frames[..n], "frame content diverged at {cut}");
                }
                None => {
                    assert!(outcome.is_err(), "torn cut at {cut} misread as clean EOF");
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    const TK: u32 = 0x5445_5354; // arbitrary test kind

    fn write_framed(path: &Path, payloads: &[&[u8]], seal: bool) {
        let mut w = FrameWriter::create(path, TK).unwrap();
        for p in payloads {
            w.write_frame(p).unwrap();
        }
        if seal {
            w.finish().unwrap();
        } else {
            w.sync().unwrap();
        }
    }

    #[test]
    fn framed_round_trip_sealed_and_unsealed() {
        let dir = tmp_dir("frame-rt");
        let payloads: Vec<&[u8]> = vec![b"", b"x", b"hello framed world", &[0xFF; 300]];
        for seal in [true, false] {
            let path = dir.join(if seal { "sealed.msf" } else { "open.msf" });
            write_framed(&path, &payloads, seal);
            let mut r = FrameReader::open(&path, TK).unwrap();
            for p in &payloads {
                assert_eq!(r.next_frame().unwrap().as_deref(), Some(*p));
            }
            assert!(r.next_frame().unwrap().is_none());
            assert!(r.next_frame().unwrap().is_none(), "tail is sticky");
            let want = if seal {
                FrameTail::Sealed
            } else {
                FrameTail::CleanEof
            };
            assert_eq!(r.tail(), Some(want));
            assert_eq!(r.frames_read(), payloads.len() as u64);
            if seal {
                let frames = read_sealed(&path, TK).unwrap();
                assert_eq!(frames.len(), payloads.len());
            } else {
                assert!(matches!(
                    read_sealed(&path, TK),
                    Err(FrameError::MissingTrailer { frames: 4 })
                ));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn framed_header_rejections_are_typed() {
        let dir = tmp_dir("frame-hdr");
        let path = dir.join("h.msf");
        write_framed(&path, &[b"abc"], true);
        let full = std::fs::read(&path).unwrap();

        // Wrong kind on a pristine file.
        assert!(matches!(
            FrameReader::open(&path, TK + 1),
            Err(FrameError::KindMismatch { found, expected })
                if found == TK && expected == TK + 1
        ));

        // Bad magic.
        let mut bad = full.clone();
        bad[0] ^= 0x20;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            FrameReader::open(&path, TK),
            Err(FrameError::BadMagic { .. })
        ));

        // A future version must present as VersionMismatch, so the
        // header CRC has to be re-stamped to stay valid.
        let mut future = full.clone();
        future[4..8].copy_from_slice(&(FRAME_VERSION + 1).to_le_bytes());
        let crc = crc32(&future[..12]);
        future[12..16].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            FrameReader::open(&path, TK),
            Err(FrameError::VersionMismatch { found, supported })
                if found == FRAME_VERSION + 1 && supported == FRAME_VERSION
        ));

        // Same flip *without* re-stamping the CRC: corruption, not a
        // version report.
        let mut rot = full.clone();
        rot[5] ^= 0x01;
        std::fs::write(&path, &rot).unwrap();
        assert!(matches!(
            FrameReader::open(&path, TK),
            Err(FrameError::HeaderCorrupt)
        ));

        // Oversized length prefix is refused before allocating.
        let mut big = full.clone();
        big[16..20].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        std::fs::write(&path, &big).unwrap();
        let mut r = FrameReader::open(&path, TK).unwrap();
        assert!(matches!(
            r.next_frame(),
            Err(FrameError::OversizedFrame { offset: 16, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncate a sealed three-frame file at every byte offset: each
    /// prefix must produce either a typed `Truncated` error with the
    /// right intact-prefix length, or (only at whole-unit boundaries)
    /// a clean-EOF/MissingTrailer outcome — never a wrong frame and
    /// never a panic.
    #[test]
    fn framed_truncation_sweep_every_byte_offset() {
        let dir = tmp_dir("frame-sweep");
        let path = dir.join("full.msf");
        let payloads: Vec<&[u8]> = vec![b"first", b"", b"third-frame"];
        write_framed(&path, &payloads, true);
        let full = std::fs::read(&path).unwrap();
        // Unit boundaries: header end, each frame end, trailer end.
        let mut boundaries = vec![(16u64, 0usize)];
        let mut off = 16u64;
        for (i, p) in payloads.iter().enumerate() {
            off += 8 + p.len() as u64;
            boundaries.push((off, i + 1));
        }
        assert_eq!(off + 16, full.len() as u64);
        for cut in 0..=full.len() {
            let p = dir.join("cut.msf");
            std::fs::write(&p, &full[..cut]).unwrap();
            if cut < 16 {
                // Torn header: open itself must fail with Truncated.
                assert!(
                    matches!(
                        FrameReader::open(&p, TK),
                        Err(FrameError::Truncated { offset: 0 })
                    ),
                    "cut {cut} inside the header"
                );
                continue;
            }
            let mut r = FrameReader::open(&p, TK).unwrap();
            let mut got = Vec::new();
            let outcome = loop {
                match r.next_frame() {
                    Ok(Some(f)) => got.push(f),
                    Ok(None) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            let boundary = boundaries.iter().find(|&&(b, _)| b == cut as u64);
            if cut == full.len() {
                assert!(outcome.is_ok());
                assert_eq!(r.tail(), Some(FrameTail::Sealed));
                assert_eq!(got.len(), payloads.len());
            } else if let Some(&(b, n)) = boundary {
                // Ends exactly after a whole unit: clean but unsealed.
                assert!(outcome.is_ok(), "boundary cut {cut} misread as torn");
                assert_eq!(r.tail(), Some(FrameTail::CleanEof));
                assert_eq!(got.len(), n, "frame count at boundary {cut}");
                assert_eq!(r.valid_len(), b);
            } else {
                // Mid-unit: typed truncation pointing at the last
                // whole unit's end.
                let expect_valid = boundaries
                    .iter()
                    .map(|&(b, _)| b)
                    .filter(|&b| b <= cut as u64)
                    .max()
                    .unwrap();
                match outcome {
                    Err(FrameError::Truncated { offset }) => {
                        assert_eq!(offset, expect_valid, "intact prefix at cut {cut}")
                    }
                    other => panic!("cut {cut}: expected Truncated, got {other:?}"),
                }
                let whole = boundaries
                    .iter()
                    .filter(|&&(b, _)| b <= cut as u64)
                    .map(|&(_, n)| n)
                    .max()
                    .unwrap();
                assert_eq!(got.len(), whole, "whole frames before torn tail at {cut}");
                assert_eq!(r.valid_len(), expect_valid);
            }
            // Whatever frames came out must be byte-exact prefixes.
            for (i, f) in got.iter().enumerate() {
                assert_eq!(f.as_slice(), payloads[i]);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Flip one bit in every byte of a sealed file: every flip must be
    /// caught with a typed error — no flip may round-trip silently.
    #[test]
    fn framed_bitflip_sweep_every_byte() {
        let dir = tmp_dir("frame-flip");
        let path = dir.join("full.msf");
        write_framed(&path, &[b"payload-one", b"p2"], true);
        let full = std::fs::read(&path).unwrap();
        for pos in 0..full.len() {
            let mut rot = full.clone();
            rot[pos] ^= 0x01;
            let p = dir.join("rot.msf");
            std::fs::write(&p, &rot).unwrap();
            let outcome = FrameReader::open(&p, TK).and_then(|mut r| {
                while r.next_frame()?.is_some() {}
                Ok(r.tail())
            });
            match outcome {
                Err(
                    FrameError::BadMagic { .. }
                    | FrameError::HeaderCorrupt
                    | FrameError::ChecksumMismatch { .. }
                    | FrameError::OversizedFrame { .. }
                    | FrameError::Truncated { .. }
                    | FrameError::TrailerMismatch { .. }
                    | FrameError::KindMismatch { .. }
                    | FrameError::VersionMismatch { .. },
                ) => {}
                Ok(t) => panic!("bit flip at byte {pos} went undetected (tail {t:?})"),
                Err(e) => panic!("bit flip at byte {pos}: unexpected error {e}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wire_round_trips_and_typed_failures() {
        use super::wire::*;
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "héllo");
        put_opt_str(&mut buf, None);
        put_opt_str(&mut buf, Some("x"));
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt_str().unwrap(), None);
        assert_eq!(r.opt_str().unwrap(), Some("x".to_string()));
        r.finish().unwrap();

        // Truncated value.
        let mut r = WireReader::new(&buf[..2]);
        r.u8().unwrap();
        assert!(matches!(r.u32(), Err(WireError::UnexpectedEnd { at: 1 })));

        // Bad option tag.
        let mut bad = Vec::new();
        put_u8(&mut bad, 9);
        let mut r = WireReader::new(&bad);
        assert!(matches!(
            r.opt_str(),
            Err(WireError::BadTag { at: 0, found: 9 })
        ));

        // Non-UTF-8 string bytes.
        let mut nutf = Vec::new();
        put_u32(&mut nutf, 2);
        nutf.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = WireReader::new(&nutf);
        assert!(matches!(r.str(), Err(WireError::BadUtf8 { at: 0 })));

        // Leftover bytes are flagged.
        let mut extra = Vec::new();
        put_u8(&mut extra, 1);
        put_u8(&mut extra, 2);
        let mut r = WireReader::new(&extra);
        r.u8().unwrap();
        assert!(matches!(
            r.finish(),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }
}
