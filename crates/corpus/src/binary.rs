//! Candidate two-column ("binary") tables.
//!
//! The unit of synthesis (paper §3): an *ordered* pair of columns
//! `(left, right)` drawn from one source table, stored as a
//! deduplicated set of `(l, r)` value pairs. Extraction produces these;
//! the synthesis graph's vertices are these.

use crate::intern::Sym;
use crate::table::{DomainId, TableId};

/// Identifier of a binary candidate table within one extraction run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BinaryId(pub u32);

/// A candidate two-column table `B = {(l_i, r_i)}`.
#[derive(Clone, Debug)]
pub struct BinaryTable {
    /// Identifier within the candidate set.
    pub id: BinaryId,
    /// Source table.
    pub source: TableId,
    /// Provenance domain of the source table (for curation stats).
    pub domain: DomainId,
    /// Index of the left column in the source table.
    pub left_col: u16,
    /// Index of the right column in the source table.
    pub right_col: u16,
    /// Header of the left column, if present (used by name-based
    /// baselines like UnionDomain, not by synthesis itself).
    pub left_header: Option<Sym>,
    /// Header of the right column, if present.
    pub right_header: Option<Sym>,
    /// Deduplicated `(left, right)` value pairs, sorted for fast
    /// set operations.
    pub pairs: Vec<(Sym, Sym)>,
}

impl BinaryTable {
    /// Build a binary table from (possibly duplicated, unsorted) row
    /// pairs; deduplicates and sorts.
    pub fn new(
        id: BinaryId,
        source: TableId,
        domain: DomainId,
        left_col: u16,
        right_col: u16,
        mut pairs: Vec<(Sym, Sym)>,
    ) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        Self {
            id,
            source,
            domain,
            left_col,
            right_col,
            left_header: None,
            right_header: None,
            pairs,
        }
    }

    /// Attach column headers.
    pub fn with_headers(mut self, left: Option<Sym>, right: Option<Sym>) -> Self {
        self.left_header = left;
        self.right_header = right;
        self
    }

    /// Number of distinct value pairs `|B|`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the table has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate left values (with duplicates if a left value maps to
    /// several rights).
    pub fn lefts(&self) -> impl Iterator<Item = Sym> + '_ {
        self.pairs.iter().map(|&(l, _)| l)
    }

    /// Iterate right values.
    pub fn rights(&self) -> impl Iterator<Item = Sym> + '_ {
        self.pairs.iter().map(|&(_, r)| r)
    }

    /// Exact set intersection size `|B ∩ B'|` on interned pairs.
    /// (The synthesis layer refines this with normalization and
    /// approximate matching; this raw version is used in tests and as a
    /// fast path.)
    pub fn exact_overlap(&self, other: &BinaryTable) -> usize {
        let (a, b) = (&self.pairs, &other.pairs);
        let mut i = 0;
        let mut j = 0;
        let mut n = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bt(id: u32, pairs: Vec<(u32, u32)>) -> BinaryTable {
        BinaryTable::new(
            BinaryId(id),
            TableId(0),
            DomainId(0),
            0,
            1,
            pairs.into_iter().map(|(a, b)| (Sym(a), Sym(b))).collect(),
        )
    }

    #[test]
    fn dedup_and_sort() {
        let b = bt(0, vec![(3, 4), (1, 2), (3, 4), (1, 2)]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.pairs, vec![(Sym(1), Sym(2)), (Sym(3), Sym(4))]);
    }

    #[test]
    fn exact_overlap_symmetric() {
        let a = bt(0, vec![(1, 2), (3, 4), (5, 6)]);
        let b = bt(1, vec![(3, 4), (5, 6), (7, 8)]);
        assert_eq!(a.exact_overlap(&b), 2);
        assert_eq!(b.exact_overlap(&a), 2);
        assert_eq!(a.exact_overlap(&a), 3);
    }

    #[test]
    fn empty_table() {
        let e = bt(0, vec![]);
        let a = bt(1, vec![(1, 2)]);
        assert!(e.is_empty());
        assert_eq!(e.exact_overlap(&a), 0);
    }
}
