//! Uniform method runner (paper §5.1 "Methods compared").
//!
//! One [`PreparedWeb`] holds the shared preprocessing — corpus,
//! candidate extraction, normalized value space, and the scored pair
//! set used by Synthesis and the schema-matcher baselines — so all
//! twelve methods run over identical inputs. Methods that sweep a
//! threshold (`SchemaCC`, `SchemaPosCC`, `Correlation`) return one run
//! per setting; experiments keep the best, as the paper does.

use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
use mapsynth::values::{NormBinary, ValueSpace};
use mapsynth::{SynthesisConfig, SynthesizedMapping};
use mapsynth_baselines::correlation::{correlation_from_scores, CorrelationConfig};
use mapsynth_baselines::kb::{kb_relations, KbStyle};
use mapsynth_baselines::schema_cc::{schema_cc_from_scores, SchemaCcConfig};
use mapsynth_baselines::single_table::{single_tables, single_tables_from_domains};
use mapsynth_baselines::union::{union_tables, UnionScope};
use mapsynth_baselines::wise::{wise_integrator, WiseConfig};
use mapsynth_baselines::{RelationResult, ScoredPairs};
use mapsynth_corpus::{BinaryTable, Corpus};
use mapsynth_gen::webgen::WebCorpus;
use mapsynth_gen::Registry;
use mapsynth_mapreduce::MapReduce;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The twelve methods of Figure 7 (plus `EntTable` which reuses
/// `WebTable` on the enterprise corpus).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's approach (Section 4).
    Synthesis,
    /// Synthesis without negative FD evidence.
    SynthesisPos,
    /// Ling & Halevy same-domain stitching.
    UnionDomain,
    /// Name-based stitching across the web.
    UnionWeb,
    /// Pairwise matcher + connected components.
    SchemaCC,
    /// SchemaCC without negative signals.
    SchemaPosCC,
    /// Parallel-pivot correlation clustering.
    Correlation,
    /// Linguistic header/type clustering.
    WiseIntegrator,
    /// Best single table from reference domains.
    WikiTable,
    /// Best single table from the whole corpus.
    WebTable,
    /// Freebase KB dump.
    Freebase,
    /// YAGO KB dump.
    Yago,
}

impl Method {
    /// All web methods in the paper's Figure 7 order.
    pub const ALL: [Method; 12] = [
        Method::Synthesis,
        Method::WikiTable,
        Method::WebTable,
        Method::UnionDomain,
        Method::UnionWeb,
        Method::SynthesisPos,
        Method::Correlation,
        Method::SchemaPosCC,
        Method::SchemaCC,
        Method::WiseIntegrator,
        Method::Freebase,
        Method::Yago,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Synthesis => "Synthesis",
            Method::SynthesisPos => "SynthesisPos",
            Method::UnionDomain => "UnionDomain",
            Method::UnionWeb => "UnionWeb",
            Method::SchemaCC => "SchemaCC",
            Method::SchemaPosCC => "SchemaPosCC",
            Method::Correlation => "Correlation",
            Method::WiseIntegrator => "WiseIntegrator",
            Method::WikiTable => "WikiTable",
            Method::WebTable => "WebTable",
            Method::Freebase => "Freebase",
            Method::Yago => "YAGO",
        }
    }
}

/// One run of a method (one parameter setting).
pub struct MethodRun {
    /// Parameter label ("t=0.8") or empty.
    pub label: String,
    /// Produced relations.
    pub results: Vec<RelationResult>,
    /// Method runtime, *including* the shared preprocessing the method
    /// depends on (extraction and, where applicable, pair scoring) —
    /// mirroring the paper's end-to-end Figure 8 accounting.
    pub runtime: Duration,
}

/// Shared preprocessing for all table-based methods, backed by a
/// [`SynthesisSession`]: extraction, the normalized value space, and
/// the scored pair set live in the session's stage artifacts, so all
/// twelve methods — and every parameter setting of each — run over
/// identical inputs without recomputing stages 1–3.
pub struct PreparedWeb {
    /// The corpus.
    pub corpus: Corpus,
    /// Ground-truth registry.
    pub registry: Registry,
    /// Normalized pairs asserted by some corpus table (for the
    /// attested-ground-truth benchmark).
    pub emitted_pairs: std::collections::HashSet<(String, String)>,
    /// The staged engine holding extraction / value-space / scoring
    /// artifacts.
    pub session: SynthesisSession,
}

impl PreparedWeb {
    /// Prepare a generated web corpus: extract, normalize (with a
    /// partial synonym feed — paper §4.1), and score candidate pairs,
    /// all cached as session stage artifacts.
    pub fn prepare(wc: WebCorpus, synonym_fraction: f64, workers: usize) -> Self {
        let WebCorpus {
            corpus,
            registry,
            emitted_pairs,
            ..
        } = wc;
        let feed = registry.partial_synonym_feed(synonym_fraction, 11);
        let mut session = SynthesisSession::new(PipelineConfig {
            workers,
            ..Default::default()
        })
        .with_synonyms(feed);
        session.prepare(&corpus);
        Self {
            corpus,
            registry,
            emitted_pairs,
            session,
        }
    }

    /// Raw extracted candidates (stage-1 artifact).
    pub fn candidates(&self) -> &[BinaryTable] {
        &self.session.extraction().expect("prepared").candidates
    }

    /// Normalized value space (stage-2 artifact).
    pub fn space(&self) -> &Arc<ValueSpace> {
        &self.session.values().expect("prepared").space
    }

    /// Normalized candidates (stage-2 artifact).
    pub fn tables(&self) -> &[NormBinary] {
        &self.session.values().expect("prepared").tables
    }

    /// Scored candidate pairs (stage-3 artifact; Synthesis signals).
    pub fn scored(&self) -> &ScoredPairs {
        &self.session.scores().expect("prepared").scored
    }

    /// Raw per-pair match counts (stage-3 artifact). Matching-parameter
    /// sweeps derive weights from these — see
    /// [`sweep_matching`](Self::sweep_matching).
    pub fn match_counts(&self) -> &[(u32, u32, mapsynth::MatchCounts)] {
        &self.session.scores().expect("prepared").counts
    }

    /// Sweep Synthesis over matching-parameter settings (the paper's
    /// `f_ed`/`k_ed` and the approximate-matching toggle), one
    /// `MethodRun` per setting.
    ///
    /// Each setting's pair weights derive from the session's **stored
    /// match counts** — arithmetically for the approx toggle, via the
    /// merge-join over memoized distances for tighter `f_ed`/`k_ed` —
    /// so no edit-distance DP is re-run anywhere in the sweep.
    /// Settings must not widen the session's base `match_params`.
    pub fn sweep_matching(
        &self,
        settings: &[SynthesisConfig],
        resolver: Resolver,
    ) -> Vec<MethodRun> {
        let with_scores = self.extraction_time() + self.scoring_time();
        settings
            .iter()
            .map(|cfg| {
                let t = Instant::now();
                let results = self.run_synthesis(cfg, resolver);
                MethodRun {
                    label: if cfg.approx_matching {
                        format!(
                            "f_ed={},k_ed={}",
                            cfg.match_params.f_ed, cfg.match_params.k_ed
                        )
                    } else {
                        "exact".to_string()
                    },
                    results,
                    runtime: with_scores + t.elapsed(),
                }
            })
            .collect()
    }

    /// Extraction wall-clock.
    pub fn extraction_time(&self) -> Duration {
        self.session.extraction().expect("prepared").elapsed
    }

    /// Blocking + pair-scoring wall-clock.
    pub fn scoring_time(&self) -> Duration {
        self.session.scores().expect("prepared").elapsed
    }

    /// The shared Map-Reduce engine.
    pub fn mr(&self) -> &MapReduce {
        self.session.engine()
    }

    /// Run a method, returning one `MethodRun` per parameter setting.
    pub fn run_method(&self, method: Method) -> Vec<MethodRun> {
        let base = self.extraction_time();
        let with_scores = self.extraction_time() + self.scoring_time();
        match method {
            Method::Synthesis | Method::SynthesisPos => {
                // θ_edge is swept like the baselines' thresholds — the
                // paper tunes it in §5.4 and reports the best setting.
                [0.5, 0.7, 0.85]
                    .iter()
                    .map(|&theta_edge| {
                        let mut cfg = SynthesisConfig {
                            theta_edge,
                            ..Default::default()
                        };
                        if method == Method::SynthesisPos {
                            cfg = cfg.without_negative();
                        }
                        let t = Instant::now();
                        let results = self.run_synthesis(&cfg, Resolver::Algorithm4);
                        MethodRun {
                            label: format!("theta_edge={theta_edge}"),
                            results,
                            runtime: with_scores + t.elapsed(),
                        }
                    })
                    .collect()
            }
            Method::UnionDomain | Method::UnionWeb => {
                let scope = if method == Method::UnionDomain {
                    UnionScope::Domain
                } else {
                    UnionScope::Web
                };
                let t = Instant::now();
                let results = union_tables(
                    &self.corpus,
                    self.candidates(),
                    self.space(),
                    self.tables(),
                    scope,
                );
                vec![MethodRun {
                    label: String::new(),
                    results,
                    runtime: base + t.elapsed(),
                }]
            }
            Method::SchemaCC | Method::SchemaPosCC => {
                let use_negative = method == Method::SchemaCC;
                [0.5, 0.6, 0.7, 0.8, 0.9]
                    .iter()
                    .map(|&threshold| {
                        let t = Instant::now();
                        let results = schema_cc_from_scores(
                            self.space(),
                            self.tables(),
                            self.scored(),
                            &SchemaCcConfig {
                                threshold,
                                use_negative,
                            },
                        );
                        MethodRun {
                            label: format!("t={threshold}"),
                            results,
                            runtime: with_scores + t.elapsed(),
                        }
                    })
                    .collect()
            }
            Method::Correlation => [0.4, 0.6, 0.8]
                .iter()
                .map(|&threshold| {
                    let t = Instant::now();
                    let results = correlation_from_scores(
                        self.space(),
                        self.tables(),
                        self.scored(),
                        &CorrelationConfig {
                            threshold,
                            ..Default::default()
                        },
                    );
                    MethodRun {
                        label: format!("t={threshold}"),
                        results,
                        runtime: with_scores + t.elapsed(),
                    }
                })
                .collect(),
            Method::WiseIntegrator => [0.4, 0.6, 0.8]
                .iter()
                .map(|&min_header_sim| {
                    let t = Instant::now();
                    let results = wise_integrator(
                        &self.corpus,
                        self.candidates(),
                        self.space(),
                        self.tables(),
                        &WiseConfig { min_header_sim },
                    );
                    MethodRun {
                        label: format!("sim={min_header_sim}"),
                        results,
                        runtime: base + t.elapsed(),
                    }
                })
                .collect(),
            Method::WikiTable => {
                let t = Instant::now();
                let results = single_tables_from_domains(
                    &self.corpus,
                    self.candidates(),
                    self.space(),
                    self.tables(),
                    |d| d.starts_with("wikipedia."),
                );
                vec![MethodRun {
                    label: String::new(),
                    results,
                    runtime: base + t.elapsed(),
                }]
            }
            Method::WebTable => {
                let t = Instant::now();
                let results = single_tables(self.space(), self.tables());
                vec![MethodRun {
                    label: String::new(),
                    results,
                    runtime: base + t.elapsed(),
                }]
            }
            Method::Freebase | Method::Yago => {
                let style = if method == Method::Freebase {
                    KbStyle::Freebase
                } else {
                    KbStyle::Yago
                };
                let t = Instant::now();
                let results = kb_relations(&self.registry, style, 23);
                vec![MethodRun {
                    label: String::new(),
                    results,
                    runtime: t.elapsed(),
                }]
            }
        }
    }

    /// Run the Synthesis algorithm (steps 2–3) with a given config and
    /// resolver, returning results as `RelationResult`s (the string
    /// materialization boundary for scoring).
    pub fn run_synthesis(&self, cfg: &SynthesisConfig, resolver: Resolver) -> Vec<RelationResult> {
        self.synthesize(cfg, resolver)
            .into_iter()
            .map(|m| RelationResult {
                pairs: m.materialize_pairs(),
            })
            .collect()
    }

    /// Run Synthesis and keep the full mapping metadata (for curation
    /// experiments). Reuses the session's cached extraction, value
    /// space, and scored pairs.
    pub fn synthesize(&self, cfg: &SynthesisConfig, resolver: Resolver) -> Vec<SynthesizedMapping> {
        self.session.synthesize(cfg, resolver).mappings
    }

    /// Evolve the prepared corpus by an incremental delta: `evolve`
    /// mutates the owned corpus (pushing any new tables) and returns
    /// the [`mapsynth::delta::CorpusDelta`] naming them plus the
    /// removals; the session re-enters the staged pipeline at blocking
    /// ([`mapsynth::pipeline::SynthesisSession::apply_delta`]). Every
    /// subsequent [`run_synthesis`](Self::run_synthesis) /
    /// [`sweep_matching`](Self::sweep_matching) call derives off the
    /// patched artifacts, bit-identical to re-preparing from scratch
    /// on the post-delta corpus.
    ///
    /// Caveat for baselines: [`tables`](Self::tables) keeps tombstoned
    /// entries in place (positions are stable across deltas) — filter
    /// with `session.is_live` when feeding the raw slice to a
    /// baseline.
    pub fn apply_delta(
        &mut self,
        evolve: impl FnOnce(&mut Corpus) -> mapsynth::delta::CorpusDelta,
    ) -> Result<mapsynth::delta::DeltaReport, mapsynth::delta::DeltaError> {
        let delta = evolve(&mut self.corpus);
        self.session.apply_delta(&self.corpus, &delta)
    }

    /// Reclaim the tombstones a delta stream has accrued: delegates to
    /// [`mapsynth::pipeline::SynthesisSession::compact`] and adopts
    /// the densely renumbered corpus it returns. `TableId`s handed to
    /// earlier [`apply_delta`](Self::apply_delta) calls are invalid
    /// afterwards; every method sweep keeps working unchanged.
    pub fn compact(&mut self) {
        self.corpus = self.session.compact(&self.corpus);
    }

    /// Whether accrued garbage has crossed the session's configured
    /// compaction threshold — the cue for [`compact`](Self::compact)
    /// in long-running harnesses.
    pub fn compaction_due(&self) -> bool {
        self.session.compaction_due()
    }
}

#[cfg(test)]
mod delta_tests {
    use super::*;
    use mapsynth::delta::CorpusDelta;
    use mapsynth_gen::procedural::ProceduralConfig;
    use mapsynth_gen::{generate_web, WebConfig};

    /// The harness contract under corpus evolution: a parameter sweep
    /// after `apply_delta` — table removals **and** a row-level patch
    /// — equals the same sweep on a freshly prepared post-delta
    /// corpus, and stays equal after a compaction pass.
    #[test]
    fn sweeps_reflect_deltas() {
        let wc = generate_web(&WebConfig {
            tables: 260,
            domains: 30,
            procedural: ProceduralConfig {
                families: 8,
                temporal_families: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut prepared = PreparedWeb::prepare(wc, 0.5, 0);
        let report = prepared
            .apply_delta(|corpus| {
                // Drop the first row of one surviving table, by value.
                let tid = mapsynth_corpus::TableId(7);
                let deleted = {
                    let t = corpus.table(tid);
                    if t.rows() == 0 {
                        vec![]
                    } else {
                        vec![t
                            .columns
                            .iter()
                            .map(|c| corpus.str_of(c.values[0]).to_string())
                            .collect()]
                    }
                };
                let patch = mapsynth_corpus::RowPatch {
                    table: tid,
                    deleted,
                    inserted: vec![],
                };
                corpus.apply_row_patch(&patch);
                CorpusDelta {
                    added: vec![],
                    removed: (0..6).map(|k| mapsynth_corpus::TableId(k * 41)).collect(),
                    patches: vec![patch],
                }
            })
            .expect("valid delta");
        assert_eq!(report.tables_removed, 6);
        assert_eq!(report.tables_patched, 1);

        let cfg = SynthesisConfig {
            theta_edge: 0.7,
            ..Default::default()
        };
        let check = |prepared: &PreparedWeb, corpus: &Corpus| {
            let swept = prepared.run_synthesis(&cfg, Resolver::Algorithm4);
            let feed = prepared.registry.partial_synonym_feed(0.5, 11);
            let mut fresh = SynthesisSession::new(PipelineConfig::default()).with_synonyms(feed);
            fresh.prepare(corpus);
            let fresh_results: Vec<Vec<(String, String)>> = fresh
                .synthesize(&cfg, Resolver::Algorithm4)
                .mappings
                .iter()
                .map(|m| m.materialize_pairs())
                .collect();
            assert_eq!(swept.len(), fresh_results.len());
            for (a, b) in swept.iter().zip(&fresh_results) {
                assert_eq!(&a.pairs, b);
            }
        };

        // Fresh harness on the post-delta corpus.
        let live = prepared.session.live_corpus(&prepared.corpus);
        check(&prepared, &live);

        // And on the compacted corpus after tombstone reclamation.
        prepared.compact();
        check(&prepared, &prepared.corpus);
    }
}
