//! The `experiments` binary: regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <subcommand> [--tables N] [--ent-tables N] [--seed S]
//!             [--workers W] [--feed F] [--out DIR]
//!
//! subcommands:
//!   all          run everything below in order
//!   comparison   Figures 7, 8, 14 (12-method comparison)
//!   scalability  Figure 9
//!   enterprise   Figures 10, 11
//!   conflict     Figure 15 + §5.6
//!   sensitivity  §5.4 parameter sweeps
//!   curation     §4.3 + Appendix J + Figures 12, 13 + Table 6
//!   expansion    Appendix I
//! ```

use mapsynth_eval::experiments::{
    comparison, conflict, curation, enterprise, expansion, scalability, sensitivity, ExpConfig,
};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sub, cfg) = match parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n\nusage: experiments <all|comparison|scalability|enterprise|conflict|sensitivity|curation|expansion> [--tables N] [--ent-tables N] [--seed S] [--workers W] [--feed F] [--out DIR]");
            std::process::exit(2);
        }
    };
    let started = std::time::Instant::now();
    match sub.as_str() {
        "all" => {
            comparison::run(&cfg);
            scalability::run(&cfg);
            enterprise::run(&cfg);
            conflict::run(&cfg);
            sensitivity::run(&cfg);
            curation::run(&cfg);
            expansion::run(&cfg);
        }
        "comparison" | "fig7" | "fig8" | "fig14" => {
            comparison::run(&cfg);
        }
        "scalability" | "fig9" => {
            scalability::run(&cfg);
        }
        "enterprise" | "fig10" | "fig11" => {
            enterprise::run(&cfg);
        }
        "conflict" | "fig15" => {
            conflict::run(&cfg);
        }
        "sensitivity" => sensitivity::run(&cfg),
        "curation" | "fig12" | "fig13" | "table6" => curation::run(&cfg),
        "expansion" => expansion::run(&cfg),
        other => {
            eprintln!("unknown subcommand: {other}");
            std::process::exit(2);
        }
    }
    eprintln!("[experiments] finished in {:.1?}", started.elapsed());
}

fn parse(args: &[String]) -> Result<(String, ExpConfig), String> {
    let mut cfg = ExpConfig::default();
    let mut sub = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tables" => {
                cfg.tables = next(args, &mut i)?
                    .parse()
                    .map_err(|e| format!("--tables: {e}"))?;
            }
            "--ent-tables" => {
                cfg.ent_tables = next(args, &mut i)?
                    .parse()
                    .map_err(|e| format!("--ent-tables: {e}"))?;
            }
            "--seed" => {
                cfg.seed = next(args, &mut i)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--workers" => {
                cfg.workers = next(args, &mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--feed" => {
                cfg.synonym_fraction = next(args, &mut i)?
                    .parse()
                    .map_err(|e| format!("--feed: {e}"))?;
            }
            "--out" => {
                cfg.out_dir = PathBuf::from(next(args, &mut i)?);
            }
            s if !s.starts_with("--") && sub.is_none() => {
                sub = Some(s.to_string());
            }
            other => return Err(format!("unexpected argument: {other}")),
        }
        i += 1;
    }
    Ok((sub.ok_or("missing subcommand")?, cfg))
}

fn next<'a>(args: &'a [String], i: &mut usize) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("{} requires a value", args[*i - 1]))
}
