//! Report output: aligned text tables and CSV files.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple text/CSV table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Write a report section: print to stdout and persist `.txt` + `.csv`
/// under `out_dir`.
pub fn emit(out_dir: &Path, name: &str, title: &str, table: &Table) {
    let text = format!("== {title} ==\n{}", table.to_text());
    println!("{text}");
    fs::create_dir_all(out_dir).expect("create results dir");
    fs::write(out_dir.join(format!("{name}.txt")), &text).expect("write txt");
    fs::write(out_dir.join(format!("{name}.csv")), table.to_csv()).expect("write csv");
}

/// Append free-form text to the run log and stdout.
pub fn note(out_dir: &Path, name: &str, text: &str) {
    println!("{text}");
    fs::create_dir_all(out_dir).expect("create results dir");
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_dir.join(format!("{name}.txt")))
        .expect("open note file");
    writeln!(f, "{text}").expect("write note");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_alignment_and_csv() {
        let mut t = Table::new(&["method", "f", "note"]);
        t.row(vec!["Synthesis".into(), "0.90".into(), "a,b".into()]);
        t.row(vec!["X".into(), "0.1".into(), "plain".into()]);
        let text = t.to_text();
        assert!(text.contains("Synthesis"));
        assert!(text.lines().count() >= 4);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
