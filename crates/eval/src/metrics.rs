//! Quality metrics (paper §5.1 "Metrics").
//!
//! For a ground truth `B*` and a produced relation `B`:
//! precision `|B∩B*|/|B|`, recall `|B∩B*|/|B*|`, and the harmonic
//! F-score. Each benchmark case is scored by *the best relation* the
//! method produced — "a human who wishes to pick the best relationship
//! ... would effectively pick the same tables", favourable to every
//! method equally.

use mapsynth_baselines::RelationResult;
use std::collections::{HashMap, HashSet};

/// Precision / recall / F for one (relation, ground truth) pair.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Score {
    /// F-score.
    pub f: f64,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
}

impl Score {
    fn from_counts(hits: usize, result_len: usize, gt_len: usize) -> Self {
        if hits == 0 || result_len == 0 || gt_len == 0 {
            return Self::default();
        }
        let p = hits as f64 / result_len as f64;
        let r = hits as f64 / gt_len as f64;
        Self {
            f: 2.0 * p * r / (p + r),
            precision: p,
            recall: r,
        }
    }
}

/// Score one explicit pair set against a ground truth.
pub fn score_sets(result: &[(String, String)], gt: &HashSet<(String, String)>) -> Score {
    let hits = result.iter().filter(|p| gt.contains(*p)).count();
    Score::from_counts(hits, result.len(), gt.len())
}

/// Inverted index over a method's results for fast
/// best-relation-per-case scoring.
pub struct ResultScorer {
    /// pair → result ids containing it.
    index: HashMap<(String, String), Vec<u32>>,
    sizes: Vec<usize>,
}

impl ResultScorer {
    /// Build the scorer from a method's results.
    pub fn new(results: &[RelationResult]) -> Self {
        let mut index: HashMap<(String, String), Vec<u32>> = HashMap::new();
        let mut sizes = Vec::with_capacity(results.len());
        for (ri, r) in results.iter().enumerate() {
            sizes.push(r.pairs.len());
            for p in &r.pairs {
                let posting = index.entry(p.clone()).or_default();
                // results have deduplicated pairs → no repeat push
                posting.push(ri as u32);
            }
        }
        Self { index, sizes }
    }

    /// Best F-score (with its precision/recall) over all results for
    /// one ground-truth case, plus the winning result id.
    pub fn best_for(&self, gt: &HashSet<(String, String)>) -> (Score, Option<u32>) {
        let mut hits: HashMap<u32, usize> = HashMap::new();
        for p in gt {
            if let Some(posting) = self.index.get(p) {
                for &ri in posting {
                    *hits.entry(ri).or_default() += 1;
                }
            }
        }
        let mut best = (Score::default(), None);
        let mut candidates: Vec<(u32, usize)> = hits.into_iter().collect();
        candidates.sort_unstable(); // deterministic tie-breaking by id
        for (ri, h) in candidates {
            let s = Score::from_counts(h, self.sizes[ri as usize], gt.len());
            if s.f > best.0.f {
                best = (s, Some(ri));
            }
        }
        best
    }
}

/// Mean of scores (component-wise).
pub fn mean_score(scores: &[Score]) -> Score {
    if scores.is_empty() {
        return Score::default();
    }
    let n = scores.len() as f64;
    Score {
        f: scores.iter().map(|s| s.f).sum::<f64>() / n,
        precision: scores.iter().map(|s| s.precision).sum::<f64>() / n,
        recall: scores.iter().map(|s| s.recall).sum::<f64>() / n,
    }
}

/// Mean precision over cases with nonzero hits only — the paper's
/// footnote 5 treatment ("we exclude cases whose precision is close to
/// 0 from the average-precision computation", applied to single-table
/// and KB methods that miss relationships entirely).
pub fn mean_precision_nonzero(scores: &[Score]) -> f64 {
    let nonzero: Vec<f64> = scores
        .iter()
        .filter(|s| s.precision > 1e-9)
        .map(|s| s.precision)
        .collect();
    if nonzero.is_empty() {
        return 0.0;
    }
    nonzero.iter().sum::<f64>() / nonzero.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt(pairs: &[(&str, &str)]) -> HashSet<(String, String)> {
        pairs
            .iter()
            .map(|(l, r)| (l.to_string(), r.to_string()))
            .collect()
    }

    fn rel(pairs: &[(&str, &str)]) -> RelationResult {
        RelationResult::new(
            pairs
                .iter()
                .map(|(l, r)| (l.to_string(), r.to_string()))
                .collect(),
        )
    }

    #[test]
    fn exact_match_scores_one() {
        let g = gt(&[("a", "1"), ("b", "2")]);
        let s = score_sets(&rel(&[("a", "1"), ("b", "2")]).pairs, &g);
        assert_eq!(
            s,
            Score {
                f: 1.0,
                precision: 1.0,
                recall: 1.0
            }
        );
    }

    #[test]
    fn partial_overlap() {
        let g = gt(&[("a", "1"), ("b", "2"), ("c", "3"), ("d", "4")]);
        // 2 hits, 1 wrong → P=2/3, R=1/2.
        let s = score_sets(&rel(&[("a", "1"), ("b", "2"), ("x", "9")]).pairs, &g);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.recall - 0.5).abs() < 1e-9);
        let f = 2.0 * s.precision * s.recall / (s.precision + s.recall);
        assert!((s.f - f).abs() < 1e-12);
    }

    #[test]
    fn scorer_picks_best_relation() {
        let results = vec![
            rel(&[("a", "1")]),                         // P=1, R=1/3
            rel(&[("a", "1"), ("b", "2"), ("x", "9")]), // P=2/3, R=2/3
            rel(&[("q", "7")]),                         // no hits
        ];
        let scorer = ResultScorer::new(&results);
        let g = gt(&[("a", "1"), ("b", "2"), ("c", "3")]);
        let (s, winner) = scorer.best_for(&g);
        assert_eq!(winner, Some(1));
        assert!((s.f - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn no_overlap_scores_zero() {
        let scorer = ResultScorer::new(&[rel(&[("q", "7")])]);
        let (s, winner) = scorer.best_for(&gt(&[("a", "1")]));
        assert_eq!(winner, None);
        assert_eq!(s, Score::default());
    }

    #[test]
    fn mean_precision_nonzero_skips_misses() {
        let scores = vec![
            Score {
                f: 0.5,
                precision: 1.0,
                recall: 0.3,
            },
            Score::default(),
        ];
        assert_eq!(mean_precision_nonzero(&scores), 1.0);
        assert_eq!(mean_score(&scores).precision, 0.5);
    }
}
