//! # mapsynth-eval
//!
//! The evaluation harness: regenerates every table and figure of the
//! paper's evaluation (§5 and appendices) on the synthetic corpora.
//!
//! * [`benchmark`] — the 80-case web benchmark and 30-case enterprise
//!   benchmark, built from the generator's ground-truth registry;
//! * [`metrics`] — precision / recall / F-score with the paper's
//!   best-relationship-per-case selection;
//! * [`methods`] — uniform runner for Synthesis and all eleven
//!   comparison methods over one shared prepared corpus;
//! * [`experiments`] — one driver per figure (7, 8, 9, 10, 11, 12, 13,
//!   14, 15), plus the §5.4 sensitivity sweeps, §4.3/Appendix J
//!   curation analysis, Table 6 synonym listing and Appendix I
//!   expansion study;
//! * [`report`] — aligned text tables and CSV output.
//!
//! Run everything with the `experiments` binary:
//! `cargo run --release -p mapsynth-eval --bin experiments -- all`
//!
//! This crate measures synthesis *quality*; synthesis *and serving*
//! performance baselines (stage timings, lookup QPS through
//! `mapsynth-serve`) are recorded by `mapsynth-bench`'s
//! `pipeline_baseline` binary into `BENCH_pipeline.json` — schema in
//! `crates/bench/README.md`.

pub mod benchmark;
pub mod experiments;
pub mod methods;
pub mod metrics;
pub mod report;

pub use benchmark::{enterprise_benchmark, web_benchmark, web_benchmark_attested, BenchmarkCase};
pub use methods::{Method, MethodRun, PreparedWeb};
pub use metrics::{score_sets, ResultScorer, Score};
