//! Curation analysis: §4.3, Appendix J, Figure 12, Figure 13 and
//! Table 6.
//!
//! Synthesized clusters carry popularity statistics (contributing
//! domains/tables). The paper: curators only review popular clusters
//! (≥ 8 independent domains); among the top-500, 49.6% are meaningful
//! static mappings, 37.8% temporal, 12.6% meaningless. We classify top
//! clusters against the generator's labels and print the analogous
//! breakdown, example mappings (Figure 12), non-ideal relationships
//! (Figure 13), and the synonym-rich Table 6 listing.

use super::ExpConfig;
use crate::benchmark::web_benchmark_attested;
use crate::methods::PreparedWeb;
use crate::report::{emit, note, Table};
use mapsynth::curate;
use mapsynth::pipeline::Resolver;
use mapsynth::{SynthesisConfig, SynthesizedMapping};
use mapsynth_gen::{generate_web, RelationKind};
use std::collections::{HashMap, HashSet};

/// A labeled ground truth: (kind, relation name, pair set).
pub type LabeledGt = (RelationKind, String, HashSet<(String, String)>);

/// Classification of one cluster against the generator's relations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClusterClass {
    /// Matches a static ground-truth relation.
    Static,
    /// Matches a temporal relation snapshot.
    Temporal,
    /// Month-formatting artifact.
    Formatting,
    /// No meaningful match (spurious or mixed).
    Meaningless,
}

/// Classify a mapping by majority overlap with labeled ground truths.
pub fn classify(mapping: &SynthesizedMapping, gts: &[LabeledGt]) -> (ClusterClass, Option<String>) {
    let mut best: Option<(f64, RelationKind, &str)> = None;
    let pairs = mapping.materialize_pairs();
    for (kind, name, gt) in gts {
        let hits = pairs.iter().filter(|p| gt.contains(*p)).count();
        let frac = hits as f64 / pairs.len().max(1) as f64;
        if frac > 0.5 && best.is_none_or(|(b, _, _)| frac > b) {
            best = Some((frac, *kind, name));
        }
    }
    match best {
        Some((_, RelationKind::Static, name)) => (ClusterClass::Static, Some(name.to_string())),
        Some((_, RelationKind::Temporal, name)) => (ClusterClass::Temporal, Some(name.to_string())),
        Some((_, RelationKind::Formatting, name)) => {
            (ClusterClass::Formatting, Some(name.to_string()))
        }
        Some((_, RelationKind::Spurious, _)) | None => {
            // Month-formatting tables have no registry relation; detect
            // the calendar pattern directly.
            let months = [
                "january", "february", "march", "april", "may", "june", "july",
            ];
            let month_pairs = pairs
                .iter()
                .filter(|(l, _)| months.contains(&l.as_str()))
                .count();
            if month_pairs * 2 >= pairs.len().max(1) {
                return (ClusterClass::Formatting, None);
            }
            (ClusterClass::Meaningless, None)
        }
    }
}

/// Run the curation analysis and emit its reports.
pub fn run(cfg: &ExpConfig) {
    let wc = generate_web(&cfg.web_config());
    let registry = wc.registry.clone();
    let prepared = PreparedWeb::prepare(wc, cfg.synonym_fraction, cfg.workers);
    let cases = web_benchmark_attested(&prepared.registry, &prepared.emitted_pairs, 80);
    let mappings = prepared.synthesize(&SynthesisConfig::default(), Resolver::Algorithm4);

    // §4.3 summary: domain-floor filtering.
    let mut t = Table::new(&["min_domains", "mappings", "mean_tables", "mean_domains"]);
    for floor in [1usize, 2, 4, 8] {
        let s = curate::summarize(&mappings, floor);
        t.row(vec![
            floor.to_string(),
            s.above_floor.to_string(),
            format!("{:.1}", s.mean_tables),
            format!("{:.1}", s.mean_domains),
        ]);
    }
    emit(
        &cfg.out_dir,
        "curation_summary",
        "Curation (§4.3): synthesized mappings by domain floor",
        &t,
    );

    // Appendix J: classify the top clusters by popularity.
    // Both orientations: synthesis emits code→country clusters too,
    // and those are meaningful mappings, not noise.
    let mut gts: Vec<LabeledGt> = Vec::new();
    for r in &registry.relations {
        let fwd = r.ground_truth_pairs();
        let rev: HashSet<(String, String)> =
            fwd.iter().map(|(l, rr)| (rr.clone(), l.clone())).collect();
        gts.push((r.kind, r.name.clone(), fwd));
        gts.push((r.kind, format!("{} (reversed)", r.name), rev));
    }
    let top: Vec<&SynthesizedMapping> = mappings
        .iter()
        .filter(|m| m.source_tables >= 2)
        .take(200)
        .collect();
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    let mut examples: HashMap<ClusterClass, Vec<(String, String, String)>> = HashMap::new();
    for m in &top {
        let (class, name) = classify(m, &gts);
        let key = match class {
            ClusterClass::Static => "static",
            ClusterClass::Temporal => "temporal",
            ClusterClass::Formatting => "formatting",
            ClusterClass::Meaningless => "meaningless",
        };
        *counts.entry(key).or_default() += 1;
        let ex = examples.entry(class).or_default();
        if ex.len() < 10 {
            let sample: Vec<String> = m
                .pair_strs()
                .take(2)
                .map(|(l, r)| format!("({l}, {r})"))
                .collect();
            ex.push((
                name.unwrap_or_else(|| "?".to_string()),
                format!("{} tables / {} domains", m.source_tables, m.domains),
                sample.join(" "),
            ));
        }
    }
    let n = top.len().max(1) as f64;
    note(
        &cfg.out_dir,
        "curation_summary",
        &format!(
            "\nAppendix J (top {} popular clusters): static {:.1}%, temporal {:.1}%, \
             formatting {:.1}%, meaningless {:.1}% (paper top-500: 49.6% / 37.8% / — / 12.6%)",
            top.len(),
            100.0 * counts.get("static").copied().unwrap_or(0) as f64 / n,
            100.0 * counts.get("temporal").copied().unwrap_or(0) as f64 / n,
            100.0 * counts.get("formatting").copied().unwrap_or(0) as f64 / n,
            100.0 * counts.get("meaningless").copied().unwrap_or(0) as f64 / n,
        ),
    );

    // Figure 12: popular static mappings with examples.
    let mut t = Table::new(&["relation", "cluster", "example_instances"]);
    for (name, stats, ex) in examples.get(&ClusterClass::Static).into_iter().flatten() {
        t.row(vec![name.clone(), stats.clone(), ex.clone()]);
    }
    emit(
        &cfg.out_dir,
        "fig12_example_mappings",
        "Figure 12: popular synthesized mappings (static)",
        &t,
    );

    // Figure 13: synthesized relationships not ideal as mappings.
    let mut t = Table::new(&["class", "relation", "cluster", "example_instances"]);
    for class in [
        ClusterClass::Temporal,
        ClusterClass::Formatting,
        ClusterClass::Meaningless,
    ] {
        for (name, stats, ex) in examples.get(&class).into_iter().flatten() {
            t.row(vec![
                format!("{class:?}"),
                name.clone(),
                stats.clone(),
                ex.clone(),
            ]);
        }
    }
    emit(
        &cfg.out_dir,
        "fig13_non_ideal",
        "Figure 13: synthesized relationships not ideal as mappings",
        &t,
    );

    // Table 6: synonym-rich entries from the country→ISO3 cluster.
    let iso3_case = cases.iter().find(|c| c.name == "country->iso3");
    if let Some(case) = iso3_case {
        // Find the best cluster for the case.
        let rr: Vec<mapsynth_baselines::RelationResult> = mappings
            .iter()
            .map(|m| mapsynth_baselines::RelationResult {
                pairs: m.materialize_pairs(),
            })
            .collect();
        let scorer = crate::metrics::ResultScorer::new(&rr);
        if let (_, Some(best)) = scorer.best_for(&case.gt) {
            let m = &mappings[best as usize];
            // Group by right value; list codes with the most synonyms.
            let mut by_code: HashMap<&str, Vec<&str>> = HashMap::new();
            for (l, r) in m.pair_strs() {
                by_code.entry(r).or_default().push(l);
            }
            let mut rich: Vec<(&str, Vec<&str>)> = by_code
                .into_iter()
                .filter(|(_, ls)| ls.len() >= 3)
                .collect();
            rich.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(b.0)));
            let mut t = Table::new(&["code", "synonymous_country_names"]);
            for (code, mut names) in rich.into_iter().take(8) {
                names.sort_unstable();
                t.row(vec![code.to_string(), names.join(" | ")]);
            }
            emit(
                &cfg.out_dir,
                "table6_synonyms",
                "Table 6: synonym-rich entries in the synthesized country->ISO3 mapping",
                &t,
            );
        }
    }
}
