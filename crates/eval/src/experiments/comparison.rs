//! Figures 7, 8 and 14: the twelve-method comparison on the 80-case
//! web benchmark.

use super::ExpConfig;
use crate::benchmark::{web_benchmark_attested, BenchmarkCase};
use crate::methods::{Method, PreparedWeb};
use crate::metrics::{mean_precision_nonzero, mean_score, ResultScorer, Score};
use crate::report::{emit, Table};
use mapsynth_gen::generate_web;
use std::time::Duration;

/// Per-method outcome of the comparison.
pub struct MethodSummary {
    /// The method.
    pub method: Method,
    /// Winning parameter label (for swept methods).
    pub label: String,
    /// Mean score over all cases.
    pub mean: Score,
    /// Mean precision over non-miss cases (paper footnote 5; reported
    /// for single-table and KB methods).
    pub precision_nonzero: f64,
    /// End-to-end runtime.
    pub runtime: Duration,
    /// Per-case scores, aligned with the benchmark case list.
    pub per_case: Vec<Score>,
}

/// Outcome of the whole comparison.
pub struct Comparison {
    /// Benchmark cases.
    pub cases: Vec<BenchmarkCase>,
    /// One summary per method (Figure 7 order).
    pub methods: Vec<MethodSummary>,
}

/// Score one method run against all cases.
fn score_run(
    results: &[mapsynth_baselines::RelationResult],
    cases: &[BenchmarkCase],
) -> Vec<Score> {
    let scorer = ResultScorer::new(results);
    cases.iter().map(|c| scorer.best_for(&c.gt).0).collect()
}

/// Run the comparison over a prepared corpus.
pub fn run_comparison(prepared: &PreparedWeb, cases: &[BenchmarkCase]) -> Comparison {
    let mut methods = Vec::new();
    for method in Method::ALL {
        let runs = prepared.run_method(method);
        // Keep the parameter setting with the best mean F (paper:
        // "tested different thresholds ... report the best result").
        let mut best: Option<MethodSummary> = None;
        for run in runs {
            let per_case = score_run(&run.results, cases);
            let mean = mean_score(&per_case);
            if best.as_ref().is_none_or(|b| mean.f > b.mean.f) {
                best = Some(MethodSummary {
                    method,
                    label: run.label,
                    precision_nonzero: mean_precision_nonzero(&per_case),
                    mean,
                    runtime: run.runtime,
                    per_case,
                });
            }
        }
        methods.push(best.expect("method produced no runs"));
    }
    Comparison {
        cases: cases.to_vec(),
        methods,
    }
}

/// Whether footnote-5 precision averaging applies (single-table and KB
/// methods that miss many relationships entirely).
fn footnote5(method: Method) -> bool {
    matches!(
        method,
        Method::WikiTable | Method::WebTable | Method::Freebase | Method::Yago
    )
}

/// Run and emit Figures 7, 8 and 14.
pub fn run(cfg: &ExpConfig) -> Comparison {
    let wc = generate_web(&cfg.web_config());
    let prepared = PreparedWeb::prepare(wc, cfg.synonym_fraction, cfg.workers);
    let cases = web_benchmark_attested(&prepared.registry, &prepared.emitted_pairs, 80);
    let comparison = run_comparison(&prepared, &cases);
    emit_fig7(cfg, &comparison);
    emit_fig8(cfg, &comparison);
    emit_fig14(cfg, &comparison);
    comparison
}

/// Figure 7: average F / precision / recall per method.
pub fn emit_fig7(cfg: &ExpConfig, c: &Comparison) {
    let mut t = Table::new(&[
        "method",
        "avg_fscore",
        "avg_precision",
        "avg_recall",
        "best_param",
    ]);
    for m in &c.methods {
        let precision = if footnote5(m.method) {
            m.precision_nonzero
        } else {
            m.mean.precision
        };
        t.row(vec![
            m.method.name().to_string(),
            format!("{:.3}", m.mean.f),
            format!("{precision:.3}"),
            format!("{:.3}", m.mean.recall),
            m.label.clone(),
        ]);
    }
    emit(
        &cfg.out_dir,
        "fig7_quality",
        "Figure 7: average f-score, precision and recall (80-case web benchmark)",
        &t,
    );
}

/// Figure 8: runtime per method.
pub fn emit_fig8(cfg: &ExpConfig, c: &Comparison) {
    let mut t = Table::new(&["method", "runtime_s"]);
    for m in &c.methods {
        t.row(vec![
            m.method.name().to_string(),
            format!("{:.2}", m.runtime.as_secs_f64()),
        ]);
    }
    emit(&cfg.out_dir, "fig8_runtime", "Figure 8: runtime", &t);
}

/// Figure 14: per-case F-scores, sorted by Synthesis F descending.
pub fn emit_fig14(cfg: &ExpConfig, c: &Comparison) {
    let synth_idx = c
        .methods
        .iter()
        .position(|m| m.method == Method::Synthesis)
        .expect("synthesis present");
    let mut order: Vec<usize> = (0..c.cases.len()).collect();
    order.sort_by(|&a, &b| {
        c.methods[synth_idx].per_case[b]
            .f
            .total_cmp(&c.methods[synth_idx].per_case[a].f)
    });
    let mut headers = vec!["case".to_string()];
    headers.extend(c.methods.iter().map(|m| m.method.name().to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&headers_ref);
    for &ci in &order {
        let mut row = vec![c.cases[ci].name.clone()];
        row.extend(c.methods.iter().map(|m| format!("{:.3}", m.per_case[ci].f)));
        t.row(row);
    }
    emit(
        &cfg.out_dir,
        "fig14_per_case",
        "Figure 14: per-case f-score by method (sorted by Synthesis)",
        &t,
    );
}
