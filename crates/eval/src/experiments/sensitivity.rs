//! §5.4 sensitivity analysis: θ (approximate-FD), τ (hard-conflict),
//! θ_overlap (blocking), θ_edge (positive-edge filter), and the
//! matching thresholds `f_ed` / approximate-matching toggle (served
//! from the session's stored match counts — no edit distance re-runs).
//!
//! Paper findings to reproduce in shape: mapping counts barely move for
//! θ ∈ [0.93, 0.97]; quality is insensitive to small τ with a peak near
//! −0.05; |E| drops quickly as θ_overlap grows while quality holds;
//! θ_edge has a broad optimum.

use super::ExpConfig;
use crate::benchmark::web_benchmark_attested;
use crate::methods::PreparedWeb;
use crate::metrics::{mean_score, ResultScorer, Score};
use crate::report::{emit, Table};
use mapsynth::blocking::candidate_pairs;
use mapsynth::pipeline::Resolver;
use mapsynth::SynthesisConfig;
use mapsynth_extract::{extract_candidates, ExtractionConfig};
use mapsynth_gen::generate_web;
use mapsynth_mapreduce::MapReduce;

fn mean_f(prepared: &PreparedWeb, cases: &[crate::BenchmarkCase], cfg: &SynthesisConfig) -> Score {
    let results = prepared.run_synthesis(cfg, Resolver::Algorithm4);
    let scorer = ResultScorer::new(&results);
    let per: Vec<Score> = cases.iter().map(|c| scorer.best_for(&c.gt).0).collect();
    mean_score(&per)
}

/// Run all four sweeps.
pub fn run(cfg: &ExpConfig) {
    // Smaller corpus for the sweep grid.
    let mut web_cfg = cfg.web_config();
    web_cfg.tables = (cfg.tables / 2).max(500);
    let wc = generate_web(&web_cfg);
    let corpus_for_theta = scalability_corpus(&wc.corpus);
    let prepared = PreparedWeb::prepare(wc, cfg.synonym_fraction, cfg.workers);
    let cases = web_benchmark_attested(&prepared.registry, &prepared.emitted_pairs, 80);

    // --- θ (approximate FD) sweep: candidate & mapping counts ---
    let mr = if cfg.workers == 0 {
        MapReduce::default()
    } else {
        MapReduce::new(cfg.workers)
    };
    let mut t = Table::new(&["theta_fd", "candidates", "mappings"]);
    for theta in [0.93, 0.94, 0.95, 0.96, 0.97] {
        let (cands, _) = extract_candidates(
            &corpus_for_theta,
            &ExtractionConfig {
                fd_theta: theta,
                ..Default::default()
            },
            &mr,
        );
        let feed = prepared
            .registry
            .partial_synonym_feed(cfg.synonym_fraction, 11);
        let (space, tables) =
            mapsynth::values::build_value_space(&corpus_for_theta.interner, &cands, &feed, &mr);
        let mappings = mapsynth::synthesize_from(&space, &tables, &SynthesisConfig::default(), &mr);
        t.row(vec![
            format!("{theta:.2}"),
            cands.len().to_string(),
            mappings.len().to_string(),
        ]);
    }
    emit(
        &cfg.out_dir,
        "sensitivity_theta_fd",
        "Sensitivity (§5.4): approximate-FD threshold θ",
        &t,
    );

    // --- τ sweep ---
    let mut t = Table::new(&["tau", "avg_fscore", "avg_precision", "avg_recall"]);
    for tau in [-0.4, -0.3, -0.2, -0.1, -0.05, -0.02] {
        let s = mean_f(
            &prepared,
            &cases,
            &SynthesisConfig {
                tau,
                ..Default::default()
            },
        );
        t.row(vec![
            format!("{tau}"),
            format!("{:.3}", s.f),
            format!("{:.3}", s.precision),
            format!("{:.3}", s.recall),
        ]);
    }
    emit(
        &cfg.out_dir,
        "sensitivity_tau",
        "Sensitivity (§5.4): hard-conflict threshold τ",
        &t,
    );

    // --- θ_overlap sweep: edge count and quality ---
    let mut t = Table::new(&["theta_overlap", "candidate_pairs", "avg_fscore"]);
    for overlap in [1usize, 2, 3, 4, 5] {
        let scfg = SynthesisConfig {
            theta_overlap: overlap,
            ..Default::default()
        };
        let (pairs, _) = candidate_pairs(prepared.space(), prepared.tables(), &scfg, prepared.mr());
        // Quality still evaluated with shared scored pairs only when
        // overlap=2 matches; otherwise re-run synthesis from scratch on
        // the blocked pairs via the full path.
        let s = if overlap == 2 {
            mean_f(&prepared, &cases, &scfg)
        } else {
            let results = {
                let graph = mapsynth::graph::build_graph(
                    prepared.space(),
                    prepared.tables(),
                    &scfg,
                    prepared.mr(),
                );
                mapsynth::synthesize_graph(
                    prepared.space(),
                    prepared.tables(),
                    &graph,
                    &scfg,
                    Resolver::Algorithm4,
                    prepared.mr(),
                )
            };
            let rr: Vec<mapsynth_baselines::RelationResult> = results
                .into_iter()
                .map(|m| mapsynth_baselines::RelationResult {
                    pairs: m.materialize_pairs(),
                })
                .collect();
            let scorer = ResultScorer::new(&rr);
            let per: Vec<Score> = cases.iter().map(|c| scorer.best_for(&c.gt).0).collect();
            mean_score(&per)
        };
        t.row(vec![
            overlap.to_string(),
            pairs.len().to_string(),
            format!("{:.3}", s.f),
        ]);
    }
    emit(
        &cfg.out_dir,
        "sensitivity_theta_overlap",
        "Sensitivity (§5.4): blocking threshold θ_overlap",
        &t,
    );

    // --- matching-threshold sweep (f_ed + approx toggle) ---
    // Weights derive from the session's cached match counts; the sweep
    // re-runs zero edit-distance DP (tighter f_ed resolves against the
    // memoized distances, "exact" drops to the class-equality counts).
    let mut t = Table::new(&["matching", "avg_fscore", "avg_precision", "avg_recall"]);
    let mut settings: Vec<SynthesisConfig> = [0.05, 0.1, 0.2]
        .iter()
        .map(|&f_ed| SynthesisConfig {
            match_params: mapsynth_text::MatchParams { f_ed, k_ed: 10 },
            ..Default::default()
        })
        .collect();
    settings.push(SynthesisConfig {
        approx_matching: false,
        ..Default::default()
    });
    for run in prepared.sweep_matching(&settings, Resolver::Algorithm4) {
        let scorer = ResultScorer::new(&run.results);
        let per: Vec<Score> = cases.iter().map(|c| scorer.best_for(&c.gt).0).collect();
        let s = mean_score(&per);
        t.row(vec![
            run.label,
            format!("{:.3}", s.f),
            format!("{:.3}", s.precision),
            format!("{:.3}", s.recall),
        ]);
    }
    emit(
        &cfg.out_dir,
        "sensitivity_matching",
        "Sensitivity (§5.4): approximate-matching thresholds (reused match counts)",
        &t,
    );

    // --- θ_edge sweep ---
    let mut t = Table::new(&["theta_edge", "avg_fscore", "avg_precision", "avg_recall"]);
    for edge in [0.4, 0.5, 0.6, 0.7, 0.85, 0.95] {
        let s = mean_f(
            &prepared,
            &cases,
            &SynthesisConfig {
                theta_edge: edge,
                ..Default::default()
            },
        );
        t.row(vec![
            format!("{edge}"),
            format!("{:.3}", s.f),
            format!("{:.3}", s.precision),
            format!("{:.3}", s.recall),
        ]);
    }
    emit(
        &cfg.out_dir,
        "sensitivity_theta_edge",
        "Sensitivity (§5.4): positive-edge threshold θ_edge",
        &t,
    );
}

/// Clone of the corpus used for the θ sweep (extraction mutates
/// nothing, but we keep the borrow simple by copying once).
fn scalability_corpus(corpus: &mapsynth_corpus::Corpus) -> mapsynth_corpus::Corpus {
    super::scalability::subsample(corpus, corpus.len())
}
