//! Appendix I: table expansion from trusted sources.
//!
//! Synthesized "cores" of very large relations (airport codes) miss
//! tail instances with little web presence. Expansion merges a trusted
//! comprehensive source (data.gov style) into a core when similarity /
//! dissimilarity requirements hold. Paper finding: the effect is
//! limited overall but substantial for the two airport-code cases.

use super::ExpConfig;
use crate::benchmark::web_benchmark_attested;
use crate::methods::PreparedWeb;
use crate::metrics::{score_sets, ResultScorer};
use crate::report::{emit, Table};
use mapsynth::expand::{expand_mapping, ExpansionConfig, ExpansionOutcome};
use mapsynth::pipeline::Resolver;
use mapsynth::SynthesisConfig;
use mapsynth_gen::generate_web;
use mapsynth_text::normalize;

/// Run the expansion study: compare per-case F before/after expanding
/// with trusted dumps of the large relations.
pub fn run(cfg: &ExpConfig) {
    let wc = generate_web(&cfg.web_config());
    let registry = wc.registry.clone();
    let prepared = PreparedWeb::prepare(wc, cfg.synonym_fraction, cfg.workers);
    let cases = web_benchmark_attested(&prepared.registry, &prepared.emitted_pairs, 80);
    let mappings = prepared.synthesize(&SynthesisConfig::default(), Resolver::Algorithm4);

    // Trusted sources: canonical complete dumps of the larger
    // relations (simulating data.gov / .xlsx reference files).
    let trusted: Vec<(String, Vec<(String, String)>)> = registry
        .relations
        .iter()
        .filter(|r| r.benchmark && r.len() >= 60)
        .map(|r| {
            let pairs: Vec<(String, String)> = r
                .entries
                .iter()
                .map(|e| (normalize(&e.left[0]), normalize(&e.right[0])))
                .collect();
            (r.name.clone(), pairs)
        })
        .collect();

    let rr: Vec<mapsynth_baselines::RelationResult> = mappings
        .iter()
        .map(|m| mapsynth_baselines::RelationResult {
            pairs: m.materialize_pairs(),
        })
        .collect();
    let scorer = ResultScorer::new(&rr);

    let mut t = Table::new(&["case", "f_before", "f_after", "outcome"]);
    for case in &cases {
        let (before, winner) = scorer.best_for(&case.gt);
        let Some(winner) = winner else { continue };
        // Expansion merges out-of-corpus strings, so it operates on
        // the materialized pair set (the app boundary).
        let mut core = mappings[winner as usize].materialize_pairs();
        // Try every trusted source; first successful expansion wins.
        let mut outcome = "no trusted match".to_string();
        for (name, pairs) in &trusted {
            match expand_mapping(&mut core, pairs, &ExpansionConfig::default()) {
                ExpansionOutcome::Expanded { added } => {
                    outcome = format!("expanded +{added} from {name}");
                    break;
                }
                ExpansionOutcome::Conflicting => {
                    outcome = format!("conflicting with {name}");
                }
                ExpansionOutcome::NotContained => {}
            }
        }
        let after = score_sets(&core, &case.gt);
        // Only report cases where expansion did something or could
        // matter (large ground truths).
        if (after.f - before.f).abs() > 1e-6 || case.gt.len() >= 150 {
            t.row(vec![
                case.name.clone(),
                format!("{:.3}", before.f),
                format!("{:.3}", after.f),
                outcome,
            ]);
        }
    }
    emit(
        &cfg.out_dir,
        "expansion_appendix_i",
        "Appendix I: table expansion from trusted sources (cases affected or large)",
        &t,
    );
}
