//! Figure 9: scalability — pipeline runtime at 20/40/60/80/100% of the
//! input tables. The paper observes near-linear scaling because edge
//! sparsity keeps `|E|` almost linear in `|V|`.

use super::ExpConfig;
use crate::report::{emit, Table};
use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_corpus::Corpus;
use mapsynth_gen::generate_web;

/// Copy the first `k` tables of a corpus into a fresh corpus (the
/// interner is rebuilt so the subsample is self-contained).
pub fn subsample(corpus: &Corpus, k: usize) -> Corpus {
    let mut out = Corpus::new();
    // Preserve domain ids by re-registering names in order.
    for name in &corpus.domain_names {
        out.domain(name);
    }
    for table in corpus.tables.iter().take(k) {
        let columns: Vec<(Option<&str>, Vec<&str>)> = table
            .columns
            .iter()
            .map(|c| {
                (
                    c.header.map(|h| corpus.str_of(h)),
                    c.values.iter().map(|&v| corpus.str_of(v)).collect(),
                )
            })
            .collect();
        out.push_table(table.domain, columns);
    }
    out
}

/// One measurement row.
pub struct ScalePoint {
    /// Input fraction (0.2 … 1.0).
    pub fraction: f64,
    /// Tables in the subsample.
    pub tables: usize,
    /// Candidates after extraction.
    pub candidates: usize,
    /// Graph edges.
    pub edges: usize,
    /// Total pipeline seconds.
    pub total_s: f64,
}

/// Run the scalability sweep and emit Figure 9.
pub fn run(cfg: &ExpConfig) -> Vec<ScalePoint> {
    let wc = generate_web(&cfg.web_config());
    let full = wc.corpus;
    let mut points = Vec::new();
    for pct in [20usize, 40, 60, 80, 100] {
        let k = full.len() * pct / 100;
        let sub = subsample(&full, k);
        let pipeline = Pipeline::new(PipelineConfig {
            workers: cfg.workers,
            ..Default::default()
        });
        let out = pipeline.run(&sub);
        points.push(ScalePoint {
            fraction: pct as f64 / 100.0,
            tables: k,
            candidates: out.candidates,
            edges: out.edges,
            total_s: out.timings.total.as_secs_f64(),
        });
    }
    let mut t = Table::new(&["input_pct", "tables", "candidates", "edges", "runtime_s"]);
    for p in &points {
        t.row(vec![
            format!("{:.0}", p.fraction * 100.0),
            p.tables.to_string(),
            p.candidates.to_string(),
            p.edges.to_string(),
            format!("{:.2}", p.total_s),
        ]);
    }
    emit(
        &cfg.out_dir,
        "fig9_scalability",
        "Figure 9: runtime vs input fraction",
        &t,
    );
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsample_preserves_content() {
        let mut c = Corpus::new();
        let d = c.domain("x.org");
        c.push_table(d, vec![(Some("h"), vec!["a", "b"])]);
        c.push_table(d, vec![(None, vec!["c"])]);
        let s = subsample(&c, 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.domain_names, c.domain_names);
        let t = &s.tables[0];
        assert_eq!(s.str_of(t.columns[0].values[0]), "a");
        assert_eq!(s.str_of(t.columns[0].header.unwrap()), "h");
    }
}
