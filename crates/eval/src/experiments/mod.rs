//! Experiment drivers — one per table/figure of the paper.
//!
//! | Driver | Regenerates |
//! |---|---|
//! | [`comparison`] | Figure 7 (avg quality), Figure 8 (runtime), Figure 14 (per-case F) |
//! | [`scalability`] | Figure 9 (runtime vs input fraction) |
//! | [`enterprise`] | Figure 10 (enterprise quality), Figure 11 (example mappings) |
//! | [`conflict`] | Figure 15 + §5.6 (conflict resolution, majority voting) |
//! | [`sensitivity`] | §5.4 (θ, τ, θ_overlap, θ_edge) |
//! | [`curation`] | §4.3, Appendix J, Figure 12, Figure 13, Table 6 |
//! | [`expansion`] | Appendix I (table expansion) |

pub mod comparison;
pub mod conflict;
pub mod curation;
pub mod enterprise;
pub mod expansion;
pub mod scalability;
pub mod sensitivity;

use std::path::PathBuf;

/// Shared experiment configuration.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Web corpus size (relation-backed tables).
    pub tables: usize,
    /// Enterprise corpus size.
    pub ent_tables: usize,
    /// Corpus seed.
    pub seed: u64,
    /// Synonym-feed coverage fraction (paper §4.1 synonyms).
    pub synonym_fraction: f64,
    /// Worker threads (0 = auto).
    pub workers: usize,
    /// Output directory for reports.
    pub out_dir: PathBuf,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            tables: 4000,
            ent_tables: 2000,
            seed: 42,
            synonym_fraction: 0.5,
            workers: 0,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExpConfig {
    /// Web generator config derived from this experiment config.
    pub fn web_config(&self) -> mapsynth_gen::WebConfig {
        mapsynth_gen::WebConfig {
            tables: self.tables,
            seed: self.seed,
            domains: (self.tables / 20).clamp(50, 500),
            ..Default::default()
        }
    }

    /// Enterprise generator config.
    pub fn enterprise_config(&self) -> mapsynth_gen::EnterpriseConfig {
        mapsynth_gen::EnterpriseConfig {
            tables: self.ent_tables,
            seed: self.seed.wrapping_add(1),
            ..Default::default()
        }
    }
}
