//! Figure 15 and §5.6: effect of conflict resolution.
//!
//! The paper reports: conflict resolution improves F for 48/80 cases;
//! average precision 0.903 → 0.965 while recall dips only 0.885 →
//! 0.878; and Algorithm 4 edges out majority voting.

use super::ExpConfig;
use crate::benchmark::web_benchmark_attested;
use crate::methods::PreparedWeb;
use crate::metrics::{mean_score, ResultScorer, Score};
use crate::report::{emit, note, Table};
use mapsynth::pipeline::Resolver;
use mapsynth::SynthesisConfig;
use mapsynth_gen::generate_web;

/// Outcome of the conflict-resolution study.
pub struct ConflictOutcome {
    /// Mean score with Algorithm 4.
    pub with_resolution: Score,
    /// Mean score without resolution.
    pub without_resolution: Score,
    /// Mean score with majority voting.
    pub majority_vote: Score,
    /// Cases where Algorithm 4 improved F.
    pub improved_cases: usize,
    /// Total cases.
    pub total_cases: usize,
}

/// Run the study and emit Figure 15.
pub fn run(cfg: &ExpConfig) -> ConflictOutcome {
    let wc = generate_web(&cfg.web_config());
    let prepared = PreparedWeb::prepare(wc, cfg.synonym_fraction, cfg.workers);
    let cases = web_benchmark_attested(&prepared.registry, &prepared.emitted_pairs, 80);
    let synth_cfg = SynthesisConfig::default();

    let score_all = |resolver: Resolver| -> Vec<Score> {
        let results = prepared.run_synthesis(&synth_cfg, resolver);
        let scorer = ResultScorer::new(&results);
        cases.iter().map(|c| scorer.best_for(&c.gt).0).collect()
    };
    let with_res = score_all(Resolver::Algorithm4);
    let without = score_all(Resolver::None);
    let majority = score_all(Resolver::MajorityVote);

    // Figure 15: per-case F with vs without, sorted by resolved F.
    let mut order: Vec<usize> = (0..cases.len()).collect();
    order.sort_by(|&a, &b| with_res[b].f.total_cmp(&with_res[a].f));
    let mut t = Table::new(&[
        "case",
        "with_resolution",
        "without_resolution",
        "majority_vote",
    ]);
    for &ci in &order {
        t.row(vec![
            cases[ci].name.clone(),
            format!("{:.3}", with_res[ci].f),
            format!("{:.3}", without[ci].f),
            format!("{:.3}", majority[ci].f),
        ]);
    }
    emit(
        &cfg.out_dir,
        "fig15_conflict_resolution",
        "Figure 15: per-case f-score with vs without conflict resolution",
        &t,
    );

    let improved = (0..cases.len())
        .filter(|&i| with_res[i].f > without[i].f + 1e-9)
        .count();
    let outcome = ConflictOutcome {
        with_resolution: mean_score(&with_res),
        without_resolution: mean_score(&without),
        majority_vote: mean_score(&majority),
        improved_cases: improved,
        total_cases: cases.len(),
    };
    note(
        &cfg.out_dir,
        "fig15_conflict_resolution",
        &format!(
            "\n§5.6 aggregates: resolution improves {}/{} cases.\n\
             precision {:.3} -> {:.3} (paper: 0.903 -> 0.965)\n\
             recall    {:.3} -> {:.3} (paper: 0.885 -> 0.878)\n\
             f-score   Algorithm4 {:.3} vs MajorityVote {:.3} vs none {:.3}",
            outcome.improved_cases,
            outcome.total_cases,
            outcome.without_resolution.precision,
            outcome.with_resolution.precision,
            outcome.without_resolution.recall,
            outcome.with_resolution.recall,
            outcome.with_resolution.f,
            outcome.majority_vote.f,
            outcome.without_resolution.f,
        ),
    );
    outcome
}
