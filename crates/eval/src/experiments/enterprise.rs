//! Figure 10 and Figure 11: the enterprise corpus (§5.5).
//!
//! Synthesis vs the single-table `EntTable` baseline on the 30
//! best-effort enterprise benchmark cases, plus example synthesized
//! enterprise mappings. Recall here is *relative* recall (ground truth
//! completeness cannot be guaranteed for enterprise data — §5.1).

use super::ExpConfig;
use crate::benchmark::enterprise_benchmark;
use crate::metrics::{mean_score, ResultScorer, Score};
use crate::report::{emit, Table};
use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
use mapsynth::{SynthesisConfig, SynthesizedMapping};
use mapsynth_baselines::single_table::single_tables;
use mapsynth_baselines::RelationResult;
use mapsynth_gen::generate_enterprise;

/// Outcome: mean scores for Synthesis and EntTable, plus the top
/// synthesized mappings for Figure 11.
pub struct EnterpriseOutcome {
    /// Synthesis mean score over 30 cases.
    pub synthesis: Score,
    /// EntTable mean score.
    pub ent_table: Score,
    /// Curation-ranked synthesized mappings.
    pub mappings: Vec<SynthesizedMapping>,
}

/// Run the enterprise experiments and emit Figures 10 and 11.
pub fn run(cfg: &ExpConfig) -> EnterpriseOutcome {
    let ec = generate_enterprise(&cfg.enterprise_config());
    let cases = enterprise_benchmark(&ec.registry);
    // No synonym feed: enterprise values are internal codes with no
    // public synonym source (the paper's KB-coverage point). The
    // session runs extraction + value space + scoring once; both the
    // Synthesis run and the EntTable baseline read its artifacts.
    let mut session = SynthesisSession::new(PipelineConfig {
        workers: cfg.workers,
        ..Default::default()
    });
    session.prepare(&ec.corpus);

    let mappings = session
        .synthesize(&SynthesisConfig::default(), Resolver::Algorithm4)
        .mappings;
    let synth_results: Vec<RelationResult> = mappings
        .iter()
        .map(|m| RelationResult {
            pairs: m.materialize_pairs(),
        })
        .collect();
    let values = session.values().expect("prepared");
    let ent_results = single_tables(&values.space, &values.tables);

    let score = |results: &[RelationResult]| {
        let scorer = ResultScorer::new(results);
        let per: Vec<Score> = cases.iter().map(|c| scorer.best_for(&c.gt).0).collect();
        mean_score(&per)
    };
    let synthesis = score(&synth_results);
    let ent_table = score(&ent_results);

    let mut t = Table::new(&["method", "avg_fscore", "avg_precision", "avg_recall"]);
    for (name, s) in [("Synthesis", synthesis), ("EntTable", ent_table)] {
        t.row(vec![
            name.to_string(),
            format!("{:.3}", s.f),
            format!("{:.3}", s.precision),
            format!("{:.3}", s.recall),
        ]);
    }
    emit(
        &cfg.out_dir,
        "fig10_enterprise",
        "Figure 10: Synthesis vs EntTable on the Enterprise corpus (30 cases)",
        &t,
    );

    // Figure 11: example mapping relationships with instances.
    let mut t = Table::new(&["rank", "tables", "domains", "pairs", "example_instances"]);
    for (i, m) in mappings
        .iter()
        .filter(|m| m.source_tables >= 3)
        .take(10)
        .enumerate()
    {
        let examples: Vec<String> = m
            .pair_strs()
            .take(2)
            .map(|(l, r)| format!("({l}, {r})"))
            .collect();
        t.row(vec![
            (i + 1).to_string(),
            m.source_tables.to_string(),
            m.domains.to_string(),
            m.len().to_string(),
            examples.join(" "),
        ]);
    }
    emit(
        &cfg.out_dir,
        "fig11_enterprise_examples",
        "Figure 11: example mapping relationships from the enterprise corpus",
        &t,
    );

    EnterpriseOutcome {
        synthesis,
        ent_table,
        mappings,
    }
}
