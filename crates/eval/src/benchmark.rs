//! Benchmark construction (paper §5.1 "Benchmarks").
//!
//! The paper's web benchmark has 80 manually curated mapping
//! relationships (14 geocoding systems + query-log "list of A and B"
//! cases), with instances merged from high-quality web tables and
//! knowledge bases so that ground truth is synonym-rich. Our registry
//! plays that role: every benchmark-flagged relation contributes its
//! full synonym-crossed pair set.
//!
//! The enterprise benchmark has 30 best-effort cases; recall on it is
//! *relative* recall (the paper could not guarantee completeness, and
//! neither corpus can cover master databases).

use mapsynth_gen::Registry;
use std::collections::HashSet;

/// One benchmark case: a name and its ground-truth pair set
/// (normalized strings).
#[derive(Clone, Debug)]
pub struct BenchmarkCase {
    /// Relation name (registry id).
    pub name: String,
    /// Ground truth `B*` as a set.
    pub gt: HashSet<(String, String)>,
}

/// Build the web benchmark: up to `max_cases` benchmark-flagged
/// relations in registry order (real relations first, then procedural).
pub fn web_benchmark(registry: &Registry, max_cases: usize) -> Vec<BenchmarkCase> {
    let cases: Vec<BenchmarkCase> = registry
        .benchmark_cases()
        .take(max_cases)
        .map(|r| BenchmarkCase {
            name: r.name.clone(),
            gt: r.ground_truth_pairs(),
        })
        .collect();
    assert!(
        cases.len() >= max_cases.min(60),
        "registry only provided {} benchmark cases",
        cases.len()
    );
    cases
}

/// Build the web benchmark with ground truth restricted to *attested*
/// pairs: those some corpus table actually asserts, plus every
/// relation's canonical pairs (the knowledge-base contribution). This
/// mirrors the paper's benchmark construction — "we curate instances
/// for each relationship by combining data collected from web tables
/// as well as knowledge bases" — so that recall measures what any
/// method could in principle recover.
pub fn web_benchmark_attested(
    registry: &Registry,
    attested: &HashSet<(String, String)>,
    max_cases: usize,
) -> Vec<BenchmarkCase> {
    use mapsynth_text::normalize;
    registry
        .benchmark_cases()
        .take(max_cases)
        .map(|r| {
            let canonical: HashSet<(String, String)> = r
                .entries
                .iter()
                .map(|e| (normalize(&e.left[0]), normalize(&e.right[0])))
                .collect();
            let gt: HashSet<(String, String)> = r
                .ground_truth_pairs()
                .into_iter()
                .filter(|p| canonical.contains(p) || attested.contains(p))
                .collect();
            BenchmarkCase {
                name: r.name.clone(),
                gt,
            }
        })
        .collect()
}

/// Build the 30-case enterprise benchmark.
pub fn enterprise_benchmark(registry: &Registry) -> Vec<BenchmarkCase> {
    registry
        .benchmark_cases()
        .take(30)
        .map(|r| BenchmarkCase {
            name: r.name.clone(),
            gt: r.ground_truth_pairs(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapsynth_gen::procedural::ProceduralConfig;
    use mapsynth_gen::{generate_enterprise, generate_web, EnterpriseConfig, WebConfig};

    #[test]
    fn web_benchmark_has_80_cases() {
        let wc = generate_web(&WebConfig {
            tables: 10,
            ..Default::default()
        });
        let cases = web_benchmark(&wc.registry, 80);
        assert_eq!(cases.len(), 80);
        // Geocoding systems present (paper Figure 6).
        let names: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        for geo in [
            "country->iso3",
            "country->iso2",
            "country->ioc",
            "country->fifa",
            "airport->iata",
            "state->fips",
        ] {
            assert!(names.contains(&geo), "missing {geo}");
        }
        for c in &cases {
            assert!(c.gt.len() >= 7, "{} gt too small", c.name);
        }
    }

    #[test]
    fn smaller_registry_yields_fewer_cases() {
        let wc = generate_web(&WebConfig {
            tables: 10,
            procedural: ProceduralConfig {
                families: 25,
                ..Default::default()
            },
            ..Default::default()
        });
        let cases = web_benchmark(&wc.registry, 80);
        assert!(cases.len() >= 60);
    }

    #[test]
    fn enterprise_benchmark_has_30_cases() {
        let ec = generate_enterprise(&EnterpriseConfig {
            tables: 10,
            ..Default::default()
        });
        let cases = enterprise_benchmark(&ec.registry);
        assert_eq!(cases.len(), 30);
    }
}
