//! Cell value normalization.
//!
//! Real web-table cells carry extraneous decoration — footnote marks
//! like `\[1\]` (paper Figure 2, fourth row), trailing asterisks/daggers,
//! inconsistent case and punctuation. Normalization removes the
//! decoration so that "American Samoa (US)\[1\]" and "american samoa
//! (us)" compare close, while keeping enough signal that "USA" and
//! "RSA" stay distinct.
//!
//! Rules, applied in order:
//! 1. strip trailing footnote markers: any run of `[digits]`,
//!    `[letter]`, `*`, `†`, `‡` at the end of the string;
//! 2. Unicode-aware lowercase;
//! 3. map punctuation (anything non-alphanumeric) to a single space;
//! 4. collapse whitespace runs and trim.

/// Normalize a cell value. Returns an owned canonical string.
pub fn normalize(raw: &str) -> String {
    let stripped = strip_footnotes(raw);
    let mut out = String::with_capacity(stripped.len());
    let mut pending_space = false;
    for ch in stripped.chars() {
        if ch.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
        } else {
            // punctuation & whitespace collapse to one separator
            pending_space = true;
        }
    }
    out
}

/// Strip trailing footnote markers: `[..]` groups and reference
/// symbols at the end of a value.
fn strip_footnotes(s: &str) -> &str {
    let mut end = s.trim_end().len();
    loop {
        let prefix = s[..end].trim_end();
        end = prefix.len();
        if end == 0 {
            return "";
        }
        // trailing reference symbols
        if let Some(last) = prefix.chars().last() {
            if matches!(last, '*' | '†' | '‡') {
                end -= last.len_utf8();
                continue;
            }
        }
        // trailing [..] group with short alnum content (footnote, not data)
        if prefix.ends_with(']') {
            if let Some(open) = prefix.rfind('[') {
                let inner = &prefix[open + 1..end - 1];
                if !inner.is_empty()
                    && inner.len() <= 3
                    && inner.chars().all(|c| c.is_ascii_alphanumeric())
                {
                    end = open;
                    continue;
                }
            }
        }
        return prefix;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_case_and_punct() {
        assert_eq!(normalize("Korea, Republic of"), "korea republic of");
        assert_eq!(normalize("KOREA REPUBLIC OF"), "korea republic of");
        assert_eq!(normalize("  South   Korea  "), "south korea");
    }

    #[test]
    fn footnotes_removed() {
        assert_eq!(normalize("United States[1]"), "united states");
        assert_eq!(normalize("United States[12]*"), "united states");
        assert_eq!(normalize("France†"), "france");
        assert_eq!(normalize("Spain [a]"), "spain");
    }

    #[test]
    fn bracketed_data_kept() {
        // long bracketed content is data, not a footnote
        assert_eq!(
            normalize("Congo [Democratic Republic]"),
            "congo democratic republic"
        );
    }

    #[test]
    fn parenthesized_synonyms_flatten() {
        assert_eq!(normalize("American Samoa (US)"), "american samoa us");
        assert_eq!(
            normalize("Korea, Republic of (South Korea)"),
            "korea republic of south korea"
        );
    }

    #[test]
    fn short_codes_stay_distinct() {
        assert_eq!(normalize("USA"), "usa");
        assert_eq!(normalize("RSA"), "rsa");
        assert_ne!(normalize("USA"), normalize("RSA"));
    }

    #[test]
    fn numeric_and_mixed() {
        assert_eq!(normalize("F-150"), "f 150");
        assert_eq!(normalize("840"), "840");
    }

    #[test]
    fn empty_and_punct_only() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("  --- "), "");
        assert_eq!(normalize("***"), "");
    }

    #[test]
    fn unicode_lowercase() {
        assert_eq!(normalize("Österreich"), "österreich");
        assert_eq!(normalize("ÖSTERREICH"), "österreich");
    }

    #[test]
    fn idempotent() {
        for s in ["Korea, Republic of", "United States[1]", "F-150", "  x  "] {
            let once = normalize(s);
            assert_eq!(normalize(&once), once);
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_normalize_idempotent(s in "\\PC{0,40}") {
            let once = normalize(&s);
            prop_assert_eq!(normalize(&once), once.clone());
        }

        #[test]
        fn prop_normalize_canonical_shape(s in "\\PC{0,40}") {
            let n = normalize(&s);
            // No leading/trailing/double spaces; no uppercase ASCII.
            prop_assert_eq!(n.trim(), n.as_str());
            prop_assert!(!n.contains("  "));
            prop_assert!(!n.chars().any(|c| c.is_ascii_uppercase()));
        }

        #[test]
        fn prop_normalize_never_panics_on_unicode(s in proptest::string::string_regex(".{0,24}").unwrap()) {
            let _ = normalize(&s);
        }
    }
}
