//! # mapsynth-text
//!
//! String handling for table synthesis (paper §4.1, "Approximate String
//! Matching" and "Synonyms"):
//!
//! * [`normalize()`] — canonicalizes cell values (case folding, footnote
//!   marks, punctuation, whitespace) so that cosmetic variation does
//!   not depress compatibility between tables;
//! * [`editdist`] — bounded edit distance, the paper's Algorithm 2,
//!   with the fractional threshold
//!   `θ_ed(v1,v2) = min{⌊|v1|·f_ed⌋, ⌊|v2|·f_ed⌋, k_ed}`: a
//!   bit-parallel Myers kernel with a banded (Ukkonen-style) fallback,
//!   both returning identical distances;
//! * [`signature`] — per-string character-occurrence signatures (64-bit
//!   mask + frequency histogram) whose `O(1)` exact lower bounds let a
//!   similarity join prune candidate pairs before any kernel runs;
//! * [`synonyms`] — an external synonym feed (paper: "e.g., using
//!   existing synonym feeds \[10\]") that can boost positive
//!   compatibility and suppress false conflicts.

pub mod editdist;
pub mod normalize;
pub mod signature;
pub mod synonyms;

pub use editdist::{
    approx_match, approx_match_compact, edit_distance_full, edit_distance_within,
    edit_distance_within_banded, edit_distance_within_myers, fractional_threshold,
    fractional_threshold_for_lens, MatchParams,
};
pub use normalize::normalize;
pub use signature::{CharSignature, SIG_BUCKETS};
pub use synonyms::SynonymDict;
