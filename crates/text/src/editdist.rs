//! Banded edit distance — the paper's Algorithm 2.
//!
//! Computing full `O(|v1|·|v2|)` Levenshtein matrices for hundreds of
//! millions of value comparisons is infeasible; the required threshold
//! `θ_ed` is small, so (following Ukkonen) only a band of width
//! `2·θ_ed + 1` around the diagonal is filled:
//! `O(θ_ed · min{|v1|, |v2|})` per comparison.
//!
//! Thresholds are *fractional* (paper §4.1): an absolute threshold ≥ 1
//! would incorrectly match short codes like "USA" and "RSA", so the
//! allowed distance scales with string length and is capped at `k_ed`.

/// Parameters of approximate matching.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchParams {
    /// Fractional edit-distance budget per character (paper `f_ed`,
    /// default 0.2).
    pub f_ed: f64,
    /// Absolute cap on the threshold (paper `k_ed = 10`).
    pub k_ed: u32,
}

impl Default for MatchParams {
    fn default() -> Self {
        Self {
            f_ed: 0.2,
            k_ed: 10,
        }
    }
}

/// The dynamic threshold
/// `θ_ed(v1,v2) = min{⌊|v1|·f_ed⌋, ⌊|v2|·f_ed⌋, k_ed}`
/// measured in characters.
pub fn fractional_threshold(v1: &str, v2: &str, params: MatchParams) -> u32 {
    fractional_threshold_for_lens(v1.chars().count(), v2.chars().count(), params)
}

/// [`fractional_threshold`] from already-known `char` counts, for
/// callers that cache value lengths (the scoring hot path). Uses the
/// exact same float arithmetic so results are bit-identical.
#[inline]
pub fn fractional_threshold_for_lens(l1: usize, l2: usize, params: MatchParams) -> u32 {
    let t = (l1 as f64 * params.f_ed)
        .floor()
        .min((l2 as f64 * params.f_ed).floor());
    (t as u32).min(params.k_ed)
}

/// Banded edit distance: returns `Some(d)` with `d ≤ bound` if the
/// Levenshtein distance between `v1` and `v2` is at most `bound`,
/// otherwise `None`.
///
/// Operates on Unicode scalar values (one edit = one `char`).
pub fn edit_distance_within(v1: &str, v2: &str, bound: u32) -> Option<u32> {
    let a: Vec<char> = v1.chars().collect();
    let b: Vec<char> = v2.chars().collect();
    // Ensure |a| <= |b| (Algorithm 2 line 1-2).
    let (a, b) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let (n, m) = (a.len(), b.len());
    // Length difference alone exceeds the bound → early reject.
    if (m - n) as u32 > bound {
        return None;
    }
    if n == 0 {
        return Some(m as u32);
    }
    let band = bound as usize;
    const INF: u32 = u32::MAX / 2;
    // prev[j] = dist[i-1][j], cur[j] = dist[i][j]; band-limited columns
    // hold INF outside the band.
    let mut prev: Vec<u32> = (0..=m as u32).collect(); // row 0: dist(ε, b[..j]) = j
    let mut cur: Vec<u32> = vec![INF; m + 1];
    for i in 1..=n {
        let lower = i.saturating_sub(band).max(1);
        let upper = (i + band).min(m);
        cur[lower - 1] = INF;
        if lower == 1 {
            cur[0] = i as u32; // dist(a[..i], ε) = i
        }
        for j in lower..=upper {
            let sub_cost = u32::from(a[i - 1] != b[j - 1]);
            let mut d = prev[j - 1].saturating_add(sub_cost); // substitute / match
            d = d.min(prev[j].saturating_add(1)); // delete from a
            d = d.min(cur[j - 1].saturating_add(1)); // insert into a
            cur[j] = d;
        }
        if upper < m {
            cur[upper + 1] = INF;
        }
        // Early exit: entire band exceeded the bound.
        if cur[lower..=upper].iter().all(|&d| d > bound) {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[m];
    (d <= bound).then_some(d)
}

/// Full-matrix Levenshtein distance. Reference implementation used for
/// testing and as the baseline in the `edit_distance` ablation bench.
pub fn edit_distance_full(v1: &str, v2: &str) -> u32 {
    let a: Vec<char> = v1.chars().collect();
    let b: Vec<char> = v2.chars().collect();
    let (n, m) = (a.len(), b.len());
    let mut prev: Vec<u32> = (0..=m as u32).collect();
    let mut cur: Vec<u32> = vec![0; m + 1];
    for i in 1..=n {
        cur[0] = i as u32;
        for j in 1..=m {
            let sub = prev[j - 1] + u32::from(a[i - 1] != b[j - 1]);
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Approximate match predicate (paper §4.1): true when the edit
/// distance is within the fractional threshold. Equal strings always
/// match.
pub fn approx_match(v1: &str, v2: &str, params: MatchParams) -> bool {
    if v1 == v2 {
        return true;
    }
    let bound = fractional_threshold(v1, v2, params);
    if bound == 0 {
        return false;
    }
    edit_distance_within(v1, v2, bound).is_some()
}

/// Approximate match with whitespace removed first — the paper's
/// Example 8 arithmetic ("ignoring punctuations", distance 2 between
/// "American Samoa" and "American Samoa (US)") treats separators as
/// free, so "americansamoa" vs "americansamoaus" is the comparison
/// actually made.
pub fn approx_match_compact(v1: &str, v2: &str, params: MatchParams) -> bool {
    if v1 == v2 {
        return true;
    }
    let a: String = v1.chars().filter(|c| !c.is_whitespace()).collect();
    let b: String = v2.chars().filter(|c| !c.is_whitespace()).collect();
    approx_match(&a, &b, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn threshold_from_paper_example_8() {
        // "American Samoa" (14 ch) vs "American Samoa (US)" — the paper
        // normalizes away punctuation first; with f_ed = 0.2 and
        // lengths 13/15 it computes θ_ed = min{⌊13·0.2⌋, ⌊15·0.2⌋, 10} = 2.
        let p = MatchParams::default();
        let a = "americansamoa"; // 13
        let b = "americansamoaus"; // 15
        assert_eq!(fractional_threshold(a, b, p), 2);
        assert_eq!(edit_distance_within(a, b, 2), Some(2));
        assert!(approx_match(a, b, p));
    }

    #[test]
    fn short_codes_require_exact_match() {
        let p = MatchParams::default();
        // ⌊3·0.2⌋ = 0 → no edits allowed
        assert_eq!(fractional_threshold("usa", "rsa", p), 0);
        assert!(!approx_match("usa", "rsa", p));
        assert!(approx_match("usa", "usa", p));
    }

    #[test]
    fn k_ed_caps_long_strings() {
        let p = MatchParams {
            f_ed: 0.5,
            k_ed: 10,
        };
        let long_a = "a".repeat(100);
        let long_b = "b".repeat(100);
        assert_eq!(fractional_threshold(&long_a, &long_b, p), 10);
        assert!(!approx_match(&long_a, &long_b, p));
    }

    #[test]
    fn banded_matches_full_within_bound() {
        let cases = [
            ("kitten", "sitting"),
            ("korea republic of", "korea republic"),
            ("", "abc"),
            ("abc", ""),
            ("same", "same"),
            ("a", "ab"),
            ("flaw", "lawn"),
        ];
        for (a, b) in cases {
            let full = edit_distance_full(a, b);
            for bound in 0..=8u32 {
                let banded = edit_distance_within(a, b, bound);
                if full <= bound {
                    assert_eq!(banded, Some(full), "{a:?} vs {b:?} bound {bound}");
                } else {
                    assert_eq!(banded, None, "{a:?} vs {b:?} bound {bound}");
                }
            }
        }
    }

    #[test]
    fn unicode_chars_count_as_single_edits() {
        assert_eq!(edit_distance_full("café", "cafe"), 1);
        assert_eq!(edit_distance_within("café", "cafe", 1), Some(1));
    }

    #[test]
    fn threshold_for_lens_matches_string_form() {
        for f_ed in [0.0, 0.1, 0.2, 0.3, 0.5] {
            for k_ed in [0u32, 1, 5, 10] {
                let p = MatchParams { f_ed, k_ed };
                for la in 0usize..40 {
                    for lb in 0usize..40 {
                        let a = "x".repeat(la);
                        let b = "y".repeat(lb);
                        assert_eq!(
                            fractional_threshold(&a, &b, p),
                            fractional_threshold_for_lens(la, lb, p),
                            "lens {la},{lb} params {p:?}"
                        );
                    }
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_banded_agrees_with_full(a in "[a-d]{0,12}", b in "[a-d]{0,12}", bound in 0u32..6) {
            let full = edit_distance_full(&a, &b);
            let banded = edit_distance_within(&a, &b, bound);
            if full <= bound {
                prop_assert_eq!(banded, Some(full));
            } else {
                prop_assert_eq!(banded, None);
            }
        }

        #[test]
        fn prop_distance_is_metric_like(a in "[a-c]{0,10}", b in "[a-c]{0,10}") {
            let d = edit_distance_full(&a, &b);
            prop_assert_eq!(d, edit_distance_full(&b, &a)); // symmetric
            prop_assert_eq!(edit_distance_full(&a, &a), 0); // identity
            let la = a.chars().count() as i64;
            let lb = b.chars().count() as i64;
            prop_assert!(d as i64 >= (la - lb).abs()); // length lower bound
            prop_assert!(d as i64 <= la.max(lb)); // upper bound
        }

        #[test]
        fn prop_triangle_inequality(a in "[a-b]{0,8}", b in "[a-b]{0,8}", c in "[a-b]{0,8}") {
            let ab = edit_distance_full(&a, &b);
            let bc = edit_distance_full(&b, &c);
            let ac = edit_distance_full(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn prop_approx_match_symmetric(a in "[a-e ]{0,16}", b in "[a-e ]{0,16}") {
            let p = MatchParams::default();
            prop_assert_eq!(approx_match(&a, &b, p), approx_match(&b, &a, p));
        }
    }
}
