//! Bounded edit distance — the paper's Algorithm 2, hardware-shaped.
//!
//! Computing full `O(|v1|·|v2|)` Levenshtein matrices for hundreds of
//! millions of value comparisons is infeasible. Two bounded kernels
//! return **identical distances** and [`edit_distance_within`] picks
//! between them:
//!
//! * **Bit-parallel Myers** (Myers 1999 / Hyyrö 2003): one DP column
//!   per 64 pattern characters packed into machine words —
//!   `O(⌈min{|v1|,|v2|}/64⌉ · max{|v1|,|v2|})` word operations, with
//!   multi-word blocks chained through horizontal-delta carries for
//!   patterns longer than one word. The default for the value lengths
//!   approximate matching actually sees.
//! * **Banded DP** (Ukkonen): only a band of width `2·θ_ed + 1` around
//!   the diagonal is filled — `O(θ_ed · min{|v1|, |v2|})` per
//!   comparison. The fallback once values are so long that the band is
//!   narrower than the Myers block span.
//!
//! Thresholds are *fractional* (paper §4.1): an absolute threshold ≥ 1
//! would incorrectly match short codes like "USA" and "RSA", so the
//! allowed distance scales with string length and is capped at `k_ed`.

/// Parameters of approximate matching.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchParams {
    /// Fractional edit-distance budget per character (paper `f_ed`,
    /// default 0.2).
    pub f_ed: f64,
    /// Absolute cap on the threshold (paper `k_ed = 10`).
    pub k_ed: u32,
}

impl Default for MatchParams {
    fn default() -> Self {
        Self {
            f_ed: 0.2,
            k_ed: 10,
        }
    }
}

/// The dynamic threshold
/// `θ_ed(v1,v2) = min{⌊|v1|·f_ed⌋, ⌊|v2|·f_ed⌋, k_ed}`
/// measured in characters.
pub fn fractional_threshold(v1: &str, v2: &str, params: MatchParams) -> u32 {
    fractional_threshold_for_lens(v1.chars().count(), v2.chars().count(), params)
}

/// [`fractional_threshold`] from already-known `char` counts, for
/// callers that cache value lengths (the scoring hot path). Uses the
/// exact same float arithmetic so results are bit-identical.
#[inline]
pub fn fractional_threshold_for_lens(l1: usize, l2: usize, params: MatchParams) -> u32 {
    let t = (l1 as f64 * params.f_ed)
        .floor()
        .min((l2 as f64 * params.f_ed).floor());
    (t as u32).min(params.k_ed)
}

/// Bounded edit distance: returns `Some(d)` with `d ≤ bound` if the
/// Levenshtein distance between `v1` and `v2` is at most `bound`,
/// otherwise `None`.
///
/// Operates on Unicode scalar values (one edit = one `char`).
/// Dispatches to the bit-parallel Myers kernel, with the banded DP as
/// the fallback for values so long that the diagonal band is narrower
/// than the Myers block span; both kernels compute the exact
/// Levenshtein distance, so the choice is invisible to callers.
pub fn edit_distance_within(v1: &str, v2: &str, bound: u32) -> Option<u32> {
    let a: Vec<char> = v1.chars().collect();
    let b: Vec<char> = v2.chars().collect();
    // Ensure |a| <= |b| (Algorithm 2 line 1-2).
    let (a, b) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    match prefilter(&a, &b, bound) {
        Prefilter::Reject => None,
        Prefilter::Decided(d) => Some(d),
        Prefilter::Run => {
            // Myers pays ⌈|a|/64⌉ word ops per text char; the banded DP
            // pays 2·bound+1 cells. The single-word case (the value
            // lengths matching actually sees) always favors Myers; only
            // a pattern spanning more words than the band is wide goes
            // to the banded DP.
            if a.len() <= WORD * (2 * bound as usize + 1) {
                myers_within(&a, &b, bound)
            } else {
                banded_within(&a, &b, bound)
            }
        }
    }
}

/// The banded (Ukkonen) kernel of [`edit_distance_within`], exposed for
/// the kernel-equivalence proptests and the `micro_edit_distance`
/// ablation bench. Identical results, possibly different wall-clock.
pub fn edit_distance_within_banded(v1: &str, v2: &str, bound: u32) -> Option<u32> {
    let a: Vec<char> = v1.chars().collect();
    let b: Vec<char> = v2.chars().collect();
    let (a, b) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    match prefilter(&a, &b, bound) {
        Prefilter::Reject => None,
        Prefilter::Decided(d) => Some(d),
        Prefilter::Run => banded_within(&a, &b, bound),
    }
}

/// The bit-parallel Myers kernel of [`edit_distance_within`], exposed
/// for the kernel-equivalence proptests and the `micro_edit_distance`
/// ablation bench. Identical results, possibly different wall-clock.
pub fn edit_distance_within_myers(v1: &str, v2: &str, bound: u32) -> Option<u32> {
    let a: Vec<char> = v1.chars().collect();
    let b: Vec<char> = v2.chars().collect();
    let (a, b) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    match prefilter(&a, &b, bound) {
        Prefilter::Reject => None,
        Prefilter::Decided(d) => Some(d),
        Prefilter::Run => myers_within(&a, &b, bound),
    }
}

/// Shared trivial-case handling before either kernel runs. `a` must be
/// the shorter side.
enum Prefilter {
    /// Length difference alone exceeds the bound.
    Reject,
    /// Distance known without running a kernel (empty shorter side).
    Decided(u32),
    /// Run a kernel.
    Run,
}

fn prefilter(a: &[char], b: &[char], bound: u32) -> Prefilter {
    debug_assert!(a.len() <= b.len());
    if (b.len() - a.len()) as u32 > bound {
        Prefilter::Reject
    } else if a.is_empty() {
        Prefilter::Decided(b.len() as u32)
    } else {
        Prefilter::Run
    }
}

/// Machine-word width of the Myers kernel: pattern characters per block.
const WORD: usize = 64;

/// Ukkonen banded DP over `char` slices; `a` is the shorter,
/// non-empty side and `b.len() - a.len() ≤ bound`.
fn banded_within(a: &[char], b: &[char], bound: u32) -> Option<u32> {
    let (n, m) = (a.len(), b.len());
    let band = bound as usize;
    const INF: u32 = u32::MAX / 2;
    // prev[j] = dist[i-1][j], cur[j] = dist[i][j]; band-limited columns
    // hold INF outside the band.
    let mut prev: Vec<u32> = (0..=m as u32).collect(); // row 0: dist(ε, b[..j]) = j
    let mut cur: Vec<u32> = vec![INF; m + 1];
    for i in 1..=n {
        let lower = i.saturating_sub(band).max(1);
        let upper = (i + band).min(m);
        cur[lower - 1] = INF;
        if lower == 1 {
            cur[0] = i as u32; // dist(a[..i], ε) = i
        }
        for j in lower..=upper {
            let sub_cost = u32::from(a[i - 1] != b[j - 1]);
            let mut d = prev[j - 1].saturating_add(sub_cost); // substitute / match
            d = d.min(prev[j].saturating_add(1)); // delete from a
            d = d.min(cur[j - 1].saturating_add(1)); // insert into a
            cur[j] = d;
        }
        if upper < m {
            cur[upper + 1] = INF;
        }
        // Early exit: entire band exceeded the bound.
        if cur[lower..=upper].iter().all(|&d| d > bound) {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[m];
    (d <= bound).then_some(d)
}

/// One Myers column step for one 64-row block (Myers 1999 Fig. 8 /
/// the Hyyrö block formulation). `pv`/`mv` are the block's vertical
/// positive/negative delta words, `eq` its pattern-match word for the
/// current text character, `hin` the horizontal delta entering from
/// the block above (+1, 0, or −1), `msb` the bit of the block's last
/// pattern row. Returns the horizontal delta leaving the block's last
/// row. Unused high bits of a partial final block are harmless: every
/// operation (carry, shift, bitwise) only propagates *upward*, so
/// garbage above `msb` never reaches the rows below it.
#[inline]
fn myers_advance_block(pv: &mut u64, mv: &mut u64, mut eq: u64, hin: i32, msb: u64) -> i32 {
    let hin_neg = u64::from(hin < 0);
    let xv = eq | *mv;
    eq |= hin_neg;
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let mut ph = *mv | !(xh | *pv);
    let mut mh = *pv & xh;
    let mut hout = 0i32;
    if ph & msb != 0 {
        hout += 1;
    }
    if mh & msb != 0 {
        hout -= 1;
    }
    ph <<= 1;
    mh <<= 1;
    mh |= hin_neg;
    if hin > 0 {
        ph |= 1;
    }
    *pv = mh | !(xv | ph);
    *mv = ph & xv;
    hout
}

/// Pattern-match words (`Peq`) for the single-word kernel: a direct
/// ASCII table plus a spill list for the (rare, post-normalization)
/// non-ASCII pattern characters.
struct Peq64 {
    ascii: [u64; 128],
    spill: Vec<(char, u64)>,
}

impl Peq64 {
    fn build(a: &[char]) -> Self {
        let mut p = Self {
            ascii: [0u64; 128],
            spill: Vec::new(),
        };
        for (i, &c) in a.iter().enumerate() {
            let bit = 1u64 << (i % WORD);
            if (c as u32) < 128 {
                p.ascii[c as usize] |= bit;
            } else if let Some(e) = p.spill.iter_mut().find(|e| e.0 == c) {
                e.1 |= bit;
            } else {
                p.spill.push((c, bit));
            }
        }
        p
    }

    #[inline]
    fn get(&self, c: char) -> u64 {
        if (c as u32) < 128 {
            self.ascii[c as usize]
        } else {
            self.spill.iter().find(|e| e.0 == c).map_or(0, |e| e.1)
        }
    }
}

/// Bit-parallel Myers over `char` slices; `a` is the shorter,
/// non-empty side and `b.len() - a.len() ≤ bound`. Single-word fast
/// path for patterns up to 64 chars, block-chained multi-word beyond.
fn myers_within(a: &[char], b: &[char], bound: u32) -> Option<u32> {
    if a.len() <= WORD {
        myers_one_word(a, b, bound)
    } else {
        myers_blocked(a, b, bound)
    }
}

/// Single-word Myers: the whole pattern lives in one machine word, one
/// block step per text character.
fn myers_one_word(a: &[char], b: &[char], bound: u32) -> Option<u32> {
    let m = a.len();
    debug_assert!(0 < m && m <= WORD);
    let peq = Peq64::build(a);
    let msb = 1u64 << (m - 1);
    let (mut pv, mut mv) = (!0u64, 0u64);
    let mut score = m as u32;
    let n = b.len();
    for (j, &c) in b.iter().enumerate() {
        let hout = myers_advance_block(&mut pv, &mut mv, peq.get(c), 1, msb);
        score = score.wrapping_add_signed(hout);
        // The last-row score changes by at most one per remaining text
        // character: once it cannot come back under the bound, stop.
        if score > bound + (n - j - 1) as u32 {
            return None;
        }
    }
    (score <= bound).then_some(score)
}

/// Multi-word Myers: ⌈m/64⌉ blocks per text character, horizontal
/// deltas carried block to block; the distance is tracked at the last
/// pattern row of the final (possibly partial) block.
fn myers_blocked(a: &[char], b: &[char], bound: u32) -> Option<u32> {
    let m = a.len();
    let blocks = m.div_ceil(WORD);
    // Peq laid out per character: ascii[c * blocks + k] is character
    // `c`'s match word for block `k` (contiguous per inner loop).
    let mut ascii = vec![0u64; 128 * blocks];
    let mut spill: Vec<(char, Vec<u64>)> = Vec::new();
    for (i, &c) in a.iter().enumerate() {
        let (blk, bit) = (i / WORD, 1u64 << (i % WORD));
        if (c as u32) < 128 {
            ascii[c as usize * blocks + blk] |= bit;
        } else if let Some(e) = spill.iter_mut().find(|e| e.0 == c) {
            e.1[blk] |= bit;
        } else {
            let mut words = vec![0u64; blocks];
            words[blk] |= bit;
            spill.push((c, words));
        }
    }
    let zeros = vec![0u64; blocks];
    let eq_words = |c: char| -> &[u64] {
        if (c as u32) < 128 {
            &ascii[c as usize * blocks..(c as usize + 1) * blocks]
        } else {
            spill
                .iter()
                .find(|e| e.0 == c)
                .map_or(&zeros[..], |e| &e.1[..])
        }
    };

    let mut pv = vec![!0u64; blocks];
    let mut mv = vec![0u64; blocks];
    let last = blocks - 1;
    let last_msb = 1u64 << ((m - 1) % WORD);
    let mut score = m as u32;
    let n = b.len();
    for (j, &c) in b.iter().enumerate() {
        let eqs = eq_words(c);
        // The top boundary row is D(0, j) = j: a permanent +1 entering
        // block 0 (the single-word kernel's `ph |= 1` each column).
        let mut hin = 1i32;
        for k in 0..blocks {
            let msb = if k == last { last_msb } else { 1u64 << 63 };
            hin = myers_advance_block(&mut pv[k], &mut mv[k], eqs[k], hin, msb);
        }
        score = score.wrapping_add_signed(hin);
        if score > bound + (n - j - 1) as u32 {
            return None;
        }
    }
    (score <= bound).then_some(score)
}

/// Full-matrix Levenshtein distance. Reference implementation used for
/// testing and as the baseline in the `edit_distance` ablation bench.
pub fn edit_distance_full(v1: &str, v2: &str) -> u32 {
    let a: Vec<char> = v1.chars().collect();
    let b: Vec<char> = v2.chars().collect();
    let (n, m) = (a.len(), b.len());
    let mut prev: Vec<u32> = (0..=m as u32).collect();
    let mut cur: Vec<u32> = vec![0; m + 1];
    for i in 1..=n {
        cur[0] = i as u32;
        for j in 1..=m {
            let sub = prev[j - 1] + u32::from(a[i - 1] != b[j - 1]);
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Approximate match predicate (paper §4.1): true when the edit
/// distance is within the fractional threshold. Equal strings always
/// match.
pub fn approx_match(v1: &str, v2: &str, params: MatchParams) -> bool {
    if v1 == v2 {
        return true;
    }
    let bound = fractional_threshold(v1, v2, params);
    if bound == 0 {
        return false;
    }
    edit_distance_within(v1, v2, bound).is_some()
}

/// Approximate match with whitespace removed first — the paper's
/// Example 8 arithmetic ("ignoring punctuations", distance 2 between
/// "American Samoa" and "American Samoa (US)") treats separators as
/// free, so "americansamoa" vs "americansamoaus" is the comparison
/// actually made.
pub fn approx_match_compact(v1: &str, v2: &str, params: MatchParams) -> bool {
    if v1 == v2 {
        return true;
    }
    let a: String = v1.chars().filter(|c| !c.is_whitespace()).collect();
    let b: String = v2.chars().filter(|c| !c.is_whitespace()).collect();
    approx_match(&a, &b, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn threshold_from_paper_example_8() {
        // "American Samoa" (14 ch) vs "American Samoa (US)" — the paper
        // normalizes away punctuation first; with f_ed = 0.2 and
        // lengths 13/15 it computes θ_ed = min{⌊13·0.2⌋, ⌊15·0.2⌋, 10} = 2.
        let p = MatchParams::default();
        let a = "americansamoa"; // 13
        let b = "americansamoaus"; // 15
        assert_eq!(fractional_threshold(a, b, p), 2);
        assert_eq!(edit_distance_within(a, b, 2), Some(2));
        assert!(approx_match(a, b, p));
    }

    #[test]
    fn short_codes_require_exact_match() {
        let p = MatchParams::default();
        // ⌊3·0.2⌋ = 0 → no edits allowed
        assert_eq!(fractional_threshold("usa", "rsa", p), 0);
        assert!(!approx_match("usa", "rsa", p));
        assert!(approx_match("usa", "usa", p));
    }

    #[test]
    fn k_ed_caps_long_strings() {
        let p = MatchParams {
            f_ed: 0.5,
            k_ed: 10,
        };
        let long_a = "a".repeat(100);
        let long_b = "b".repeat(100);
        assert_eq!(fractional_threshold(&long_a, &long_b, p), 10);
        assert!(!approx_match(&long_a, &long_b, p));
    }

    #[test]
    fn banded_matches_full_within_bound() {
        let cases = [
            ("kitten", "sitting"),
            ("korea republic of", "korea republic"),
            ("", "abc"),
            ("abc", ""),
            ("same", "same"),
            ("a", "ab"),
            ("flaw", "lawn"),
        ];
        for (a, b) in cases {
            let full = edit_distance_full(a, b);
            for bound in 0..=8u32 {
                let banded = edit_distance_within(a, b, bound);
                if full <= bound {
                    assert_eq!(banded, Some(full), "{a:?} vs {b:?} bound {bound}");
                } else {
                    assert_eq!(banded, None, "{a:?} vs {b:?} bound {bound}");
                }
            }
        }
    }

    #[test]
    fn unicode_chars_count_as_single_edits() {
        assert_eq!(edit_distance_full("café", "cafe"), 1);
        assert_eq!(edit_distance_within("café", "cafe", 1), Some(1));
        assert_eq!(edit_distance_within_myers("café", "cafe", 1), Some(1));
        assert_eq!(edit_distance_within_banded("café", "cafe", 1), Some(1));
    }

    /// All three implementations on one input/bound: full-matrix DP as
    /// the ground truth, banded and Myers must agree with it exactly.
    fn assert_kernels_agree(a: &str, b: &str, bound: u32) {
        let full = edit_distance_full(a, b);
        let want = (full <= bound).then_some(full);
        assert_eq!(
            edit_distance_within_banded(a, b, bound),
            want,
            "banded: {a:?} vs {b:?} bound {bound}"
        );
        assert_eq!(
            edit_distance_within_myers(a, b, bound),
            want,
            "myers: {a:?} vs {b:?} bound {bound}"
        );
        assert_eq!(
            edit_distance_within(a, b, bound),
            want,
            "dispatch: {a:?} vs {b:?} bound {bound}"
        );
    }

    #[test]
    fn myers_agrees_at_word_boundaries() {
        // Pattern lengths straddling the 64-char block boundary, with
        // edits placed at the start, the boundary itself, and the end.
        for len in [63usize, 64, 65, 127, 128, 129, 200] {
            let a: String = (0..len).map(|i| char::from(b'a' + (i % 7) as u8)).collect();
            for pos in [0usize, 62, 63, 64, 65, len - 1] {
                let pos = pos.min(len - 1);
                // Substitution at `pos`.
                let mut chars: Vec<char> = a.chars().collect();
                chars[pos] = 'z';
                let sub: String = chars.iter().collect();
                // Deletion at `pos` (shifts everything across blocks).
                let del: String = a
                    .chars()
                    .enumerate()
                    .filter(|&(i, _)| i != pos)
                    .map(|(_, c)| c)
                    .collect();
                for bound in [0u32, 1, 2, 5, 10] {
                    assert_kernels_agree(&a, &sub, bound);
                    assert_kernels_agree(&a, &del, bound);
                }
            }
            assert_kernels_agree(&a, &a, 0);
        }
    }

    #[test]
    fn myers_handles_non_ascii_spill() {
        // > 64 chars with multi-byte chars on both sides of the block
        // boundary exercises the spill path of the blocked Peq.
        let a: String = "αβγδ".repeat(20); // 80 chars
        let mut b = a.clone();
        b.push('ω');
        assert_kernels_agree(&a, &b, 3);
        let c: String = a.chars().rev().collect();
        assert_kernels_agree(&a, &c, 10);
    }

    #[test]
    fn threshold_for_lens_matches_string_form() {
        for f_ed in [0.0, 0.1, 0.2, 0.3, 0.5] {
            for k_ed in [0u32, 1, 5, 10] {
                let p = MatchParams { f_ed, k_ed };
                for la in 0usize..40 {
                    for lb in 0usize..40 {
                        let a = "x".repeat(la);
                        let b = "y".repeat(lb);
                        assert_eq!(
                            fractional_threshold(&a, &b, p),
                            fractional_threshold_for_lens(la, lb, p),
                            "lens {la},{lb} params {p:?}"
                        );
                    }
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_banded_agrees_with_full(a in "[a-d]{0,12}", b in "[a-d]{0,12}", bound in 0u32..6) {
            let full = edit_distance_full(&a, &b);
            let banded = edit_distance_within(&a, &b, bound);
            if full <= bound {
                prop_assert_eq!(banded, Some(full));
            } else {
                prop_assert_eq!(banded, None);
            }
        }

        /// Myers ≡ banded ≡ full on arbitrary unicode — small alphabet
        /// with multi-byte chars for collision-rich short strings.
        #[test]
        fn prop_kernels_agree_unicode(
            a in "[a-cé-ía-c ]{0,20}",
            b in "[a-cé-ía-c ]{0,20}",
            bound in 0u32..12,
        ) {
            let full = edit_distance_full(&a, &b);
            let want = (full <= bound).then_some(full);
            prop_assert_eq!(edit_distance_within_banded(&a, &b, bound), want);
            prop_assert_eq!(edit_distance_within_myers(&a, &b, bound), want);
            prop_assert_eq!(edit_distance_within(&a, &b, bound), want);
        }

        /// Same equivalence on long values spanning Myers block
        /// boundaries (patterns up to two-plus words).
        #[test]
        fn prop_kernels_agree_across_blocks(
            a in "[ab]{40,150}",
            b in "[ab]{40,150}",
            bound in 0u32..16,
        ) {
            let full = edit_distance_full(&a, &b);
            let want = (full <= bound).then_some(full);
            prop_assert_eq!(edit_distance_within_banded(&a, &b, bound), want);
            prop_assert_eq!(edit_distance_within_myers(&a, &b, bound), want);
            prop_assert_eq!(edit_distance_within(&a, &b, bound), want);
        }

        #[test]
        fn prop_distance_is_metric_like(a in "[a-c]{0,10}", b in "[a-c]{0,10}") {
            let d = edit_distance_full(&a, &b);
            prop_assert_eq!(d, edit_distance_full(&b, &a)); // symmetric
            prop_assert_eq!(edit_distance_full(&a, &a), 0); // identity
            let la = a.chars().count() as i64;
            let lb = b.chars().count() as i64;
            prop_assert!(d as i64 >= (la - lb).abs()); // length lower bound
            prop_assert!(d as i64 <= la.max(lb)); // upper bound
        }

        #[test]
        fn prop_triangle_inequality(a in "[a-b]{0,8}", b in "[a-b]{0,8}", c in "[a-b]{0,8}") {
            let ab = edit_distance_full(&a, &b);
            let bc = edit_distance_full(&b, &c);
            let ac = edit_distance_full(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn prop_approx_match_symmetric(a in "[a-e ]{0,16}", b in "[a-e ]{0,16}") {
            let p = MatchParams::default();
            prop_assert_eq!(approx_match(&a, &b, p), approx_match(&b, &a, p));
        }
    }
}
