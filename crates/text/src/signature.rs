//! Character-occurrence signatures: `O(1)` lower bounds on edit
//! distance, the prefilter tier of similarity-join-style approximate
//! matching.
//!
//! A [`CharSignature`] summarizes one string as a 64-bit
//! bucket-occurrence mask plus a 64-bucket character-frequency
//! histogram (saturating `u8` counts). Two signatures yield cheap
//! **exact** lower bounds on the Levenshtein distance of the
//! underlying strings, so a candidate pair whose bound already exceeds
//! the fractional threshold is rejected without running any
//! edit-distance kernel — and a pair whose true distance is within
//! the threshold is *never* rejected.
//!
//! Soundness (why these are lower bounds): one edit changes at most
//! one character occurrence on each side —
//!
//! * an insert or delete changes one bucket count by one (histogram
//!   L1 distance moves by ≤ 1, the mask flips ≤ 1 bit);
//! * a substitution changes two bucket counts by one each (L1 moves by
//!   ≤ 2, the mask flips ≤ 2 bits).
//!
//! Hence `L1(h_a, h_b) ≤ 2·d` and `popcount(mask_a ⊕ mask_b) ≤ 2·d`,
//! i.e. `d ≥ ⌈L1/2⌉` and `d ≥ ⌈popcount/2⌉`. Bucketing only merges
//! characters (can only *shrink* the measured L1/popcount), and the
//! saturating `u8` counts only shrink per-bucket differences — both
//! keep the bounds conservative, never inflated.

/// Histogram buckets (and mask bits) per signature.
pub const SIG_BUCKETS: usize = 64;

/// Map a character to its signature bucket. Any function works for
/// soundness (collisions only loosen the bounds); a multiplicative
/// hash spreads the dense ASCII range of normalized values across all
/// 64 buckets so letters and digits rarely collide.
#[inline]
fn bucket(c: char) -> usize {
    ((c as u32).wrapping_mul(0x9E37_79B1) >> 26) as usize
}

/// Character-occurrence summary of one string: which of the 64 buckets
/// occur ([`mask`](Self::mask)) and how often (saturating counts in
/// [`hist`](Self::hist)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CharSignature {
    /// Bit `i` set iff some character hashing to bucket `i` occurs.
    pub mask: u64,
    /// Saturating per-bucket occurrence counts.
    pub hist: [u8; SIG_BUCKETS],
}

impl CharSignature {
    /// Signature of a string (over its `char`s — compute it over the
    /// same form the edit-distance kernels will compare).
    pub fn of(s: &str) -> Self {
        let mut mask = 0u64;
        let mut hist = [0u8; SIG_BUCKETS];
        for c in s.chars() {
            let b = bucket(c);
            mask |= 1u64 << b;
            hist[b] = hist[b].saturating_add(1);
        }
        Self { mask, hist }
    }

    /// Lower bound on the edit distance from the occurrence masks
    /// alone: `⌈popcount(mask_a ⊕ mask_b) / 2⌉`. One xor + popcount —
    /// the first, cheapest filter stage.
    #[inline]
    pub fn mask_bound(&self, other: &Self) -> u32 {
        (self.mask ^ other.mask).count_ones().div_ceil(2)
    }

    /// Lower bound on the edit distance from the histogram L1
    /// distance: `⌈Σ|h_a[i] − h_b[i]| / 2⌉`. Strictly at least
    /// [`mask_bound`](Self::mask_bound) (a presence-differing bucket
    /// contributes ≥ 1 to L1), so run it second.
    #[inline]
    pub fn hist_bound(&self, other: &Self) -> u32 {
        let l1: u32 = self
            .hist
            .iter()
            .zip(&other.hist)
            .map(|(&x, &y)| u32::from(x.abs_diff(y)))
            .sum();
        l1.div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::editdist::edit_distance_full;
    use proptest::prelude::*;

    #[test]
    fn equal_strings_have_zero_bounds() {
        for s in ["", "abc", "american samoa", "ωωω"] {
            let sig = CharSignature::of(s);
            assert_eq!(sig.mask_bound(&sig), 0);
            assert_eq!(sig.hist_bound(&sig), 0);
        }
    }

    #[test]
    fn bounds_are_symmetric_and_ordered() {
        let a = CharSignature::of("north dakota");
        let b = CharSignature::of("south carolina");
        assert_eq!(a.mask_bound(&b), b.mask_bound(&a));
        assert_eq!(a.hist_bound(&b), b.hist_bound(&a));
        assert!(a.hist_bound(&b) >= a.mask_bound(&b));
    }

    #[test]
    fn disjoint_alphabets_are_rejected_fast() {
        let a = CharSignature::of("aaaaaaaa");
        let b = CharSignature::of("bbbbbbbb");
        // Distinct buckets for 'a' and 'b' → each side's bucket is
        // missing from the other; distance 8 must be admitted.
        assert!(a.mask_bound(&b) >= 1);
        assert!(a.hist_bound(&b) <= 8);
        assert!(a.hist_bound(&b) >= 1);
    }

    #[test]
    fn saturation_stays_sound() {
        // > 255 occurrences of one char: counts saturate, the bound
        // must still not exceed the true distance.
        let long_a = "a".repeat(300);
        let long_b = format!("{}b", "a".repeat(299));
        let sa = CharSignature::of(&long_a);
        let sb = CharSignature::of(&long_b);
        let d = edit_distance_full(&long_a, &long_b);
        assert!(sa.hist_bound(&sb) <= d);
        assert!(sa.mask_bound(&sb) <= d);
    }

    proptest! {
        /// Soundness on arbitrary unicode: neither bound ever exceeds
        /// the true edit distance, so a filter chain using them can
        /// never drop a pair within threshold.
        #[test]
        fn prop_bounds_never_exceed_distance(
            a in "[a-fé-í0-3 ]{0,24}",
            b in "[a-fé-í0-3 ]{0,24}",
        ) {
            let d = edit_distance_full(&a, &b);
            let sa = CharSignature::of(&a);
            let sb = CharSignature::of(&b);
            prop_assert!(sa.mask_bound(&sb) <= d, "mask bound {} > d {}", sa.mask_bound(&sb), d);
            prop_assert!(sa.hist_bound(&sb) <= d, "hist bound {} > d {}", sa.hist_bound(&sb), d);
            prop_assert!(sa.hist_bound(&sb) >= sa.mask_bound(&sb));
        }

        /// Soundness also on long, saturating, block-spanning strings.
        #[test]
        fn prop_bounds_sound_on_long_strings(
            a in "[ab]{0,90}",
            b in "[ab]{0,90}",
            pad in 0usize..300,
        ) {
            let a = format!("{}{}", a, "c".repeat(pad));
            let b = format!("{}{}", b, "c".repeat(pad));
            let d = edit_distance_full(&a, &b);
            let sa = CharSignature::of(&a);
            let sb = CharSignature::of(&b);
            prop_assert!(sa.mask_bound(&sb) <= d);
            prop_assert!(sa.hist_bound(&sb) <= d);
        }
    }
}
