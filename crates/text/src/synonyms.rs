//! External synonym feed.
//!
//! Paper §4.1 ("Synonyms"): when an external source declares values as
//! synonymous — e.g. "US Virgin Islands" ↔ "United States Virgin
//! Islands" — positive compatibility between tables is boosted, and the
//! conflict-resolution step does not treat `(l, r)` vs `(l, r')` as a
//! conflict when `(r, r')` are known synonyms.
//!
//! Implemented as a union-find over normalized strings: synonymy is an
//! equivalence relation, so transitive declarations collapse into one
//! class.

use crate::normalize::normalize;
use std::collections::HashMap;

/// A dictionary of synonym classes over normalized strings.
#[derive(Clone, Default, Debug)]
pub struct SynonymDict {
    ids: HashMap<String, usize>,
    parent: Vec<usize>,
}

impl SynonymDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    fn id_of(&mut self, s: &str) -> usize {
        let key = normalize(s);
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.parent.len();
        self.parent.push(id);
        self.ids.insert(key, id);
        id
    }

    fn find(&self, mut x: usize) -> usize {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    fn find_compress(&mut self, x: usize) -> usize {
        let root = self.find(x);
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Declare `a` and `b` synonymous (normalization applied).
    pub fn declare(&mut self, a: &str, b: &str) {
        let ia = self.id_of(a);
        let ib = self.id_of(b);
        let ra = self.find_compress(ia);
        let rb = self.find_compress(ib);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Declare a whole group synonymous.
    pub fn declare_group<'a>(&mut self, group: impl IntoIterator<Item = &'a str>) {
        let mut iter = group.into_iter();
        if let Some(first) = iter.next() {
            for other in iter {
                self.declare(first, other);
            }
        }
    }

    /// Whether `a` and `b` are known synonyms (normalization applied;
    /// equal normalized strings are trivially synonymous).
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        let ka = normalize(a);
        let kb = normalize(b);
        if ka == kb {
            return true;
        }
        match (self.ids.get(&ka), self.ids.get(&kb)) {
            (Some(&ia), Some(&ib)) => self.find(ia) == self.find(ib),
            _ => false,
        }
    }

    /// Canonical class id of a normalized string, if declared.
    pub fn class_of(&self, s: &str) -> Option<usize> {
        self.ids.get(&normalize(s)).map(|&id| self.find(id))
    }

    /// Number of declared strings.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_declare_and_query() {
        let mut d = SynonymDict::new();
        d.declare("US Virgin Islands", "United States Virgin Islands");
        assert!(d.are_synonyms("us virgin islands", "United States Virgin Islands"));
        assert!(!d.are_synonyms("US Virgin Islands", "Puerto Rico"));
    }

    #[test]
    fn transitivity() {
        let mut d = SynonymDict::new();
        d.declare("South Korea", "Korea, Republic of");
        d.declare("Korea, Republic of", "Republic of Korea");
        assert!(d.are_synonyms("South Korea", "Republic of Korea"));
    }

    #[test]
    fn group_declaration() {
        let mut d = SynonymDict::new();
        d.declare_group(["Congo (Democratic Rep.)", "DR Congo", "Congo-Kinshasa"]);
        assert!(d.are_synonyms("DR Congo", "Congo-Kinshasa"));
        assert!(d.are_synonyms("Congo (Democratic Rep.)", "DR Congo"));
    }

    #[test]
    fn normalized_equality_is_trivial_synonymy() {
        let d = SynonymDict::new();
        assert!(d.are_synonyms("KOREA, SOUTH", "korea south"));
        assert!(!d.are_synonyms("a", "b"));
    }

    #[test]
    fn unknown_strings_have_no_class() {
        let mut d = SynonymDict::new();
        assert_eq!(d.class_of("x"), None);
        d.declare("x", "y");
        assert!(d.class_of("x").is_some());
        assert_eq!(d.class_of("x"), d.class_of("Y"));
    }
}
