//! A miniature in-process Map-Reduce engine.
//!
//! Mirrors the structure of the paper's jobs: a *map* phase emits
//! `(key, value)` pairs from input records in parallel, a *shuffle*
//! groups pairs by key into hash partitions, and a *reduce* phase folds
//! each key group in parallel. Results are returned sorted by key so
//! runs are deterministic regardless of worker interleaving.
//!
//! Workers are std scoped threads (`std::thread::scope`), so jobs can
//! borrow their inputs without any `'static` bound or external
//! runtime.
//!
//! The engine is intentionally synchronous and in-memory: the paper's
//! scalability argument (blocking keeps `|E| ≪ N²`; near-linear scaling
//! in corpus size, Figure 9) is about how much work the jobs do, not
//! about cluster mechanics, so an in-process engine preserves the
//! measurable shape.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::thread;

/// The Map-Reduce engine. Holds only the worker count; each job is a
/// self-contained call.
#[derive(Clone, Copy, Debug)]
pub struct MapReduce {
    workers: usize,
}

impl Default for MapReduce {
    fn default() -> Self {
        Self::new(default_workers())
    }
}

/// Number of workers used by [`MapReduce::default`]: available
/// parallelism, capped to keep shuffle overhead sane.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

impl MapReduce {
    /// Create an engine with an explicit worker count (min 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run a full map → shuffle → reduce job.
    ///
    /// * `inputs` — the input records;
    /// * `mapper` — emits any number of `(K, V)` pairs per record;
    /// * `reducer` — folds one key's values (in mapper-emission order
    ///   per partition, then concatenated in input order) to an output.
    ///
    /// Returns `(key, output)` pairs sorted by key.
    pub fn run<I, K, V, O, M, R>(&self, inputs: &[I], mapper: M, reducer: R) -> Vec<(K, O)>
    where
        I: Sync,
        K: Send + Hash + Eq + Ord + Clone,
        V: Send,
        O: Send,
        M: Fn(&I) -> Vec<(K, V)> + Sync,
        R: Fn(&K, Vec<V>) -> O + Sync,
    {
        let grouped = self.map_and_shuffle(inputs, &mapper);
        // Reduce each partition in parallel.
        let results: Vec<Vec<(K, O)>> = thread::scope(|s| {
            let handles: Vec<_> = grouped
                .into_iter()
                .map(|part| {
                    let reducer = &reducer;
                    s.spawn(move || {
                        let mut out: Vec<(K, O)> = part
                            .into_iter()
                            .map(|(k, vs)| {
                                let o = reducer(&k, vs);
                                (k, o)
                            })
                            .collect();
                        out.sort_by(|a, b| a.0.cmp(&b.0));
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("reduce worker panicked"))
                .collect()
        });
        let mut flat: Vec<(K, O)> = results.into_iter().flatten().collect();
        flat.sort_by(|a, b| a.0.cmp(&b.0));
        flat
    }

    /// Like [`run`](Self::run), but with a per-worker **combiner**
    /// applied during the map phase: values a single mapper worker
    /// emits for the same key are folded together before the shuffle,
    /// bounding shuffle size by `workers × distinct keys` instead of
    /// total emissions — the classic Map-Reduce combiner optimization
    /// for aggregation jobs.
    ///
    /// `combine` must be commutative and associative (it is applied in
    /// chunk-local emission order); the reducer sees one pre-combined
    /// value per (mapper worker, key), in worker order.
    pub fn run_combining<I, K, V, O, M, C, R>(
        &self,
        inputs: &[I],
        mapper: M,
        combine: C,
        reducer: R,
    ) -> Vec<(K, O)>
    where
        I: Sync,
        K: Send + Hash + Eq + Ord + Clone,
        V: Send,
        O: Send,
        M: Fn(&I) -> Vec<(K, V)> + Sync,
        C: Fn(&mut V, V) + Sync,
        R: Fn(&K, Vec<V>) -> O + Sync,
    {
        let p = self.workers;
        let chunk = inputs.len().div_ceil(p).max(1);
        // Map with in-flight combining: one HashMap<K, V> per
        // (mapper worker, destination partition).
        let mut collected: Vec<(usize, Vec<HashMap<K, V>>)> = thread::scope(|s| {
            let handles: Vec<_> = inputs
                .chunks(chunk)
                .enumerate()
                .map(|(ci, chunk_inputs)| {
                    let mapper = &mapper;
                    let combine = &combine;
                    s.spawn(move || {
                        let mut buckets: Vec<HashMap<K, V>> =
                            (0..p).map(|_| HashMap::new()).collect();
                        for rec in chunk_inputs {
                            for (k, v) in mapper(rec) {
                                let b = partition_of(&k, p);
                                match buckets[b].entry(k) {
                                    std::collections::hash_map::Entry::Occupied(mut e) => {
                                        combine(e.get_mut(), v);
                                    }
                                    std::collections::hash_map::Entry::Vacant(e) => {
                                        e.insert(v);
                                    }
                                }
                            }
                        }
                        (ci, buckets)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("map worker panicked"))
                .collect()
        });
        collected.sort_by_key(|(ci, _)| *ci);
        // Transpose into partitions, preserving worker order per key.
        let mut partitions: Vec<HashMap<K, Vec<V>>> = (0..p).map(|_| HashMap::new()).collect();
        for (_, worker_buckets) in collected {
            for (pi, bucket) in worker_buckets.into_iter().enumerate() {
                let part = &mut partitions[pi];
                for (k, v) in bucket {
                    part.entry(k).or_default().push(v);
                }
            }
        }
        // Reduce each partition in parallel (as in `run`).
        let results: Vec<Vec<(K, O)>> = thread::scope(|s| {
            let handles: Vec<_> = partitions
                .into_iter()
                .map(|part| {
                    let reducer = &reducer;
                    s.spawn(move || {
                        let mut out: Vec<(K, O)> = part
                            .into_iter()
                            .map(|(k, vs)| {
                                let o = reducer(&k, vs);
                                (k, o)
                            })
                            .collect();
                        out.sort_by(|a, b| a.0.cmp(&b.0));
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("reduce worker panicked"))
                .collect()
        });
        let mut flat: Vec<(K, O)> = results.into_iter().flatten().collect();
        flat.sort_by(|a, b| a.0.cmp(&b.0));
        flat
    }

    /// Map-only phase with shuffle: returns one partition per worker,
    /// each a map from key to the values emitted for it. Within one
    /// key, values preserve (input-order, emission-order).
    fn map_and_shuffle<I, K, V, M>(&self, inputs: &[I], mapper: &M) -> Vec<HashMap<K, Vec<V>>>
    where
        I: Sync,
        K: Send + Hash + Eq + Clone,
        V: Send,
        M: Fn(&I) -> Vec<(K, V)> + Sync,
    {
        // One bucket per (mapper worker, destination partition).
        type Buckets<K, V> = Vec<Vec<(K, V)>>;
        let p = self.workers;
        // Each mapper worker produces p outgoing buckets.
        let chunk = inputs.len().div_ceil(p).max(1);
        let mut collected: Vec<(usize, Buckets<K, V>)> = thread::scope(|s| {
            let handles: Vec<_> = inputs
                .chunks(chunk)
                .enumerate()
                .map(|(ci, chunk_inputs)| {
                    s.spawn(move || {
                        let mut buckets: Vec<Vec<(K, V)>> = (0..p).map(|_| Vec::new()).collect();
                        for rec in chunk_inputs {
                            for (k, v) in mapper(rec) {
                                let b = partition_of(&k, p);
                                buckets[b].push((k, v));
                            }
                        }
                        (ci, buckets)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("map worker panicked"))
                .collect()
        });
        // Preserve input chunk order for deterministic value order.
        collected.sort_by_key(|(ci, _)| *ci);
        let all_buckets: Vec<Buckets<K, V>> = collected.into_iter().map(|(_, b)| b).collect();
        // Transpose: partition i receives bucket i from each mapper.
        let mut partitions: Vec<HashMap<K, Vec<V>>> = (0..p).map(|_| HashMap::new()).collect();
        for mapper_buckets in all_buckets {
            for (pi, bucket) in mapper_buckets.into_iter().enumerate() {
                let part = &mut partitions[pi];
                for (k, v) in bucket {
                    part.entry(k).or_default().push(v);
                }
            }
        }
        partitions
    }

    /// Convenience: parallel map over inputs, preserving input order.
    pub fn par_map<I, O, F>(&self, inputs: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        let chunk = inputs.len().div_ceil(self.workers).max(1);
        let mut results: Vec<(usize, Vec<O>)> = thread::scope(|s| {
            let handles: Vec<_> = inputs
                .chunks(chunk)
                .enumerate()
                .map(|(ci, ch)| {
                    let f = &f;
                    s.spawn(move || (ci, ch.iter().map(f).collect::<Vec<O>>()))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("map worker panicked"))
                .collect()
        });
        results.sort_by_key(|(ci, _)| *ci);
        results.into_iter().flat_map(|(_, v)| v).collect()
    }
}

/// Stable partitioning function (FNV-1a over the key's hash) so runs
/// are reproducible across processes. Public because sharded artifact
/// builds (value-space interning, blocking posting lists) partition by
/// the same function the shuffle uses, keeping the whole pipeline on
/// one deterministic hash.
pub fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut hasher = FnvHasher::default();
    key.hash(&mut hasher);
    (hasher.finish() % partitions as u64) as usize
}

/// Minimal FNV-1a hasher: deterministic across runs (unlike the std
/// `RandomState`), which keeps shuffle partitioning stable.
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count() {
        let docs = vec![
            "the quick brown fox".to_string(),
            "the lazy dog".to_string(),
            "the quick dog".to_string(),
        ];
        let mr = MapReduce::new(3);
        let counts = mr.run(
            &docs,
            |doc: &String| {
                doc.split_whitespace()
                    .map(|w| (w.to_string(), 1u32))
                    .collect()
            },
            |_k, vs| vs.iter().sum::<u32>(),
        );
        let map: std::collections::HashMap<_, _> = counts.into_iter().collect();
        assert_eq!(map["the"], 3);
        assert_eq!(map["quick"], 2);
        assert_eq!(map["dog"], 2);
        assert_eq!(map["fox"], 1);
    }

    #[test]
    fn deterministic_output_order() {
        let inputs: Vec<u32> = (0..500).collect();
        let mr = MapReduce::new(7);
        let run = |mr: &MapReduce| {
            mr.run(
                &inputs,
                |&x| vec![(x % 13, x)],
                |_k, vs| vs.iter().sum::<u32>(),
            )
        };
        let a = run(&mr);
        let b = run(&mr);
        assert_eq!(a, b);
        let keys: Vec<u32> = a.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn single_worker_equals_many_workers() {
        let inputs: Vec<u32> = (0..200).collect();
        let job = |mr: MapReduce| {
            mr.run(
                &inputs,
                |&x| vec![(x % 7, x as u64)],
                |_k, vs| vs.iter().sum::<u64>(),
            )
        };
        assert_eq!(job(MapReduce::new(1)), job(MapReduce::new(8)));
    }

    #[test]
    fn empty_input() {
        let mr = MapReduce::new(4);
        let out: Vec<(u32, u32)> = mr.run(&Vec::<u32>::new(), |&x| vec![(x, x)], |_k, vs| vs[0]);
        assert!(out.is_empty());
    }

    #[test]
    fn mapper_emitting_multiple_keys() {
        let mr = MapReduce::new(4);
        let out = mr.run(
            &[10u32, 20, 30],
            |&x| vec![(0u8, x), (1u8, x * 2)],
            |_k, vs| vs.iter().sum::<u32>(),
        );
        assert_eq!(out, vec![(0u8, 60), (1u8, 120)]);
    }

    #[test]
    fn combining_matches_plain_run() {
        let inputs: Vec<u32> = (0..500).collect();
        for workers in [1, 3, 8] {
            let mr = MapReduce::new(workers);
            let plain = mr.run(
                &inputs,
                |&x| vec![(x % 13, 1u32), (x % 7, 2u32)],
                |_k, vs| vs.iter().sum::<u32>(),
            );
            let combined = mr.run_combining(
                &inputs,
                |&x| vec![(x % 13, 1u32), (x % 7, 2u32)],
                |acc, v| *acc += v,
                |_k, vs| vs.iter().sum::<u32>(),
            );
            assert_eq!(plain, combined, "workers={workers}");
        }
    }

    #[test]
    fn combining_shrinks_shuffle_to_one_value_per_worker() {
        // 100 records all emitting the same key: the reducer must see
        // at most `workers` pre-combined values, not 100.
        let inputs: Vec<u32> = (0..100).collect();
        let mr = MapReduce::new(4);
        let out = mr.run_combining(
            &inputs,
            |&x| vec![(0u8, x as u64)],
            |acc, v| *acc += v,
            |_k, vs| {
                assert!(vs.len() <= 4, "combiner must pre-aggregate: {}", vs.len());
                vs.iter().sum::<u64>()
            },
        );
        assert_eq!(out, vec![(0u8, (0..100u64).sum())]);
    }

    #[test]
    fn par_map_preserves_order() {
        let inputs: Vec<u32> = (0..100).collect();
        let mr = MapReduce::new(5);
        let out = mr.par_map(&inputs, |&x| x * x);
        assert_eq!(out, inputs.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn value_order_within_key_is_input_order() {
        let inputs: Vec<u32> = (0..50).collect();
        let mr = MapReduce::new(4);
        let out = mr.run(&inputs, |&x| vec![(0u8, x)], |_k, vs| vs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, inputs);
    }
}
