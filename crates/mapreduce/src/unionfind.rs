//! Disjoint-set (union-find) with union by rank and path compression.
//!
//! Appendix F: "we use a disjoint-set data structure to speed up the
//! process \[25\]" — set union and set lookup are the hot operations of
//! the iterative partitioner (Algorithm 3) and of connected-components
//! post-processing.

/// Union-find over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set, with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Compress.
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Representative without mutation (no compression); useful when
    /// only a shared reference is available.
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        root
    }

    /// Merge the sets of `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Group element indices by representative. Groups and members are
    /// sorted, so output is deterministic.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort_by_key(|g| g[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(1, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same_set(0, 2));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn groups_are_sorted_partition() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 0);
        uf.union(5, 1);
        let gs = uf.groups();
        assert_eq!(gs, vec![vec![0, 2, 4], vec![1, 5], vec![3]]);
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            uf.union(i, i + 1);
        }
        for i in 0..10 {
            let f = uf.find_immutable(i);
            assert_eq!(f, uf.find(i));
        }
    }

    proptest! {
        #[test]
        fn prop_union_find_equivalence(unions in proptest::collection::vec((0usize..20, 0usize..20), 0..40)) {
            let mut uf = UnionFind::new(20);
            // Reference: naive set-of-sets.
            let mut sets: Vec<std::collections::BTreeSet<usize>> =
                (0..20).map(|i| std::iter::once(i).collect()).collect();
            for &(a, b) in &unions {
                uf.union(a, b);
                let ia = sets.iter().position(|s| s.contains(&a)).unwrap();
                let ib = sets.iter().position(|s| s.contains(&b)).unwrap();
                if ia != ib {
                    let moved = sets.remove(ib.max(ia));
                    sets[ia.min(ib)].extend(moved);
                }
            }
            prop_assert_eq!(uf.set_count(), sets.len());
            for a in 0..20 {
                for b in 0..20 {
                    let same_ref = sets.iter().any(|s| s.contains(&a) && s.contains(&b));
                    prop_assert_eq!(uf.same_set(a, b), same_ref);
                }
            }
        }
    }
}
