//! Connected components.
//!
//! Appendix F: the paper uses the Hash-to-Min algorithm (reference
//! \[13\]) on Map-Reduce to divide the compatibility graph into
//! components connected by non-trivial positive edges, then partitions
//! each component independently. We implement Hash-to-Min as rounds of
//! [`MapReduce`] jobs, plus a direct union-find variant used as the
//! fast path and as a cross-check in tests.

use crate::engine::MapReduce;
use crate::unionfind::UnionFind;
use std::collections::{BTreeSet, HashMap};

/// Connected components via union-find. `n` vertices, undirected
/// `edges`. Returns components as sorted vertex lists, sorted by first
/// vertex. Singleton vertices appear as singleton components.
pub fn connected_components_union_find(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(n);
    for &(a, b) in edges {
        uf.union(a as usize, b as usize);
    }
    uf.groups()
}

/// Connected components via the Hash-to-Min Map-Reduce algorithm
/// (Chitnis et al., ICDE 2013 — paper reference \[13\]).
///
/// Every vertex starts with a cluster `{v} ∪ neighbors(v)`. Each round,
/// every vertex sends its full cluster to the minimum member and its
/// minimum member to everyone else; clusters converge in
/// O(log d) rounds to "min vertex knows the whole component".
pub fn connected_components_hash_to_min(
    mr: &MapReduce,
    n: usize,
    edges: &[(u32, u32)],
) -> Vec<Vec<usize>> {
    if n == 0 {
        return Vec::new();
    }
    // clusters[v] = current cluster of v (always contains v).
    let mut adjacency: Vec<BTreeSet<u32>> = (0..n).map(|v| BTreeSet::from([v as u32])).collect();
    for &(a, b) in edges {
        adjacency[a as usize].insert(b);
        adjacency[b as usize].insert(a);
    }
    let mut clusters = adjacency;

    loop {
        // One Hash-to-Min round as a Map-Reduce job.
        // Map: vertex v with cluster C_v, m = min(C_v):
        //   emit (m, C_v) and (u, {m}) for every other u in C_v.
        let input: Vec<(u32, Vec<u32>)> = clusters
            .iter()
            .enumerate()
            .map(|(v, c)| (v as u32, c.iter().copied().collect()))
            .collect();
        let reduced = mr.run(
            &input,
            |(_v, cluster): &(u32, Vec<u32>)| {
                let m = cluster[0]; // sorted: min first
                let mut out: Vec<(u32, Vec<u32>)> = vec![(m, cluster.clone())];
                for &u in &cluster[1..] {
                    out.push((u, vec![m]));
                }
                out
            },
            |_k, vs: Vec<Vec<u32>>| {
                let mut merged = BTreeSet::new();
                for v in vs {
                    merged.extend(v);
                }
                merged
            },
        );
        // Rebuild cluster table; vertices that received nothing keep {v}.
        let mut next: Vec<BTreeSet<u32>> = (0..n).map(|v| BTreeSet::from([v as u32])).collect();
        let mut changed = false;
        for (v, cluster) in reduced {
            let slot = &mut next[v as usize];
            let mut cluster = cluster;
            cluster.insert(v);
            if *slot != cluster {
                *slot = cluster;
            }
        }
        for v in 0..n {
            if next[v] != clusters[v] {
                changed = true;
                break;
            }
        }
        clusters = next;
        if !changed {
            break;
        }
    }

    // At convergence, the min vertex of each component holds the full
    // component; every other vertex holds {min, v}.
    let mut label: Vec<u32> = (0..n as u32).collect();
    for (v, c) in clusters.iter().enumerate() {
        label[v] = *c.iter().next().expect("cluster always contains v");
    }
    // A vertex's label is the component min; group by it.
    let mut by_label: HashMap<u32, Vec<usize>> = HashMap::new();
    for (v, &l) in label.iter().enumerate() {
        by_label.entry(l).or_default().push(v);
    }
    let mut out: Vec<Vec<usize>> = by_label.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by_key(|g| g[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mr() -> MapReduce {
        MapReduce::new(4)
    }

    #[test]
    fn simple_components() {
        // 0-1-2, 3-4, 5 alone
        let edges = vec![(0, 1), (1, 2), (3, 4)];
        let want = vec![vec![0, 1, 2], vec![3, 4], vec![5]];
        assert_eq!(connected_components_union_find(6, &edges), want);
        assert_eq!(connected_components_hash_to_min(&mr(), 6, &edges), want);
    }

    #[test]
    fn chain_converges() {
        // Long chain exercises multi-round convergence.
        let n = 64;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect();
        let got = connected_components_hash_to_min(&mr(), n, &edges);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn empty_graph() {
        assert!(connected_components_hash_to_min(&mr(), 0, &[]).is_empty());
        let got = connected_components_union_find(3, &[]);
        assert_eq!(got, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn self_loops_and_duplicates_are_harmless() {
        let edges = vec![(0, 0), (0, 1), (1, 0), (0, 1)];
        let want = vec![vec![0, 1], vec![2]];
        assert_eq!(connected_components_union_find(3, &edges), want);
        assert_eq!(connected_components_hash_to_min(&mr(), 3, &edges), want);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_hash_to_min_matches_union_find(
            n in 1usize..24,
            edges in proptest::collection::vec((0u32..24, 0u32..24), 0..40),
        ) {
            let edges: Vec<(u32, u32)> = edges
                .into_iter()
                .filter(|&(a, b)| (a as usize) < n && (b as usize) < n)
                .collect();
            let a = connected_components_union_find(n, &edges);
            let b = connected_components_hash_to_min(&mr(), n, &edges);
            prop_assert_eq!(a, b);
        }
    }
}
