//! # mapsynth-mapreduce
//!
//! The execution substrate standing in for the paper's production
//! Map-Reduce cluster (§2.2, §5.1 "Computing Environment"). The
//! synthesis pipeline was designed as Map-Reduce jobs — inverted-index
//! re-grouping for blocking, Hash-to-Min for connected components
//! (Appendix F) — and this crate provides the same programming model
//! in-process:
//!
//! * [`engine::MapReduce`] — a deterministic parallel map → shuffle →
//!   reduce over in-memory collections, built on std scoped threads;
//! * [`cc`] — connected components via Hash-to-Min rounds
//!   (Chitnis et al., paper reference \[13\]) and via union-find;
//! * [`unionfind::UnionFind`] — disjoint sets with union by rank and
//!   path compression (Hopcroft-Ullman, paper reference \[25\]), used by
//!   the iterative partitioner.
//!
//! The engine is deterministic for any worker count — the shuffle
//! orders reducer inputs by mapper emission order, not thread arrival:
//!
//! ```
//! use mapsynth_mapreduce::MapReduce;
//!
//! let mr = MapReduce::new(2);
//! let docs = ["to be or not to be", "be that as it may"];
//! let counts = mr.run(
//!     &docs,
//!     |doc| doc.split_whitespace().map(|w| (w, 1u32)).collect(),
//!     |_word, ones| ones.len() as u32,
//! );
//! assert!(counts.contains(&("be", 3)));
//! assert_eq!(counts, MapReduce::new(7).run(
//!     &docs,
//!     |doc| doc.split_whitespace().map(|w| (w, 1u32)).collect(),
//!     |_word, ones| ones.len() as u32,
//! ));
//! ```

pub mod cc;
pub mod engine;
pub mod unionfind;

pub use cc::{connected_components_hash_to_min, connected_components_union_find};
pub use engine::{partition_of, MapReduce};
pub use unionfind::UnionFind;
