//! # mapsynth-mapreduce
//!
//! The execution substrate standing in for the paper's production
//! Map-Reduce cluster (§2.2, §5.1 "Computing Environment"). The
//! synthesis pipeline was designed as Map-Reduce jobs — inverted-index
//! re-grouping for blocking, Hash-to-Min for connected components
//! (Appendix F) — and this crate provides the same programming model
//! in-process:
//!
//! * [`engine::MapReduce`] — a deterministic parallel map → shuffle →
//!   reduce over in-memory collections, built on std scoped threads;
//! * [`cc`] — connected components via Hash-to-Min rounds
//!   (Chitnis et al., paper reference \[13\]) and via union-find;
//! * [`unionfind::UnionFind`] — disjoint sets with union by rank and
//!   path compression (Hopcroft-Ullman, paper reference \[25\]), used by
//!   the iterative partitioner.

pub mod cc;
pub mod engine;
pub mod unionfind;

pub use cc::{connected_components_hash_to_min, connected_components_union_find};
pub use engine::MapReduce;
pub use unionfind::UnionFind;
