//! The application algorithms running against the concurrent serving
//! layer instead of the build-once `MappingIndex` — the serving handle
//! is the only thing that changes; results must match.

use mapsynth_apps::{autocorrect, autofill, autojoin, MappingIndex};
use mapsynth_serve::{MappingService, SnapshotBuilder};
use std::sync::Arc;

fn pairs(raw: &[(&str, &str)]) -> Vec<(String, String)> {
    raw.iter()
        .map(|(l, r)| (l.to_string(), r.to_string()))
        .collect()
}

fn service() -> Arc<MappingService> {
    let service = Arc::new(MappingService::new());
    let mut b = SnapshotBuilder::with_shards(8);
    b.add_raw(
        Some("state->abbr".into()),
        &pairs(&[
            ("California", "CA"),
            ("Washington", "WA"),
            ("Oregon", "OR"),
            ("Texas", "TX"),
        ]),
    );
    b.add_raw(
        Some("city->state".into()),
        &pairs(&[
            ("San Francisco", "California"),
            ("Seattle", "Washington"),
            ("Houston", "Texas"),
        ]),
    );
    b.add_raw(
        Some("ticker->company".into()),
        &pairs(&[
            ("GE", "General Electric"),
            ("WMT", "Walmart"),
            ("MSFT", "Microsoft Corp."),
        ]),
    );
    service.publish(b.build());
    service
}

#[test]
fn autocorrect_from_served_snapshot() {
    let svc = service();
    let snap = svc.snapshot();
    let column = ["California", "Washington", "Oregon", "CA"];
    let fixes = autocorrect(&*snap, &column, 1).expect("mix detected");
    assert_eq!(fixes.len(), 1);
    assert_eq!(fixes[0].from, "CA");
    assert_eq!(fixes[0].to, "california");
}

#[test]
fn autofill_from_served_snapshot() {
    let svc = service();
    let snap = svc.snapshot();
    let keys = ["San Francisco", "Seattle", "Houston"];
    let target = [Some("California"), None, None];
    let fill = autofill(&*snap, &keys, &target, 1).expect("mapping found");
    assert_eq!(fill.mapping, 1);
    let values: Vec<&str> = fill.filled.iter().map(|(_, v)| v.as_str()).collect();
    assert_eq!(values, vec!["washington", "texas"]);
}

#[test]
fn autojoin_from_served_snapshot() {
    let svc = service();
    let snap = svc.snapshot();
    let left = ["GE", "WMT", "MSFT"];
    let right = ["Walmart", "General Electric", "Microsoft Corp."];
    let join = autojoin(&*snap, &left, &right, 0.5).expect("bridge found");
    assert_eq!(join.mapping, 2);
    assert!(join.left_keys_on_left);
    assert_eq!(join.rows.len(), 3);
    assert!(join.rows.contains(&(0, 1)));
}

#[test]
fn served_results_match_local_index() {
    // Same data behind both store implementations → same corrections.
    let raw = vec![(
        "state->abbr".to_string(),
        pairs(&[("California", "CA"), ("Washington", "WA"), ("Oregon", "OR")]),
    )];
    let index = MappingIndex::from_named_raw(raw.clone());
    let mut b = SnapshotBuilder::new();
    for (name, ps) in &raw {
        b.add_raw(Some(name.clone()), ps);
    }
    let snap = b.build();
    let column = ["California", "WA", "Oregon", "OR"];
    assert_eq!(
        autocorrect(&index, &column, 1),
        autocorrect(&snap, &column, 1)
    );
}

#[test]
fn publish_moves_traffic_rollback_restores() {
    let svc = service();
    let before = svc.snapshot();
    // A second session publishes a revised snapshot…
    let mut b = SnapshotBuilder::with_shards(8);
    b.add_raw(
        Some("state->abbr-v2".into()),
        &pairs(&[("California", "Calif."), ("Washington", "Wash.")]),
    );
    let v2 = svc.publish(b.build());
    assert!(v2 > before.version());
    let after = svc.snapshot();
    assert_eq!(
        after.lookup("California").unwrap().forward(0),
        Some("calif")
    );
    // …the old handle keeps serving its own version…
    assert_eq!(before.lookup("California").unwrap().forward(0), Some("ca"));
    // …and rollback restores the previous version for new handles.
    assert_eq!(svc.rollback(), Some(before.version()));
    let restored = svc.snapshot();
    assert_eq!(
        restored.lookup("California").unwrap().forward(0),
        Some("ca")
    );
}
